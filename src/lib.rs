#![forbid(unsafe_code)]

//! # hybrid-gate-pulse
//!
//! A from-scratch Rust reproduction of **"Hybrid Gate-Pulse Model for
//! Variational Quantum Algorithms"** (Liang et al., DAC 2023,
//! arXiv:2212.00661), including every substrate the paper's evaluation
//! depends on: a gate-level circuit IR and transpiler (SABRE routing,
//! commutative cancellation), a pulse-level IR with a rotating-frame
//! simulator and calibrated pulse library, statevector and density-matrix
//! simulators, calibration-derived noise models of the four IBM backends
//! of the paper's Table I, derivative-free optimizers (COBYLA), and error
//! suppression (M3 measurement mitigation, CVaR aggregation).
//!
//! This crate is a facade: it re-exports the workspace's crates under one
//! name so applications can depend on a single package. See the
//! `examples/` directory for runnable entry points and `crates/bench`
//! for the binaries that regenerate each of the paper's tables and
//! figures.
//!
//! ```
//! use hybrid_gate_pulse::prelude::*;
//! use hybrid_gate_pulse::{device::Backend, graph::instances};
//!
//! let backend = Backend::ibmq_toronto();
//! let graph = instances::task1_three_regular_6();
//! let model = HybridModel::new(&backend, &graph, 1, vec![1, 2, 3, 4, 5, 7])
//!     .expect("connected region");
//! let config = TrainConfig { max_evals: 10, ..TrainConfig::default() };
//! let result = train(&model, &graph, &config);
//! assert!(result.approximation_ratio > 0.0);
//! ```

pub use hgp_circuit as circuit;
pub use hgp_core as core;
pub use hgp_device as device;
pub use hgp_graph as graph;
pub use hgp_math as math;
pub use hgp_mitigation as mitigation;
pub use hgp_noise as noise;
pub use hgp_obs as obs;
pub use hgp_optim as optim;
pub use hgp_pulse as pulse;
pub use hgp_serve as serve;
pub use hgp_sim as sim;
pub use hgp_transpile as transpile;

/// One-stop imports for application code.
pub mod prelude {
    pub use hgp_core::prelude::*;
}
