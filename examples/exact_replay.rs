//! Exact-path serving on the superoperator replay tape: repeated-shape
//! density-matrix jobs riding one precompiled tape.
//!
//! Exact job kinds (`DensityMatrix`, `Counts`, `Expectation` and their
//! hybrid twins) used to re-walk the ASAP schedule per dispatch —
//! re-deriving every gate matrix, re-resolving every channel's Kraus
//! operators, and cloning the density matrix once per Kraus term. Now
//! the schedule compiles **once per shape** into an
//! `ExactReplayProgram`: maximal diagonal runs fused into one
//! elementwise sweep, dense gates held as resolved matrices, channels
//! precompiled into superoperators or Kraus blocks. Each dispatch
//! substitutes its bound angles into the cached tape (`bind_exact`) and
//! replays it over a scratch arena.
//!
//! The example drives the serving stack and verifies the contracts as
//! it goes:
//!
//! - a repeated-shape `Expectation` sweep: one cache miss (and one
//!   template recording) for the whole workload,
//! - the stage-split metrics: exact jobs record a nonzero template-bind
//!   time, separate from replay execution,
//! - a served value reproduced bit-for-bit by the hand-driven exact
//!   replay composition,
//! - a per-dispatch timing report: tape replay vs the interpreted
//!   reference walk it replaces.
//!
//! ```text
//! cargo run --release --example exact_replay
//! ```
//!
//! With `--smoke`, the example instead runs a quick parity gate: the
//! template-bound tape against the walk-compiled tape (bit-identical)
//! and against the interpreted reference walk (<= 1e-12 elementwise,
//! unit trace) across several parameter bindings. CI runs this on every
//! push, so the acceptance contract is exercised even though timing
//! assertions are not.

use std::time::Instant;

use hybrid_gate_pulse::core::compile::CircuitCompiler;
use hybrid_gate_pulse::core::qaoa::{cost_hamiltonian, qaoa_circuit};
use hybrid_gate_pulse::device::Backend;
use hybrid_gate_pulse::graph::instances;
use hybrid_gate_pulse::serve::{JobOutput, JobRequest, JobSpec, ServeConfig, Service};
use hybrid_gate_pulse::sim::SimBackend;

/// Template-bind vs walk-compile vs reference-walk parity on the served
/// shape: the two tape routes must agree bit for bit, and both must sit
/// within 1e-12 of the interpreted walk.
fn smoke() {
    let backend = Backend::ibmq_guadalupe();
    let graph = instances::task1_three_regular_6();
    let compiled = CircuitCompiler::new(&backend, vec![0, 1, 2, 3, 4, 5])
        .compile(&qaoa_circuit(&graph, 1))
        .expect("connected layout");
    let exec = compiled.executor(&backend);
    for (k, params) in [[0.35, 0.25], [0.10, 0.55], [-1.2, 0.8]].iter().enumerate() {
        let by_template = exec.run_exact_replay(&compiled.bind_exact(&exec, params));
        let by_walk = exec.run_exact_replay(&exec.exact_replay_program(&compiled.bind(params)));
        assert_eq!(
            by_template, by_walk,
            "binding {k}: template tape diverged from the walk-compiled tape"
        );
        let reference = exec.run(&compiled.bind(params));
        let dim = reference.dim();
        for i in 0..dim {
            for j in 0..dim {
                let d = (by_template.get(i, j) - reference.get(i, j)).norm();
                assert!(
                    d <= 1e-12,
                    "binding {k}: rho[{i},{j}] off the reference walk by {d:e}"
                );
            }
        }
        assert!((by_template.trace() - 1.0).abs() <= 1e-12, "unit trace");
    }
    println!("smoke: exact tape pinned to the reference walk across bindings");
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let backend = Backend::ibmq_guadalupe();
    let graph = instances::task1_three_regular_6();
    let circuit = qaoa_circuit(&graph, 1);
    let observable = cost_hamiltonian(&graph);
    let layout = vec![0, 1, 2, 3, 4, 5];

    let mut service = Service::new(&backend, ServeConfig::new(layout.clone()).with_workers(4));
    println!(
        "service: {} workers | shape: 6q noisy QAOA p=1 | exact density-matrix jobs",
        service.config().workers
    );

    // A (gamma, beta) sweep: 36 exact expectation jobs, ONE shape.
    let points: Vec<Vec<f64>> = (0..6)
        .flat_map(|i| (0..6).map(move |j| vec![0.10 + 0.10 * i as f64, 0.30 + 0.12 * j as f64]))
        .collect();
    let jobs: Vec<JobRequest> = points
        .iter()
        .map(|x| {
            JobRequest::new(
                circuit.clone(),
                x.clone(),
                JobSpec::Expectation {
                    observable: observable.clone(),
                },
            )
        })
        .collect();
    let results = service.run_batch(jobs);

    // One compile (and one recorded exact template) served the sweep.
    assert_eq!(service.metrics().cache_misses, 1, "one shape, one compile");
    assert_eq!(service.metrics().jobs_failed, 0);
    let best = results
        .iter()
        .map(|r| match r.unwrap_output() {
            JobOutput::Expectation { value } => *value,
            other => panic!("unexpected output {other:?}"),
        })
        .fold(f64::MIN, f64::max);
    println!("sweep: {} jobs, best <H_P> = {best:.4}", results.len());

    // Exact jobs split their time into template bind + tape replay.
    let m = service.metrics();
    assert!(m.bind_ns > 0, "exact jobs time the template bind");
    assert!(m.exec_ns > m.bind_ns, "replay dominates binding");
    println!("stages: {m}");

    // A served value reproduced bit-for-bit by the hand-driven exact
    // replay composition.
    let check_index = 7usize;
    let served = match results[check_index].unwrap_output() {
        JobOutput::Expectation { value } => *value,
        other => panic!("unexpected output {other:?}"),
    };
    let compiled = CircuitCompiler::new(&backend, layout)
        .compile(&circuit)
        .expect("connected layout");
    let exec = compiled.executor(&backend);
    let rho = exec.run_exact_replay(&compiled.bind_exact(&exec, &points[check_index]));
    let reference = SimBackend::expectation(&rho, &compiled.wire_observable(&observable));
    assert_eq!(
        served.to_bits(),
        reference.to_bits(),
        "served exact job replays bit-for-bit"
    );
    println!("replay check: job {check_index} reproduced bit-for-bit ({served:.6})");

    // Per-dispatch cost: tape replay vs the interpreted walk it
    // replaces (same state within 1e-12; see the smoke gate).
    let reps = 10;
    let t0 = Instant::now();
    for x in points.iter().take(reps) {
        let rho = exec.run_exact_replay(&compiled.bind_exact(&exec, x));
        std::hint::black_box(SimBackend::expectation(
            &rho,
            &compiled.wire_observable(&observable),
        ));
    }
    let replay_ns = t0.elapsed().as_nanos() / reps as u128;
    let t0 = Instant::now();
    for x in points.iter().take(reps) {
        let rho = exec.run(&compiled.bind(x));
        std::hint::black_box(SimBackend::expectation(
            &rho,
            &compiled.wire_observable(&observable),
        ));
    }
    let walk_ns = t0.elapsed().as_nanos() / reps as u128;
    println!(
        "per-dispatch: replay {:.1} us vs walk {:.1} us ({:.1}x)",
        replay_ns as f64 / 1e3,
        walk_ns as f64 / 1e3,
        walk_ns as f64 / replay_ns as f64
    );
}
