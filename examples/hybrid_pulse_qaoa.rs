//! The full hybrid workflow of the paper's Fig. 3: Step I (pulse-level
//! duration optimization), Step II (gate-level optimization), Step III
//! (M3 + CVaR error suppression), composed by the pipeline API.
//!
//! ```text
//! cargo run --release --example hybrid_pulse_qaoa
//! ```

use hybrid_gate_pulse::device::Backend;
use hybrid_gate_pulse::graph::instances;
use hybrid_gate_pulse::prelude::*;

fn main() {
    let backend = Backend::ibmq_toronto();
    let graph = instances::task1_three_regular_6();
    let region = vec![1, 2, 3, 4, 5, 7];

    // Raw hybrid (no optimization steps) for contrast.
    let raw = run_pipeline(&backend, &graph, &PipelineConfig::raw(1, region.clone()))
        .expect("valid region");
    println!(
        "raw hybrid:  AR {:.1}% at {} dt mixer",
        100.0 * raw.result.approximation_ratio,
        raw.mixer_duration_dt
    );

    // The full Step I-III pipeline.
    let full =
        run_pipeline(&backend, &graph, &PipelineConfig::full(1, region)).expect("valid region");
    println!(
        "full hybrid: AR {:.1}% at {} dt mixer (CVaR 0.3 + M3 + GO + PO)",
        100.0 * full.result.approximation_ratio,
        full.mixer_duration_dt
    );
    if let Some(search) = &full.duration_search {
        println!("step I search path:");
        for (duration, ar) in &search.evaluated {
            println!("  {duration:>4} dt -> AR {:.1}%", 100.0 * ar);
        }
    }
}
