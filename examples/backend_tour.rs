//! Tour of the simulated backends: calibration data, coupling maps,
//! pulse calibration sanity checks, and the noise a Bell pair suffers on
//! each machine.
//!
//! ```text
//! cargo run --release --example backend_tour
//! ```

use hybrid_gate_pulse::circuit::Circuit;
use hybrid_gate_pulse::device::Backend;
use hybrid_gate_pulse::noise::NoisySimulator;
use hybrid_gate_pulse::pulse::calibration::PulseLibrary;
use hybrid_gate_pulse::sim::StateVector;

fn main() {
    for backend in Backend::paper_backends() {
        let cal = backend.calibration();
        println!("=== {} ({} qubits)", backend.name(), backend.n_qubits());
        println!(
            "  couplers: {}  CX error: {:.2e}  readout error: {:.3}",
            backend.coupling_map().edges().len(),
            cal.cx_error,
            cal.readout_error
        );
        println!(
            "  T1/T2: {:.0}/{:.0} us   CX duration: {} dt   readout: {} dt",
            cal.t1_us,
            cal.t2_us,
            backend.cx_duration_dt(0, 1),
            backend.measure_duration_dt()
        );
        // The calibrated X pulse really is an X gate on this machine.
        let lib = PulseLibrary::new(&backend);
        let x = lib.x_propagator(0);
        let ideal = hybrid_gate_pulse::circuit::Gate::X.matrix().expect("bound");
        println!(
            "  X pulse calibration: amp {:.3}, matches gate: {}",
            lib.x_amp(0),
            x.approx_eq_up_to_phase(&ideal, 1e-6)
        );
        // Bell-pair fidelity under this backend's noise.
        let mut bell = Circuit::new(2);
        bell.h(0).cx(0, 1);
        let rho = NoisySimulator::new(&backend)
            .simulate(&bell, &[0, 1])
            .expect("bound circuit");
        let psi = StateVector::from_circuit(&bell).expect("bound circuit");
        println!(
            "  Bell-pair fidelity after one CX: {:.4}\n",
            rho.fidelity_with_pure(&psi)
        );
    }
}
