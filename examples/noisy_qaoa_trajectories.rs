//! Noisy QAOA at statevector scale: trajectory jobs through the service.
//!
//! A 12-qubit noisy QAOA sweep is far beyond the `O(4^n)` density
//! matrix's practical reach as a *sweep* workload — but each trajectory
//! job runs N stochastic `O(2^n)` statevector trajectories instead, so
//! the whole sweep serves in seconds. The example drives the full
//! stack:
//!
//! - one parametrized 12-qubit circuit shape, compiled once (the
//!   compiled artifact caches its [`NoiseModel`] alongside the routed
//!   circuit),
//! - a `TrajectoryExpectation` parameter sweep batched over the worker
//!   pool, plus a `TrajectoryCounts` job for shot-level output,
//! - cache-hit verification across batches, and a bit-for-bit replay of
//!   a served job from its recorded seed — the determinism contract.
//!
//! ```text
//! cargo run --release --example noisy_qaoa_trajectories
//! ```

use hybrid_gate_pulse::core::qaoa::{cost_hamiltonian, qaoa_circuit};
use hybrid_gate_pulse::device::Backend;
use hybrid_gate_pulse::graph::generators;
use hybrid_gate_pulse::serve::{JobOutput, JobRequest, JobSpec, ServeConfig, Service};

fn main() {
    let backend = Backend::ibmq_guadalupe();
    // A 12-node 3-regular Max-Cut instance: the compiled region is a
    // 12-qubit path in the heavy-hex map, so SABRE + routing have real
    // work to do — and do it once.
    let graph = generators::random_regular(12, 3, 7);
    let circuit = qaoa_circuit(&graph, 1); // parametrized: ONE shape
    let observable = cost_hamiltonian(&graph);
    let layout = vec![0, 1, 2, 3, 5, 8, 11, 14, 13, 12, 10, 7];
    let trajectories = 256;

    let mut service = Service::new(&backend, ServeConfig::new(layout));
    println!(
        "service: {} workers, {} qubits, {} trajectories/job",
        service.config().workers,
        circuit.n_qubits(),
        trajectories
    );

    // Batch 1: a (gamma, beta) grid of noisy expectation estimates.
    let grid: Vec<Vec<f64>> = (0..4)
        .flat_map(|i| (0..4).map(move |j| vec![0.12 + 0.12 * i as f64, 0.10 + 0.08 * j as f64]))
        .collect();
    let jobs: Vec<JobRequest> = grid
        .iter()
        .map(|x| {
            JobRequest::new(
                circuit.clone(),
                x.clone(),
                JobSpec::TrajectoryExpectation {
                    observable: observable.clone(),
                    trajectories,
                },
            )
        })
        .collect();
    let results = service.run_batch(jobs);

    println!("\n gamma   beta    <H_C> (trajectory)   std err   cache");
    let mut best = (0usize, f64::INFINITY);
    for (i, (x, r)) in grid.iter().zip(&results).enumerate() {
        let JobOutput::TrajectoryExpectation {
            value, std_error, ..
        } = r.unwrap_output()
        else {
            panic!("expected a trajectory expectation");
        };
        if *value < best.1 {
            best = (i, *value);
        }
        println!(
            " {:.3}  {:.3}   {value:>10.4}        {std_error:.4}    {}",
            x[0],
            x[1],
            if r.cache_hit { "hit" } else { "miss" }
        );
    }
    // One shape: the whole batch triggered exactly one compilation
    // (cache_hit is false for every job of a shape compiled within its
    // own batch — later batches ride the cache).
    assert_eq!(service.cache().misses(), 1, "one shape, one compilation");
    assert!(results.iter().all(|r| !r.cache_hit));
    println!(
        "\ncompiled shapes: {} for {} jobs",
        service.cache().misses(),
        results.len()
    );

    // Batch 2: shot-level counts at the best grid point — rides the
    // same compiled program (a cache hit across batches).
    let best_params = grid[best.0].clone();
    let counts_result = service.run(JobRequest::new(
        circuit.clone(),
        best_params.clone(),
        JobSpec::TrajectoryCounts { shots: 512 },
    ));
    assert!(counts_result.cache_hit, "second batch must ride the cache");
    let JobOutput::TrajectoryCounts(counts) = counts_result.unwrap_output() else {
        panic!("expected trajectory counts");
    };
    let mode = counts.iter().max_by_key(|&(_, c)| c).expect("nonempty");
    println!(
        "best point {best_params:?}: <H_C> = {:.4}, mode bitstring {:012b} ({}x/512 shots)",
        best.1, mode.0, mode.1
    );

    // Replay the served job with its recorded seed: bit-identical — the
    // output is a pure function of (shape, params, seed), whatever
    // worker or batch it ran on.
    let replay = service.run(
        JobRequest::new(
            circuit,
            best_params,
            JobSpec::TrajectoryCounts { shots: 512 },
        )
        .with_seed(counts_result.seed),
    );
    assert_eq!(
        replay.output, counts_result.output,
        "replay with the recorded seed must be bit-identical"
    );
    println!("replay with recorded seed {}: bit-identical", replay.seed);
}
