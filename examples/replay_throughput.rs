//! Trajectory serving on the replay path: repeated-shape hybrid jobs
//! riding one compile-time schedule template.
//!
//! A training loop evaluates one hybrid shape at hundreds of parameter
//! points. Before the replay subsystem, every trajectory job paid a
//! fresh ASAP schedule walk (rebuilding every channel's Kraus matrices)
//! plus per-shot statevector allocation and matrix dispatch. Now the
//! schedule is recorded **once per shape** (lazily, when its first
//! trajectory job binds); each dispatch
//! substitutes only its bound-`gamma` diagonals and mixer pulse blocks
//! into the cached tape (`bind_replay`), and the shots replay on the
//! op-fused engine — bit-identical to the reference trajectory engine.
//!
//! The example drives the full stack and verifies the serving
//! contracts as it goes:
//!
//! - a repeated-shape `HybridTrajectoryExpectation` sweep: one cache
//!   miss (and one template recording) for the whole workload,
//! - the stage-split metrics: trajectory-heavy batches show execute
//!   time dominating bind time — they no longer masquerade as compile
//!   misses,
//! - seed replay: a served job reproduced bit-for-bit from its recorded
//!   seed through the hand-driven reference engine,
//! - a shots/sec throughput report.
//!
//! ```text
//! cargo run --release --example replay_throughput
//! ```
//!
//! With `--smoke`, the example instead runs a quick bit-parity gate:
//! the batched SoA shot-block path against the scalar replay loop on
//! the same hybrid shape, across block splits that cover single-shot
//! blocks, non-dividing sizes, and blocks larger than the ensemble —
//! expectations and sampled counts must match bit for bit. CI runs this
//! after compiling the benches, so the acceptance contract is exercised
//! on every push even though timing assertions are not.

use hybrid_gate_pulse::core::compile::HybridShape;
use hybrid_gate_pulse::core::models::{GateModelOptions, HybridModel, VqaModel};
use hybrid_gate_pulse::core::qaoa::cost_hamiltonian;
use hybrid_gate_pulse::device::Backend;
use hybrid_gate_pulse::graph::instances;
use hybrid_gate_pulse::serve::{JobOutput, JobRequest, JobSpec, ServeConfig, Service};
use hybrid_gate_pulse::sim::seed::stream_seed;
use hybrid_gate_pulse::sim::{ReplayEngine, TrajectoryEngine};

/// Batched-vs-scalar bit parity on the served hybrid shape: every listed
/// block split must reproduce the scalar expectations and counts
/// exactly.
fn smoke() {
    let backend = Backend::ibmq_toronto();
    let graph = instances::task1_three_regular_6();
    let layout = vec![1, 2, 3, 4, 5, 7];
    let shape = HybridShape::new(graph.clone(), 1).with_options(GateModelOptions::optimized());
    let observable = cost_hamiltonian(&graph);
    let model = HybridModel::with_options(&backend, &graph, 1, layout, shape.options())
        .expect("connected region");
    let exec = model.compiled().executor(&backend);
    let wire_obs = model.compiled().wire_observable(&observable);
    let mut x = vec![0.35, 0.55];
    x.extend(std::iter::repeat_n(0.0, 12));
    let replay = model.compiled().bind_replay(&exec, &x);

    // An odd, non-power-of-two ensemble, so most splits leave a ragged
    // final block.
    let shots = 37;
    let engine = ReplayEngine::new(shots, 0xC0FFEE);
    let expectations = engine.expectations(&replay, &wire_obs);
    let counts = engine.sample_counts(&replay);
    for block in [1usize, 3, 7, 16, 37, 64] {
        let batched = engine.with_block_size(block);
        let got = batched.expectations_batched(&replay, &wire_obs);
        assert_eq!(expectations.len(), got.len());
        for (s, (a, b)) in expectations.iter().zip(got.iter()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "shot {s} diverged at block size {block}"
            );
        }
        assert_eq!(
            counts,
            batched.sample_counts_batched(&replay),
            "counts diverged at block size {block}"
        );
    }
    println!("smoke: batched replay bit-identical to scalar across block splits");
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let backend = Backend::ibmq_toronto();
    let graph = instances::task1_three_regular_6();
    let layout = vec![1, 2, 3, 4, 5, 7];
    let shape = HybridShape::new(graph.clone(), 1).with_options(GateModelOptions::optimized());
    let observable = cost_hamiltonian(&graph);
    let trajectories = 512;
    let base_seed = 42;

    let mut service = Service::new(
        &backend,
        ServeConfig::new(layout.clone()).with_base_seed(base_seed),
    );
    println!(
        "service: {} workers | shape: 6q hybrid QAOA p=1 | {trajectories} trajectories/job",
        service.config().workers
    );

    // A (gamma, theta) sweep with fixed pulse trims: 36 jobs, ONE shape.
    let points: Vec<Vec<f64>> = (0..6)
        .flat_map(|i| {
            (0..6).map(move |j| {
                let mut x = vec![0.10 + 0.10 * i as f64, 0.30 + 0.12 * j as f64];
                x.extend(std::iter::repeat_n(0.0, 12));
                x
            })
        })
        .collect();
    let jobs: Vec<JobRequest> = points
        .iter()
        .map(|x| {
            JobRequest::hybrid(
                shape.clone(),
                x.clone(),
                JobSpec::HybridTrajectoryExpectation {
                    observable: observable.clone(),
                    trajectories,
                },
            )
        })
        .collect();
    let results = service.run_batch(jobs);

    // One compile (and one recorded template) served the whole sweep.
    assert_eq!(service.metrics().cache_misses, 1, "one shape, one compile");
    assert_eq!(service.metrics().jobs_failed, 0);
    let best = results
        .iter()
        .map(|r| match r.unwrap_output() {
            JobOutput::Expectation { value } => *value,
            JobOutput::TrajectoryExpectation { value, .. } => *value,
            other => panic!("unexpected output {other:?}"),
        })
        .fold(f64::MIN, f64::max);
    println!("sweep: {} jobs, best <H_P> = {best:.4}", results.len());

    // A second batch rides the cached shape: no new compile, and the
    // bind stage stays a sliver of the execute stage.
    let again = service.run_batch(
        points[..8]
            .iter()
            .map(|x| {
                JobRequest::hybrid(
                    shape.clone(),
                    x.clone(),
                    JobSpec::HybridTrajectoryCounts { shots: 256 },
                )
            })
            .collect(),
    );
    assert!(
        again.iter().all(|r| r.cache_hit),
        "second batch rides cache"
    );
    let m = service.metrics();
    assert!(m.exec_ns > m.bind_ns, "execution dominates binding");

    // Seed replay: job 3 of the sweep, reproduced bit-for-bit by the
    // hand-driven *reference* engine (TrajectoryEngine over the recorded
    // schedule) at the seed the service assigned. The served value came
    // off the replay tape — the two paths are pinned bit-identical.
    let replay_index = 3usize;
    let served = match results[replay_index].unwrap_output() {
        JobOutput::TrajectoryExpectation { value, .. } => *value,
        other => panic!("unexpected output {other:?}"),
    };
    let model = HybridModel::with_options(&backend, &graph, 1, layout, shape.options())
        .expect("connected region");
    let exec = model.compiled().executor(&backend);
    let recorded = exec.trajectory_program(&model.build(&points[replay_index]));
    let reference =
        TrajectoryEngine::new(trajectories, stream_seed(base_seed, replay_index as u64))
            .expectation_with_error(&recorded, &model.compiled().wire_observable(&observable));
    assert_eq!(
        served.to_bits(),
        reference.0.to_bits(),
        "served replay-path job replays bit-for-bit on the reference engine"
    );
    println!("seed replay: job {replay_index} reproduced bit-for-bit ({served:.6})");

    // Throughput: every served trajectory is one measurement shot.
    let total_shots = results.len() * trajectories + again.len() * 256;
    let shots_per_sec = total_shots as f64 * 1e9 / m.wall_ns as f64;
    println!(
        "throughput: {total_shots} shots in {:.2} s = {:.0} shots/s",
        m.wall_ns as f64 / 1e9,
        shots_per_sec
    );
    println!("stages: {m}");
}
