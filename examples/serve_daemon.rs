//! The long-lived serving daemon, end to end over a real socket.
//!
//! This example is both halves of the deployment story in one process:
//! it starts a `Daemon` (persistent worker pool behind a bounded,
//! priority-classed submission queue), puts the line-delimited JSON
//! `WireServer` in front of it on a loopback TCP port, and then acts as
//! a client — submitting mixed-priority job groups, streaming results
//! as they complete, probing metrics, and exercising backpressure.
//!
//! The contracts it demonstrates (and asserts):
//!
//! - **Streaming**: `submit` returns at admission with the job ids; the
//!   results arrive over the socket as workers finish them.
//! - **Determinism**: every accepted job consumes an id/seed stream
//!   position at admission, so the daemon's results — any worker count,
//!   any priority interleaving, delivered over TCP through the JSON
//!   codec — are bit-identical to a sequential `Service::run_batch`
//!   over the same requests.
//! - **Backpressure**: a too-large job and an over-wide group are
//!   refused with typed `Rejected` envelopes, consuming nothing.
//! - **Graceful shutdown**: the daemon drains queued jobs before its
//!   workers exit, and reports lifetime metrics.
//!
//! ```text
//! cargo run --release --example serve_daemon            # narrated tour
//! cargo run --release --example serve_daemon -- --smoke # CI gate
//! ```

use std::sync::Arc;

use hybrid_gate_pulse::core::qaoa::{cost_hamiltonian, qaoa_circuit};
use hybrid_gate_pulse::device::Backend;
use hybrid_gate_pulse::graph::instances;
use hybrid_gate_pulse::serve::{
    Daemon, DaemonConfig, JobId, JobRequest, JobResult, JobSpec, Priority, Rejected, ServeConfig,
    Service, WireClient, WireServer,
};

const LAYOUT6: [usize; 6] = [0, 1, 2, 3, 4, 5];
const BASE_SEED: u64 = 42;

/// The burst of work every mode submits: three priority-classed groups
/// over one QAOA shape — sampled counts, exact expectations, and
/// trajectory-replay jobs.
fn burst(graph: &hybrid_gate_pulse::graph::Graph) -> Vec<(Vec<JobRequest>, Priority)> {
    let circuit = qaoa_circuit(graph, 1);
    let observable = cost_hamiltonian(graph);
    let interactive: Vec<JobRequest> = (0..3)
        .map(|i| {
            JobRequest::new(
                circuit.clone(),
                vec![0.15 + 0.1 * i as f64, 0.25],
                JobSpec::Expectation {
                    observable: observable.clone(),
                },
            )
        })
        .collect();
    let batch: Vec<JobRequest> = (0..4)
        .map(|i| {
            JobRequest::new(
                circuit.clone(),
                vec![0.1 * (i + 1) as f64, 0.3],
                JobSpec::Counts { shots: 128 },
            )
        })
        .collect();
    let background: Vec<JobRequest> = (0..3)
        .map(|i| {
            JobRequest::new(
                circuit.clone(),
                vec![0.2 + 0.05 * i as f64, 0.4],
                JobSpec::TrajectoryExpectation {
                    observable: observable.clone(),
                    trajectories: 64,
                },
            )
        })
        .collect();
    vec![
        (interactive, Priority::Interactive),
        (batch, Priority::Batch),
        (background, Priority::Background),
    ]
}

/// The bit-identity projection: id, seed, payload — never timings.
fn fingerprint(results: &[JobResult]) -> Vec<(JobId, u64, String)> {
    results
        .iter()
        .map(|r| (r.id, r.seed, format!("{:?}", r.output)))
        .collect()
}

/// Runs the burst through a daemon over a loopback socket and returns
/// the results in id order.
fn run_over_wire(backend: &Backend, verbose: bool) -> Vec<JobResult> {
    let graph = instances::task1_three_regular_6();
    let daemon = Arc::new(Daemon::start(
        backend.clone(),
        DaemonConfig::new(LAYOUT6.to_vec()).with_base_seed(BASE_SEED),
    ));
    let mut server = WireServer::start(Arc::clone(&daemon), "127.0.0.1:0").expect("bind loopback");
    if verbose {
        println!(
            "daemon: {} workers, queue depth {} | wire: {}",
            daemon.config().service.workers,
            daemon.config().max_queue_depth,
            server.local_addr()
        );
    }
    let mut client = WireClient::connect(server.local_addr()).expect("connect");
    client.ping().expect("pong");

    let mut expected = 0usize;
    for (group, priority) in burst(&graph) {
        let n = group.len();
        let ids = client
            .submit_group(group, priority)
            .expect("transport")
            .expect("admitted");
        assert_eq!(ids.len(), n);
        expected += n;
        if verbose {
            println!(
                "submitted {n} {priority} job(s): ids {}..={}",
                ids[0],
                ids[n - 1]
            );
        }
    }
    // Results stream back in completion order, interleaved across the
    // three submissions; collect and reassemble by id.
    let results = client.collect_results(expected).expect("streamed results");
    assert_eq!(results.len(), expected);
    assert!(results.iter().all(|r| r.output.is_ok()));

    let metrics = client.metrics().expect("snapshot");
    assert_eq!(metrics.admitted, [3, 4, 3]);
    assert_eq!(metrics.jobs_completed, expected as u64);
    if verbose {
        println!("wire metrics: {metrics}");
    }
    server.shutdown();
    daemon.shutdown();
    results
}

/// Typed backpressure on a deliberately tiny daemon: a too-large job
/// and an over-wide group are refused, consuming no stream positions.
fn backpressure(backend: &Backend, verbose: bool) {
    let graph = instances::task1_three_regular_6();
    let circuit = qaoa_circuit(&graph, 1);
    let daemon = Arc::new(Daemon::start(
        backend.clone(),
        DaemonConfig::new(LAYOUT6.to_vec())
            .with_workers(1)
            .with_base_seed(BASE_SEED)
            .with_max_queue_depth(2)
            .with_max_job_shots(500),
    ));
    let mut server = WireServer::start(Arc::clone(&daemon), "127.0.0.1:0").expect("bind loopback");
    let mut client = WireClient::connect(server.local_addr()).expect("connect");

    let huge = JobRequest::new(
        circuit.clone(),
        vec![0.5, 0.25],
        JobSpec::TrajectoryCounts { shots: 100_000 },
    );
    let rejection = client
        .submit(huge, Priority::Batch)
        .expect("transport")
        .expect_err("must exceed the shot bound");
    assert_eq!(
        rejection,
        Rejected::TooLarge {
            shots: 100_000,
            limit: 500
        }
    );
    if verbose {
        println!("too-large job refused: {rejection}");
    }

    let wide: Vec<JobRequest> = (0..3)
        .map(|i| {
            JobRequest::new(
                circuit.clone(),
                vec![0.1 * (i + 1) as f64, 0.25],
                JobSpec::Counts { shots: 64 },
            )
        })
        .collect();
    let rejection = client
        .submit_group(wide, Priority::Background)
        .expect("transport")
        .expect_err("wider than the whole queue");
    assert!(
        matches!(rejection, Rejected::QueueFull { limit: 2, .. }),
        "{rejection}"
    );
    if verbose {
        println!("over-wide group refused: {rejection}");
    }

    // Neither rejection consumed a position: the next job is still
    // job 0 of the evaluation stream.
    let ids = client
        .submit(
            JobRequest::new(circuit, vec![0.7, 0.25], JobSpec::Counts { shots: 64 }),
            Priority::Interactive,
        )
        .expect("transport")
        .expect("admitted");
    assert_eq!(ids, vec![JobId(0)]);
    let result = client.next_result().expect("streamed");
    assert!(result.output.is_ok());

    server.shutdown();
    let metrics = daemon.shutdown();
    assert_eq!(metrics.rejected_total(), 4);
    assert_eq!(metrics.admitted_total(), 1);
    if verbose {
        println!("backpressure metrics: {metrics}");
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let verbose = !smoke;
    let backend = Backend::ibmq_guadalupe();

    // 1. The burst over the wire, then the same requests through one
    // sequential in-process batch: bit-identical, through TCP and the
    // JSON codec included.
    let wire_results = run_over_wire(&backend, verbose);
    let graph = instances::task1_three_regular_6();
    let sequential: Vec<JobRequest> = burst(&graph)
        .into_iter()
        .flat_map(|(group, _)| group)
        .collect();
    let mut service = Service::new(
        &backend,
        ServeConfig::new(LAYOUT6.to_vec())
            .with_workers(1)
            .with_base_seed(BASE_SEED),
    );
    let reference = service.run_batch(sequential);
    assert_eq!(fingerprint(&wire_results), fingerprint(&reference));
    if verbose {
        println!("replay check: wire results bit-identical to sequential run_batch");
        let best = wire_results
            .iter()
            .filter_map(|r| match r.output.as_ref().ok()? {
                hybrid_gate_pulse::serve::JobOutput::Expectation { value } => Some((r.id, *value)),
                _ => None,
            })
            .max_by(|a, b| a.1.total_cmp(&b.1));
        if let Some((id, value)) = best {
            println!("best expected cut: {value:.4} ({id})");
        }
    }

    // 2. Typed backpressure on a tiny queue.
    backpressure(&backend, verbose);

    println!(
        "{}",
        if smoke {
            "smoke: daemon wire burst bit-identical to sequential reference; \
             backpressure rejections typed and position-free"
        } else {
            "daemon tour complete"
        }
    );
}
