//! Quickstart: train the hybrid gate-pulse model on the paper's first
//! benchmark (3-regular 6-node Max-Cut) on the `ibmq_toronto` model.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hybrid_gate_pulse::device::Backend;
use hybrid_gate_pulse::graph::instances;
use hybrid_gate_pulse::prelude::*;

fn main() {
    // The simulated backend: Table I calibration data, heavy-hex coupling.
    let backend = Backend::ibmq_toronto();
    // The problem: Fig. 4's task 1 (Max-Cut = 9).
    let graph = instances::task1_three_regular_6();
    // A fixed logical-to-physical mapping on a connected heavy-hex patch.
    let region = vec![1, 2, 3, 4, 5, 7];

    // The hybrid model: gate-level Hamiltonian layer (RZZ structure kept),
    // native-pulse mixer layer (amplitude / phase / frequency trims).
    let model = HybridModel::new(&backend, &graph, 1, region).expect("connected region");

    // Machine-in-loop training: COBYLA, 1024 shots per cost evaluation.
    let config = TrainConfig::default();
    let result = train(&model, &graph, &config);

    println!("backend:              {}", backend.name());
    println!("mixer layer duration: {} dt", result.mixer_duration_dt);
    println!("function evaluations: {}", result.n_evals);
    println!(
        "approximation ratio:  {:.1}%",
        100.0 * result.approximation_ratio
    );
    println!("training curve (best-so-far AR):");
    for (i, ar) in result.history.iter().enumerate().step_by(10) {
        println!("  iter {i:>3}: {:.3}", ar);
    }
}
