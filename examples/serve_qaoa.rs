//! The serving layer end to end: a QAOA parameter sweep as a job batch.
//!
//! One parametrized circuit shape, many parameter points — the
//! shape-repetitive workload `hgp_serve` exists for. The service
//! compiles the shape once (structural-hash cache), fans the bindings
//! out over its worker pool with position-derived seeds, and the
//! example cross-checks a served job bit-for-bit against a hand-driven
//! sequential `Executor` run.
//!
//! ```text
//! cargo run --release --example serve_qaoa
//! ```

use hybrid_gate_pulse::core::compile::CircuitCompiler;
use hybrid_gate_pulse::core::qaoa::{cost_hamiltonian, qaoa_circuit};
use hybrid_gate_pulse::device::Backend;
use hybrid_gate_pulse::graph::instances;
use hybrid_gate_pulse::serve::json::JsonCodec;
use hybrid_gate_pulse::serve::{JobOutput, JobRequest, JobSpec, ServeConfig, Service};
use hybrid_gate_pulse::sim::seed::stream_seed;

fn main() {
    let backend = Backend::ibmq_toronto();
    let graph = instances::task1_three_regular_6();
    let circuit = qaoa_circuit(&graph, 1); // parametrized: ONE shape
    let observable = cost_hamiltonian(&graph);
    // The paper's fixed heavy-hex region on the 27q Falcon layout.
    let layout = vec![1, 2, 3, 4, 5, 7];
    let shots = 1024;

    let mut service = Service::new(&backend, ServeConfig::new(layout.clone()));
    println!(
        "service: {} workers, cache capacity {}, base seed {}",
        service.config().workers,
        service.config().cache_capacity,
        service.config().base_seed
    );

    // A 6x6 (gamma, beta) grid: 36 sampled-counts jobs plus 36
    // expectation jobs, all sharing one compiled program.
    let grid: Vec<Vec<f64>> = (0..6)
        .flat_map(|i| (0..6).map(move |j| vec![0.15 + 0.15 * i as f64, 0.08 + 0.07 * j as f64]))
        .collect();
    // Batch 1 (sampled counts) compiles the shape; batch 2 (noisy
    // expectations) must ride the cache — zero new compilations.
    let counts_jobs: Vec<JobRequest> = grid
        .iter()
        .map(|x| JobRequest::new(circuit.clone(), x.clone(), JobSpec::Counts { shots }))
        .collect();
    let expectation_jobs: Vec<JobRequest> = grid
        .iter()
        .map(|x| {
            JobRequest::new(
                circuit.clone(),
                x.clone(),
                JobSpec::Expectation {
                    observable: observable.clone(),
                },
            )
        })
        .collect();
    let mut results = service.run_batch(counts_jobs);
    let expectations = service.run_batch(expectation_jobs);
    let hits = expectations.iter().filter(|r| r.cache_hit).count();
    results.extend(expectations);

    // Cache accounting: 72 jobs, one shape, one compilation.
    let metrics = service.metrics();
    println!("metrics: {metrics}");
    assert_eq!(metrics.cache_misses, 1, "one shape, one compilation");
    assert_eq!(service.cache().len(), 1);
    assert_eq!(hits, grid.len(), "batch 2 must be all cache hits");
    println!("cache: batch 1 compiled the shape once; all {hits} batch-2 jobs hit the cache");

    // Best grid point by noisy expected cut.
    let c_max: f64 = (0..1 << 6)
        .map(|b| observable.eval_diagonal(b))
        .fold(f64::MIN, f64::max);
    let (best_point, best_value) = results[grid.len()..]
        .iter()
        .zip(&grid)
        .map(|(r, x)| match r.unwrap_output() {
            JobOutput::Expectation { value } => (x, *value),
            other => panic!("expected expectation, got {other:?}"),
        })
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("non-empty grid");
    println!(
        "best grid point (gamma, beta) = ({:.2}, {:.2}): noisy AR {:.3}",
        best_point[0],
        best_point[1],
        best_value / c_max
    );

    // Bit-identity spot check: replay job 0 by hand, sequentially.
    let compiled = CircuitCompiler::new(&backend, layout)
        .compile(&circuit)
        .expect("fits region");
    let exec = compiled.executor(&backend);
    let program = compiled.bind(&grid[0]);
    let seed = stream_seed(service.config().base_seed, results[0].id.0);
    let by_hand = compiled.decode_counts(&exec.sample(&program, shots, seed));
    match results[0].unwrap_output() {
        JobOutput::Counts(counts) => {
            assert_eq!(counts, &by_hand, "served != sequential");
            println!(
                "bit-identity: served job {} == sequential Executor replay ({} shots)",
                results[0].id,
                counts.total()
            );
        }
        other => panic!("expected counts, got {other:?}"),
    }

    // The wire format, one job end to end.
    let json = results[0].to_json_string();
    println!(
        "result[0] serializes to {} bytes of JSON (and parses back: {})",
        json.len(),
        hybrid_gate_pulse::serve::JobResult::from_json_str(&json).is_ok()
    );
}
