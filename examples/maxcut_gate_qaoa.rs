//! Gate-level QAOA baseline: the standard workflow the paper compares
//! against — build the ansatz, transpile it (SABRE + cancellation),
//! train, and report.
//!
//! ```text
//! cargo run --release --example maxcut_gate_qaoa
//! ```

use hybrid_gate_pulse::circuit::qasm::to_qasm;
use hybrid_gate_pulse::core::models::{GateModel, GateModelOptions};
use hybrid_gate_pulse::device::Backend;
use hybrid_gate_pulse::graph::instances;
use hybrid_gate_pulse::prelude::*;

fn main() {
    let backend = Backend::ibmq_guadalupe();
    let graph = instances::task2_random_6();
    let region = vec![0, 1, 2, 3, 4, 5];

    for (label, options) in [
        ("raw (no optimization)", GateModelOptions::raw()),
        ("GO (SABRE + cancellation)", GateModelOptions::optimized()),
    ] {
        let model =
            GateModel::new(&backend, &graph, 1, region.clone(), options).expect("connected region");
        println!("--- {label}");
        println!(
            "routed circuit: {} gates, {} two-qubit",
            model.circuit().count_gates(),
            model.circuit().count_2q_gates()
        );
        let result = train(&model, &graph, &TrainConfig::default());
        println!(
            "trained AR {:.1}% in {} evaluations",
            100.0 * result.approximation_ratio,
            result.n_evals
        );
        // Export the trained circuit for external tools.
        let bound = model.circuit().bind(&result.best_params);
        let qasm = to_qasm(&bound).expect("bound circuit");
        println!(
            "OpenQASM export: {} lines (first: {})",
            qasm.lines().count(),
            qasm.lines().next().unwrap_or("")
        );
        println!();
    }
}
