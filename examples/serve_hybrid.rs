//! Hybrid gate-pulse programs served end to end.
//!
//! Demonstrates the hybrid serving path introduced with the
//! `CompiledProgram` artifact:
//!
//! 1. a repeated-shape hybrid QAOA sweep rides **one** compiled shape
//!    (per-layer routing + SABRE + mixer pulse calibration run once;
//!    every dispatch only binds angles and trims),
//! 2. exact (`HybridExpectation`) and stochastic-trajectory
//!    (`HybridTrajectoryExpectation`) jobs answer from the same cached
//!    artifact, and the trajectory estimate converges to the exact one,
//! 3. a malformed pulse schedule (mixer duration that is not a multiple
//!    of 32 dt) fails **its own job** with a typed compile-stage error —
//!    the rest of the batch is unaffected and the worker pool survives,
//! 4. a served job replays bit-for-bit from its recorded seed.
//!
//! Run with: `cargo run --release --example serve_hybrid`

use hybrid_gate_pulse::core::compile::HybridShape;
use hybrid_gate_pulse::core::models::{GateModelOptions, HybridModel, VqaModel};
use hybrid_gate_pulse::core::qaoa::cost_hamiltonian;
use hybrid_gate_pulse::device::Backend;
use hybrid_gate_pulse::graph::instances;
use hybrid_gate_pulse::serve::{JobOutput, JobRequest, JobSpec, JobStage, ServeConfig, Service};

fn main() {
    let backend = Backend::ibmq_toronto();
    let graph = instances::task1_three_regular_6();
    let shape = HybridShape::new(graph.clone(), 1).with_options(GateModelOptions::optimized());
    let observable = cost_hamiltonian(&graph);
    let layout = vec![1, 2, 3, 4, 5, 7];
    let mut service = Service::new(&backend, ServeConfig::new(layout.clone()).with_workers(4));

    // A coarse (gamma, theta) grid; pulse trims start at zero. The model
    // supplies the parameter layout.
    let model = HybridModel::with_options(&backend, &graph, 1, layout, shape.options())
        .expect("connected region");
    let grid: Vec<Vec<f64>> = (0..12)
        .map(|i| {
            let mut x = model.initial_params();
            x[0] = 0.10 + 0.05 * f64::from(i % 4);
            x[1] = 0.40 + 0.15 * f64::from(i / 4);
            x
        })
        .collect();

    // 1. The sweep: one hybrid shape, many bindings.
    let requests: Vec<JobRequest> = grid
        .iter()
        .map(|x| {
            JobRequest::hybrid(
                shape.clone(),
                x.clone(),
                JobSpec::HybridExpectation {
                    observable: observable.clone(),
                },
            )
        })
        .collect();
    let results = service.run_batch(requests);
    assert_eq!(service.metrics().cache_misses, 1, "one shape compiled");
    let c_max: f64 = (0..1 << 6)
        .map(|b| observable.eval_diagonal(b))
        .fold(f64::MIN, f64::max);
    let (best_idx, best) = results
        .iter()
        .enumerate()
        .map(|(i, r)| match r.unwrap_output() {
            JobOutput::Expectation { value } => (i, *value),
            other => panic!("expected expectation, got {other:?}"),
        })
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("non-empty grid");
    println!(
        "12-point hybrid sweep rode 1 compiled shape; best noisy AR {:.3} at grid point {best_idx}",
        best / c_max
    );

    // 2. The trajectory estimate of the winning point converges to the
    // exact served value.
    let trajectory = service.run(JobRequest::hybrid(
        shape.clone(),
        grid[best_idx].clone(),
        JobSpec::HybridTrajectoryExpectation {
            observable: observable.clone(),
            trajectories: 2048,
        },
    ));
    assert!(trajectory.cache_hit, "same shape, warm cache");
    let JobOutput::TrajectoryExpectation {
        value, std_error, ..
    } = trajectory.unwrap_output()
    else {
        panic!("expected trajectory expectation");
    };
    assert!(
        (value - best).abs() < 5.0 * std_error.max(1e-3),
        "trajectory {value} vs exact {best}"
    );
    println!(
        "trajectory estimate {value:.4} +- {std_error:.4} brackets the exact {best:.4} (O(2^n)/shot instead of O(4^n))",
    );

    // 3. A poisoned batch: the malformed pulse schedule fails alone.
    let poisoned = service.run_batch(vec![
        JobRequest::hybrid(
            shape.clone().with_mixer_duration(100), // not a multiple of 32 dt
            grid[0].clone(),
            JobSpec::HybridCounts { shots: 256 },
        ),
        JobRequest::hybrid(
            shape.clone(),
            grid[0].clone(),
            JobSpec::HybridCounts { shots: 256 },
        ),
    ]);
    let error = poisoned[0].error().expect("malformed schedule fails");
    assert_eq!(error.stage, JobStage::Compile);
    assert!(poisoned[1].output.is_ok(), "good job unaffected");
    println!("poisoned job failed alone ({error}); its batchmate completed normally");

    // 4. Replay the good counts job from its recorded seed:
    // bit-identical, whatever worker it lands on.
    let replay = service.run(
        JobRequest::hybrid(
            shape.clone(),
            grid[0].clone(),
            JobSpec::HybridCounts { shots: 256 },
        )
        .with_seed(poisoned[1].seed),
    );
    assert_eq!(replay.output, poisoned[1].output);
    println!(
        "replay with recorded seed {}: bit-identical | {}",
        replay.seed,
        service.metrics()
    );
}
