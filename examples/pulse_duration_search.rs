//! Step I in isolation: binary search for the shortest mixer pulse
//! duration that keeps the trained approximation ratio (the paper's
//! 320 dt -> 128 dt result).
//!
//! ```text
//! cargo run --release --example pulse_duration_search
//! ```

use hybrid_gate_pulse::core::models::HybridModel;
use hybrid_gate_pulse::device::Backend;
use hybrid_gate_pulse::graph::instances;
use hybrid_gate_pulse::prelude::*;

fn main() {
    let backend = Backend::ibmq_toronto();
    let graph = instances::task1_three_regular_6();
    let model =
        HybridModel::new(&backend, &graph, 1, vec![1, 2, 3, 4, 5, 7]).expect("connected region");

    let config = TrainConfig {
        max_evals: 30,
        ..TrainConfig::default()
    };
    let result = search_min_duration(&model, &graph, &config, 32, 320, 0.02);

    println!("baseline (320 dt) AR: {:.1}%", 100.0 * result.baseline_ar);
    println!(
        "shortest accepted duration: {} dt (AR {:.1}%)",
        result.best_duration_dt,
        100.0 * result.ar_at_best
    );
    println!("evaluations:");
    for (duration, ar) in &result.evaluated {
        println!("  {duration:>4} dt -> {:.1}%", 100.0 * ar);
    }
    println!(
        "\nduration reduced by {:.0}% (paper: 60%, 320 dt -> 128 dt)",
        100.0 * (1.0 - f64::from(result.best_duration_dt) / 320.0)
    );
}
