//! The observability stack end to end: histograms, traces, and engine
//! profiling, probed over a real socket.
//!
//! Two halves, both asserted:
//!
//! 1. **The wire tour.** A daemon starts with tracing and profiling
//!    enabled, serves a mixed-priority QAOA burst through the TCP front
//!    end, and the client reads everything back over the same socket:
//!    `metrics_snapshot` (per-stage latency histograms, per-priority and
//!    per-job-kind breakdowns, the engine's per-op-kind profile) and
//!    `trace_tail` (the flight recorder's per-job span chains). Every
//!    completed job must show the full Enqueued → … → Delivered chain,
//!    and the Prometheus text rendering must carry the same numbers.
//!
//! 2. **Profile accounting.** A 12-qubit noisy QAOA replay tape is
//!    driven shot by shot in one thread with an [`OpProfile`] attached,
//!    wall-timing the whole loop. The per-op-kind nanosecond totals must
//!    sum to within 10% of the measured wall time — the profile
//!    *accounts for* the execution rather than sampling it. (Sequential
//!    on purpose: the parallel engines sum per-op time across workers,
//!    which legitimately exceeds wall clock.)
//!
//! ```text
//! cargo run --release --example observability            # narrated tour
//! cargo run --release --example observability -- --smoke # CI gate
//! ```

use std::sync::Arc;
use std::time::Instant;

use hybrid_gate_pulse::core::compile::CircuitCompiler;
use hybrid_gate_pulse::core::qaoa::{cost_hamiltonian, qaoa_circuit};
use hybrid_gate_pulse::device::Backend;
use hybrid_gate_pulse::graph::{generators, instances};
use hybrid_gate_pulse::serve::{
    Daemon, DaemonConfig, JobRequest, JobSpec, Priority, SpanKind, WireClient, WireServer,
};
use hybrid_gate_pulse::sim::seed::{mix64, stream_seed};
use hybrid_gate_pulse::sim::{OpProfile, ReplayOpKind, ReplayScratch};
use rand::rngs::StdRng;
use rand::SeedableRng;

const LAYOUT6: [usize; 6] = [0, 1, 2, 3, 4, 5];
const BASE_SEED: u64 = 42;

/// The daemon with tracing + profiling on, a burst over the socket, and
/// the telemetry read back over the same socket.
fn wire_tour(backend: &Backend, verbose: bool) {
    let graph = instances::task1_three_regular_6();
    let circuit = qaoa_circuit(&graph, 1);
    let observable = cost_hamiltonian(&graph);
    let daemon = Arc::new(Daemon::start(
        backend.clone(),
        DaemonConfig::new(LAYOUT6.to_vec())
            .with_base_seed(BASE_SEED)
            .with_trace_capacity(64)
            .with_profiling(true),
    ));
    let mut server = WireServer::start(Arc::clone(&daemon), "127.0.0.1:0").expect("bind loopback");
    let mut client = WireClient::connect(server.local_addr()).expect("connect");
    if verbose {
        println!(
            "daemon: {} workers, tracing 64 jobs, profiling on | wire: {}",
            daemon.config().service.workers,
            server.local_addr()
        );
    }

    // Three priority-classed groups, three distinct job kinds.
    let groups: Vec<(Vec<JobRequest>, Priority)> = vec![
        (
            (0..3)
                .map(|i| {
                    JobRequest::new(
                        circuit.clone(),
                        vec![0.15 + 0.1 * i as f64, 0.25],
                        JobSpec::Expectation {
                            observable: observable.clone(),
                        },
                    )
                })
                .collect(),
            Priority::Interactive,
        ),
        (
            (0..4)
                .map(|i| {
                    JobRequest::new(
                        circuit.clone(),
                        vec![0.1 * (i + 1) as f64, 0.3],
                        JobSpec::Counts { shots: 128 },
                    )
                })
                .collect(),
            Priority::Batch,
        ),
        (
            (0..3)
                .map(|i| {
                    JobRequest::new(
                        circuit.clone(),
                        vec![0.2 + 0.05 * i as f64, 0.4],
                        JobSpec::TrajectoryExpectation {
                            observable: observable.clone(),
                            trajectories: 64,
                        },
                    )
                })
                .collect(),
            Priority::Background,
        ),
    ];
    let per_priority = [3u64, 4, 3];
    let mut expected = 0usize;
    for (group, priority) in groups {
        expected += group.len();
        client
            .submit_group(group, priority)
            .expect("transport")
            .expect("admitted");
    }
    let results = client.collect_results(expected).expect("streamed results");
    assert!(results.iter().all(|r| r.output.is_ok()));

    // The metrics snapshot: stage histograms populated once per job
    // (queue/bind/exec), once per validation (validate), once per
    // compile miss; the priority and kind breakdowns carve exec time.
    let (metrics, profile) = client.metrics_snapshot().expect("snapshot");
    let n = expected as u64;
    assert_eq!(metrics.queue_hist.count(), n);
    assert_eq!(metrics.validate_hist.count(), n);
    assert_eq!(metrics.bind_hist.count(), n);
    assert_eq!(metrics.exec_hist.count(), n);
    assert!(metrics.compile_hist.count() >= 1, "one shape compiled");
    for (i, hist) in metrics.priority_hist.iter().enumerate() {
        assert_eq!(hist.count(), per_priority[i], "priority class {i}");
    }
    let kinds_seen = metrics.kind_hist.iter().filter(|h| !h.is_empty()).count();
    assert_eq!(kinds_seen, 3, "expectation, counts, trajectory kinds");
    assert!(profile.total_calls() > 0, "profiling was enabled");
    assert!(
        profile.calls[ReplayOpKind::DiagRun.index()] > 0,
        "QAOA cost layers are diagonal runs"
    );
    if verbose {
        println!(
            "exec latency: p50 <= {} ns, p99 <= {} ns over {} jobs",
            metrics.exec_hist.p50(),
            metrics.exec_hist.p99(),
            metrics.exec_hist.count()
        );
        for kind in ReplayOpKind::ALL {
            let i = kind.index();
            if profile.calls[i] > 0 {
                println!(
                    "profile: {:>15}  {:>8} calls  {:>12} ns",
                    kind.name(),
                    profile.calls[i],
                    profile.ns[i]
                );
            }
        }
    }

    // The flight recorder: one trace per job, every chain complete —
    // the results are already in hand, so the traces must be too.
    let traces = client.trace_tail(64).expect("trace tail");
    assert_eq!(traces.len(), expected);
    for t in &traces {
        assert!(t.ok, "job {} traced as failed", t.job);
        assert!(t.is_complete_chain(), "job {} chain incomplete", t.job);
        assert!(t.at(SpanKind::Delivered).is_some());
    }
    if verbose {
        let t = &traces[0];
        let stages: Vec<String> = t
            .spans
            .iter()
            .map(|s| format!("{} @ {} ns", s.kind.name(), s.at_ns))
            .collect();
        println!("trace of job {}: {}", t.job, stages.join(" -> "));
    }

    // The Prometheus rendering carries both the histograms and the
    // engine profile.
    let text = metrics.render_promtext(Some(&profile));
    assert!(text.contains("hgp_stage_ns_count{stage=\"exec\"}"));
    assert!(text.contains("hgp_replay_op_calls"));
    if verbose {
        let lines = text.lines().count();
        println!("promtext: {lines} lines rendered");
    }

    server.shutdown();
    daemon.shutdown();
}

/// The profile-accounting gate: per-op-kind time on a sequential
/// 12-qubit noisy replay loop sums to the loop's wall time within 10%.
fn profile_accounting(backend: &Backend, verbose: bool) {
    let graph = generators::random_regular(12, 3, 7);
    let circuit = qaoa_circuit(&graph, 1);
    let layout = vec![0, 1, 2, 3, 5, 8, 11, 14, 13, 12, 10, 7];
    let compiled = CircuitCompiler::new(backend, layout)
        .compile(&circuit)
        .expect("12q region routes");
    let exec = compiled.executor(backend);
    let replay = compiled.bind_replay(&exec, &[0.35, 0.22]);

    let shots: u64 = 96;
    let profile = OpProfile::new();
    let mut scratch = ReplayScratch::for_program(&replay);
    let start = Instant::now();
    for i in 0..shots {
        // The engines' exact seeding idiom: stream position i under the
        // mixed base — this loop IS ReplayEngine's sequential path.
        let mut rng = StdRng::seed_from_u64(stream_seed(mix64(0xC0FFEE), i));
        replay.run_into_profiled(&mut scratch, &mut rng, &profile);
    }
    let wall_ns = start.elapsed().as_nanos() as u64;
    let snap = profile.snapshot();
    let covered = snap.total_ns() as f64 / wall_ns as f64;
    assert!(
        (0.90..=1.10).contains(&covered),
        "profiled op time must account for the sequential wall time: \
         {} ns profiled vs {} ns wall ({:.1}% covered)",
        snap.total_ns(),
        wall_ns,
        covered * 100.0
    );
    if verbose {
        println!(
            "accounting: {shots} shots x {} ops on 12 qubits; profiled {} ns / wall {} ns = {:.1}%",
            replay.n_ops(),
            snap.total_ns(),
            wall_ns,
            covered * 100.0
        );
        for kind in ReplayOpKind::ALL {
            let i = kind.index();
            if snap.calls[i] > 0 {
                println!(
                    "  {:>15}  {:>8} calls  {:>5.1}% of wall",
                    kind.name(),
                    snap.calls[i],
                    snap.ns[i] as f64 * 100.0 / wall_ns as f64
                );
            }
        }
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let verbose = !smoke;
    let backend = Backend::ibmq_guadalupe();
    wire_tour(&backend, verbose);
    profile_accounting(&backend, verbose);
    println!(
        "{}",
        if smoke {
            "smoke: wire telemetry complete (histograms, traces, profile); \
             sequential profile accounts for wall time within 10%"
        } else {
            "observability tour complete"
        }
    );
}
