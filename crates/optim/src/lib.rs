#![forbid(unsafe_code)]

//! Derivative-free optimizers for variational quantum training.
//!
//! The paper trains QAOA with COBYLA (`maxiter = 50`); this crate
//! implements it from scratch, together with two standard baselines:
//!
//! - [`Cobyla`]: linear-approximation trust-region method (unconstrained
//!   variant of Powell's COBYLA — the constraint machinery is unused by
//!   VQA cost functions),
//! - [`NelderMead`]: the classic simplex method,
//! - [`Spsa`]: simultaneous-perturbation stochastic approximation, the
//!   usual choice under shot noise.
//!
//! All optimizers *minimize*; QAOA maximizes its cost, so callers negate.
//!
//! # Example
//!
//! ```
//! use hgp_optim::{Cobyla, Optimizer};
//! let mut f = |x: &[f64]| (x[0] - 1.0).powi(2) + (x[1] + 2.0).powi(2);
//! let result = Cobyla::new(200).minimize(&mut f, &[0.0, 0.0]);
//! assert!((result.x[0] - 1.0).abs() < 1e-3);
//! assert!((result.x[1] + 2.0).abs() < 1e-3);
//! ```

pub mod batch;
pub mod cobyla;
pub mod nelder_mead;
pub mod parameter_shift;
pub mod result;
pub mod spsa;

pub use batch::{BatchObjective, Pointwise};
pub use cobyla::Cobyla;
pub use nelder_mead::NelderMead;
pub use parameter_shift::{
    parameter_shift_gradient, parameter_shift_gradient_batch, ParameterShiftDescent, STANDARD_SHIFT,
};
pub use result::OptimizeResult;
pub use spsa::Spsa;

/// A minimization algorithm over `R^n` using only function evaluations.
pub trait Optimizer {
    /// Minimizes `f` starting from `x0`.
    fn minimize(&self, f: &mut dyn FnMut(&[f64]) -> f64, x0: &[f64]) -> OptimizeResult;
}
