//! COBYLA: constrained optimization by linear approximation (Powell,
//! 1994) — unconstrained variant.
//!
//! The method keeps a non-degenerate simplex of `n + 1` points, fits the
//! *linear* interpolant of the objective over the simplex, and steps the
//! best vertex against the interpolant's gradient by the trust-region
//! radius `rho`. When steps stop helping, `rho` shrinks; the run ends at
//! `rho_end` or when the evaluation budget is spent. This mirrors how
//! SciPy's COBYLA behaves on the smooth, unconstrained landscapes of
//! QAOA training.

use crate::batch::{BatchObjective, Pointwise};
use crate::result::OptimizeResult;
use crate::Optimizer;

/// The COBYLA optimizer.
///
/// See the crate-level example.
#[derive(Debug, Clone, PartialEq)]
pub struct Cobyla {
    /// Maximum objective evaluations.
    pub max_evals: usize,
    /// Initial trust-region radius.
    pub rho_begin: f64,
    /// Final trust-region radius (convergence threshold).
    pub rho_end: f64,
}

impl Cobyla {
    /// COBYLA with an evaluation budget and the customary radii
    /// (`rho_begin = 0.5`, `rho_end = 1e-4`) for angle-valued parameters.
    pub fn new(max_evals: usize) -> Self {
        Self {
            max_evals,
            rho_begin: 0.5,
            rho_end: 1e-4,
        }
    }

    /// Overrides the trust-region radii.
    pub fn with_rho(mut self, rho_begin: f64, rho_end: f64) -> Self {
        assert!(
            rho_begin > rho_end && rho_end > 0.0,
            "need rho_begin > rho_end > 0"
        );
        self.rho_begin = rho_begin;
        self.rho_end = rho_end;
        self
    }

    /// Minimizes a batched objective starting from `x0`.
    ///
    /// The simplex initialization (`n + 1` points) and every simplex
    /// rebuild (`n` points) are issued as single batches, so a parallel
    /// [`BatchObjective`] evaluates them concurrently; trust-region
    /// steps remain singleton batches. Routed through
    /// [`crate::batch::Pointwise`], this is bit-identical to the classic
    /// sequential [`Optimizer::minimize`] path.
    pub fn minimize_batch(&self, f: &mut dyn BatchObjective, x0: &[f64]) -> OptimizeResult {
        let n = x0.len();
        assert!(n > 0, "need at least one parameter");
        let mut n_evals = 0usize;
        // Simplex: vertex 0 is the incumbent; vertices 1..=n offset by rho
        // along coordinate axes — all n + 1 probes in one batch.
        let mut rho = self.rho_begin;
        let mut verts: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
        verts.push(x0.to_vec());
        for i in 0..n {
            let mut v = x0.to_vec();
            v[i] += rho;
            verts.push(v);
        }
        let mut vals = f.eval_batch(&verts);
        n_evals += n + 1;
        let mut history: Vec<f64> = Vec::new();
        let mut n_iters = 0usize;
        let mut converged = false;
        while n_evals < self.max_evals {
            n_iters += 1;
            // Order so vertex 0 is best.
            let best = (0..=n)
                .min_by(|&a, &b| vals[a].partial_cmp(&vals[b]).expect("finite objective"))
                .expect("nonempty");
            verts.swap(0, best);
            vals.swap(0, best);
            history.push(vals[0]);
            // Linear model: gradient g solves D g = df where row i of D is
            // verts[i+1] - verts[0].
            let mut d = vec![vec![0.0; n]; n];
            let mut df = vec![0.0; n];
            for i in 0..n {
                for j in 0..n {
                    d[i][j] = verts[i + 1][j] - verts[0][j];
                }
                df[i] = vals[i + 1] - vals[0];
            }
            let g = match solve(&mut d, &mut df) {
                Some(g) => g,
                None => {
                    // Degenerate simplex: rebuild around the incumbent.
                    if n_evals + n > self.max_evals {
                        break;
                    }
                    rebuild_simplex(&mut verts, &mut vals, rho, f, &mut n_evals);
                    continue;
                }
            };
            let gnorm = g.iter().map(|x| x * x).sum::<f64>().sqrt();
            if gnorm < 1e-14 {
                // Flat model: shrink or finish.
                if rho <= self.rho_end {
                    converged = true;
                    break;
                }
                rho = (rho * 0.5).max(self.rho_end);
                if n_evals + n > self.max_evals {
                    break;
                }
                rebuild_simplex(&mut verts, &mut vals, rho, f, &mut n_evals);
                continue;
            }
            // Trust-region step against the model gradient.
            let cand: Vec<f64> = verts[0]
                .iter()
                .zip(g.iter())
                .map(|(&x, &gi)| x - rho * gi / gnorm)
                .collect();
            if n_evals >= self.max_evals {
                break;
            }
            let cand_val = f.eval_batch(std::slice::from_ref(&cand))[0];
            n_evals += 1;
            let worst = (0..=n)
                .max_by(|&a, &b| vals[a].partial_cmp(&vals[b]).expect("finite"))
                .expect("nonempty");
            if cand_val < vals[worst] {
                // Any improvement over the worst vertex refreshes the
                // simplex — cheap progress, like Powell's original.
                verts[worst] = cand;
                vals[worst] = cand_val;
                if cand_val >= vals[0] {
                    // Not a new best: gently tighten the region.
                    rho = (rho * 0.8).max(self.rho_end);
                }
            } else {
                // Model step failed outright: tighten the trust region
                // (without discarding the simplex — rebuilds cost n+1
                // evaluations and are reserved for degeneracy).
                if rho <= self.rho_end {
                    converged = true;
                    break;
                }
                rho = (rho * 0.5).max(self.rho_end);
            }
        }
        let best = (0..vals.len())
            .min_by(|&a, &b| vals[a].partial_cmp(&vals[b]).expect("finite"))
            .expect("nonempty");
        history.push(vals[best]);
        OptimizeResult {
            x: verts[best].clone(),
            fun: vals[best],
            n_evals,
            n_iters,
            converged,
            history,
        }
    }
}

impl Optimizer for Cobyla {
    fn minimize(&self, f: &mut dyn FnMut(&[f64]) -> f64, x0: &[f64]) -> OptimizeResult {
        self.minimize_batch(&mut Pointwise::new(f), x0)
    }
}

/// Rebuilds the simplex as axis offsets of size `rho` around vertex 0,
/// evaluating all `n` fresh vertices as one batch.
fn rebuild_simplex(
    verts: &mut [Vec<f64>],
    vals: &mut [f64],
    rho: f64,
    f: &mut dyn BatchObjective,
    n_evals: &mut usize,
) {
    let n = verts.len() - 1;
    let base = verts[0].clone();
    let fresh: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let mut v = base.clone();
            v[i] += rho;
            v
        })
        .collect();
    let fresh_vals = f.eval_batch(&fresh);
    *n_evals += n;
    for (i, (v, value)) in fresh.into_iter().zip(fresh_vals).enumerate() {
        verts[i + 1] = v;
        vals[i + 1] = value;
    }
}

/// Gaussian elimination with partial pivoting; returns `None` when
/// singular.
#[allow(clippy::needless_range_loop)] // elimination indexes two rows at once
fn solve(a: &mut [Vec<f64>], b: &mut [f64]) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .expect("finite matrix")
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in (col + 1)..n {
            let factor = a[row][col] / a[col][col];
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic_bowl() {
        let mut f = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        let r = Cobyla::new(300).minimize(&mut f, &[2.0, -1.5, 0.7]);
        assert!(r.fun < 1e-4, "fun = {}", r.fun);
    }

    #[test]
    fn minimizes_shifted_anisotropic_quadratic() {
        let mut f = |x: &[f64]| (x[0] - 3.0).powi(2) + 10.0 * (x[1] + 1.0).powi(2);
        let r = Cobyla::new(500).minimize(&mut f, &[0.0, 0.0]);
        assert!((r.x[0] - 3.0).abs() < 0.01, "x = {:?}", r.x);
        assert!((r.x[1] + 1.0).abs() < 0.01);
    }

    #[test]
    fn handles_trig_landscape() {
        // A QAOA-like periodic landscape with minimum -2 at (pi/2, pi).
        let mut f = |x: &[f64]| -(x[0].sin() + (x[1] / 2.0).sin());
        let r = Cobyla::new(400).minimize(&mut f, &[0.3, 0.3]);
        assert!(r.fun < -1.95, "fun = {}", r.fun);
    }

    #[test]
    fn respects_evaluation_budget() {
        let mut count = 0usize;
        let mut f = |x: &[f64]| {
            count += 1;
            x[0] * x[0]
        };
        let r = Cobyla::new(25).minimize(&mut f, &[5.0]);
        assert!(r.n_evals <= 25);
        assert_eq!(r.n_evals, count);
    }

    #[test]
    fn history_is_monotone_nonincreasing() {
        let mut f = |x: &[f64]| (x[0] + 2.0).powi(2) + (x[1] - 1.0).powi(2);
        let r = Cobyla::new(200).minimize(&mut f, &[4.0, 4.0]);
        for w in r.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn converged_flag_fires_on_easy_problems() {
        let mut f = |x: &[f64]| x[0] * x[0];
        let r = Cobyla::new(10_000).minimize(&mut f, &[1.0]);
        assert!(r.converged);
    }

    #[test]
    fn solve_detects_singularity() {
        let mut a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        let mut b = vec![1.0, 2.0];
        assert!(solve(&mut a, &mut b).is_none());
    }
}
