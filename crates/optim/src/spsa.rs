//! Simultaneous-perturbation stochastic approximation (Spall, 1992).
//!
//! SPSA estimates the gradient from *two* evaluations regardless of
//! dimension, which makes it the standard optimizer under shot noise —
//! the regime pulse-level VQAs live in.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::result::OptimizeResult;
use crate::Optimizer;

/// The SPSA optimizer with the standard gain sequences
/// `a_k = a / (k + 1 + A)^alpha`, `c_k = c / (k + 1)^gamma`.
#[derive(Debug, Clone, PartialEq)]
pub struct Spsa {
    /// Number of iterations (each costs two evaluations).
    pub max_iters: usize,
    /// Step-size numerator.
    pub a: f64,
    /// Perturbation-size numerator.
    pub c: f64,
    /// Step-size stability constant.
    pub big_a: f64,
    /// Step-size decay exponent.
    pub alpha: f64,
    /// Perturbation decay exponent.
    pub gamma: f64,
    /// RNG seed for the perturbation directions.
    pub seed: u64,
}

impl Spsa {
    /// SPSA with Spall's recommended exponents and a given iteration
    /// budget.
    pub fn new(max_iters: usize) -> Self {
        Self {
            max_iters,
            a: 0.2,
            c: 0.15,
            big_a: max_iters as f64 * 0.1,
            alpha: 0.602,
            gamma: 0.101,
            seed: 7,
        }
    }

    /// Overrides the RNG seed (runs are deterministic per seed).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Optimizer for Spsa {
    fn minimize(&self, f: &mut dyn FnMut(&[f64]) -> f64, x0: &[f64]) -> OptimizeResult {
        let n = x0.len();
        assert!(n > 0, "need at least one parameter");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut x = x0.to_vec();
        let mut n_evals = 0usize;
        let mut history = Vec::with_capacity(self.max_iters);
        let mut best_x = x.clone();
        let mut best_f = f64::INFINITY;
        for k in 0..self.max_iters {
            let ak = self.a / (k as f64 + 1.0 + self.big_a).powf(self.alpha);
            let ck = self.c / (k as f64 + 1.0).powf(self.gamma);
            // Rademacher perturbation.
            let delta: Vec<f64> = (0..n)
                .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
                .collect();
            let xp: Vec<f64> = x.iter().zip(&delta).map(|(&xi, &d)| xi + ck * d).collect();
            let xm: Vec<f64> = x.iter().zip(&delta).map(|(&xi, &d)| xi - ck * d).collect();
            let fp = f(&xp);
            let fm = f(&xm);
            n_evals += 2;
            let diff = (fp - fm) / (2.0 * ck);
            for (xi, &d) in x.iter_mut().zip(&delta) {
                *xi -= ak * diff / d;
            }
            // Track the best *measured* point (the iterate itself is not
            // re-evaluated to save budget).
            let (cand_f, cand_x) = if fp < fm { (fp, &xp) } else { (fm, &xm) };
            if cand_f < best_f {
                best_f = cand_f;
                best_x = cand_x.clone();
            }
            history.push(best_f);
        }
        OptimizeResult {
            x: best_x,
            fun: best_f,
            n_evals,
            n_iters: self.max_iters,
            converged: false,
            history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_clean_quadratic() {
        let mut f = |x: &[f64]| (x[0] - 1.0).powi(2) + (x[1] + 0.5).powi(2);
        let r = Spsa::new(400).minimize(&mut f, &[3.0, 3.0]);
        assert!(r.fun < 0.05, "fun = {}", r.fun);
    }

    #[test]
    fn tolerates_noisy_objective() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut f = |x: &[f64]| {
            let noise: f64 = rng.gen_range(-0.05..0.05);
            x[0] * x[0] + x[1] * x[1] + noise
        };
        let r = Spsa::new(500).minimize(&mut f, &[2.0, -2.0]);
        assert!(r.fun < 0.3, "fun = {}", r.fun);
    }

    #[test]
    fn deterministic_per_seed() {
        // A coupled 2-D objective, where the Rademacher direction pattern
        // actually changes the trajectory (in symmetric 1-D it cancels).
        let run = |seed| {
            let mut f =
                |x: &[f64]| (x[0] - 1.0).powi(2) + 3.0 * (x[1] + 2.0).powi(2) + 0.5 * x[0] * x[1];
            Spsa::new(50)
                .with_seed(seed)
                .minimize(&mut f, &[1.0, 0.3])
                .fun
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn evaluation_count_is_two_per_iteration() {
        let mut count = 0usize;
        let mut f = |x: &[f64]| {
            count += 1;
            x[0] * x[0]
        };
        let r = Spsa::new(30).minimize(&mut f, &[1.0]);
        assert_eq!(r.n_evals, 60);
        assert_eq!(count, 60);
    }
}
