//! Batch objective evaluation.
//!
//! Variational training spends almost all of its time inside objective
//! evaluations, and several of the optimizer's query patterns are
//! *independent by construction*: COBYLA's simplex initialization and
//! rebuilds, multi-start warm-up probes, and the `2n` shifted points of
//! a parameter-shift gradient. A [`BatchObjective`] receives all points
//! of such a group in one call and may evaluate them in any order — in
//! particular in parallel — as long as the returned values line up with
//! the inputs.
//!
//! Contract: for a batch `xs`, the result has `xs.len()` entries and
//! entry `i` is the objective value at `xs[i]`. Callers guarantee
//! nothing about batch sizes (singletons are common); implementations
//! guarantee nothing about evaluation order *within* a batch — stateful
//! objectives must derive any per-evaluation state (RNG seeds, shot
//! budgets) from the batch base index, not from call order. See
//! `hgp_core::training` for the canonical parallel implementation.

/// An objective that evaluates whole batches of points at once.
///
/// Blanket-implemented for `FnMut(&[Vec<f64>]) -> Vec<f64>` closures, so
/// call sites just pass a closure:
///
/// ```
/// use hgp_optim::{BatchObjective, Cobyla};
/// let mut f = |xs: &[Vec<f64>]| -> Vec<f64> {
///     xs.iter().map(|x| (x[0] - 2.0).powi(2)).collect()
/// };
/// let r = Cobyla::new(100).minimize_batch(&mut f, &[0.0]);
/// assert!((r.x[0] - 2.0).abs() < 1e-2);
/// ```
pub trait BatchObjective {
    /// Evaluates the objective at every point of `xs`, in order.
    fn eval_batch(&mut self, xs: &[Vec<f64>]) -> Vec<f64>;
}

impl<F: FnMut(&[Vec<f64>]) -> Vec<f64>> BatchObjective for F {
    fn eval_batch(&mut self, xs: &[Vec<f64>]) -> Vec<f64> {
        self(xs)
    }
}

/// Adapts a scalar objective into a batch objective that evaluates
/// points one at a time, in order. This is the bridge from the classic
/// [`crate::Optimizer`] entry points to the batched internals: routing a
/// scalar objective through a batched algorithm reproduces the exact
/// sequential evaluation order (and therefore bit-identical results for
/// stateful objectives).
pub struct Pointwise<'a> {
    f: &'a mut dyn FnMut(&[f64]) -> f64,
}

impl<'a> Pointwise<'a> {
    /// Wraps a scalar objective.
    pub fn new(f: &'a mut dyn FnMut(&[f64]) -> f64) -> Self {
        Self { f }
    }
}

impl BatchObjective for Pointwise<'_> {
    fn eval_batch(&mut self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| (self.f)(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pointwise_preserves_order() {
        let mut calls: Vec<f64> = Vec::new();
        let mut scalar = |x: &[f64]| {
            calls.push(x[0]);
            x[0] * 2.0
        };
        let mut batch = Pointwise::new(&mut scalar);
        let vals = batch.eval_batch(&[vec![1.0], vec![2.0], vec![3.0]]);
        assert_eq!(vals, vec![2.0, 4.0, 6.0]);
        assert_eq!(calls, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn closures_are_batch_objectives() {
        let mut f = |xs: &[Vec<f64>]| -> Vec<f64> { xs.iter().map(|x| x[0] + 1.0).collect() };
        assert_eq!(f.eval_batch(&[vec![41.0]]), vec![42.0]);
    }
}
