//! The Nelder-Mead simplex method.

use crate::result::OptimizeResult;
use crate::Optimizer;

/// Nelder-Mead with the standard reflection/expansion/contraction/shrink
/// coefficients (1, 2, 0.5, 0.5).
#[derive(Debug, Clone, PartialEq)]
pub struct NelderMead {
    /// Maximum objective evaluations.
    pub max_evals: usize,
    /// Convergence threshold on the simplex's value spread.
    pub f_tol: f64,
    /// Initial simplex step per coordinate.
    pub initial_step: f64,
}

impl NelderMead {
    /// Nelder-Mead with an evaluation budget and conventional settings.
    pub fn new(max_evals: usize) -> Self {
        Self {
            max_evals,
            f_tol: 1e-8,
            initial_step: 0.5,
        }
    }
}

impl Optimizer for NelderMead {
    fn minimize(&self, f: &mut dyn FnMut(&[f64]) -> f64, x0: &[f64]) -> OptimizeResult {
        let n = x0.len();
        assert!(n > 0, "need at least one parameter");
        let mut n_evals = 0usize;
        let mut eval = |x: &[f64], c: &mut usize| {
            *c += 1;
            f(x)
        };
        let mut verts: Vec<Vec<f64>> = vec![x0.to_vec()];
        for i in 0..n {
            let mut v = x0.to_vec();
            v[i] += self.initial_step;
            verts.push(v);
        }
        let mut vals: Vec<f64> = verts.iter().map(|v| eval(v, &mut n_evals)).collect();
        let mut history = Vec::new();
        let mut n_iters = 0usize;
        let mut converged = false;
        while n_evals + 2 <= self.max_evals {
            n_iters += 1;
            // Sort ascending by value.
            let mut order: Vec<usize> = (0..=n).collect();
            order.sort_by(|&a, &b| vals[a].partial_cmp(&vals[b]).expect("finite"));
            let verts_s: Vec<Vec<f64>> = order.iter().map(|&i| verts[i].clone()).collect();
            let vals_s: Vec<f64> = order.iter().map(|&i| vals[i]).collect();
            verts = verts_s;
            vals = vals_s;
            history.push(vals[0]);
            // Converge only when both the value spread and the simplex
            // extent collapse — a symmetric simplex straddling the minimum
            // can have zero value spread while being far from converged.
            let x_spread: f64 = (0..n)
                .map(|j| {
                    let lo = verts.iter().map(|v| v[j]).fold(f64::INFINITY, f64::min);
                    let hi = verts.iter().map(|v| v[j]).fold(f64::NEG_INFINITY, f64::max);
                    hi - lo
                })
                .fold(0.0, f64::max);
            if (vals[n] - vals[0]).abs() < self.f_tol && x_spread < 1e-6 {
                converged = true;
                break;
            }
            // Centroid of all but the worst.
            let centroid: Vec<f64> = (0..n)
                .map(|j| verts[..n].iter().map(|v| v[j]).sum::<f64>() / n as f64)
                .collect();
            let worst = verts[n].clone();
            let reflect: Vec<f64> = centroid
                .iter()
                .zip(worst.iter())
                .map(|(&c, &w)| c + (c - w))
                .collect();
            let fr = eval(&reflect, &mut n_evals);
            if fr < vals[0] {
                // Try expansion.
                let expand: Vec<f64> = centroid
                    .iter()
                    .zip(worst.iter())
                    .map(|(&c, &w)| c + 2.0 * (c - w))
                    .collect();
                let fe = eval(&expand, &mut n_evals);
                if fe < fr {
                    verts[n] = expand;
                    vals[n] = fe;
                } else {
                    verts[n] = reflect;
                    vals[n] = fr;
                }
            } else if fr < vals[n - 1] {
                verts[n] = reflect;
                vals[n] = fr;
            } else {
                // Contraction.
                let contract: Vec<f64> = centroid
                    .iter()
                    .zip(worst.iter())
                    .map(|(&c, &w)| c + 0.5 * (w - c))
                    .collect();
                let fc = eval(&contract, &mut n_evals);
                if fc < vals[n] {
                    verts[n] = contract;
                    vals[n] = fc;
                } else {
                    // Shrink toward the best vertex.
                    for i in 1..=n {
                        let best = verts[0].clone();
                        for (vj, bj) in verts[i].iter_mut().zip(best.iter()) {
                            *vj = bj + 0.5 * (*vj - bj);
                        }
                        if n_evals >= self.max_evals {
                            break;
                        }
                        vals[i] = eval(&verts[i].clone(), &mut n_evals);
                    }
                }
            }
        }
        let best = (0..vals.len())
            .min_by(|&a, &b| vals[a].partial_cmp(&vals[b]).expect("finite"))
            .expect("nonempty");
        history.push(vals[best]);
        OptimizeResult {
            x: verts[best].clone(),
            fun: vals[best],
            n_evals,
            n_iters,
            converged,
            history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        let mut f = |x: &[f64]| (x[0] - 1.0).powi(2) + (x[1] - 2.0).powi(2);
        let r = NelderMead::new(500).minimize(&mut f, &[-1.0, -1.0]);
        assert!((r.x[0] - 1.0).abs() < 1e-3);
        assert!((r.x[1] - 2.0).abs() < 1e-3);
        assert!(r.converged);
    }

    #[test]
    fn minimizes_rosenbrock_reasonably() {
        let mut f = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let r = NelderMead::new(2000).minimize(&mut f, &[-1.2, 1.0]);
        assert!(r.fun < 1e-4, "fun = {}", r.fun);
    }

    #[test]
    fn one_dimensional_problems_work() {
        let mut f = |x: &[f64]| (x[0] - 0.25).powi(2);
        let r = NelderMead::new(200).minimize(&mut f, &[3.0]);
        assert!((r.x[0] - 0.25).abs() < 1e-3);
    }

    #[test]
    fn budget_is_respected() {
        let mut f = |x: &[f64]| x[0].powi(2);
        let r = NelderMead::new(30).minimize(&mut f, &[10.0]);
        assert!(r.n_evals <= 30);
    }
}
