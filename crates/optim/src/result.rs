//! Optimization results.

use serde::{Deserialize, Serialize};

/// Outcome of a minimization run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizeResult {
    /// Best parameter vector found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub fun: f64,
    /// Total function evaluations spent.
    pub n_evals: usize,
    /// Iterations performed (algorithm-specific granularity).
    pub n_iters: usize,
    /// Whether the algorithm's own convergence test fired (as opposed to
    /// exhausting its budget).
    pub converged: bool,
    /// Best objective value after each iteration — the training curve the
    /// paper's convergence-speed comparisons read.
    pub history: Vec<f64>,
}

impl OptimizeResult {
    /// Number of iterations needed to first reach within `tol` of the
    /// final value — the "time to convergence" used when comparing the
    /// hybrid and pulse-level models' training cost.
    pub fn iterations_to_reach(&self, tol: f64) -> usize {
        let target = self.fun + tol;
        self.history
            .iter()
            .position(|&v| v <= target)
            .map_or(self.history.len(), |i| i + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iterations_to_reach_finds_first_crossing() {
        let r = OptimizeResult {
            x: vec![0.0],
            fun: 1.0,
            n_evals: 10,
            n_iters: 5,
            converged: true,
            history: vec![5.0, 3.0, 1.05, 1.01, 1.0],
        };
        assert_eq!(r.iterations_to_reach(0.1), 3);
        assert_eq!(r.iterations_to_reach(0.001), 5);
    }
}
