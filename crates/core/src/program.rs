//! The hybrid program IR.
//!
//! A [`Program`] is the concrete form of the paper's hybrid abstraction
//! layer: an instruction stream over *logical* qubits where each step is
//! either a gate (executed with calibrated-gate noise semantics) or a
//! compiled pulse block (a unitary with an explicit duration, executed
//! with duration-scaled noise). The executor treats both uniformly.

use hgp_circuit::{Circuit, Gate, Instruction};
use hgp_math::Matrix;

/// Classification of a pulse block, used to pick its error channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// A single-qubit drive pulse.
    Drive,
    /// A two-qubit cross-resonance pulse.
    CrossResonance,
    /// A virtual frame change (no noise, no duration).
    Virtual,
}

/// One step of a hybrid program.
#[derive(Debug, Clone, PartialEq)]
pub enum ProgramOp {
    /// A gate on logical qubits.
    Gate {
        /// The gate (must be bound).
        gate: Gate,
        /// Logical operands.
        qubits: Vec<usize>,
    },
    /// A compiled pulse block.
    PulseBlock {
        /// Logical operands (first = most significant bit of `unitary`).
        qubits: Vec<usize>,
        /// The block's unitary.
        unitary: Matrix,
        /// Duration in `dt`.
        duration: u32,
        /// What kind of pulse produced this block.
        kind: BlockKind,
    },
}

impl ProgramOp {
    /// Logical qubits touched.
    pub fn qubits(&self) -> &[usize] {
        match self {
            ProgramOp::Gate { qubits, .. } | ProgramOp::PulseBlock { qubits, .. } => qubits,
        }
    }
}

/// An executable hybrid gate-pulse program over logical qubits.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    n_qubits: usize,
    ops: Vec<ProgramOp>,
}

impl Program {
    /// An empty program.
    pub fn new(n_qubits: usize) -> Self {
        assert!(n_qubits > 0, "program needs at least one qubit");
        Self {
            n_qubits,
            ops: Vec::new(),
        }
    }

    /// Builds a program from a bound circuit (gates only).
    ///
    /// Returns `None` if the circuit has unbound parameters.
    pub fn from_circuit(circuit: &Circuit) -> Option<Self> {
        let mut p = Self::new(circuit.n_qubits());
        for inst in circuit.instructions() {
            match inst {
                Instruction::Gate { gate, qubits } => {
                    if !gate.is_bound() {
                        return None;
                    }
                    p.push_gate(*gate, qubits);
                }
                Instruction::Barrier { .. } | Instruction::Measure { .. } => {}
            }
        }
        Some(p)
    }

    /// Number of logical qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The instruction stream.
    pub fn ops(&self) -> &[ProgramOp] {
        &self.ops
    }

    /// Appends a bound gate.
    ///
    /// # Panics
    ///
    /// Panics on arity/range violations or an unbound gate.
    pub fn push_gate(&mut self, gate: Gate, qubits: &[usize]) -> &mut Self {
        assert!(gate.is_bound(), "program gates must be bound");
        assert_eq!(qubits.len(), gate.n_qubits(), "operand count");
        for &q in qubits {
            assert!(q < self.n_qubits, "qubit {q} out of range");
        }
        self.ops.push(ProgramOp::Gate {
            gate,
            qubits: qubits.to_vec(),
        });
        self
    }

    /// Appends a compiled pulse block.
    ///
    /// # Panics
    ///
    /// Panics if the unitary dimension mismatches the operand count or an
    /// operand is out of range.
    pub fn push_pulse_block(
        &mut self,
        qubits: &[usize],
        unitary: Matrix,
        duration: u32,
        kind: BlockKind,
    ) -> &mut Self {
        assert_eq!(unitary.rows(), 1 << qubits.len(), "unitary dimension");
        for &q in qubits {
            assert!(q < self.n_qubits, "qubit {q} out of range");
        }
        self.ops.push(ProgramOp::PulseBlock {
            qubits: qubits.to_vec(),
            unitary,
            duration,
            kind,
        });
        self
    }

    /// Appends all ops of another program (same width).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn append(&mut self, other: &Program) -> &mut Self {
        assert_eq!(self.n_qubits, other.n_qubits, "width mismatch");
        self.ops.extend(other.ops.iter().cloned());
        self
    }

    /// Total duration of the pulse blocks only, `dt` (gate durations are
    /// the executor's concern since they depend on the backend).
    pub fn pulse_duration_dt(&self) -> u32 {
        self.ops
            .iter()
            .map(|op| match op {
                ProgramOp::PulseBlock { duration, .. } => *duration,
                ProgramOp::Gate { .. } => 0,
            })
            .sum()
    }

    /// Number of pulse blocks.
    pub fn count_pulse_blocks(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, ProgramOp::PulseBlock { .. }))
            .count()
    }

    /// Number of gate ops.
    pub fn count_gates(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, ProgramOp::Gate { .. }))
            .count()
    }

    /// A canonical FNV-1a hash of the program's full structure — the
    /// hybrid analogue of [`hgp_circuit::Circuit::structural_key`].
    ///
    /// Two programs share a key exactly when they are the same
    /// instruction stream: same width, same ops in the same order, gate
    /// parameters and pulse-block unitaries compared bit-for-bit
    /// (`f64::to_bits`), pulse durations and block kinds included. This
    /// is the identity under which executed artifacts (recorded
    /// trajectory schedules, served results) can be replayed or deduped.
    ///
    /// Note the asymmetry with the circuit key: a [`Program`] is always
    /// fully bound, so every parameter binding hashes distinctly — the
    /// *shape*-level key that stays stable across bindings lives on the
    /// pre-bound artifact ([`crate::compile::HybridShape::structural_key`]
    /// and [`hgp_circuit::Circuit::structural_key`]).
    pub fn structural_key(&self) -> u64 {
        let mut h = hgp_math::fnv::Fnv1a::new();
        // Domain tag: keeps program keys disjoint from circuit keys even
        // for contrived colliding contents.
        h.byte(b'P');
        h.usize(self.n_qubits);
        h.usize(self.ops.len());
        for op in &self.ops {
            match op {
                ProgramOp::Gate { gate, qubits } => {
                    h.byte(0);
                    h.str(gate.name());
                    for p in gate.params() {
                        // Program gates are bound by construction.
                        h.u64(p.value().map_or(u64::MAX, f64::to_bits));
                    }
                    h.usize(qubits.len());
                    for &q in qubits {
                        h.usize(q);
                    }
                }
                ProgramOp::PulseBlock {
                    qubits,
                    unitary,
                    duration,
                    kind,
                } => {
                    h.byte(1);
                    h.byte(match kind {
                        BlockKind::Drive => 0,
                        BlockKind::CrossResonance => 1,
                        BlockKind::Virtual => 2,
                    });
                    h.u64(u64::from(*duration));
                    h.usize(qubits.len());
                    for &q in qubits {
                        h.usize(q);
                    }
                    h.usize(unitary.rows());
                    for i in 0..unitary.rows() {
                        for j in 0..unitary.cols() {
                            let v = unitary[(i, j)];
                            h.f64(v.re);
                            h.f64(v.im);
                        }
                    }
                }
            }
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgp_circuit::Param;

    #[test]
    fn from_circuit_keeps_gates_drops_rest() {
        let mut qc = Circuit::new(2);
        qc.h(0).cx(0, 1).barrier().measure_all();
        let p = Program::from_circuit(&qc).unwrap();
        assert_eq!(p.count_gates(), 2);
        assert_eq!(p.count_pulse_blocks(), 0);
    }

    #[test]
    fn unbound_circuit_is_rejected() {
        let mut qc = Circuit::new(1);
        let id = qc.add_param();
        qc.rx_param(0, id, 1.0);
        assert!(Program::from_circuit(&qc).is_none());
    }

    #[test]
    fn pulse_blocks_track_duration() {
        let mut p = Program::new(2);
        p.push_pulse_block(&[0], Matrix::identity(2), 320, BlockKind::Drive);
        p.push_pulse_block(&[0, 1], Matrix::identity(4), 512, BlockKind::CrossResonance);
        p.push_gate(Gate::Rz(Param::bound(0.5)), &[1]);
        assert_eq!(p.pulse_duration_dt(), 832);
        assert_eq!(p.count_pulse_blocks(), 2);
        assert_eq!(p.count_gates(), 1);
    }

    #[test]
    #[should_panic(expected = "unitary dimension")]
    fn wrong_block_dimension_panics() {
        let mut p = Program::new(2);
        p.push_pulse_block(&[0, 1], Matrix::identity(2), 100, BlockKind::Drive);
    }

    #[test]
    fn structural_key_is_stable_and_discriminating() {
        let build = |theta: f64, duration: u32| {
            let mut p = Program::new(2);
            p.push_gate(Gate::H, &[0])
                .push_gate(Gate::Rz(Param::bound(theta)), &[1])
                .push_pulse_block(&[0], Matrix::identity(2), duration, BlockKind::Drive);
            p
        };
        // Identical construction => identical key.
        assert_eq!(
            build(0.4, 320).structural_key(),
            build(0.4, 320).structural_key()
        );
        // Any bound angle, duration, kind, or operand change re-keys.
        assert_ne!(
            build(0.4, 320).structural_key(),
            build(0.5, 320).structural_key()
        );
        assert_ne!(
            build(0.4, 320).structural_key(),
            build(0.4, 288).structural_key()
        );
        let mut a = Program::new(2);
        a.push_pulse_block(&[0], Matrix::identity(2), 320, BlockKind::Drive);
        let mut b = Program::new(2);
        b.push_pulse_block(&[1], Matrix::identity(2), 320, BlockKind::Drive);
        let mut c = Program::new(2);
        c.push_pulse_block(&[0], Matrix::identity(2), 320, BlockKind::Virtual);
        assert_ne!(a.structural_key(), b.structural_key());
        assert_ne!(a.structural_key(), c.structural_key());
        // A different unitary payload re-keys too.
        let mut d = Program::new(2);
        d.push_pulse_block(&[0], Gate::X.matrix().unwrap(), 320, BlockKind::Drive);
        assert_ne!(a.structural_key(), d.structural_key());
        // Program keys stay disjoint from the circuit keyspace for the
        // same gate content.
        let mut qc = Circuit::new(2);
        qc.h(0).rz(1, 0.4);
        let p = Program::from_circuit(&qc).unwrap();
        assert_ne!(p.structural_key(), qc.structural_key());
    }
}
