//! Machine-in-loop noisy execution of hybrid programs.
//!
//! The executor mirrors [`hgp_noise::NoisySimulator`] but accepts the
//! hybrid [`Program`] IR: gate ops pay calibrated gate durations and
//! depolarizing errors; pulse blocks pay their own (often shorter)
//! durations — this asymmetry is exactly the hybrid model's hardware
//! advantage. Readout confusion is applied to the final distribution
//! before sampling, so mitigation sees realistic statistics.

use rand::rngs::StdRng;
use rand::SeedableRng;

use hgp_circuit::Gate;
use hgp_device::Backend;
use hgp_math::su2::zyz_decompose;
use hgp_math::Matrix;
use hgp_noise::durations::gate_duration_dt;
use hgp_noise::{NoisySimulator, ReadoutModel};
use hgp_pulse::propagator::{drive_propagator, virtual_z};
use hgp_pulse::Waveform;
use hgp_sim::{Counts, DensityMatrix, SimBackend};

use crate::program::{BlockKind, Program, ProgramOp};

/// Executes hybrid programs on a simulated backend.
#[derive(Debug, Clone)]
pub struct Executor<'a> {
    backend: &'a Backend,
    /// `layout[i]` = physical qubit hosting logical qubit `i`.
    layout: Vec<usize>,
    readout: ReadoutModel,
    /// Insert X-X dynamical-decoupling pairs into long idle windows
    /// (Fig. 3 lists DD among the compatible Step III techniques).
    dynamical_decoupling: bool,
}

impl<'a> Executor<'a> {
    /// Creates an executor for a logical register laid out on `backend`.
    ///
    /// # Panics
    ///
    /// Panics if a layout entry is out of range.
    pub fn new(backend: &'a Backend, layout: Vec<usize>) -> Self {
        for &p in &layout {
            assert!(p < backend.n_qubits(), "physical qubit {p} out of range");
        }
        let readout = ReadoutModel::from_backend(backend, &layout);
        Self {
            backend,
            layout,
            readout,
            dynamical_decoupling: false,
        }
    }

    /// Enables X-X dynamical decoupling on idle windows longer than four
    /// pulse lengths. The pair refocuses coherent frame drift at the cost
    /// of two extra calibrated pulses per window.
    pub fn with_dynamical_decoupling(mut self) -> Self {
        self.dynamical_decoupling = true;
        self
    }

    /// The backend.
    pub fn backend(&self) -> &Backend {
        self.backend
    }

    /// The logical-to-physical layout.
    pub fn layout(&self) -> &[usize] {
        &self.layout
    }

    /// The readout model derived from the layout.
    pub fn readout(&self) -> &ReadoutModel {
        &self.readout
    }

    /// Runs a program, returning the noisy final state.
    ///
    /// # Panics
    ///
    /// Panics if the program width disagrees with the layout or a gate
    /// spans a non-coupled physical pair.
    pub fn run(&self, program: &Program) -> DensityMatrix {
        self.run_on(program)
    }

    /// [`Executor::run`] generalized over the execution engine.
    ///
    /// The engine of record for noisy training is [`DensityMatrix`];
    /// engines without channel support (statevector) host the same
    /// schedule on ideal hardware, where every noise channel
    /// degenerates.
    ///
    /// # Panics
    ///
    /// Panics if the program width disagrees with the layout or a gate
    /// spans a non-coupled physical pair.
    pub fn run_on<B: SimBackend>(&self, program: &Program) -> B {
        assert_eq!(
            program.n_qubits(),
            self.layout.len(),
            "program width must match the layout"
        );
        let noise = NoisySimulator::new(self.backend);
        let n = program.n_qubits();
        let mut rho = B::init(n);
        let mut clock = vec![0u64; n];
        for op in program.ops() {
            let qubits = op.qubits().to_vec();
            let phys: Vec<usize> = qubits.iter().map(|&q| self.layout[q]).collect();
            let (duration, is_gate) = match op {
                ProgramOp::Gate { gate, .. } => (gate_duration_dt(self.backend, gate, &phys), true),
                ProgramOp::PulseBlock { duration, .. } => (*duration, false),
            };
            // ASAP alignment with idle decoherence and frame drift.
            let start = qubits.iter().map(|&q| clock[q]).max().unwrap_or(0);
            for &q in &qubits {
                let gap = start - clock[q];
                if gap > 0 {
                    self.idle_qubit(&noise, &mut rho, q, gap as u32);
                }
            }
            // The applied unitary. Gate ops are executed with the
            // qubit's *coherent* calibration errors (frame-frequency
            // drift and pulse-amplitude miscalibration) — errors a
            // gate-level user cannot see or correct, while pulse-level
            // models compile their own blocks against the same true
            // physics and can train them away (paper §IV-A).
            match op {
                ProgramOp::Gate { gate, qubits } => {
                    if gate.n_qubits() == 1 {
                        let m = self.actual_1q_unitary(gate, self.layout[qubits[0]], duration);
                        rho.apply_unitary(&m, qubits);
                    } else {
                        // Fused kernel dispatch (RZZ/CZ cost layers are
                        // diagonal — the executor's hot path).
                        rho.apply_gate(gate, qubits)
                            .expect("program gates are bound");
                        // Frame drift accumulated on both operands.
                        for (&lq, &pq) in qubits.iter().zip(phys.iter()) {
                            let drift = self.backend.qubit(pq).freq_offset * f64::from(duration);
                            if drift != 0.0 {
                                rho.apply_unitary(&virtual_z(drift), &[lq]);
                            }
                        }
                    }
                }
                ProgramOp::PulseBlock {
                    qubits, unitary, ..
                } => {
                    rho.apply_unitary(unitary, qubits);
                }
            }
            // Noise.
            for &q in &qubits {
                noise.relax_qubit(&mut rho, q, self.layout[q], duration);
            }
            match op {
                ProgramOp::Gate { gate, qubits } => {
                    noise.apply_gate_error(&mut rho, gate.n_qubits(), qubits, &phys, duration);
                }
                ProgramOp::PulseBlock { qubits, kind, .. } => match kind {
                    BlockKind::Drive => {
                        noise.apply_gate_error(&mut rho, 1, qubits, &phys, duration);
                    }
                    BlockKind::CrossResonance => {
                        noise.apply_gate_error(&mut rho, 2, qubits, &phys, duration);
                    }
                    BlockKind::Virtual => {}
                },
            }
            for &q in &qubits {
                clock[q] = start + u64::from(duration);
            }
            let _ = is_gate;
        }
        // Simultaneous terminal measurement: idle early finishers.
        let end = clock.iter().copied().max().unwrap_or(0);
        for (q, &busy_until) in clock.iter().enumerate() {
            let gap = end - busy_until;
            if gap > 0 {
                self.idle_qubit(&noise, &mut rho, q, gap as u32);
            }
        }
        rho
    }

    /// Idles a qubit for `duration_dt`: decoherence plus coherent frame
    /// drift, with an X-X dynamical-decoupling pair splitting long
    /// windows when enabled.
    fn idle_qubit<B: SimBackend>(
        &self,
        noise: &NoisySimulator<'_>,
        rho: &mut B,
        logical: usize,
        duration_dt: u32,
    ) {
        let p1 = self.backend.pulse_1q_duration_dt();
        if self.dynamical_decoupling && duration_dt >= 4 * p1 {
            // idle(s1) - X - idle(s2) - X with s1 = s2: the drift of the
            // two idle segments refocuses (X Z(phi) X = Z(-phi)).
            let free = duration_dt - 2 * p1;
            let s1 = free / 2;
            let s2 = free - s1;
            let phys = self.layout[logical];
            let x = self.actual_1q_unitary(&Gate::X, phys, p1);
            for seg in [s1, s2] {
                noise.relax_qubit(rho, logical, phys, seg);
                self.apply_idle_drift(rho, logical, seg);
                rho.apply_unitary(&x, &[logical]);
                noise.relax_qubit(rho, logical, phys, p1);
                noise.apply_gate_error(rho, 1, &[logical], &[phys], p1);
            }
        } else {
            noise.relax_qubit(rho, logical, self.layout[logical], duration_dt);
            self.apply_idle_drift(rho, logical, duration_dt);
        }
    }

    /// Frame-frequency drift over an idle period (a Z rotation at the
    /// qubit's residual frequency offset).
    fn apply_idle_drift<B: SimBackend>(&self, rho: &mut B, logical: usize, duration_dt: u32) {
        let offset = self.backend.qubit(self.layout[logical]).freq_offset;
        if offset != 0.0 {
            rho.apply_unitary(&virtual_z(offset * f64::from(duration_dt)), &[logical]);
        }
    }

    /// The unitary a 1q gate *actually* implements on hardware.
    ///
    /// Gates with nonzero duration are executed through the same pulse
    /// physics the pulse-level models compile against: calibrated
    /// Gaussian pulses distorted by the qubit's amplitude miscalibration
    /// and residual frame-frequency offset. Virtual (zero-duration) gates
    /// are exact frame changes. This keeps the physics identical across
    /// abstraction levels — the only asymmetry is *who can train against
    /// it*.
    fn actual_1q_unitary(&self, gate: &Gate, phys: usize, duration: u32) -> Matrix {
        use std::f64::consts::{FRAC_PI_2, PI};
        let ideal = gate.matrix().expect("program gates are bound");
        if duration == 0 {
            return ideal;
        }
        let qp = self.backend.qubit(phys);
        let w = Waveform::gaussian(self.backend.pulse_1q_duration_dt());
        let area = w.area();
        let over = 1.0 + qp.amp_error;
        let pulse = |angle: f64, phase: f64| {
            let amp = angle / (qp.drive_strength * area) * over;
            drive_propagator(&w, amp, phase, qp.freq_offset, qp.drive_strength)
        };
        match gate {
            // Single-pulse gates.
            Gate::X => pulse(PI, 0.0),
            Gate::Y => pulse(PI, FRAC_PI_2),
            Gate::SX => pulse(FRAC_PI_2, 0.0),
            Gate::H => {
                // H = RZ(pi/2) SX RZ(pi/2) up to phase.
                let vz = virtual_z(FRAC_PI_2);
                vz.matmul(&pulse(FRAC_PI_2, 0.0)).matmul(&vz)
            }
            // Two-pulse gates via the ZYZ expansion
            // RZ(beta + pi) SX RZ(gamma - pi) SX RZ(delta).
            _ => {
                let (_, beta, gamma, delta) = zyz_decompose(&ideal);
                virtual_z(beta + PI)
                    .matmul(&pulse(FRAC_PI_2, 0.0))
                    .matmul(&virtual_z(gamma - PI))
                    .matmul(&pulse(FRAC_PI_2, 0.0))
                    .matmul(&virtual_z(delta))
            }
        }
    }

    /// Runs a program and samples `shots` noisy measurement outcomes
    /// (readout confusion applied exactly to the distribution, then
    /// sampled with the seeded RNG).
    ///
    /// Callers issuing *streams* of sampling calls (training probes,
    /// serve jobs) should derive `seed` from the call's position via
    /// [`hgp_sim::seed::stream_seed`], so concurrent schedules stay
    /// bit-identical to sequential ones.
    pub fn sample(&self, program: &Program, shots: usize, seed: u64) -> Counts {
        let rho = self.run(program);
        self.sample_state(&rho, shots, seed)
    }

    /// Samples measurement outcomes from an already-computed state.
    pub fn sample_state<B: SimBackend>(&self, rho: &B, shots: usize, seed: u64) -> Counts {
        let mut probs = self.readout.apply_to_probabilities(&rho.probabilities());
        let sum: f64 = probs.iter().sum();
        if sum > 0.0 {
            for p in &mut probs {
                *p /= sum;
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        Counts::sample_from_probabilities(&probs, shots, rho.n_qubits(), &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::BlockKind;
    use hgp_circuit::{Circuit, Gate};
    use hgp_math::Matrix;
    use hgp_sim::StateVector;

    #[test]
    fn gate_program_matches_noisy_simulator_on_ideal_hardware() {
        // With zero coherent calibration errors the executor's
        // pulse-backed gate path reduces exactly to the ideal-gate
        // NoisySimulator semantics.
        let backend = Backend::ideal(2);
        let mut qc = Circuit::new(2);
        qc.h(0).cx(0, 1).rx(1, 0.4);
        let layout = vec![0, 1];
        let program = Program::from_circuit(&qc).unwrap();
        let by_exec = Executor::new(&backend, layout.clone()).run(&program);
        let by_noise = NoisySimulator::new(&backend)
            .simulate(&qc, &layout)
            .unwrap();
        for i in 0..4 {
            for j in 0..4 {
                assert!((by_exec.get(i, j) - by_noise.get(i, j)).norm() < 1e-9);
            }
        }
    }

    #[test]
    fn coherent_errors_perturb_but_do_not_destroy() {
        // On a real backend the executor's gates carry coherent
        // calibration errors, so it deviates from the ideal-gate noisy
        // simulator — slightly.
        let backend = Backend::ibmq_toronto();
        let mut qc = Circuit::new(2);
        qc.h(0).cx(0, 1).rx(1, 0.4);
        let layout = vec![0, 1];
        let program = Program::from_circuit(&qc).unwrap();
        let by_exec = Executor::new(&backend, layout.clone()).run(&program);
        let by_noise = NoisySimulator::new(&backend)
            .simulate(&qc, &layout)
            .unwrap();
        let mut max_dev = 0.0f64;
        for i in 0..4 {
            for j in 0..4 {
                max_dev = max_dev.max((by_exec.get(i, j) - by_noise.get(i, j)).norm());
            }
        }
        assert!(max_dev > 1e-6, "coherent errors should show up");
        assert!(max_dev < 0.2, "but remain perturbative (got {max_dev})");
    }

    #[test]
    fn pulse_block_shorter_duration_means_less_decoherence() {
        let backend = Backend::ibmq_toronto();
        let exec = Executor::new(&backend, vec![0]);
        let x = Gate::X.matrix().unwrap();
        let mk = |duration| {
            let mut p = Program::new(1);
            // Repeat to amplify the effect.
            for _ in 0..20 {
                p.push_pulse_block(&[0], x.clone(), duration, BlockKind::Drive);
            }
            p
        };
        let long = exec.run(&mk(320)).purity();
        let short = exec.run(&mk(128)).purity();
        assert!(
            short > long,
            "shorter pulses should preserve purity: {short} vs {long}"
        );
    }

    #[test]
    fn readout_confusion_shows_in_samples() {
        let backend = Backend::ibmq_toronto();
        let exec = Executor::new(&backend, vec![0]);
        let mut p = Program::new(1);
        p.push_gate(Gate::X, &[0]);
        let counts = exec.sample(&p, 50_000, 7);
        let f0 = counts.frequency(0);
        // The state is ~|1>, but readout error leaks some weight to 0.
        let expected_leak = backend.qubit(0).readout_error;
        assert!(
            f0 > 0.2 * expected_leak && f0 < 5.0 * expected_leak + 0.02,
            "readout leak {f0} vs error {expected_leak}"
        );
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let backend = Backend::ibmq_guadalupe();
        let exec = Executor::new(&backend, vec![2, 3]);
        let mut p = Program::new(2);
        p.push_gate(Gate::H, &[0]).push_gate(Gate::CX, &[0, 1]);
        let a = exec.sample(&p, 1024, 5);
        let b = exec.sample(&p, 1024, 5);
        let c = exec.sample(&p, 1024, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn dynamical_decoupling_refocuses_idle_drift() {
        // A qubit parked in |+> while its neighbour works accumulates
        // coherent Z drift; the X-X pair refocuses it.
        let backend = Backend::ibmq_toronto();
        // Park the register on the qubit with the worst frame drift so the
        // refocusing effect dominates the DD pulses' own gate error.
        let worst = (0..backend.n_qubits())
            .max_by(|&a, &b| {
                backend
                    .qubit(a)
                    .freq_offset
                    .abs()
                    .partial_cmp(&backend.qubit(b).freq_offset.abs())
                    .expect("finite")
            })
            .expect("qubits");
        let neighbour = backend.coupling_map().neighbors(worst)[0];
        assert!(backend.qubit(worst).freq_offset.abs() > 5e-5);
        let mk_exec = |dd: bool| {
            let e = Executor::new(&backend, vec![worst, neighbour]);
            if dd {
                e.with_dynamical_decoupling()
            } else {
                e
            }
        };
        // H on q0, then q1 works for a long time, then H on q0 again.
        let mut p = Program::new(2);
        p.push_gate(Gate::H, &[0]);
        for _ in 0..80 {
            p.push_gate(Gate::X, &[1]);
        }
        // A 2q op synchronizes the clocks, realizing q0's idle gap (and
        // its drift) *before* the closing H — as routing-induced waits do
        // in real circuits. RZZ(0) is the identity, so it only syncs.
        p.push_gate(Gate::Rzz(hgp_circuit::Param::bound(0.0)), &[1, 0]);
        p.push_gate(Gate::H, &[0]);
        // Without drift, the program returns q0 to |0>; drift during the
        // idle rotates the frame and leaks probability to |1>.
        let leak = |dd: bool| {
            let rho = mk_exec(dd).run(&p);
            rho.probabilities()[0b01] + rho.probabilities()[0b11]
        };
        let without = leak(false);
        let with = leak(true);
        assert!(
            with < without,
            "DD should reduce drift leakage: {with} vs {without}"
        );
    }

    #[test]
    fn ideal_backend_reproduces_pure_state_through_blocks() {
        let backend = Backend::ideal(2);
        let exec = Executor::new(&backend, vec![0, 1]);
        let mut qc = Circuit::new(2);
        qc.h(0).cx(0, 1);
        let psi = StateVector::from_circuit(&qc).unwrap();
        // Same circuit, but the H expressed as a pulse block.
        let mut p = Program::new(2);
        p.push_pulse_block(&[0], Gate::H.matrix().unwrap(), 160, BlockKind::Drive);
        p.push_gate(Gate::CX, &[0, 1]);
        let rho = exec.run(&p);
        assert!((rho.fidelity_with_pure(&psi) - 1.0).abs() < 1e-10);
        let _ = Matrix::identity(1);
    }
}
