//! Machine-in-loop noisy execution of hybrid programs.
//!
//! The executor mirrors [`hgp_noise::NoisySimulator`] but accepts the
//! hybrid [`Program`] IR: gate ops pay calibrated gate durations and
//! depolarizing errors; pulse blocks pay their own (often shorter)
//! durations — this asymmetry is exactly the hybrid model's hardware
//! advantage. Readout confusion is applied to the final distribution
//! before sampling, so mitigation sees realistic statistics.
//!
//! Noise parameters come from a typed [`NoiseModel`] built once per
//! (backend, layout) — or injected pre-built from a
//! [`crate::compile::CompiledCircuit`], which caches the model with the
//! compiled shape. The executor walks one ASAP schedule and feeds it to
//! either consumer:
//!
//! - **exact** ([`Executor::run_on`]): density-matrix evolution,
//!   `O(4^n)` per instruction — the engine of record for training,
//! - **sampled** ([`Executor::trajectory_program`] /
//!   [`Executor::sample_trajectories`] /
//!   [`Executor::expectation_trajectories`]): the same schedule recorded
//!   once and replayed as `O(2^n)` stochastic statevector trajectories
//!   with [`hgp_sim::seed::stream_seed`]-derived per-trajectory seeds —
//!   noisy QAOA at widths the density matrix cannot reach. The
//!   trajectory entry points execute on the op-fused
//!   [`hgp_sim::ReplayEngine`] ([`Executor::replay_program`] compiles
//!   the recording into a flat tape) in its batched-shot mode —
//!   cache-sized [`hgp_sim::ReplayBatch`] SoA blocks swept op-major —
//!   pinned bit-identical to both the scalar replay loop and the
//!   reference [`hgp_sim::TrajectoryEngine`]; serving callers skip the
//!   per-dispatch recording entirely via the compiled artifacts'
//!   schedule templates ([`Executor::sample_replay`] /
//!   [`Executor::expectation_replay`]).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use hgp_circuit::Gate;
use hgp_device::Backend;
use hgp_math::su2::zyz_decompose;
use hgp_math::Matrix;
use hgp_noise::sink::{ExactSink, RecordSink, ScheduleSink};
use hgp_noise::{NoiseModel, ReadoutModel};
use hgp_pulse::propagator::{drive_propagator, virtual_z};
use hgp_pulse::Waveform;
use hgp_sim::{
    Counts, DensityMatrix, ExactReplayEngine, ExactReplayProgram, NoProfile, ProfileSink,
    ReplayEngine, ReplayProgram, SimBackend, TrajectoryProgram,
};

use crate::program::{BlockKind, Program, ProgramOp};

/// Executes hybrid programs on a simulated backend.
#[derive(Debug, Clone)]
pub struct Executor<'a> {
    backend: &'a Backend,
    /// `layout[i]` = physical qubit hosting logical qubit `i`.
    layout: Vec<usize>,
    readout: ReadoutModel,
    /// The typed noise parameters of the layout (shareable across
    /// executors of one compiled shape).
    noise: Arc<NoiseModel>,
    /// Insert X-X dynamical-decoupling pairs into long idle windows
    /// (Fig. 3 lists DD among the compatible Step III techniques).
    dynamical_decoupling: bool,
}

impl<'a> Executor<'a> {
    /// Creates an executor for a logical register laid out on `backend`,
    /// building the layout's [`NoiseModel`].
    ///
    /// # Panics
    ///
    /// Panics if a layout entry is out of range or repeated.
    pub fn new(backend: &'a Backend, layout: Vec<usize>) -> Self {
        let noise = Arc::new(NoiseModel::from_backend(backend, &layout));
        Self::with_noise_model(backend, layout, noise)
    }

    /// Creates an executor around a prebuilt noise model (the cached
    /// artifact of a compiled shape, or a rescaled copy for zero-noise
    /// extrapolation).
    ///
    /// # Panics
    ///
    /// Panics if a layout entry is out of range or the model width
    /// disagrees with the layout.
    pub fn with_noise_model(
        backend: &'a Backend,
        layout: Vec<usize>,
        noise: Arc<NoiseModel>,
    ) -> Self {
        for &p in &layout {
            assert!(p < backend.n_qubits(), "physical qubit {p} out of range");
        }
        assert_eq!(
            noise.n_qubits(),
            layout.len(),
            "noise model width must match the layout"
        );
        // Readout comes from the model too, so an injected (cached or
        // customized) model is authoritative for every noise parameter.
        let readout = noise.readout();
        Self {
            backend,
            layout,
            readout,
            noise,
            dynamical_decoupling: false,
        }
    }

    /// Enables X-X dynamical decoupling on idle windows longer than four
    /// pulse lengths. The pair refocuses coherent frame drift at the cost
    /// of two extra calibrated pulses per window.
    pub fn with_dynamical_decoupling(mut self) -> Self {
        self.dynamical_decoupling = true;
        self
    }

    /// The backend.
    pub fn backend(&self) -> &Backend {
        self.backend
    }

    /// The logical-to-physical layout.
    pub fn layout(&self) -> &[usize] {
        &self.layout
    }

    /// The readout model derived from the layout.
    pub fn readout(&self) -> &ReadoutModel {
        &self.readout
    }

    /// The typed noise model executions draw channels from.
    pub fn noise_model(&self) -> &Arc<NoiseModel> {
        &self.noise
    }

    /// Whether idle windows receive X-X dynamical-decoupling pairs —
    /// schedule templates are recorded without them, so template binds
    /// must detect a DD executor and fall back to the full walk.
    pub(crate) fn uses_dynamical_decoupling(&self) -> bool {
        self.dynamical_decoupling
    }

    /// Runs a program, returning the noisy final state.
    ///
    /// # Panics
    ///
    /// Panics if the program width disagrees with the layout or a gate
    /// spans a non-coupled physical pair.
    pub fn run(&self, program: &Program) -> DensityMatrix {
        self.run_on(program)
    }

    /// [`Executor::run`] generalized over the execution engine.
    ///
    /// The engine of record for noisy training is [`DensityMatrix`];
    /// engines without channel support (statevector) host the same
    /// schedule on ideal hardware, where every noise channel
    /// degenerates. For noisy statevector-scale execution use the
    /// trajectory path instead.
    ///
    /// # Panics
    ///
    /// Panics if the program width disagrees with the layout or a gate
    /// spans a non-coupled physical pair.
    pub fn run_on<B: SimBackend>(&self, program: &Program) -> B {
        let mut sink = ExactSink(B::init(program.n_qubits()));
        self.walk_schedule(program, &mut sink);
        sink.0
    }

    /// Records a program's noisy schedule — ideal-gate unitaries with
    /// their coherent calibration errors, frame drift, idle decoherence,
    /// gate error channels — as a [`TrajectoryProgram`] for stochastic
    /// statevector execution. Built once, replayed per trajectory.
    ///
    /// # Panics
    ///
    /// Same contract as [`Executor::run`].
    pub fn trajectory_program(&self, program: &Program) -> TrajectoryProgram {
        let mut sink = RecordSink(TrajectoryProgram::new(program.n_qubits()));
        self.walk_schedule(program, &mut sink);
        sink.0
    }

    /// [`Executor::trajectory_program`] compiled into the replay tape —
    /// the per-shot fast path ([`hgp_sim::ReplayEngine`] over it is
    /// bit-identical to [`hgp_sim::TrajectoryEngine`] over the
    /// recording).
    pub fn replay_program(&self, program: &Program) -> ReplayProgram {
        ReplayProgram::compile(&self.trajectory_program(program))
    }

    /// Records the noisy schedule and compiles it into an exact-path
    /// superoperator tape ([`ExactReplayProgram`]) — the density-matrix
    /// analog of [`Executor::replay_program`]. Compiled shapes bind
    /// their cached exact template instead of re-walking per dispatch.
    pub fn exact_replay_program(&self, program: &Program) -> ExactReplayProgram {
        ExactReplayProgram::compile(&self.trajectory_program(program))
    }

    /// Replays an exact tape from `|0...0><0...0|`, producing the same
    /// mixed state [`Executor::run`] walks to (bit-identical on
    /// diagonal runs and unitary applications, ≤ 1e-12 elementwise for
    /// resolved multi-Kraus channels — see `hgp_sim::replay::exact`).
    pub fn run_exact_replay(&self, tape: &ExactReplayProgram) -> DensityMatrix {
        self.run_exact_replay_profiled(tape, &NoProfile)
    }

    /// [`Executor::run_exact_replay`] with an opt-in
    /// [`hgp_sim::ProfileSink`] attributing per-op-kind wall time (see
    /// `hgp_sim::replay::exact`); the evolved state is bit-identical
    /// for any sink.
    pub fn run_exact_replay_profiled<P: ProfileSink>(
        &self,
        tape: &ExactReplayProgram,
        sink: &P,
    ) -> DensityMatrix {
        let mut engine = ExactReplayEngine::for_program(tape);
        engine.run_profiled(tape, sink);
        engine.into_state()
    }

    /// Walks the ASAP schedule into an arbitrary sink — the entry point
    /// schedule-template recording uses (same walk, instrumented sink).
    pub(crate) fn walk_with_sink<S: ScheduleSink>(&self, program: &Program, sink: &mut S) {
        self.walk_schedule(program, sink);
    }

    /// Walks the ASAP schedule once, emitting into `sink`. This is the
    /// single source of execution order: the exact and trajectory paths
    /// cannot drift apart.
    fn walk_schedule<S: ScheduleSink>(&self, program: &Program, sink: &mut S) {
        assert_eq!(
            program.n_qubits(),
            self.layout.len(),
            "program width must match the layout"
        );
        let n = program.n_qubits();
        let mut clock = vec![0u64; n];
        for (op_index, op) in program.ops().iter().enumerate() {
            let qubits = op.qubits().to_vec();
            let duration = match op {
                ProgramOp::Gate { gate, .. } => self.noise.gate_duration_dt(gate, &qubits),
                ProgramOp::PulseBlock { duration, .. } => *duration,
            };
            // ASAP alignment with idle decoherence and frame drift.
            let start = qubits.iter().map(|&q| clock[q]).max().unwrap_or(0);
            for &q in &qubits {
                let gap = start - clock[q];
                if gap > 0 {
                    self.idle_qubit(sink, q, gap as u32);
                }
            }
            // The applied unitary. Gate ops are executed with the
            // qubit's *coherent* calibration errors (frame-frequency
            // drift and pulse-amplitude miscalibration) — errors a
            // gate-level user cannot see or correct, while pulse-level
            // models compile their own blocks against the same true
            // physics and can train them away (paper §IV-A).
            sink.begin_applied(op_index);
            match op {
                ProgramOp::Gate { gate, qubits } => {
                    if gate.n_qubits() == 1 {
                        let m = self.actual_1q_unitary(gate, self.layout[qubits[0]], duration);
                        sink.unitary(&m, qubits);
                    } else {
                        // Fused kernel dispatch (RZZ/CZ cost layers are
                        // diagonal — the executor's hot path).
                        sink.gate(gate, qubits).expect("program gates are bound");
                        // Frame drift accumulated on both operands.
                        for &lq in qubits {
                            let drift = self.backend.qubit(self.layout[lq]).freq_offset
                                * f64::from(duration);
                            if drift != 0.0 {
                                sink.unitary(&virtual_z(drift), &[lq]);
                            }
                        }
                    }
                }
                ProgramOp::PulseBlock {
                    qubits, unitary, ..
                } => {
                    sink.unitary(unitary, qubits);
                }
            }
            // Noise.
            for &q in &qubits {
                if let Some(ch) = self.noise.idle_channel(q, duration) {
                    sink.channel(ch, &[q]);
                }
            }
            let error_arity = match op {
                ProgramOp::Gate { gate, .. } => gate.n_qubits(),
                ProgramOp::PulseBlock { kind, .. } => match kind {
                    BlockKind::Drive => 1,
                    BlockKind::CrossResonance => 2,
                    BlockKind::Virtual => 0,
                },
            };
            match error_arity {
                1 => {
                    if let Some(ch) = self.noise.gate_error_1q(qubits[0], duration) {
                        sink.channel(ch, &[qubits[0]]);
                    }
                }
                2 => {
                    if let Some(ch) = self.noise.gate_error_2q(qubits[0], qubits[1], duration) {
                        sink.channel(ch, &[qubits[0], qubits[1]]);
                    }
                }
                _ => {}
            }
            for &q in &qubits {
                clock[q] = start + u64::from(duration);
            }
        }
        // Simultaneous terminal measurement: idle early finishers.
        let end = clock.iter().copied().max().unwrap_or(0);
        for (q, &busy_until) in clock.iter().enumerate() {
            let gap = end - busy_until;
            if gap > 0 {
                self.idle_qubit(sink, q, gap as u32);
            }
        }
    }

    /// Idles a qubit for `duration_dt`: decoherence plus coherent frame
    /// drift, with an X-X dynamical-decoupling pair splitting long
    /// windows when enabled.
    fn idle_qubit<S: ScheduleSink>(&self, sink: &mut S, logical: usize, duration_dt: u32) {
        let p1 = self.backend.pulse_1q_duration_dt();
        if self.dynamical_decoupling && duration_dt >= 4 * p1 {
            // idle(s1) - X - idle(s2) - X with s1 = s2: the drift of the
            // two idle segments refocuses (X Z(phi) X = Z(-phi)).
            let free = duration_dt - 2 * p1;
            let s1 = free / 2;
            let s2 = free - s1;
            let phys = self.layout[logical];
            let x = self.actual_1q_unitary(&Gate::X, phys, p1);
            for seg in [s1, s2] {
                if let Some(ch) = self.noise.idle_channel(logical, seg) {
                    sink.channel(ch, &[logical]);
                }
                self.apply_idle_drift(sink, logical, seg);
                sink.unitary(&x, &[logical]);
                if let Some(ch) = self.noise.idle_channel(logical, p1) {
                    sink.channel(ch, &[logical]);
                }
                if let Some(ch) = self.noise.gate_error_1q(logical, p1) {
                    sink.channel(ch, &[logical]);
                }
            }
        } else {
            if let Some(ch) = self.noise.idle_channel(logical, duration_dt) {
                sink.channel(ch, &[logical]);
            }
            self.apply_idle_drift(sink, logical, duration_dt);
        }
    }

    /// Frame-frequency drift over an idle period (a Z rotation at the
    /// qubit's residual frequency offset).
    fn apply_idle_drift<S: ScheduleSink>(&self, sink: &mut S, logical: usize, duration_dt: u32) {
        let offset = self.backend.qubit(self.layout[logical]).freq_offset;
        if offset != 0.0 {
            sink.unitary(&virtual_z(offset * f64::from(duration_dt)), &[logical]);
        }
    }

    /// The unitary a 1q gate *actually* implements on hardware.
    ///
    /// Gates with nonzero duration are executed through the same pulse
    /// physics the pulse-level models compile against: calibrated
    /// Gaussian pulses distorted by the qubit's amplitude miscalibration
    /// and residual frame-frequency offset. Virtual (zero-duration) gates
    /// are exact frame changes. This keeps the physics identical across
    /// abstraction levels — the only asymmetry is *who can train against
    /// it*.
    pub(crate) fn actual_1q_unitary(&self, gate: &Gate, phys: usize, duration: u32) -> Matrix {
        use std::f64::consts::{FRAC_PI_2, PI};
        let ideal = gate.matrix().expect("program gates are bound");
        if duration == 0 {
            return ideal;
        }
        let qp = self.backend.qubit(phys);
        let w = Waveform::gaussian(self.backend.pulse_1q_duration_dt());
        let area = w.area();
        let over = 1.0 + qp.amp_error;
        let pulse = |angle: f64, phase: f64| {
            let amp = angle / (qp.drive_strength * area) * over;
            drive_propagator(&w, amp, phase, qp.freq_offset, qp.drive_strength)
        };
        match gate {
            // Single-pulse gates.
            Gate::X => pulse(PI, 0.0),
            Gate::Y => pulse(PI, FRAC_PI_2),
            Gate::SX => pulse(FRAC_PI_2, 0.0),
            Gate::H => {
                // H = RZ(pi/2) SX RZ(pi/2) up to phase.
                let vz = virtual_z(FRAC_PI_2);
                vz.matmul(&pulse(FRAC_PI_2, 0.0)).matmul(&vz)
            }
            // Two-pulse gates via the ZYZ expansion
            // RZ(beta + pi) SX RZ(gamma - pi) SX RZ(delta).
            _ => {
                let (_, beta, gamma, delta) = zyz_decompose(&ideal);
                virtual_z(beta + PI)
                    .matmul(&pulse(FRAC_PI_2, 0.0))
                    .matmul(&virtual_z(gamma - PI))
                    .matmul(&pulse(FRAC_PI_2, 0.0))
                    .matmul(&virtual_z(delta))
            }
        }
    }

    /// Runs a program and samples `shots` noisy measurement outcomes
    /// (readout confusion applied exactly to the distribution, then
    /// sampled with the seeded RNG).
    ///
    /// Callers issuing *streams* of sampling calls (training probes,
    /// serve jobs) should derive `seed` from the call's position via
    /// [`hgp_sim::seed::stream_seed`], so concurrent schedules stay
    /// bit-identical to sequential ones.
    pub fn sample(&self, program: &Program, shots: usize, seed: u64) -> Counts {
        let rho = self.run(program);
        self.sample_state(&rho, shots, seed)
    }

    /// Samples measurement outcomes from an already-computed state.
    pub fn sample_state<B: SimBackend>(&self, rho: &B, shots: usize, seed: u64) -> Counts {
        let mut probs = self.readout.apply_to_probabilities(&rho.probabilities());
        let sum: f64 = probs.iter().sum();
        if sum > 0.0 {
            for p in &mut probs {
                *p /= sum;
            }
        }
        // hgp-analysis: allow(d2) -- `seed` is a caller-supplied leaf seed; every
        // executor call site derives it through `hgp_sim::seed::stream_seed`.
        let mut rng = StdRng::seed_from_u64(seed);
        Counts::sample_from_probabilities(&probs, shots, rho.n_qubits(), &mut rng)
    }

    /// Runs `shots` stochastic statevector trajectories of a program —
    /// one measurement shot per trajectory, shot-level readout
    /// confusion — at `O(2^n)` per trajectory instead of the `O(4^n)`
    /// density-matrix cost, and embarrassingly parallel.
    ///
    /// Trajectory `i` draws all of its randomness from
    /// `stream_seed(seed, i)`, so any parallel schedule is bit-identical
    /// to the sequential loop.
    ///
    /// # Panics
    ///
    /// Panics if `shots` is zero, or on the [`Executor::run`] contract.
    pub fn sample_trajectories(&self, program: &Program, shots: usize, seed: u64) -> Counts {
        self.sample_replay(&self.replay_program(program), shots, seed)
    }

    /// [`Executor::sample_trajectories`] over an already-compiled replay
    /// tape — the serving path, where the tape comes from a schedule
    /// template and the per-job record/compile step disappears. Runs the
    /// batched SoA shot-block path (bit-identical to the scalar replay
    /// loop for every block size; the scalar engine stays as the pinned
    /// reference).
    ///
    /// # Panics
    ///
    /// Panics if `shots` is zero.
    pub fn sample_replay(&self, replay: &ReplayProgram, shots: usize, seed: u64) -> Counts {
        self.sample_replay_profiled(replay, shots, seed, &NoProfile)
    }

    /// [`Executor::sample_replay`] with an opt-in
    /// [`hgp_sim::ProfileSink`] attributing per-op-kind wall time
    /// inside the batched replay; counts are bit-identical for any
    /// sink.
    ///
    /// # Panics
    ///
    /// Panics if `shots` is zero.
    pub fn sample_replay_profiled<P: ProfileSink>(
        &self,
        replay: &ReplayProgram,
        shots: usize,
        seed: u64,
        sink: &P,
    ) -> Counts {
        ReplayEngine::new(shots, seed).sample_counts_with_batched_profiled(
            replay,
            |bits, rng| self.readout.corrupt_bits(bits, rng),
            sink,
        )
    }

    /// Estimates a noisy expectation value from `n_trajectories`
    /// stochastic trajectories, returning `(mean, standard_error)`. The
    /// mean converges to [`Executor::run`]'s density-matrix expectation
    /// at the Monte-Carlo rate `O(1/sqrt(N))`; the standard error is the
    /// caller's convergence handle.
    ///
    /// # Panics
    ///
    /// Panics if `n_trajectories` is zero, or on the [`Executor::run`]
    /// contract.
    pub fn expectation_trajectories(
        &self,
        program: &Program,
        observable: &hgp_math::pauli::PauliSum,
        n_trajectories: usize,
        seed: u64,
    ) -> (f64, f64) {
        self.expectation_replay(
            &self.replay_program(program),
            observable,
            n_trajectories,
            seed,
        )
    }

    /// [`Executor::expectation_trajectories`] over an already-compiled
    /// replay tape (see [`Executor::sample_replay`]); batched shot-block
    /// execution, bit-identical to the scalar replay loop.
    ///
    /// # Panics
    ///
    /// Panics if `n_trajectories` is zero.
    pub fn expectation_replay(
        &self,
        replay: &ReplayProgram,
        observable: &hgp_math::pauli::PauliSum,
        n_trajectories: usize,
        seed: u64,
    ) -> (f64, f64) {
        self.expectation_replay_profiled(replay, observable, n_trajectories, seed, &NoProfile)
    }

    /// [`Executor::expectation_replay`] with an opt-in
    /// [`hgp_sim::ProfileSink`] (see
    /// [`Executor::sample_replay_profiled`]).
    ///
    /// # Panics
    ///
    /// Panics if `n_trajectories` is zero.
    pub fn expectation_replay_profiled<P: ProfileSink>(
        &self,
        replay: &ReplayProgram,
        observable: &hgp_math::pauli::PauliSum,
        n_trajectories: usize,
        seed: u64,
        sink: &P,
    ) -> (f64, f64) {
        ReplayEngine::new(n_trajectories, seed)
            .expectation_with_error_batched_profiled(replay, observable, sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::BlockKind;
    use hgp_circuit::{Circuit, Gate};
    use hgp_math::pauli::{Pauli, PauliString, PauliSum};
    use hgp_math::Matrix;
    use hgp_noise::NoisySimulator;
    use hgp_sim::StateVector;

    #[test]
    fn gate_program_matches_noisy_simulator_on_ideal_hardware() {
        // With zero coherent calibration errors the executor's
        // pulse-backed gate path reduces exactly to the ideal-gate
        // NoisySimulator semantics.
        let backend = Backend::ideal(2);
        let mut qc = Circuit::new(2);
        qc.h(0).cx(0, 1).rx(1, 0.4);
        let layout = vec![0, 1];
        let program = Program::from_circuit(&qc).unwrap();
        let by_exec = Executor::new(&backend, layout.clone()).run(&program);
        let by_noise = NoisySimulator::new(&backend)
            .simulate(&qc, &layout)
            .unwrap();
        for i in 0..4 {
            for j in 0..4 {
                assert!((by_exec.get(i, j) - by_noise.get(i, j)).norm() < 1e-9);
            }
        }
    }

    #[test]
    fn coherent_errors_perturb_but_do_not_destroy() {
        // On a real backend the executor's gates carry coherent
        // calibration errors, so it deviates from the ideal-gate noisy
        // simulator — slightly.
        let backend = Backend::ibmq_toronto();
        let mut qc = Circuit::new(2);
        qc.h(0).cx(0, 1).rx(1, 0.4);
        let layout = vec![0, 1];
        let program = Program::from_circuit(&qc).unwrap();
        let by_exec = Executor::new(&backend, layout.clone()).run(&program);
        let by_noise = NoisySimulator::new(&backend)
            .simulate(&qc, &layout)
            .unwrap();
        let mut max_dev = 0.0f64;
        for i in 0..4 {
            for j in 0..4 {
                max_dev = max_dev.max((by_exec.get(i, j) - by_noise.get(i, j)).norm());
            }
        }
        assert!(max_dev > 1e-6, "coherent errors should show up");
        assert!(max_dev < 0.2, "but remain perturbative (got {max_dev})");
    }

    #[test]
    fn pulse_block_shorter_duration_means_less_decoherence() {
        let backend = Backend::ibmq_toronto();
        let exec = Executor::new(&backend, vec![0]);
        let x = Gate::X.matrix().unwrap();
        let mk = |duration| {
            let mut p = Program::new(1);
            // Repeat to amplify the effect.
            for _ in 0..20 {
                p.push_pulse_block(&[0], x.clone(), duration, BlockKind::Drive);
            }
            p
        };
        let long = exec.run(&mk(320)).purity();
        let short = exec.run(&mk(128)).purity();
        assert!(
            short > long,
            "shorter pulses should preserve purity: {short} vs {long}"
        );
    }

    #[test]
    fn readout_confusion_shows_in_samples() {
        let backend = Backend::ibmq_toronto();
        let exec = Executor::new(&backend, vec![0]);
        let mut p = Program::new(1);
        p.push_gate(Gate::X, &[0]);
        let counts = exec.sample(&p, 50_000, 7);
        let f0 = counts.frequency(0);
        // The state is ~|1>, but readout error leaks some weight to 0.
        let expected_leak = backend.qubit(0).readout_error;
        assert!(
            f0 > 0.2 * expected_leak && f0 < 5.0 * expected_leak + 0.02,
            "readout leak {f0} vs error {expected_leak}"
        );
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let backend = Backend::ibmq_guadalupe();
        let exec = Executor::new(&backend, vec![2, 3]);
        let mut p = Program::new(2);
        p.push_gate(Gate::H, &[0]).push_gate(Gate::CX, &[0, 1]);
        let a = exec.sample(&p, 1024, 5);
        let b = exec.sample(&p, 1024, 5);
        let c = exec.sample(&p, 1024, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn dynamical_decoupling_refocuses_idle_drift() {
        // A qubit parked in |+> while its neighbour works accumulates
        // coherent Z drift; the X-X pair refocuses it.
        let backend = Backend::ibmq_toronto();
        // Park the register on the qubit with the worst frame drift so the
        // refocusing effect dominates the DD pulses' own gate error.
        let worst = (0..backend.n_qubits())
            .max_by(|&a, &b| {
                backend
                    .qubit(a)
                    .freq_offset
                    .abs()
                    .partial_cmp(&backend.qubit(b).freq_offset.abs())
                    .expect("finite")
            })
            .expect("qubits");
        let neighbour = backend.coupling_map().neighbors(worst)[0];
        assert!(backend.qubit(worst).freq_offset.abs() > 5e-5);
        let mk_exec = |dd: bool| {
            let e = Executor::new(&backend, vec![worst, neighbour]);
            if dd {
                e.with_dynamical_decoupling()
            } else {
                e
            }
        };
        // H on q0, then q1 works for a long time, then H on q0 again.
        let mut p = Program::new(2);
        p.push_gate(Gate::H, &[0]);
        for _ in 0..80 {
            p.push_gate(Gate::X, &[1]);
        }
        // A 2q op synchronizes the clocks, realizing q0's idle gap (and
        // its drift) *before* the closing H — as routing-induced waits do
        // in real circuits. RZZ(0) is the identity, so it only syncs.
        p.push_gate(Gate::Rzz(hgp_circuit::Param::bound(0.0)), &[1, 0]);
        p.push_gate(Gate::H, &[0]);
        // Without drift, the program returns q0 to |0>; drift during the
        // idle rotates the frame and leaks probability to |1>.
        let leak = |dd: bool| {
            let rho = mk_exec(dd).run(&p);
            rho.probabilities()[0b01] + rho.probabilities()[0b11]
        };
        let without = leak(false);
        let with = leak(true);
        assert!(
            with < without,
            "DD should reduce drift leakage: {with} vs {without}"
        );
    }

    #[test]
    fn ideal_backend_reproduces_pure_state_through_blocks() {
        let backend = Backend::ideal(2);
        let exec = Executor::new(&backend, vec![0, 1]);
        let mut qc = Circuit::new(2);
        qc.h(0).cx(0, 1);
        let psi = StateVector::from_circuit(&qc).unwrap();
        // Same circuit, but the H expressed as a pulse block.
        let mut p = Program::new(2);
        p.push_pulse_block(&[0], Gate::H.matrix().unwrap(), 160, BlockKind::Drive);
        p.push_gate(Gate::CX, &[0, 1]);
        let rho = exec.run(&p);
        assert!((rho.fidelity_with_pure(&psi) - 1.0).abs() < 1e-10);
        let _ = Matrix::identity(1);
    }

    #[test]
    fn trajectory_program_replays_the_exact_schedule() {
        // apply_exact of the recorded schedule reproduces run() bit for
        // bit — including pulse-backed 1q unitaries, frame drift, and
        // every noise channel.
        let backend = Backend::ibmq_toronto();
        let exec = Executor::new(&backend, vec![0, 1]);
        let mut qc = Circuit::new(2);
        qc.h(0).cx(0, 1).rzz(0, 1, 0.7).rx(1, 0.4);
        let program = Program::from_circuit(&qc).unwrap();
        let by_run = exec.run(&program);
        let recorded = exec.trajectory_program(&program);
        assert!(recorded.n_channels() > 0);
        let mut by_recorded = DensityMatrix::init(2);
        recorded.apply_exact(&mut by_recorded);
        for i in 0..4 {
            for j in 0..4 {
                let (a, b) = (by_run.get(i, j), by_recorded.get(i, j));
                assert_eq!(a.re.to_bits(), b.re.to_bits(), "({i},{j})");
                assert_eq!(a.im.to_bits(), b.im.to_bits(), "({i},{j})");
            }
        }
    }

    #[test]
    fn trajectory_program_replays_pulse_blocks_exactly() {
        // The hybrid path of the walker: pulse blocks enter the recorded
        // schedule as unitary ops with their duration-scaled noise
        // channels, and apply_exact reproduces run() bit for bit.
        let backend = Backend::ibmq_toronto();
        let graph = hgp_graph::instances::task1_three_regular_6();
        let region = vec![1, 2, 3, 4, 5, 7];
        let model = crate::models::HybridModel::new(&backend, &graph, 1, region).unwrap();
        let mut params = crate::models::VqaModel::initial_params(&model);
        for (i, p) in params.iter_mut().enumerate() {
            *p += 0.02 * (i as f64 + 1.0);
        }
        let program = crate::models::VqaModel::build(&model, &params);
        assert!(program.count_pulse_blocks() > 0, "mixer must be pulses");
        let exec = Executor::new(&backend, crate::models::VqaModel::layout(&model).to_vec());
        let by_run = exec.run(&program);
        let recorded = exec.trajectory_program(&program);
        assert!(recorded.n_channels() > 0);
        let mut by_recorded = DensityMatrix::init(program.n_qubits());
        recorded.apply_exact(&mut by_recorded);
        let dim = 1 << program.n_qubits();
        for i in 0..dim {
            for j in 0..dim {
                let (a, b) = (by_run.get(i, j), by_recorded.get(i, j));
                assert_eq!(a.re.to_bits(), b.re.to_bits(), "({i},{j})");
                assert_eq!(a.im.to_bits(), b.im.to_bits(), "({i},{j})");
            }
        }
    }

    #[test]
    fn trajectory_expectation_converges_for_pulse_block_programs() {
        // Monte-Carlo trajectories of a hybrid gate-pulse program
        // converge to its exact density-matrix expectation — the
        // contract that makes the served hybrid trajectory kinds a
        // faithful O(2^n) substitute for the O(4^n) exact path.
        let backend = Backend::ibmq_toronto();
        let graph = hgp_graph::instances::task1_three_regular_6();
        let region = vec![1, 2, 3, 4, 5, 7];
        let model = crate::models::HybridModel::new(&backend, &graph, 1, region).unwrap();
        let params = crate::models::VqaModel::initial_params(&model);
        let program = crate::models::VqaModel::build(&model, &params);
        let exec = Executor::new(&backend, crate::models::VqaModel::layout(&model).to_vec());
        let zz = PauliSum::from_terms(vec![PauliString::new(
            6,
            vec![(0, Pauli::Z), (1, Pauli::Z)],
            1.0,
        )]);
        let exact = SimBackend::expectation(&exec.run(&program), &zz);
        let (mean, stderr) = exec.expectation_trajectories(&program, &zz, 3000, 11);
        assert!(
            (mean - exact).abs() < 4.0 * stderr.max(1e-3),
            "mean {mean} vs exact {exact} (stderr {stderr})"
        );
    }

    #[test]
    fn trajectory_expectation_converges_to_density_matrix() {
        let backend = Backend::ibmq_toronto();
        let exec = Executor::new(&backend, vec![0, 1]);
        let mut qc = Circuit::new(2);
        qc.h(0).cx(0, 1).rzz(0, 1, 0.7).rx(1, 0.4);
        let program = Program::from_circuit(&qc).unwrap();
        let zz = PauliSum::from_terms(vec![PauliString::new(
            2,
            vec![(0, Pauli::Z), (1, Pauli::Z)],
            1.0,
        )]);
        let exact = SimBackend::expectation(&exec.run(&program), &zz);
        let (mean, stderr) = exec.expectation_trajectories(&program, &zz, 4096, 23);
        assert!(
            (mean - exact).abs() < 4.0 * stderr.max(1e-3),
            "mean {mean} vs exact {exact} (stderr {stderr})"
        );
    }

    #[test]
    fn replay_routing_is_bit_identical_to_the_trajectory_engine() {
        // The executor's trajectory entry points now run on the replay
        // engine; the reference TrajectoryEngine over the recorded
        // schedule must agree bit for bit — counts, means, errors.
        use hgp_sim::TrajectoryEngine;
        let backend = Backend::ibmq_toronto();
        let exec = Executor::new(&backend, vec![0, 1]);
        let mut qc = Circuit::new(2);
        qc.h(0).cx(0, 1).rzz(0, 1, 0.7).rx(1, 0.4);
        let program = Program::from_circuit(&qc).unwrap();
        let recorded = exec.trajectory_program(&program);
        let zz = PauliSum::from_terms(vec![PauliString::new(
            2,
            vec![(0, Pauli::Z), (1, Pauli::Z)],
            1.0,
        )]);
        let by_replay = exec.expectation_trajectories(&program, &zz, 256, 3);
        let by_engine = TrajectoryEngine::new(256, 3).expectation_with_error(&recorded, &zz);
        assert_eq!(by_replay.0.to_bits(), by_engine.0.to_bits());
        assert_eq!(by_replay.1.to_bits(), by_engine.1.to_bits());
        let counts = exec.sample_trajectories(&program, 512, 9);
        let reference = TrajectoryEngine::new(512, 9).sample_counts_with(&recorded, |bits, rng| {
            exec.readout().corrupt_bits(bits, rng)
        });
        assert_eq!(counts, reference);
    }

    #[test]
    fn trajectory_sampling_is_deterministic_and_readout_aware() {
        let backend = Backend::ibmq_guadalupe();
        let exec = Executor::new(&backend, vec![2, 3]);
        let mut p = Program::new(2);
        p.push_gate(Gate::X, &[0]).push_gate(Gate::X, &[1]);
        let a = exec.sample_trajectories(&p, 2048, 5);
        let b = exec.sample_trajectories(&p, 2048, 5);
        let c = exec.sample_trajectories(&p, 2048, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // The state is ~|11>; shot-level readout confusion leaks weight
        // out of it at roughly the calibrated rate.
        let leak = 1.0 - a.frequency(0b11);
        let expected = backend.qubit(2).readout_error + backend.qubit(3).readout_error;
        assert!(
            leak > 0.2 * expected && leak < 5.0 * expected + 0.02,
            "leak {leak} vs expected {expected}"
        );
    }

    #[test]
    fn injected_noise_model_overrides_the_backend() {
        // An executor with a rescaled model produces strictly noisier
        // states — the ZNE amplification path.
        let backend = Backend::ibmq_toronto();
        let layout = vec![0, 1];
        let base = Executor::new(&backend, layout.clone());
        let amplified =
            Executor::with_noise_model(&backend, layout, Arc::new(base.noise_model().scaled(3.0)));
        let mut qc = Circuit::new(2);
        qc.h(0).cx(0, 1).cx(0, 1);
        let program = Program::from_circuit(&qc).unwrap();
        let p1 = base.run(&program).purity();
        let p3 = amplified.run(&program).purity();
        assert!(p3 < p1, "amplified noise must lower purity: {p3} vs {p1}");
    }
}
