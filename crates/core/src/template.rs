//! Dispatch-invariant schedule templates.
//!
//! The recorded [`hgp_sim::TrajectoryProgram`] of a compiled shape is
//! *shape-constant* except for its parametric entries: the channel
//! structure, idle windows, frame drift, and pulse-backed unitaries of
//! fixed gates depend only on durations and calibration — never on the
//! bound parameter vector. Re-walking the ASAP schedule (and rebuilding
//! every channel's Kraus matrices) per dispatch therefore repeats work
//! whose result is known at compile time.
//!
//! A [`TrajectoryTemplate`] records the schedule **once per shape**
//! (lazily, on the first trajectory bind — shapes serving only
//! exact-path jobs never pay the recording) — walked by the same
//! [`Executor`](crate::executor::Executor) walk that serves exact and
//! trajectory dispatches, so it cannot drift — into a compiled
//! [`ReplayProgram`] tape, and remembers where each parametric program
//! op landed ([`ReplaySlot`]). Binding then substitutes only the
//! parametric entries:
//!
//! - bound-angle diagonals (`RZZ(gamma)` cost layers) re-derive their
//!   two/four phase factors,
//! - parametric 1q gates re-run the pulse physics for *their* op alone,
//! - hybrid mixer pulse blocks re-integrate their drive propagator from
//!   the calibration cached on the compiled program,
//!
//! and everything else — the walk, the idle analysis, the channel
//! tables, the fixed-gate pulse integrations — is reused verbatim. The
//! result is bit-identical to recording and compiling the bound program
//! from scratch (pinned by `crates/core` tests and the serve
//! determinism suites).

use hgp_circuit::{Circuit, Gate, Instruction};
use hgp_math::Matrix;
use hgp_noise::sink::{RecordSink, ScheduleSink};
use hgp_noise::{NoiseChannel, NoiseModel};
use hgp_sim::kernels::{diagonal_2q, DiagOp};
use hgp_sim::{ExactReplayProgram, ReplayProgram, ReplaySlot, TrajectoryProgram};

use crate::executor::Executor;
use crate::program::Program;

/// Which slice of the dispatch parameter vector a parametric gate binds
/// against.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ParamScope {
    /// The full vector (circuit shapes: gate param ids index it
    /// directly).
    Full,
    /// The single parameter at this flat index (hybrid layer circuits
    /// have exactly one free parameter, the layer's `gamma`, with local
    /// id 0).
    Single(usize),
}

impl ParamScope {
    fn bind(self, gate: &Gate, params: &[f64]) -> Gate {
        match self {
            ParamScope::Full => gate.bind(params),
            ParamScope::Single(i) => gate.bind(&[params[i]]),
        }
    }
}

/// How to recompute one parametric tape entry at bind time.
#[derive(Debug, Clone)]
pub(crate) enum TemplateSlot {
    /// A diagonal gate (`RZ`/`RZZ`-family): re-derive its phase factors.
    Diag {
        gate: Gate,
        qubits: Vec<usize>,
        scope: ParamScope,
    },
    /// A parametric 1q gate: re-run the executor's pulse-backed physics
    /// at the bound angle.
    Pulse1q {
        gate: Gate,
        qubit: usize,
        duration: u32,
        scope: ParamScope,
    },
    /// A parametric dense 2q gate (`RZX`-family): re-derive its matrix.
    Dense { gate: Gate, scope: ParamScope },
    /// A hybrid mixer pulse block: re-integrated by
    /// [`crate::compile::CompiledProgram`] from its cached calibration.
    Mixer { layer: usize, logical: usize },
}

/// A substituted slot value.
pub(crate) enum SlotValue {
    Diag(DiagOp),
    Unitary(Matrix),
}

impl TemplateSlot {
    /// Evaluates a *gate* slot (everything but [`TemplateSlot::Mixer`],
    /// which needs the compiled program's pulse calibration).
    pub(crate) fn eval(&self, exec: &Executor, params: &[f64]) -> SlotValue {
        match self {
            TemplateSlot::Diag {
                gate,
                qubits,
                scope,
            } => {
                let bound = scope.bind(gate, params);
                SlotValue::Diag(
                    DiagOp::from_gate(&bound, qubits).expect("template slot gates are diagonal"),
                )
            }
            TemplateSlot::Pulse1q {
                gate,
                qubit,
                duration,
                scope,
            } => {
                let bound = scope.bind(gate, params);
                let phys = exec.layout()[*qubit];
                SlotValue::Unitary(exec.actual_1q_unitary(&bound, phys, *duration))
            }
            TemplateSlot::Dense { gate, scope } => {
                let bound = scope.bind(gate, params);
                SlotValue::Unitary(bound.matrix().expect("template slot gates bind fully"))
            }
            TemplateSlot::Mixer { .. } => {
                unreachable!("mixer slots are evaluated by the compiled program")
            }
        }
    }
}

/// Scans a (possibly parametrized) circuit for the program ops a
/// dispatch must re-bind, classifying each into its [`TemplateSlot`].
///
/// `op_base` is the program-op index of the circuit's first gate (hybrid
/// programs concatenate several layer circuits); the returned count is
/// the number of program ops the circuit contributes, mirroring
/// [`Program::from_circuit`]'s instruction filtering exactly.
pub(crate) fn parametric_gate_specs(
    noise: &NoiseModel,
    circuit: &Circuit,
    scope: ParamScope,
    op_base: usize,
) -> (Vec<(usize, TemplateSlot)>, usize) {
    let mut specs = Vec::new();
    let mut op_idx = op_base;
    // Diagonality of a parametric gate is value-independent; probe at a
    // reference binding.
    let probe = vec![0.0; circuit.n_params()];
    for inst in circuit.instructions() {
        let Instruction::Gate { gate, qubits } = inst else {
            continue;
        };
        if !gate.is_bound() {
            let spec = match gate.n_qubits() {
                // The walker executes every 1q gate through the pulse
                // physics (diagonal or not), so every parametric 1q gate
                // is a pulse-backed slot.
                1 => TemplateSlot::Pulse1q {
                    gate: *gate,
                    qubit: qubits[0],
                    duration: noise.gate_duration_dt(gate, qubits),
                    scope,
                },
                2 if diagonal_2q(&gate.bind(&probe)).is_some() => TemplateSlot::Diag {
                    gate: *gate,
                    qubits: qubits.clone(),
                    scope,
                },
                _ => TemplateSlot::Dense { gate: *gate, scope },
            };
            specs.push((op_idx, spec));
        }
        op_idx += 1;
    }
    (specs, op_idx - op_base)
}

/// A [`RecordSink`] that also maps each program op to the trajectory-op
/// index of its applied gate/unitary, via the walker's
/// [`ScheduleSink::begin_applied`] markers.
struct TemplateRecordSink {
    record: RecordSink,
    positions: Vec<Option<usize>>,
    pending: Option<usize>,
}

impl TemplateRecordSink {
    fn new(n_qubits: usize, n_ops: usize) -> Self {
        Self {
            record: RecordSink(TrajectoryProgram::new(n_qubits)),
            positions: vec![None; n_ops],
            pending: None,
        }
    }

    fn mark(&mut self) {
        if let Some(op) = self.pending.take() {
            self.positions[op] = Some(self.record.0.ops().len());
        }
    }
}

impl ScheduleSink for TemplateRecordSink {
    fn gate(&mut self, gate: &Gate, qubits: &[usize]) -> Option<()> {
        self.mark();
        self.record.gate(gate, qubits)
    }

    fn unitary(&mut self, matrix: &Matrix, targets: &[usize]) {
        self.mark();
        self.record.unitary(matrix, targets);
    }

    fn channel(&mut self, channel: NoiseChannel, targets: &[usize]) {
        self.record.channel(channel, targets);
    }

    fn begin_applied(&mut self, op_index: usize) {
        self.pending = Some(op_index);
    }
}

/// Walks `reference` through `exec`'s schedule into a recorded program,
/// returning it alongside the program-op → trajectory-op position map.
/// Both template flavors (trajectory and exact) compile from this one
/// walk, so they cannot drift from each other or from the reference
/// paths, which use the same walker.
fn record_positions(
    exec: &Executor,
    reference: &Program,
) -> (TrajectoryProgram, Vec<Option<usize>>) {
    let mut sink = TemplateRecordSink::new(reference.n_qubits(), reference.ops().len());
    exec.walk_with_sink(reference, &mut sink);
    (sink.record.0, sink.positions)
}

/// Resolves each spec'd program op to the tape slot its trajectory op
/// compiled into.
///
/// # Panics
///
/// Panics if a spec'd program op emitted no applied entry — the walker
/// emits exactly one per program op, so this indicates a walker/template
/// mismatch, not bad user input.
fn resolve_slots(
    positions: &[Option<usize>],
    traj_slots: &[ReplaySlot],
    specs: Vec<(usize, TemplateSlot)>,
) -> Vec<(ReplaySlot, TemplateSlot)> {
    specs
        .into_iter()
        .map(|(op_idx, spec)| {
            let traj_idx =
                positions[op_idx].expect("every program op emits exactly one applied entry");
            (traj_slots[traj_idx], spec)
        })
        .collect()
}

/// The compile-time artifact: the shape-constant schedule as a replay
/// tape, plus the substitution plan for its parametric entries. See the
/// module docs.
#[derive(Debug, Clone)]
pub struct TrajectoryTemplate {
    replay: ReplayProgram,
    slots: Vec<(ReplaySlot, TemplateSlot)>,
}

impl TrajectoryTemplate {
    /// Records `reference` (the shape bound at an arbitrary reference
    /// point) through `exec`'s schedule walk and resolves each spec'd
    /// program op to its tape slot.
    pub(crate) fn record(
        exec: &Executor,
        reference: &Program,
        specs: Vec<(usize, TemplateSlot)>,
    ) -> Self {
        let (recorded, positions) = record_positions(exec, reference);
        let (replay, traj_slots) = ReplayProgram::compile_with_slots(&recorded);
        let slots = resolve_slots(&positions, &traj_slots, specs);
        Self { replay, slots }
    }

    /// Number of parametric slots a dispatch substitutes.
    pub fn n_slots(&self) -> usize {
        self.slots.len()
    }

    /// Tape length of the shape-constant schedule.
    pub fn n_ops(&self) -> usize {
        self.replay.n_ops()
    }

    /// Clones the shape-constant tape (channel tables are shared, not
    /// copied) and substitutes every parametric slot through `eval` —
    /// the whole per-dispatch cost of the trajectory path.
    pub(crate) fn bind_with(
        &self,
        mut eval: impl FnMut(&TemplateSlot) -> SlotValue,
    ) -> ReplayProgram {
        let mut replay = self.replay.clone();
        for (slot, spec) in &self.slots {
            match eval(spec) {
                SlotValue::Diag(d) => replay.substitute_diag(*slot, d),
                SlotValue::Unitary(m) => replay.substitute_unitary(*slot, &m),
            }
        }
        replay
    }
}

/// The exact-path analog of [`TrajectoryTemplate`]: the shape-constant
/// schedule compiled into an [`ExactReplayProgram`] superoperator tape
/// (fused diagonal runs, resolved dense conjugations, resolved
/// channels), plus the same substitution plan. Recorded lazily on the
/// first exact bind, through the same walk the trajectory template and
/// the reference paths use.
#[derive(Debug, Clone)]
pub struct ExactTemplate {
    replay: ExactReplayProgram,
    slots: Vec<(ReplaySlot, TemplateSlot)>,
}

impl ExactTemplate {
    /// Records `reference` through `exec`'s schedule walk and compiles
    /// the exact tape with its substitution map.
    pub(crate) fn record(
        exec: &Executor,
        reference: &Program,
        specs: Vec<(usize, TemplateSlot)>,
    ) -> Self {
        let (recorded, positions) = record_positions(exec, reference);
        let (replay, traj_slots) = ExactReplayProgram::compile_with_slots(&recorded);
        let slots = resolve_slots(&positions, &traj_slots, specs);
        Self { replay, slots }
    }

    /// Number of parametric slots a dispatch substitutes.
    pub fn n_slots(&self) -> usize {
        self.slots.len()
    }

    /// Tape length of the shape-constant schedule.
    pub fn n_ops(&self) -> usize {
        self.replay.n_ops()
    }

    /// Clones the shape-constant tape (resolved channels are shared,
    /// not copied) and substitutes every parametric slot through `eval`
    /// — the whole per-dispatch cost of the exact path.
    pub(crate) fn bind_with(
        &self,
        mut eval: impl FnMut(&TemplateSlot) -> SlotValue,
    ) -> ExactReplayProgram {
        let mut replay = self.replay.clone();
        for (slot, spec) in &self.slots {
            match eval(spec) {
                SlotValue::Diag(d) => replay.substitute_diag(*slot, d),
                SlotValue::Unitary(m) => replay.substitute_unitary(*slot, &m),
            }
        }
        replay
    }
}
