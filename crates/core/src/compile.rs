//! The compile/execute split: transpile once per circuit *shape*, bind
//! parameters at dispatch.
//!
//! The paper's workloads — and any production QAOA service — evaluate
//! one circuit shape at thousands of parameter points. Hand-driving
//! [`Executor`] repeats the expensive shape work (cancellation, SABRE
//! placement, routing) on every call even though only the bound angles
//! change. This module factors that work into a cacheable artifact:
//!
//! - [`CircuitCompiler`] runs the shape work once, producing
//! - [`CompiledCircuit`], which binds a parameter vector into an
//!   executable [`Program`] in `O(gates)` and knows how to decode
//!   measured wire statistics back to logical qubits.
//!
//! The compiled artifact is keyed by [`Circuit::structural_key`], which
//! is what `hgp_serve`'s compiled-program cache indexes on.
//!
//! ```
//! use hgp_core::compile::CircuitCompiler;
//! use hgp_core::qaoa::qaoa_circuit;
//! use hgp_device::Backend;
//! use hgp_graph::instances;
//!
//! let backend = Backend::ibmq_guadalupe();
//! let graph = instances::task1_three_regular_6();
//! let compiler = CircuitCompiler::new(&backend, vec![0, 1, 2, 3, 4, 5]);
//! let compiled = compiler.compile(&qaoa_circuit(&graph, 1)).expect("fits region");
//! // Binding is cheap; do it once per parameter point.
//! let program = compiled.bind(&[0.35, 0.25]);
//! assert!(program.count_gates() > 0);
//! ```

use std::sync::Arc;

use hgp_circuit::Circuit;
use hgp_device::Backend;
use hgp_math::pauli::{PauliString, PauliSum};
use hgp_noise::NoiseModel;
use hgp_sim::Counts;
use hgp_transpile::sabre::choose_initial_layout;
use hgp_transpile::Layout;

use crate::executor::Executor;
use crate::models::{region_coupling, route_in_region, GateModelOptions};
use crate::program::Program;

/// Compiles logical circuits into a fixed physical region, once per
/// shape.
///
/// The region plays the same role as in the model types: routing happens
/// inside a fixed connected set of physical qubits, so the simulated
/// register never grows beyond the region and the logical-to-physical
/// mapping is reproducible. A circuit of `n` qubits uses the first `n`
/// region entries.
#[derive(Debug, Clone)]
pub struct CircuitCompiler<'a> {
    backend: &'a Backend,
    region: Vec<usize>,
    options: GateModelOptions,
}

impl<'a> CircuitCompiler<'a> {
    /// Creates a compiler routing into `region` (physical qubits) with
    /// the optimized pipeline ([`GateModelOptions::optimized`]).
    ///
    /// # Panics
    ///
    /// Panics if a region entry is out of range or repeated.
    pub fn new(backend: &'a Backend, region: Vec<usize>) -> Self {
        let mut seen = vec![false; backend.n_qubits()];
        for &p in &region {
            assert!(p < backend.n_qubits(), "physical qubit {p} out of range");
            assert!(!seen[p], "physical qubit {p} repeated in region");
            seen[p] = true;
        }
        Self {
            backend,
            region,
            options: GateModelOptions::optimized(),
        }
    }

    /// Overrides the pass configuration (e.g. [`GateModelOptions::raw`]
    /// for the paper's unoptimized baseline).
    pub fn with_options(mut self, options: GateModelOptions) -> Self {
        self.options = options;
        self
    }

    /// The backend compiled against.
    pub fn backend(&self) -> &Backend {
        self.backend
    }

    /// The full available region.
    pub fn region(&self) -> &[usize] {
        &self.region
    }

    /// Runs the shape work — cancellation, placement, routing — on a
    /// (possibly parametrized) logical circuit. Free parameters survive
    /// compilation and are bound per dispatch via
    /// [`CompiledCircuit::bind`].
    ///
    /// # Errors
    ///
    /// Returns an error if the circuit is wider than the region.
    ///
    /// # Panics
    ///
    /// Panics if the first `n` region qubits induce a disconnected
    /// subgraph (routing inside it would deadlock).
    pub fn compile(&self, circuit: &Circuit) -> Result<CompiledCircuit, String> {
        let n = circuit.n_qubits();
        if n > self.region.len() {
            return Err(format!(
                "circuit has {n} qubits but the region only {}",
                self.region.len()
            ));
        }
        let key = circuit.structural_key();
        let region: Vec<usize> = self.region[..n].to_vec();
        // Entry placement + the shared shape pipeline (cancellation,
        // routing, cancellation) — the exact sequence `GateModel` runs,
        // so compiled shapes stay in lockstep with model-built circuits.
        let sub = region_coupling(self.backend, &region);
        let entry = if self.options.sabre_iterations > 0 {
            choose_initial_layout(circuit, &sub, self.options.sabre_iterations)
        } else {
            Layout::trivial(n, n)
        };
        let (wire_circuit, final_layout, n_swaps) =
            route_in_region(circuit, self.backend, &region, &entry, &self.options)?;
        // The compiled shape carries its noise model: channel parameters
        // (T1/T2, gate errors, durations, readout) are resolved once per
        // shape and cached with the program, so noisy dispatches — exact
        // or trajectory — never rebuild them.
        let noise = Arc::new(NoiseModel::from_backend(self.backend, &region));
        Ok(CompiledCircuit {
            key,
            region,
            circuit: wire_circuit,
            final_layout,
            n_swaps,
            n_logical: n,
            noise,
        })
    }
}

/// A circuit shape after transpilation: routed onto region wires, still
/// parametrized, ready for per-dispatch binding.
///
/// Wire `i` of the compiled circuit lives on physical qubit
/// `region()[i]`; an [`Executor`] built over that layout executes bound
/// programs, and [`CompiledCircuit::decode_counts`] /
/// [`CompiledCircuit::decode_probabilities`] undo the routing
/// permutation so results read in logical qubit order.
#[derive(Debug, Clone)]
pub struct CompiledCircuit {
    key: u64,
    region: Vec<usize>,
    circuit: Circuit,
    final_layout: Layout,
    n_swaps: usize,
    n_logical: usize,
    /// The wire layout's noise parameters, built once at compile time
    /// and shared with every executor of this shape.
    noise: Arc<NoiseModel>,
}

impl CompiledCircuit {
    /// The source circuit's [`Circuit::structural_key`] — the cache key.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Number of logical qubits (equals the wire count).
    pub fn n_qubits(&self) -> usize {
        self.n_logical
    }

    /// Number of free parameters a dispatch must bind.
    pub fn n_params(&self) -> usize {
        self.circuit.n_params()
    }

    /// Physical qubit of each wire.
    pub fn region(&self) -> &[usize] {
        &self.region
    }

    /// The routed wire circuit (possibly parametrized).
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// SWAPs inserted by routing.
    pub fn n_swaps(&self) -> usize {
        self.n_swaps
    }

    /// Binds a parameter vector into an executable program over region
    /// wires — the per-dispatch step, `O(gates)`.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != self.n_params()`.
    pub fn bind(&self, params: &[f64]) -> Program {
        let bound = self.circuit.bind(params);
        Program::from_circuit(&bound).expect("bound circuit converts")
    }

    /// The compiled shape's cached noise model (wire layout order).
    pub fn noise_model(&self) -> &Arc<NoiseModel> {
        &self.noise
    }

    /// An executor over this compiled circuit's wire layout, reusing the
    /// noise model cached at compile time. `backend` must be the one the
    /// circuit was compiled against.
    pub fn executor<'b>(&self, backend: &'b Backend) -> Executor<'b> {
        Executor::with_noise_model(backend, self.region.clone(), Arc::clone(&self.noise))
    }

    /// The wire hosting logical qubit `l` at circuit exit (after
    /// routing's final permutation).
    pub fn exit_wire(&self, l: usize) -> usize {
        self.final_layout.physical(l)
    }

    /// Maps measured wire counts back to logical-qubit counts.
    pub fn decode_counts(&self, counts: &Counts) -> Counts {
        let map: Vec<usize> = (0..self.n_logical).map(|l| self.exit_wire(l)).collect();
        counts.remapped(&map, self.n_logical)
    }

    /// Maps a wire-basis probability vector back to logical order.
    ///
    /// # Panics
    ///
    /// Panics if `wire_probs.len() != 2^n_qubits`.
    pub fn decode_probabilities(&self, wire_probs: &[f64]) -> Vec<f64> {
        assert_eq!(wire_probs.len(), 1 << self.n_logical, "probability length");
        let map: Vec<usize> = (0..self.n_logical).map(|l| self.exit_wire(l)).collect();
        let mut out = vec![0.0; 1 << self.n_logical];
        for (s, &p) in wire_probs.iter().enumerate() {
            let mut decoded = 0usize;
            for (l, &w) in map.iter().enumerate() {
                if (s >> w) & 1 == 1 {
                    decoded |= 1 << l;
                }
            }
            out[decoded] += p;
        }
        out
    }

    /// Rewrites an observable over logical qubits into wire indices, so
    /// it can be evaluated directly on the executed state.
    ///
    /// # Panics
    ///
    /// Panics if the observable width disagrees with the circuit.
    pub fn wire_observable(&self, observable: &PauliSum) -> PauliSum {
        assert_eq!(
            observable.n_qubits(),
            self.n_logical,
            "observable width must match the circuit"
        );
        let terms = observable
            .terms()
            .iter()
            .map(|t| {
                let factors = t
                    .factors()
                    .iter()
                    .map(|&(q, p)| (self.exit_wire(q), p))
                    .collect();
                PauliString::new(self.n_logical, factors, t.coeff())
            })
            .collect();
        PauliSum::from_terms(terms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qaoa::{cost_hamiltonian, qaoa_circuit};
    use hgp_graph::instances;
    use hgp_sim::{SimBackend, StateVector};

    fn compiled_qaoa<'a>(
        backend: &'a Backend,
        graph: &hgp_graph::Graph,
    ) -> (CircuitCompiler<'a>, CompiledCircuit) {
        let compiler = CircuitCompiler::new(backend, (0..graph.n_nodes()).collect());
        let compiled = compiler.compile(&qaoa_circuit(graph, 1)).unwrap();
        (compiler, compiled)
    }

    #[test]
    fn compiled_key_matches_source_key() {
        let backend = Backend::ideal(6);
        let graph = instances::task1_three_regular_6();
        let (_, compiled) = compiled_qaoa(&backend, &graph);
        assert_eq!(compiled.key(), qaoa_circuit(&graph, 1).structural_key());
        assert_eq!(compiled.n_params(), 2);
        assert_eq!(compiled.n_qubits(), 6);
    }

    #[test]
    fn bind_then_execute_matches_naive_per_point_compilation() {
        // The split's semantic contract: compiling once and binding at N
        // points gives the same distributions as binding first and
        // simulating the logical circuit directly.
        let backend = Backend::ideal(6);
        let graph = instances::task2_random_6();
        let (_, compiled) = compiled_qaoa(&backend, &graph);
        for params in [[0.35, 0.25], [1.1, -0.4], [0.0, 0.9]] {
            let wire = StateVector::execute(&compiled.circuit().bind(&params)).unwrap();
            let got = compiled.decode_probabilities(&wire.probabilities());
            let reference = StateVector::execute(&qaoa_circuit(&graph, 1).bind(&params)).unwrap();
            for (b, (g, r)) in got.iter().zip(reference.probabilities()).enumerate() {
                assert!((g - r).abs() < 1e-10, "params {params:?}, state {b}");
            }
        }
    }

    #[test]
    fn decode_counts_matches_decode_probabilities() {
        let backend = Backend::ibmq_guadalupe();
        let graph = instances::task1_three_regular_6();
        let compiler = CircuitCompiler::new(&backend, vec![1, 2, 3, 4, 5, 8]);
        let compiled = compiler.compile(&qaoa_circuit(&graph, 1)).unwrap();
        let program = compiled.bind(&[0.35, 0.25]);
        let exec = compiled.executor(&backend);
        let rho = exec.run(&program);
        let counts = exec.sample_state(&rho, 400_000, 9);
        let logical = compiled.decode_counts(&counts);
        let probs = compiled
            .decode_probabilities(&exec.readout().apply_to_probabilities(&rho.probabilities()));
        for (b, &p) in probs.iter().enumerate() {
            assert!((logical.frequency(b) - p).abs() < 0.01, "state {b:06b}");
        }
    }

    #[test]
    fn wire_observable_preserves_expectation() {
        let backend = Backend::ideal(6);
        let graph = instances::task2_random_6();
        let (_, compiled) = compiled_qaoa(&backend, &graph);
        let params = [0.7, 0.3];
        let obs = cost_hamiltonian(&graph);
        let wire_state = StateVector::execute(&compiled.circuit().bind(&params)).unwrap();
        let by_wire = wire_state.expectation(&compiled.wire_observable(&obs));
        let by_logical = StateVector::execute(&qaoa_circuit(&graph, 1).bind(&params))
            .unwrap()
            .expectation(&obs);
        assert!(
            (by_wire - by_logical).abs() < 1e-10,
            "{by_wire} vs {by_logical}"
        );
    }

    #[test]
    fn oversized_circuit_is_an_error() {
        let backend = Backend::ideal(4);
        let compiler = CircuitCompiler::new(&backend, vec![0, 1, 2]);
        let wide = qaoa_circuit(&instances::task1_three_regular_6(), 1);
        assert!(compiler.compile(&wide).is_err());
    }
}
