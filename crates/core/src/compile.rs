//! The compile/execute split: transpile once per program *shape*, bind
//! parameters at dispatch.
//!
//! The paper's workloads — and any production QAOA service — evaluate
//! one program shape at thousands of parameter points. Hand-driving
//! [`Executor`] repeats the expensive shape work (cancellation, SABRE
//! placement, routing) on every call even though only the bound angles
//! change. This module factors that work into cacheable artifacts, one
//! per program family:
//!
//! - [`CircuitCompiler::compile`] runs the circuit shape work once,
//!   producing a [`CompiledCircuit`], which binds a parameter vector
//!   into an executable [`Program`] in `O(gates)` and knows how to
//!   decode measured wire statistics back to logical qubits;
//! - [`CircuitCompiler::compile_hybrid`] does the same for hybrid
//!   gate-pulse QAOA shapes ([`HybridShape`]: graph, depth, mixer
//!   duration, pass options), producing a [`CompiledProgram`] — the
//!   paper's central abstraction as a served artifact. The shape step
//!   routes every Hamiltonian layer with chained layouts, resolves the
//!   per-wire mixer pulse calibration (Rabi rate, amplitude
//!   miscalibration, frame offset, envelope area), and builds the
//!   layout's noise model; [`CompiledProgram::bind`] then substitutes
//!   QAOA angles and per-qubit pulse trims per dispatch, integrating
//!   each mixer drive pulse from the cached calibration —
//!   bit-identical to [`crate::models::HybridModel::build`], which
//!   delegates here.
//!
//! Compiled artifacts are keyed by [`Circuit::structural_key`] /
//! [`HybridShape::structural_key`] (hybrid keys fold in a leading
//! domain tag, keeping them apart from the untagged circuit encoding),
//! which is what `hgp_serve`'s compiled-program cache indexes on.
//! Both artifacts carry their layout's `Arc<NoiseModel>`, so noisy
//! dispatches — exact density walks or `O(2^n)`-per-shot stochastic
//! trajectories — never rebuild channel parameters.
//!
//! Both artifacts also carry a
//! [`TrajectoryTemplate`](crate::template::TrajectoryTemplate): the
//! noisy ASAP schedule recorded **once per shape** (lazily, on the
//! first trajectory bind, so non-trajectory workloads never pay it)
//! into an op-fused [`hgp_sim::ReplayProgram`] tape with parametric
//! slots. [`CompiledCircuit::bind_replay`] /
//! [`CompiledProgram::bind_replay`] substitute a binding's parametric
//! entries (bound-angle diagonals, pulse-backed parametric 1q gates,
//! mixer pulse blocks) into the cached tape — no per-dispatch schedule
//! walk, no channel rebuild — bit-identical to recording the bound
//! program from scratch, which is also the fallback taken for
//! executors whose physics deviate from the recording (dynamical
//! decoupling, ZNE-scaled noise models).
//!
//! Everything reachable from request-derived data returns typed errors
//! rather than panicking: a malformed shape (empty graph, invalid mixer
//! duration, disconnected region) must fail its job, never a serving
//! worker.
//!
//! ```
//! use hgp_core::compile::{CircuitCompiler, HybridShape};
//! use hgp_core::qaoa::qaoa_circuit;
//! use hgp_device::Backend;
//! use hgp_graph::instances;
//!
//! let backend = Backend::ibmq_guadalupe();
//! let graph = instances::task1_three_regular_6();
//! let compiler = CircuitCompiler::new(&backend, vec![0, 1, 2, 3, 4, 5]);
//! let compiled = compiler.compile(&qaoa_circuit(&graph, 1)).expect("fits region");
//! // Binding is cheap; do it once per parameter point.
//! let program = compiled.bind(&[0.35, 0.25]);
//! assert!(program.count_gates() > 0);
//!
//! // The hybrid analogue: gate Hamiltonian layers + native mixer
//! // pulses, compiled once, bound per point.
//! let shape = HybridShape::new(graph, 1);
//! let hybrid = compiler.compile_hybrid(&shape).expect("compiles");
//! let program = hybrid.bind(&vec![0.0; hybrid.n_params()]);
//! assert!(program.count_pulse_blocks() > 0);
//! ```

use std::sync::{Arc, OnceLock};

use hgp_circuit::Circuit;
use hgp_device::Backend;
use hgp_graph::Graph;
use hgp_math::pauli::{PauliString, PauliSum};
use hgp_math::Matrix;
use hgp_noise::NoiseModel;
use hgp_pulse::propagator::drive_propagator;
use hgp_pulse::Waveform;
use hgp_sim::Counts;
use hgp_transpile::sabre::choose_initial_layout;
use hgp_transpile::Layout;

use hgp_sim::{ExactReplayProgram, ReplayProgram};

use crate::executor::Executor;
use crate::models::{
    route_in_region, try_region_coupling, GateModelOptions, FREQ_SHIFT_HW_BOUND,
    FREQ_TRIM_AUTHORITY_RAD, MIXER_AMP_BOUND, PHASE_TRIM_BOUND,
};
use crate::program::{BlockKind, Program};
use crate::qaoa::append_hamiltonian_layer;
use crate::template::{
    parametric_gate_specs, ExactTemplate, ParamScope, SlotValue, TemplateSlot, TrajectoryTemplate,
};

/// Compiles logical circuits into a fixed physical region, once per
/// shape.
///
/// The region plays the same role as in the model types: routing happens
/// inside a fixed connected set of physical qubits, so the simulated
/// register never grows beyond the region and the logical-to-physical
/// mapping is reproducible. A circuit of `n` qubits uses the first `n`
/// region entries.
#[derive(Debug, Clone)]
pub struct CircuitCompiler<'a> {
    backend: &'a Backend,
    region: Vec<usize>,
    options: GateModelOptions,
}

impl<'a> CircuitCompiler<'a> {
    /// Creates a compiler routing into `region` (physical qubits) with
    /// the optimized pipeline ([`GateModelOptions::optimized`]).
    ///
    /// # Panics
    ///
    /// Panics if a region entry is out of range or repeated.
    pub fn new(backend: &'a Backend, region: Vec<usize>) -> Self {
        let mut seen = vec![false; backend.n_qubits()];
        for &p in &region {
            assert!(p < backend.n_qubits(), "physical qubit {p} out of range");
            assert!(!seen[p], "physical qubit {p} repeated in region");
            seen[p] = true;
        }
        Self {
            backend,
            region,
            options: GateModelOptions::optimized(),
        }
    }

    /// Overrides the pass configuration (e.g. [`GateModelOptions::raw`]
    /// for the paper's unoptimized baseline).
    pub fn with_options(mut self, options: GateModelOptions) -> Self {
        self.options = options;
        self
    }

    /// The backend compiled against.
    pub fn backend(&self) -> &Backend {
        self.backend
    }

    /// The full available region.
    pub fn region(&self) -> &[usize] {
        &self.region
    }

    /// Runs the shape work — cancellation, placement, routing — on a
    /// (possibly parametrized) logical circuit. Free parameters survive
    /// compilation and are bound per dispatch via
    /// [`CompiledCircuit::bind`].
    ///
    /// # Errors
    ///
    /// Returns an error — never panics — if the circuit is wider than
    /// the region or its first `n` region qubits induce a disconnected
    /// subgraph (routing inside it would deadlock): a request-derived
    /// circuit must fail its job, not the serving thread.
    pub fn compile(&self, circuit: &Circuit) -> Result<CompiledCircuit, String> {
        let n = circuit.n_qubits();
        if n > self.region.len() {
            return Err(format!(
                "circuit has {n} qubits but the region only {}",
                self.region.len()
            ));
        }
        let key = circuit.structural_key();
        let region: Vec<usize> = self.region[..n].to_vec();
        // Entry placement + the shared shape pipeline (cancellation,
        // routing, cancellation) — the exact sequence `GateModel` runs,
        // so compiled shapes stay in lockstep with model-built circuits.
        let sub = try_region_coupling(self.backend, &region)?;
        let entry = if self.options.sabre_iterations > 0 {
            choose_initial_layout(circuit, &sub, self.options.sabre_iterations)
        } else {
            Layout::trivial(n, n)
        };
        let (wire_circuit, final_layout, n_swaps) =
            route_in_region(circuit, self.backend, &region, &entry, &self.options)?;
        // The compiled shape carries its noise model: channel parameters
        // (T1/T2, gate errors, durations, readout) are resolved once per
        // shape and cached with the program, so noisy dispatches — exact
        // or trajectory — never rebuild them.
        let noise = Arc::new(NoiseModel::from_backend(self.backend, &region));
        Ok(CompiledCircuit {
            key,
            region,
            circuit: wire_circuit,
            final_layout,
            n_swaps,
            n_logical: n,
            noise,
            backend: self.backend.clone(),
            template: OnceLock::new(),
            exact_template: OnceLock::new(),
        })
    }

    /// Runs the hybrid shape work — per-layer Hamiltonian routing,
    /// mixer pulse-block calibration, noise-model construction — once
    /// per [`HybridShape`], producing a [`CompiledProgram`] whose
    /// [`CompiledProgram::bind`] substitutes QAOA angles and pulse trims
    /// in `O(gates + qubits)` per dispatch.
    ///
    /// The shape carries its own [`GateModelOptions`] (they are part of
    /// its structural identity), so this compiler's
    /// [`CircuitCompiler::with_options`] setting is ignored here.
    ///
    /// # Errors
    ///
    /// Returns an error — never panics — on any malformed
    /// request-derived shape: an empty or oversized graph, zero layers,
    /// an invalid mixer duration, or a region whose first `n` qubits
    /// induce a disconnected subgraph.
    pub fn compile_hybrid(&self, shape: &HybridShape) -> Result<CompiledProgram, String> {
        shape.validate()?;
        let n = shape.graph().n_nodes();
        if n > self.region.len() {
            return Err(format!(
                "hybrid program has {n} qubits but the region only {}",
                self.region.len()
            ));
        }
        let region: Vec<usize> = self.region[..n].to_vec();
        let options = shape.options();
        let sub = try_region_coupling(self.backend, &region)?;
        // Entry placement from a Hamiltonian-layer probe, then per-layer
        // routing with chained layouts — the exact sequence
        // `HybridModel` has always run, so compiled shapes stay in
        // lockstep with model-built programs (bit-for-bit).
        let mut current = if options.sabre_iterations > 0 {
            let mut probe = Circuit::new(n);
            let gamma = probe.add_param();
            append_hamiltonian_layer(&mut probe, shape.graph(), gamma);
            choose_initial_layout(&probe, &sub, options.sabre_iterations)
        } else {
            Layout::trivial(n, n)
        };
        let mut layers = Vec::with_capacity(shape.p());
        for layer in 0..shape.p() {
            let mut qc = Circuit::new(n);
            let gamma = qc.add_param();
            if layer == 0 {
                // The initial |+> wall belongs to the first layer's gate
                // part (state preparation stays at the gate level).
                for q in 0..n {
                    qc.h(q);
                }
            }
            append_hamiltonian_layer(&mut qc, shape.graph(), gamma);
            let (circuit, out_layout, _n_swaps) =
                route_in_region(&qc, self.backend, &region, &current, &options)?;
            let wires = (0..n).map(|l| out_layout.physical(l)).collect();
            layers.push(CompiledPulseLayer { circuit, wires });
            current = out_layout;
        }
        // Mixer pulse-block calibration, resolved once per shape (the
        // same per-qubit Rabi calibration `PulseLibrary` applies to the
        // backend's own gate pulses): binding only has to scale the
        // commanded angle by the cached rate and integrate the envelope.
        let wire_drive = region
            .iter()
            .map(|&p| {
                let qp = self.backend.qubit(p);
                DriveCalibration {
                    strength: qp.drive_strength,
                    amp_error: qp.amp_error,
                    freq_offset: qp.freq_offset,
                }
            })
            .collect();
        let mixer_waveform = Waveform::gaussian(shape.mixer_duration_dt());
        let noise = Arc::new(NoiseModel::from_backend(self.backend, &region));
        Ok(CompiledProgram {
            key: shape.structural_key(),
            shape: shape.clone(),
            region,
            layers,
            final_layout: current,
            mixer_area: mixer_waveform.area(),
            mixer_waveform,
            wire_drive,
            n_logical: n,
            noise,
            backend: self.backend.clone(),
            template: OnceLock::new(),
            exact_template: OnceLock::new(),
        })
    }
}

/// A circuit shape after transpilation: routed onto region wires, still
/// parametrized, ready for per-dispatch binding.
///
/// Wire `i` of the compiled circuit lives on physical qubit
/// `region()[i]`; an [`Executor`] built over that layout executes bound
/// programs, and [`CompiledCircuit::decode_counts`] /
/// [`CompiledCircuit::decode_probabilities`] undo the routing
/// permutation so results read in logical qubit order.
#[derive(Debug, Clone)]
pub struct CompiledCircuit {
    key: u64,
    region: Vec<usize>,
    circuit: Circuit,
    final_layout: Layout,
    n_swaps: usize,
    n_logical: usize,
    /// The wire layout's noise parameters, built once at compile time
    /// and shared with every executor of this shape.
    noise: Arc<NoiseModel>,
    /// The backend this shape was compiled against — the identity
    /// [`CompiledCircuit::bind_replay`] checks before trusting the
    /// recorded template's fixed-gate pulse physics.
    backend: Backend,
    /// The shape-constant trajectory schedule (channel structure, idle
    /// windows, fixed-gate pulse unitaries) with parametric slots —
    /// recorded lazily on the first trajectory bind, so shapes serving
    /// only exact/sampled jobs never pay the recording, then substituted
    /// per dispatch by [`CompiledCircuit::bind_replay`].
    template: OnceLock<TrajectoryTemplate>,
    /// The exact-path twin: the same shape-constant schedule compiled
    /// into a superoperator tape, recorded lazily on the first exact
    /// bind and substituted by [`CompiledCircuit::bind_exact`].
    exact_template: OnceLock<ExactTemplate>,
}

impl CompiledCircuit {
    /// The source circuit's [`Circuit::structural_key`] — the cache key.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Number of logical qubits (equals the wire count).
    pub fn n_qubits(&self) -> usize {
        self.n_logical
    }

    /// Number of free parameters a dispatch must bind.
    pub fn n_params(&self) -> usize {
        self.circuit.n_params()
    }

    /// Physical qubit of each wire.
    pub fn region(&self) -> &[usize] {
        &self.region
    }

    /// The routed wire circuit (possibly parametrized).
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// SWAPs inserted by routing.
    pub fn n_swaps(&self) -> usize {
        self.n_swaps
    }

    /// Binds a parameter vector into an executable program over region
    /// wires — the per-dispatch step, `O(gates)`.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != self.n_params()`.
    pub fn bind(&self, params: &[f64]) -> Program {
        let bound = self.circuit.bind(params);
        Program::from_circuit(&bound).expect("bound circuit converts")
    }

    /// The shape-constant trajectory schedule template, if a trajectory
    /// bind has recorded it yet (recording is lazy).
    pub fn replay_template(&self) -> Option<&TrajectoryTemplate> {
        self.template.get()
    }

    /// Whether `exec` matches the recorded template's physics: templates
    /// are recorded against this artifact's own backend and noise model
    /// with no dynamical decoupling, so an executor that deviates (a
    /// different or recalibrated backend, a scaled ZNE model, DD
    /// enabled) must take the full walk instead.
    fn template_compatible(&self, exec: &Executor) -> bool {
        !exec.uses_dynamical_decoupling()
            && Arc::ptr_eq(exec.noise_model(), &self.noise)
            && *exec.backend() == self.backend
    }

    /// Binds a parameter vector straight into an executable replay tape
    /// — the trajectory-path analogue of [`CompiledCircuit::bind`] that
    /// skips the per-dispatch schedule walk entirely: the template's
    /// recorded tape (walked lazily, once per shape) is cloned (channel
    /// tables shared) and only the parametric entries (bound-angle
    /// diagonals, pulse-backed parametric 1q gates) are recomputed.
    ///
    /// Bit-identical to `exec.replay_program(&self.bind(params))` —
    /// which is also the path taken when `exec` does not match the
    /// template's physics (dynamical decoupling enabled, or a noise
    /// model other than this shape's cached one, e.g. a ZNE-scaled
    /// copy). `exec` must be an executor over this circuit's wire layout
    /// (see [`CompiledCircuit::executor`]).
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != self.n_params()`.
    pub fn bind_replay(&self, exec: &Executor, params: &[f64]) -> ReplayProgram {
        assert_eq!(params.len(), self.n_params(), "parameter count");
        if !self.template_compatible(exec) {
            return exec.replay_program(&self.bind(params));
        }
        let template = self.template.get_or_init(|| {
            let (reference, specs) = self.template_parts();
            TrajectoryTemplate::record(exec, &reference, specs)
        });
        template.bind_with(|spec| spec.eval(exec, params))
    }

    /// The recording inputs both template flavors share: the shape
    /// bound at the reference point, and its parametric-op specs.
    fn template_parts(&self) -> (Program, Vec<(usize, TemplateSlot)>) {
        let reference =
            Program::from_circuit(&self.circuit.bind(&vec![0.0; self.circuit.n_params()]))
                .expect("bound circuit converts");
        let (specs, _ops) = parametric_gate_specs(&self.noise, &self.circuit, ParamScope::Full, 0);
        (reference, specs)
    }

    /// The shape-constant exact schedule template, if an exact bind has
    /// recorded it yet (recording is lazy).
    pub fn exact_template(&self) -> Option<&ExactTemplate> {
        self.exact_template.get()
    }

    /// Binds a parameter vector straight into an exact-path
    /// superoperator tape — the density-matrix analogue of
    /// [`CompiledCircuit::bind_replay`]: no per-dispatch schedule walk,
    /// no channel re-resolution, only the parametric entries recomputed.
    ///
    /// Parity against `exec.exact_replay_program(&self.bind(params))` —
    /// which is also the fallback when `exec` deviates from the
    /// template's physics — follows the exact-tape contract:
    /// bit-identical tape, hence bit-identical replay.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != self.n_params()`.
    pub fn bind_exact(&self, exec: &Executor, params: &[f64]) -> ExactReplayProgram {
        assert_eq!(params.len(), self.n_params(), "parameter count");
        if !self.template_compatible(exec) {
            return exec.exact_replay_program(&self.bind(params));
        }
        let template = self.exact_template.get_or_init(|| {
            let (reference, specs) = self.template_parts();
            ExactTemplate::record(exec, &reference, specs)
        });
        template.bind_with(|spec| spec.eval(exec, params))
    }

    /// The compiled shape's cached noise model (wire layout order).
    pub fn noise_model(&self) -> &Arc<NoiseModel> {
        &self.noise
    }

    /// An executor over this compiled circuit's wire layout, reusing the
    /// noise model cached at compile time. `backend` must be the one the
    /// circuit was compiled against.
    pub fn executor<'b>(&self, backend: &'b Backend) -> Executor<'b> {
        Executor::with_noise_model(backend, self.region.clone(), Arc::clone(&self.noise))
    }

    /// The wire hosting logical qubit `l` at circuit exit (after
    /// routing's final permutation).
    pub fn exit_wire(&self, l: usize) -> usize {
        self.final_layout.physical(l)
    }

    /// Maps measured wire counts back to logical-qubit counts.
    pub fn decode_counts(&self, counts: &Counts) -> Counts {
        let map: Vec<usize> = (0..self.n_logical).map(|l| self.exit_wire(l)).collect();
        counts.remapped(&map, self.n_logical)
    }

    /// Maps a wire-basis probability vector back to logical order.
    ///
    /// # Panics
    ///
    /// Panics if `wire_probs.len() != 2^n_qubits`.
    pub fn decode_probabilities(&self, wire_probs: &[f64]) -> Vec<f64> {
        assert_eq!(wire_probs.len(), 1 << self.n_logical, "probability length");
        let map: Vec<usize> = (0..self.n_logical).map(|l| self.exit_wire(l)).collect();
        let mut out = vec![0.0; 1 << self.n_logical];
        for (s, &p) in wire_probs.iter().enumerate() {
            let mut decoded = 0usize;
            for (l, &w) in map.iter().enumerate() {
                if (s >> w) & 1 == 1 {
                    decoded |= 1 << l;
                }
            }
            out[decoded] += p;
        }
        out
    }

    /// Rewrites an observable over logical qubits into wire indices, so
    /// it can be evaluated directly on the executed state.
    ///
    /// # Panics
    ///
    /// Panics if the observable width disagrees with the circuit.
    pub fn wire_observable(&self, observable: &PauliSum) -> PauliSum {
        assert_eq!(
            observable.n_qubits(),
            self.n_logical,
            "observable width must match the circuit"
        );
        let terms = observable
            .terms()
            .iter()
            .map(|t| {
                let factors = t
                    .factors()
                    .iter()
                    .map(|&(q, p)| (self.exit_wire(q), p))
                    .collect();
                PauliString::new(self.n_logical, factors, t.coeff())
            })
            .collect();
        PauliSum::from_terms(terms)
    }
}

/// The compile-time identity of a hybrid gate-pulse QAOA program: the
/// problem graph, the QAOA depth, the mixer pulse duration, and the
/// gate-level pass configuration.
///
/// A shape is to [`CompiledProgram`] what a parametrized [`Circuit`] is
/// to [`CompiledCircuit`]: the cacheable unit. Every parameter binding
/// (QAOA angles plus per-qubit pulse trims) of one shape shares one
/// compiled artifact, keyed by [`HybridShape::structural_key`].
///
/// Construction never validates (shapes cross the serve wire, where
/// malformed values must fail a *job*); [`CircuitCompiler::compile_hybrid`]
/// returns typed errors for invalid shapes.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridShape {
    graph: Graph,
    p: usize,
    mixer_duration_dt: u32,
    options: GateModelOptions,
}

impl HybridShape {
    /// A hybrid shape with the raw 320 dt mixer duration and raw
    /// (unoptimized) gate passes.
    pub fn new(graph: Graph, p: usize) -> Self {
        Self {
            graph,
            p,
            mixer_duration_dt: 320,
            options: GateModelOptions::raw(),
        }
    }

    /// Overrides the mixer pulse duration (Step I's knob). Validity
    /// (positive multiple of 32 dt) is checked at compile time.
    pub fn with_mixer_duration(mut self, duration_dt: u32) -> Self {
        self.mixer_duration_dt = duration_dt;
        self
    }

    /// Overrides the gate-level pass configuration.
    pub fn with_options(mut self, options: GateModelOptions) -> Self {
        self.options = options;
        self
    }

    /// The problem instance.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// QAOA depth.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Mixer pulse duration, `dt`.
    pub fn mixer_duration_dt(&self) -> u32 {
        self.mixer_duration_dt
    }

    /// The gate-level pass configuration.
    pub fn options(&self) -> GateModelOptions {
        self.options
    }

    /// Number of logical qubits (= graph nodes).
    pub fn n_qubits(&self) -> usize {
        self.graph.n_nodes()
    }

    /// Parameters per QAOA layer: `gamma`, the shared mixer angle
    /// `theta`, and `(phase, freq)` per qubit.
    pub fn params_per_layer(&self) -> usize {
        2usize.saturating_add(self.n_qubits().saturating_mul(2))
    }

    /// Total trainable parameters a binding must supply.
    ///
    /// Saturating: a wire-decoded shape with an absurd depth must
    /// produce a huge-but-honest count for the validation layer to
    /// reject, never wrap around to a small one (which would let the
    /// request past validation and into an unbounded compile loop).
    pub fn n_params(&self) -> usize {
        self.p.saturating_mul(self.params_per_layer())
    }

    /// Indices of the core (algorithmic) parameters — per layer, `gamma`
    /// and the shared mixer angle `theta` — for the two-stage
    /// coarse-gate / fine-pulse-trim training protocol.
    pub fn coarse_param_ids(&self) -> Vec<usize> {
        let per_layer = self.params_per_layer();
        (0..self.p)
            .flat_map(|l| [l * per_layer, l * per_layer + 1])
            .collect()
    }

    /// The largest QAOA depth a served shape may declare. Far above any
    /// workload this simulator can evaluate, but small enough that a
    /// wire-supplied depth can never turn the per-layer compile loop
    /// into a denial of service.
    pub const MAX_P: usize = 64;
    /// The largest graph a served shape may declare (the `O(4^n)` exact
    /// walk is already out of reach well below this).
    pub const MAX_QUBITS: usize = 28;
    /// The longest mixer pulse a served shape may declare, `dt`
    /// (binding integrates one SU(2) step per dt per qubit per layer).
    pub const MAX_MIXER_DURATION_DT: u32 = 1 << 16;

    /// Structural sanity of the shape itself (backend-independent).
    ///
    /// # Errors
    ///
    /// Returns an error for an empty or oversized graph, a zero or
    /// absurd layer count, or a mixer duration that is not a positive
    /// multiple of 32 dt within [`HybridShape::MAX_MIXER_DURATION_DT`].
    /// Every bound exists so that request-derived shapes are rejected
    /// with a typed error *before* any superlinear compile work runs.
    pub fn validate(&self) -> Result<(), String> {
        if self.graph.n_nodes() == 0 {
            return Err("hybrid shape needs at least one qubit".to_string());
        }
        if self.graph.n_nodes() > Self::MAX_QUBITS {
            return Err(format!(
                "hybrid shape has {} qubits (max {})",
                self.graph.n_nodes(),
                Self::MAX_QUBITS
            ));
        }
        if self.p == 0 {
            return Err("hybrid shape needs at least one QAOA layer".to_string());
        }
        if self.p > Self::MAX_P {
            return Err(format!(
                "hybrid shape has {} QAOA layers (max {})",
                self.p,
                Self::MAX_P
            ));
        }
        if self.mixer_duration_dt == 0
            || !self.mixer_duration_dt.is_multiple_of(32)
            || self.mixer_duration_dt > Self::MAX_MIXER_DURATION_DT
        {
            return Err(format!(
                "mixer duration must be a positive multiple of 32 dt at most {} (got {})",
                Self::MAX_MIXER_DURATION_DT,
                self.mixer_duration_dt
            ));
        }
        Ok(())
    }

    /// A canonical FNV-1a hash of the shape — the compiled-program
    /// cache key, playing [`Circuit::structural_key`]'s role for hybrid
    /// jobs. Distinct graphs, depths, durations, or pass configurations
    /// hash distinctly; a leading domain tag keeps hybrid keys apart
    /// from the untagged circuit-key encoding.
    pub fn structural_key(&self) -> u64 {
        let mut h = hgp_math::fnv::Fnv1a::new();
        h.byte(b'H');
        h.usize(self.graph.n_nodes());
        h.usize(self.graph.n_edges());
        for e in self.graph.edges() {
            h.usize(e.u);
            h.usize(e.v);
            h.f64(e.weight);
        }
        h.usize(self.p);
        h.u64(u64::from(self.mixer_duration_dt));
        h.byte(u8::from(self.options.cancellation));
        h.usize(self.options.sabre_iterations);
        h.finish()
    }
}

/// One QAOA layer of a compiled hybrid shape: the routed
/// Hamiltonian-layer circuit (one free `gamma`) and the region wire each
/// logical qubit sits on when the mixer pulses play.
#[derive(Debug, Clone)]
struct CompiledPulseLayer {
    circuit: Circuit,
    wires: Vec<usize>,
}

/// Per-wire drive calibration, copied from the backend at compile time
/// so binding never touches the device tables.
#[derive(Debug, Clone, Copy)]
struct DriveCalibration {
    strength: f64,
    amp_error: f64,
    freq_offset: f64,
}

/// A hybrid gate-pulse shape after compilation: Hamiltonian layers
/// routed onto region wires (still parametrized over `gamma`), mixer
/// pulse calibration resolved per wire, noise model built — ready for
/// per-dispatch binding.
///
/// [`CompiledProgram::bind`] substitutes a full parameter vector
/// (`[gamma, theta, phase_0, f_0, ...]` per layer, the
/// [`crate::models::HybridModel`] layout) into an executable hybrid
/// [`Program`]: gate layers bind `gamma` in `O(gates)`; each mixer
/// pulse block integrates its drive propagator from the cached
/// calibration. The result is bit-identical to
/// [`crate::models::HybridModel::build`] — the model delegates to this
/// artifact — so served hybrid jobs replay model-driven runs exactly.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    key: u64,
    shape: HybridShape,
    region: Vec<usize>,
    layers: Vec<CompiledPulseLayer>,
    final_layout: Layout,
    mixer_area: f64,
    mixer_waveform: Waveform,
    wire_drive: Vec<DriveCalibration>,
    n_logical: usize,
    /// The wire layout's noise parameters, built once at compile time
    /// and shared with every executor of this shape.
    noise: Arc<NoiseModel>,
    /// The backend this shape was compiled against — the identity
    /// [`CompiledProgram::bind_replay`] checks before trusting the
    /// recorded template's fixed-gate pulse physics.
    backend: Backend,
    /// The shape-constant trajectory schedule with parametric slots
    /// (bound-`gamma` diagonals, mixer pulse blocks) — recorded lazily
    /// on the first trajectory bind (the schedule is duration-dependent,
    /// so [`CompiledProgram::with_mixer_duration`] resets it and the
    /// next bind re-records).
    template: OnceLock<TrajectoryTemplate>,
    /// The exact-path twin: the same duration-dependent schedule as a
    /// superoperator tape, recorded lazily on the first exact bind and
    /// reset alongside the trajectory template.
    exact_template: OnceLock<ExactTemplate>,
}

impl CompiledProgram {
    /// The source shape's [`HybridShape::structural_key`] — the cache
    /// key.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// The shape this program was compiled from.
    pub fn shape(&self) -> &HybridShape {
        &self.shape
    }

    /// Number of logical qubits (equals the wire count).
    pub fn n_qubits(&self) -> usize {
        self.n_logical
    }

    /// Number of parameters a dispatch must bind.
    pub fn n_params(&self) -> usize {
        self.shape.n_params()
    }

    /// Physical qubit of each wire.
    pub fn region(&self) -> &[usize] {
        &self.region
    }

    /// Mixer pulse duration, `dt`.
    pub fn mixer_duration_dt(&self) -> u32 {
        self.shape.mixer_duration_dt()
    }

    /// The mixer pulse envelope at the compiled duration.
    pub fn mixer_waveform(&self) -> Waveform {
        self.mixer_waveform
    }

    /// The drive amplitude that reproduces `RX(theta)` at the compiled
    /// mixer duration on region wire `wire` (initialization helper).
    pub fn amp_for_angle(&self, wire: usize, theta: f64) -> f64 {
        theta / (self.wire_drive[wire].strength * self.mixer_area)
    }

    /// Rebuilds this artifact at a different mixer duration (Step I's
    /// binary search). Routing is duration-independent and reused; only
    /// the mixer waveform, its cached area, and the cache key change.
    ///
    /// # Panics
    ///
    /// Panics if `duration_dt` is not a positive multiple of 32 dt.
    pub fn with_mixer_duration(mut self, duration_dt: u32) -> Self {
        assert!(
            duration_dt > 0 && duration_dt.is_multiple_of(32),
            "mixer duration must be a positive multiple of 32 dt"
        );
        self.shape = self.shape.clone().with_mixer_duration(duration_dt);
        self.mixer_waveform = Waveform::gaussian(duration_dt);
        self.mixer_area = self.mixer_waveform.area();
        self.key = self.shape.structural_key();
        // The recorded schedule is duration-dependent (pulse-block
        // spans, idle windows, channel exposures): reset both template
        // flavors so the next bind re-records at the new duration.
        self.template = OnceLock::new();
        self.exact_template = OnceLock::new();
        self
    }

    /// The recording inputs both template flavors share: the shape
    /// bound at a reference point, plus the parametric slots — each
    /// layer circuit's free `gamma` gates and every mixer pulse block.
    fn template_parts(&self) -> (Program, Vec<(usize, TemplateSlot)>) {
        let reference = self.bind(&vec![0.0; self.n_params()]);
        let per_layer = self.shape.params_per_layer();
        let mut specs = Vec::new();
        let mut op_base = 0usize;
        for (layer_idx, layer) in self.layers.iter().enumerate() {
            let (layer_specs, n_ops) = parametric_gate_specs(
                &self.noise,
                &layer.circuit,
                ParamScope::Single(layer_idx * per_layer),
                op_base,
            );
            specs.extend(layer_specs);
            op_base += n_ops;
            for logical in 0..self.n_logical {
                specs.push((
                    op_base,
                    TemplateSlot::Mixer {
                        layer: layer_idx,
                        logical,
                    },
                ));
                op_base += 1;
            }
        }
        (reference, specs)
    }

    /// Records the shape-constant schedule at a reference binding and
    /// resolves the parametric slots.
    fn build_template(&self, exec: &Executor) -> TrajectoryTemplate {
        let (reference, specs) = self.template_parts();
        TrajectoryTemplate::record(exec, &reference, specs)
    }

    /// The shape-constant trajectory schedule template, if a trajectory
    /// bind has recorded it yet (recording is lazy).
    pub fn replay_template(&self) -> Option<&TrajectoryTemplate> {
        self.template.get()
    }

    /// Whether `exec` matches the recorded template's physics (no
    /// dynamical decoupling, this shape's own cached noise model and
    /// compile-time backend).
    fn template_compatible(&self, exec: &Executor) -> bool {
        !exec.uses_dynamical_decoupling()
            && Arc::ptr_eq(exec.noise_model(), &self.noise)
            && *exec.backend() == self.backend
    }

    /// Binds a parameter vector straight into an executable replay tape
    /// — the trajectory-path analogue of [`CompiledProgram::bind`]. The
    /// per-dispatch work is exactly the parametric entries: bound-`gamma`
    /// diagonals re-derive their phases and mixer pulse blocks
    /// re-integrate their drive propagators from the cached calibration;
    /// the ASAP walk, idle analysis, channel tables, and fixed-gate pulse
    /// physics are reused from the recording (walked lazily, once per
    /// shape and mixer duration).
    ///
    /// Bit-identical to `exec.replay_program(&self.bind(params))` —
    /// which is also the path taken when `exec` does not match the
    /// template's physics (dynamical decoupling enabled, or a noise
    /// model other than this shape's cached one, e.g. a ZNE-scaled
    /// copy). `exec` must be an executor over this program's wire layout
    /// (see [`CompiledProgram::executor`]).
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != self.n_params()`.
    pub fn bind_replay(&self, exec: &Executor, params: &[f64]) -> ReplayProgram {
        assert_eq!(params.len(), self.n_params(), "parameter count");
        if !self.template_compatible(exec) {
            return exec.replay_program(&self.bind(params));
        }
        let template = self.template.get_or_init(|| self.build_template(exec));
        template.bind_with(|spec| match spec {
            TemplateSlot::Mixer { layer, logical } => {
                SlotValue::Unitary(self.mixer_unitary(*layer, *logical, params).1)
            }
            gate_slot => gate_slot.eval(exec, params),
        })
    }

    /// The shape-constant exact schedule template, if an exact bind has
    /// recorded it yet (recording is lazy; duration re-keying resets it
    /// like the trajectory template).
    pub fn exact_template(&self) -> Option<&ExactTemplate> {
        self.exact_template.get()
    }

    /// Binds a parameter vector straight into an exact-path
    /// superoperator tape — the density-matrix analogue of
    /// [`CompiledProgram::bind_replay`], substituting bound-`gamma`
    /// diagonals and re-integrated mixer pulse propagators into the
    /// recorded tape without re-walking the schedule or re-resolving
    /// any channel. Falls back to
    /// `exec.exact_replay_program(&self.bind(params))` when `exec`
    /// deviates from the template's physics.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != self.n_params()`.
    pub fn bind_exact(&self, exec: &Executor, params: &[f64]) -> ExactReplayProgram {
        assert_eq!(params.len(), self.n_params(), "parameter count");
        if !self.template_compatible(exec) {
            return exec.exact_replay_program(&self.bind(params));
        }
        let template = self.exact_template.get_or_init(|| {
            let (reference, specs) = self.template_parts();
            ExactTemplate::record(exec, &reference, specs)
        });
        template.bind_with(|spec| match spec {
            TemplateSlot::Mixer { layer, logical } => {
                SlotValue::Unitary(self.mixer_unitary(*layer, *logical, params).1)
            }
            gate_slot => gate_slot.eval(exec, params),
        })
    }

    /// Binds a parameter vector (`[gamma, theta, phase_0, f_0, ...]` per
    /// layer) into an executable hybrid program over region wires — the
    /// per-dispatch step.
    ///
    /// Gate layers execute with `gamma` bound; each qubit's mixer pulse
    /// is integrated from the commanded shared angle `theta` (clamped to
    /// the hardware amplitude bound) with its per-qubit phase and
    /// frequency trims, through the *true* pulse physics: calibration
    /// error and frame offset act on the pulse exactly as on gate-level
    /// pulses, but here the trims can cancel them.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != self.n_params()`.
    pub fn bind(&self, params: &[f64]) -> Program {
        assert_eq!(params.len(), self.n_params(), "parameter count");
        let mut program = Program::new(self.region.len());
        let per_layer = self.shape.params_per_layer();
        let duration = self.shape.mixer_duration_dt();
        for (layer_idx, layer) in self.layers.iter().enumerate() {
            let gamma = params[layer_idx * per_layer];
            let bound = layer.circuit.bind(&[gamma]);
            program.append(&Program::from_circuit(&bound).expect("bound layer"));
            for l in 0..self.n_logical {
                let (wire, unitary) = self.mixer_unitary(layer_idx, l, params);
                program.push_pulse_block(&[wire], unitary, duration, BlockKind::Drive);
            }
        }
        program
    }

    /// Integrates one mixer pulse block from the cached calibration: the
    /// region wire it plays on and its drive-propagator unitary. Shared
    /// by [`CompiledProgram::bind`] and the schedule template's slot
    /// substitution, so the two paths are bit-identical by construction.
    fn mixer_unitary(&self, layer_idx: usize, l: usize, params: &[f64]) -> (usize, Matrix) {
        let per_layer = self.shape.params_per_layer();
        let duration = self.shape.mixer_duration_dt();
        let chunk = &params[layer_idx * per_layer..(layer_idx + 1) * per_layer];
        let theta = chunk[1];
        let freq_bound = (FREQ_TRIM_AUTHORITY_RAD / f64::from(duration)).min(FREQ_SHIFT_HW_BOUND);
        let phase = chunk[2 + 2 * l].clamp(-PHASE_TRIM_BOUND, PHASE_TRIM_BOUND);
        // The raw parameter is a *fraction* of the allowed trim, so the
        // same physical pulse has the same parameter value at every
        // duration (Step I changes durations mid-pipeline).
        let freq_param = (2.0 * chunk[2 + 2 * l + 1]).clamp(-1.0, 1.0) * freq_bound;
        let wire = self.layers[layer_idx].wires[l];
        let cal = self.wire_drive[wire];
        let amp_cmd = self
            .amp_for_angle(wire, theta)
            .clamp(-MIXER_AMP_BOUND, MIXER_AMP_BOUND);
        let unitary = drive_propagator(
            &self.mixer_waveform,
            amp_cmd * (1.0 + cal.amp_error),
            phase,
            freq_param + cal.freq_offset,
            cal.strength,
        );
        (wire, unitary)
    }

    /// The compiled shape's cached noise model (wire layout order).
    pub fn noise_model(&self) -> &Arc<NoiseModel> {
        &self.noise
    }

    /// An executor over this compiled program's wire layout, reusing the
    /// noise model cached at compile time. `backend` must be the one the
    /// shape was compiled against.
    pub fn executor<'b>(&self, backend: &'b Backend) -> Executor<'b> {
        Executor::with_noise_model(backend, self.region.clone(), Arc::clone(&self.noise))
    }

    /// The wire hosting logical qubit `l` when measurement happens
    /// (after routing's final permutation).
    pub fn exit_wire(&self, l: usize) -> usize {
        self.final_layout.physical(l)
    }

    /// Maps measured wire counts back to logical-qubit counts.
    pub fn decode_counts(&self, counts: &Counts) -> Counts {
        let map: Vec<usize> = (0..self.n_logical).map(|l| self.exit_wire(l)).collect();
        counts.remapped(&map, self.n_logical)
    }

    /// Rewrites an observable over logical qubits into wire indices, so
    /// it can be evaluated directly on the executed state.
    ///
    /// # Panics
    ///
    /// Panics if the observable width disagrees with the program.
    pub fn wire_observable(&self, observable: &PauliSum) -> PauliSum {
        assert_eq!(
            observable.n_qubits(),
            self.n_logical,
            "observable width must match the program"
        );
        let terms = observable
            .terms()
            .iter()
            .map(|t| {
                let factors = t
                    .factors()
                    .iter()
                    .map(|&(q, p)| (self.exit_wire(q), p))
                    .collect();
                PauliString::new(self.n_logical, factors, t.coeff())
            })
            .collect();
        PauliSum::from_terms(terms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::VqaModel;
    use crate::qaoa::{cost_hamiltonian, qaoa_circuit};
    use hgp_graph::instances;
    use hgp_sim::{SimBackend, StateVector};

    fn compiled_qaoa<'a>(
        backend: &'a Backend,
        graph: &hgp_graph::Graph,
    ) -> (CircuitCompiler<'a>, CompiledCircuit) {
        let compiler = CircuitCompiler::new(backend, (0..graph.n_nodes()).collect());
        let compiled = compiler.compile(&qaoa_circuit(graph, 1)).unwrap();
        (compiler, compiled)
    }

    #[test]
    fn compiled_key_matches_source_key() {
        let backend = Backend::ideal(6);
        let graph = instances::task1_three_regular_6();
        let (_, compiled) = compiled_qaoa(&backend, &graph);
        assert_eq!(compiled.key(), qaoa_circuit(&graph, 1).structural_key());
        assert_eq!(compiled.n_params(), 2);
        assert_eq!(compiled.n_qubits(), 6);
    }

    #[test]
    fn bind_then_execute_matches_naive_per_point_compilation() {
        // The split's semantic contract: compiling once and binding at N
        // points gives the same distributions as binding first and
        // simulating the logical circuit directly.
        let backend = Backend::ideal(6);
        let graph = instances::task2_random_6();
        let (_, compiled) = compiled_qaoa(&backend, &graph);
        for params in [[0.35, 0.25], [1.1, -0.4], [0.0, 0.9]] {
            let wire = StateVector::execute(&compiled.circuit().bind(&params)).unwrap();
            let got = compiled.decode_probabilities(&wire.probabilities());
            let reference = StateVector::execute(&qaoa_circuit(&graph, 1).bind(&params)).unwrap();
            for (b, (g, r)) in got.iter().zip(reference.probabilities()).enumerate() {
                assert!((g - r).abs() < 1e-10, "params {params:?}, state {b}");
            }
        }
    }

    #[test]
    fn decode_counts_matches_decode_probabilities() {
        let backend = Backend::ibmq_guadalupe();
        let graph = instances::task1_three_regular_6();
        let compiler = CircuitCompiler::new(&backend, vec![1, 2, 3, 4, 5, 8]);
        let compiled = compiler.compile(&qaoa_circuit(&graph, 1)).unwrap();
        let program = compiled.bind(&[0.35, 0.25]);
        let exec = compiled.executor(&backend);
        let rho = exec.run(&program);
        let counts = exec.sample_state(&rho, 400_000, 9);
        let logical = compiled.decode_counts(&counts);
        let probs = compiled
            .decode_probabilities(&exec.readout().apply_to_probabilities(&rho.probabilities()));
        for (b, &p) in probs.iter().enumerate() {
            assert!((logical.frequency(b) - p).abs() < 0.01, "state {b:06b}");
        }
    }

    #[test]
    fn wire_observable_preserves_expectation() {
        let backend = Backend::ideal(6);
        let graph = instances::task2_random_6();
        let (_, compiled) = compiled_qaoa(&backend, &graph);
        let params = [0.7, 0.3];
        let obs = cost_hamiltonian(&graph);
        let wire_state = StateVector::execute(&compiled.circuit().bind(&params)).unwrap();
        let by_wire = wire_state.expectation(&compiled.wire_observable(&obs));
        let by_logical = StateVector::execute(&qaoa_circuit(&graph, 1).bind(&params))
            .unwrap()
            .expectation(&obs);
        assert!(
            (by_wire - by_logical).abs() < 1e-10,
            "{by_wire} vs {by_logical}"
        );
    }

    #[test]
    fn oversized_circuit_is_an_error() {
        let backend = Backend::ideal(4);
        let compiler = CircuitCompiler::new(&backend, vec![0, 1, 2]);
        let wide = qaoa_circuit(&instances::task1_three_regular_6(), 1);
        assert!(compiler.compile(&wide).is_err());
    }

    #[test]
    fn disconnected_region_prefix_is_a_circuit_compile_error() {
        // Guadalupe does not couple (0, 15): a 2-qubit circuit routed
        // into that prefix must fail with a typed error, not panic the
        // (serving) thread that compiles it.
        let backend = Backend::ibmq_guadalupe();
        let compiler = CircuitCompiler::new(&backend, vec![0, 15, 1]);
        let mut qc = Circuit::new(2);
        qc.h(0).cx(0, 1);
        let err = compiler.compile(&qc).unwrap_err();
        assert!(err.contains("disconnected"), "{err}");
        // The full region is fine for a 3-qubit circuit (0-1 couple and
        // 1 bridges to nothing here, so expect the same typed error,
        // never a panic).
        let mut wide = Circuit::new(3);
        wide.h(0);
        assert!(compiler.compile(&wide).is_err());
    }

    #[test]
    fn absurd_shape_bounds_are_rejected_before_compile_work() {
        let graph = instances::task1_three_regular_6();
        // A wire-supplied depth far past the bound must fail validation
        // (and n_params must saturate rather than wrap to a small value
        // that would sneak the request past parameter-count checks).
        let absurd = HybridShape::new(graph.clone(), usize::MAX / 8);
        assert!(absurd.n_params() >= usize::MAX / 8);
        let err = absurd.validate().unwrap_err();
        assert!(err.contains("layers"), "{err}");
        assert!(HybridShape::new(graph.clone(), HybridShape::MAX_P + 1)
            .validate()
            .is_err());
        assert!(HybridShape::new(graph.clone(), HybridShape::MAX_P)
            .validate()
            .is_ok());
        // Oversized graphs and absurd durations are equally typed.
        let wide = Graph::new(HybridShape::MAX_QUBITS + 1);
        assert!(HybridShape::new(wide, 1).validate().is_err());
        assert!(HybridShape::new(graph, 1)
            .with_mixer_duration(HybridShape::MAX_MIXER_DURATION_DT + 32)
            .validate()
            .is_err());
    }

    #[test]
    fn hybrid_shape_key_is_stable_and_discriminating() {
        let graph = instances::task1_three_regular_6();
        let base = HybridShape::new(graph.clone(), 1);
        assert_eq!(
            base.structural_key(),
            HybridShape::new(graph.clone(), 1).structural_key()
        );
        // Depth, duration, options, and graph all participate.
        assert_ne!(
            base.structural_key(),
            HybridShape::new(graph.clone(), 2).structural_key()
        );
        assert_ne!(
            base.structural_key(),
            base.clone().with_mixer_duration(128).structural_key()
        );
        assert_ne!(
            base.structural_key(),
            base.clone()
                .with_options(GateModelOptions::optimized())
                .structural_key()
        );
        assert_ne!(
            base.structural_key(),
            HybridShape::new(instances::task2_random_6(), 1).structural_key()
        );
    }

    #[test]
    fn compiled_program_bind_is_bit_identical_to_the_hybrid_model() {
        // The serve path (compile_hybrid + bind) and the model path
        // (HybridModel::build) must produce literally the same program:
        // every gate binding and every pulse-block unitary bit for bit.
        let backend = Backend::ibmq_toronto();
        let graph = instances::task1_three_regular_6();
        let region = vec![1, 2, 3, 4, 5, 7];
        let model = crate::models::HybridModel::with_options(
            &backend,
            &graph,
            2,
            region.clone(),
            GateModelOptions::optimized(),
        )
        .unwrap();
        let shape = HybridShape::new(graph, 2).with_options(GateModelOptions::optimized());
        let compiled = CircuitCompiler::new(&backend, region)
            .compile_hybrid(&shape)
            .unwrap();
        assert_eq!(compiled.n_params(), model.n_params());
        let mut params = model.initial_params();
        // Perturb the trims so the pulse path is exercised non-trivially.
        for (i, p) in params.iter_mut().enumerate() {
            *p += 0.01 * (i as f64 + 1.0);
        }
        let a = model.build(&params);
        let b = compiled.bind(&params);
        assert_eq!(a.structural_key(), b.structural_key());
        assert_eq!(a, b);
    }

    #[test]
    fn circuit_bind_replay_is_bit_identical_to_the_full_schedule_walk() {
        // The dispatch-invariant template substitutes bound-gamma
        // diagonals and pulse-backed RX slots; the result must be
        // indistinguishable — bit for bit — from binding, re-walking the
        // ASAP schedule, and compiling the tape per dispatch, and from
        // the reference TrajectoryEngine over the recorded program.
        let backend = Backend::ibmq_toronto();
        let graph = instances::task1_three_regular_6();
        let compiler = CircuitCompiler::new(&backend, vec![1, 2, 3, 4, 5, 7]);
        let compiled = compiler.compile(&qaoa_circuit(&graph, 2)).unwrap();
        // Recording is lazy: compile alone pays nothing.
        assert!(compiled.replay_template().is_none());
        let exec = compiled.executor(&backend);
        let obs = compiled.wire_observable(&cost_hamiltonian(&graph));
        for params in [
            [0.35, 0.25, -0.8, 1.1],
            [0.0, 0.0, 0.0, 0.0],
            [1.9, -2.4, 0.3, 0.7],
        ] {
            let by_template = compiled.bind_replay(&exec, &params);
            let program = compiled.bind(&params);
            let by_walk = exec.replay_program(&program);
            let recorded = exec.trajectory_program(&program);
            let fast = hgp_sim::ReplayEngine::new(48, 9);
            let reference = hgp_sim::TrajectoryEngine::new(48, 9);
            let a = fast.expectations(&by_template, &obs);
            let b = fast.expectations(&by_walk, &obs);
            let c = reference.expectations(&recorded, &obs);
            for ((x, y), z) in a.iter().zip(b.iter()).zip(c.iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "template vs walk, {params:?}");
                assert_eq!(x.to_bits(), z.to_bits(), "template vs engine, {params:?}");
            }
            assert_eq!(
                fast.sample_counts(&by_template),
                reference.sample_counts(&recorded),
                "{params:?}"
            );
        }
        assert!(compiled.replay_template().expect("recorded").n_slots() > 0);

        // An executor whose physics deviate from the recording — DD
        // enabled, a ZNE-scaled noise model, or a different backend
        // (which reuses the cached noise Arc, so the pointer check alone
        // would not catch it) — must not ride the template: bind_replay
        // takes the full walk and stays bit-identical to that executor's
        // own path.
        let other_backend = Backend::ibmq_guadalupe();
        let params = [0.35, 0.25, -0.8, 1.1];
        for deviant in [
            compiled.executor(&backend).with_dynamical_decoupling(),
            Executor::with_noise_model(
                &backend,
                compiled.region().to_vec(),
                Arc::new(compiled.noise_model().scaled(2.0)),
            ),
            compiled.executor(&other_backend),
        ] {
            let by_bind = compiled.bind_replay(&deviant, &params);
            let by_walk = deviant.replay_program(&compiled.bind(&params));
            let fast = hgp_sim::ReplayEngine::new(24, 7);
            let a = fast.expectations(&by_bind, &obs);
            let b = fast.expectations(&by_walk, &obs);
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "deviant executor fallback");
            }
        }
    }

    #[test]
    fn hybrid_bind_replay_is_bit_identical_and_survives_invalidation() {
        let backend = Backend::ibmq_toronto();
        let graph = instances::task1_three_regular_6();
        let shape = HybridShape::new(graph.clone(), 2).with_options(GateModelOptions::optimized());
        let compiled = CircuitCompiler::new(&backend, vec![1, 2, 3, 4, 5, 7])
            .compile_hybrid(&shape)
            .unwrap();
        assert!(compiled.replay_template().is_none(), "recording is lazy");
        let exec = compiled.executor(&backend);
        let obs = compiled.wire_observable(&cost_hamiltonian(&graph));
        let mut params = vec![0.0; compiled.n_params()];
        for (i, p) in params.iter_mut().enumerate() {
            *p = 0.03 * (i as f64 + 1.0) - 0.4;
        }
        let check = |compiled: &CompiledProgram, tag: &str| {
            let by_template = compiled.bind_replay(&exec, &params);
            let by_walk = exec.replay_program(&compiled.bind(&params));
            let fast = hgp_sim::ReplayEngine::new(32, 5);
            let a = fast.expectations(&by_template, &obs);
            let b = fast.expectations(&by_walk, &obs);
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{tag}");
            }
        };
        check(&compiled, "fresh");
        // The first bind recorded the template: every layer binds its
        // gamma gates and n mixer blocks.
        let template = compiled.replay_template().expect("recorded on first bind");
        assert!(template.n_slots() >= 2 * compiled.n_qubits());
        // Re-keying the duration resets the (duration-dependent)
        // template; the next bind re-records at the new duration,
        // bit-identically to the full walk.
        let shorter = compiled.clone().with_mixer_duration(128);
        assert!(shorter.replay_template().is_none());
        check(&shorter, "re-keyed");
        assert!(shorter.replay_template().is_some(), "re-recorded");
    }

    /// Elementwise ≤ 1e-12 against the reference density walk, plus the
    /// trace invariant — the exact-tape parity contract.
    fn assert_exact_close(
        rho: &hgp_sim::DensityMatrix,
        reference: &hgp_sim::DensityMatrix,
        tag: &str,
    ) {
        let dim = reference.dim();
        for i in 0..dim {
            for j in 0..dim {
                assert!(
                    (rho.get(i, j) - reference.get(i, j)).norm() <= 1e-12,
                    "{tag}: mismatch at ({i},{j})"
                );
            }
        }
        assert!((rho.trace() - 1.0).abs() < 1e-12, "{tag}: trace");
    }

    #[test]
    fn circuit_bind_exact_is_bit_identical_to_the_full_walk_tape() {
        // The exact template substitutes the same parametric slots the
        // trajectory template does, into the superoperator tape: the
        // result must replay bit-identically to re-walking and
        // compiling per dispatch, and sit within 1e-12 of the reference
        // ExactSink density walk (the multi-Kraus channels reassociate).
        let backend = Backend::ibmq_toronto();
        let graph = instances::task1_three_regular_6();
        let compiler = CircuitCompiler::new(&backend, vec![1, 2, 3, 4, 5, 7]);
        let compiled = compiler.compile(&qaoa_circuit(&graph, 2)).unwrap();
        // Recording is lazy: compile alone pays nothing.
        assert!(compiled.exact_template().is_none());
        let exec = compiled.executor(&backend);
        for params in [
            [0.35, 0.25, -0.8, 1.1],
            [0.0, 0.0, 0.0, 0.0],
            [1.9, -2.4, 0.3, 0.7],
        ] {
            let by_template = exec.run_exact_replay(&compiled.bind_exact(&exec, &params));
            let by_walk =
                exec.run_exact_replay(&exec.exact_replay_program(&compiled.bind(&params)));
            assert_eq!(by_template, by_walk, "template vs walk, {params:?}");
            assert_exact_close(
                &by_template,
                &exec.run(&compiled.bind(&params)),
                "vs reference",
            );
        }
        assert!(compiled.exact_template().expect("recorded").n_slots() > 0);
        // The trajectory template is untouched by exact binds.
        assert!(compiled.replay_template().is_none());

        // Deviant executors (DD, ZNE-scaled noise, another backend) must
        // not ride the template: bind_exact takes the full walk and
        // stays bit-identical to that executor's own tape.
        let other_backend = Backend::ibmq_guadalupe();
        let params = [0.35, 0.25, -0.8, 1.1];
        for deviant in [
            compiled.executor(&backend).with_dynamical_decoupling(),
            Executor::with_noise_model(
                &backend,
                compiled.region().to_vec(),
                Arc::new(compiled.noise_model().scaled(2.0)),
            ),
            compiled.executor(&other_backend),
        ] {
            let by_bind = deviant.run_exact_replay(&compiled.bind_exact(&deviant, &params));
            let by_walk =
                deviant.run_exact_replay(&deviant.exact_replay_program(&compiled.bind(&params)));
            assert_eq!(by_bind, by_walk, "deviant executor fallback");
        }
    }

    #[test]
    fn hybrid_bind_exact_is_bit_identical_and_survives_invalidation() {
        let backend = Backend::ibmq_toronto();
        let graph = instances::task1_three_regular_6();
        let shape = HybridShape::new(graph.clone(), 2).with_options(GateModelOptions::optimized());
        let compiled = CircuitCompiler::new(&backend, vec![1, 2, 3, 4, 5, 7])
            .compile_hybrid(&shape)
            .unwrap();
        assert!(compiled.exact_template().is_none(), "recording is lazy");
        let exec = compiled.executor(&backend);
        let mut params = vec![0.0; compiled.n_params()];
        for (i, p) in params.iter_mut().enumerate() {
            *p = 0.03 * (i as f64 + 1.0) - 0.4;
        }
        let check = |compiled: &CompiledProgram, tag: &str| {
            let by_template = exec.run_exact_replay(&compiled.bind_exact(&exec, &params));
            let by_walk =
                exec.run_exact_replay(&exec.exact_replay_program(&compiled.bind(&params)));
            assert_eq!(by_template, by_walk, "{tag}");
            assert_exact_close(&by_template, &exec.run(&compiled.bind(&params)), tag);
        };
        check(&compiled, "fresh");
        // The first bind recorded the template: every layer binds its
        // gamma gates and n mixer blocks.
        let template = compiled.exact_template().expect("recorded on first bind");
        assert!(template.n_slots() >= 2 * compiled.n_qubits());
        // Re-keying the duration resets the (duration-dependent)
        // template; the next bind re-records at the new duration.
        let shorter = compiled.clone().with_mixer_duration(128);
        assert!(shorter.exact_template().is_none());
        check(&shorter, "re-keyed");
        assert!(shorter.exact_template().is_some(), "re-recorded");
    }

    #[test]
    fn compiled_program_duration_change_rekeys_without_rerouting() {
        let backend = Backend::ibmq_toronto();
        let graph = instances::task1_three_regular_6();
        let shape = HybridShape::new(graph, 1);
        let compiled = CircuitCompiler::new(&backend, vec![1, 2, 3, 4, 5, 7])
            .compile_hybrid(&shape)
            .unwrap();
        let shorter = compiled.clone().with_mixer_duration(128);
        assert_ne!(compiled.key(), shorter.key());
        assert_eq!(
            shorter.key(),
            shape.with_mixer_duration(128).structural_key()
        );
        assert_eq!(shorter.mixer_duration_dt(), 128);
        let program = shorter.bind(&vec![0.0; shorter.n_params()]);
        assert_eq!(program.pulse_duration_dt(), 6 * 128);
    }

    #[test]
    fn malformed_hybrid_shapes_are_typed_errors() {
        let backend = Backend::ibmq_guadalupe();
        let compiler = CircuitCompiler::new(&backend, vec![0, 1, 2, 3, 4, 5]);
        let graph = instances::task1_three_regular_6();
        // Invalid mixer duration (not a multiple of 32).
        let err = compiler
            .compile_hybrid(&HybridShape::new(graph.clone(), 1).with_mixer_duration(100))
            .unwrap_err();
        assert!(err.contains("multiple of 32"), "{err}");
        // Zero layers.
        assert!(compiler
            .compile_hybrid(&HybridShape::new(graph.clone(), 0))
            .is_err());
        // Wider than the region.
        let wide = hgp_graph::generators::random_regular(8, 3, 1);
        assert!(compiler.compile_hybrid(&HybridShape::new(wide, 1)).is_err());
        // Disconnected region prefix: guadalupe qubits 0 and 15 share no
        // coupler, so a 2-node graph on region [0, 15] cannot route.
        let pair = Graph::from_edges(2, &[(0, 1)]);
        let disconnected = CircuitCompiler::new(&backend, vec![0, 15]);
        let err = disconnected
            .compile_hybrid(&HybridShape::new(pair, 1))
            .unwrap_err();
        assert!(err.contains("disconnected"), "{err}");
    }
}
