//! QAOA for the Max-Cut problem.
//!
//! The level-`p` QAOA ansatz alternates a problem (Hamiltonian) layer
//! `U_P(gamma) = exp(-i gamma H_P)` with a mixer layer
//! `U_M(beta) = exp(-i beta X^n)`, starting from `|+>^n`. For Max-Cut,
//! `H_P = sum_{(u,v) in E} w/2 (1 - Z_u Z_v)`, so the problem layer is a
//! product of `RZZ(2 w gamma)` gates — the fixed structure the hybrid
//! model keeps at the gate level — and the mixer is `RX(2 beta)` per
//! qubit — the problem-agnostic layer it replaces with pulses.

use hgp_circuit::{Circuit, ParamId};
use hgp_graph::Graph;
use hgp_math::pauli::{Pauli, PauliString, PauliSum};

/// The Max-Cut cost Hamiltonian `sum w/2 (1 - Z_u Z_v)` as a Pauli sum
/// (diagonal; its expectation equals the expected cut weight).
pub fn cost_hamiltonian(graph: &Graph) -> PauliSum {
    let n = graph.n_nodes();
    let mut terms = Vec::with_capacity(graph.n_edges() + 1);
    terms.push(PauliString::identity(n, graph.total_weight() / 2.0));
    for e in graph.edges() {
        terms.push(PauliString::new(
            n,
            vec![(e.u, Pauli::Z), (e.v, Pauli::Z)],
            -e.weight / 2.0,
        ));
    }
    PauliSum::from_terms(terms)
}

/// Cut weight of a measured bitstring — the per-shot cost function.
pub fn cut_cost(graph: &Graph, bitstring: usize) -> f64 {
    hgp_graph::maxcut::cut_value(graph, bitstring)
}

/// The approximation ratio `alpha = C / C_max`.
///
/// # Panics
///
/// Panics if `c_max` is not positive.
pub fn approximation_ratio(cost: f64, c_max: f64) -> f64 {
    assert!(c_max > 0.0, "optimal cut must be positive");
    cost / c_max
}

/// The standard level-`p` gate-level QAOA circuit with free parameters
/// ordered `[gamma_1, beta_1, gamma_2, beta_2, ...]`.
///
/// Layer `l` applies `RZZ(-w gamma_l)` per edge (i.e. `e^{-i gamma H_P}`
/// up to phase) and `RX(2 beta_l)` per qubit (`e^{-i beta X}`) after the
/// initial Hadamard wall.
pub fn qaoa_circuit(graph: &Graph, p: usize) -> Circuit {
    let n = graph.n_nodes();
    assert!(p > 0, "need at least one QAOA layer");
    let mut qc = Circuit::new(n);
    for q in 0..n {
        qc.h(q);
    }
    for _ in 0..p {
        let gamma = qc.add_param();
        let beta = qc.add_param();
        append_hamiltonian_layer(&mut qc, graph, gamma);
        append_mixer_layer(&mut qc, beta);
    }
    qc
}

/// Appends one problem layer driven by `gamma`: per edge,
/// `exp(-i gamma w/2 (1 - Z Z)) = RZZ(-w gamma)` up to a global phase.
pub fn append_hamiltonian_layer(qc: &mut Circuit, graph: &Graph, gamma: ParamId) {
    for e in graph.edges() {
        qc.rzz_param(e.u, e.v, gamma, -e.weight);
    }
}

/// Appends one mixer layer `prod RX(2 beta)` driven by `beta`.
pub fn append_mixer_layer(qc: &mut Circuit, beta: ParamId) {
    for q in 0..qc.n_qubits() {
        qc.rx_param(q, beta, 2.0);
    }
}

/// A decent fixed initial point for level-`p` training.
///
/// `p = 1` uses a point near the known good basin for small-degree
/// Max-Cut instances in this convention; deeper circuits interpolate the
/// adiabatic-inspired ramp used widely in the QAOA literature.
pub fn initial_point(p: usize) -> Vec<f64> {
    if p == 1 {
        return vec![0.45, 1.0];
    }
    let mut x = Vec::with_capacity(2 * p);
    for l in 0..p {
        let frac = (l as f64 + 0.5) / p as f64;
        x.push(0.6 * frac); // gamma ramps up
        x.push(1.0 * (1.0 - frac)); // beta ramps down
    }
    x
}

/// Candidate initial `(gamma, beta)` points for level-`p` training.
///
/// The p = 1 QAOA landscape is multimodal; the standard remedy is to
/// probe a small fixed set of starts and begin from the best. All models
/// use the same candidate set, so comparisons stay fair.
pub fn initial_candidates(p: usize) -> Vec<Vec<f64>> {
    if p == 1 {
        vec![
            vec![0.45, 1.0],
            vec![0.45, 0.5],
            vec![0.75, 2.0],
            vec![0.2, 1.5],
        ]
    } else {
        vec![initial_point(p)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgp_graph::instances;
    use hgp_sim::StateVector;

    #[test]
    fn hamiltonian_expectation_equals_cut_value_on_basis_states() {
        let g = instances::task1_three_regular_6();
        let h = cost_hamiltonian(&g);
        for b in [0usize, 0b000111, 0b101010, 0b111111] {
            assert!(
                (h.eval_diagonal(b) - cut_cost(&g, b)).abs() < 1e-12,
                "bitstring {b:b}"
            );
        }
    }

    #[test]
    fn optimal_bitstring_reaches_maxcut() {
        let g = instances::task1_three_regular_6();
        let h = cost_hamiltonian(&g);
        let best = hgp_graph::brute_force(&g);
        assert!((h.eval_diagonal(best.assignment) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn circuit_shape() {
        let g = instances::task1_three_regular_6();
        let qc = qaoa_circuit(&g, 2);
        assert_eq!(qc.n_params(), 4);
        // 6 H + per layer (9 RZZ + 6 RX) * 2.
        assert_eq!(qc.count_gates(), 6 + 2 * (9 + 6));
    }

    #[test]
    fn zero_parameters_give_uniform_distribution() {
        let g = instances::task2_random_6();
        let qc = qaoa_circuit(&g, 1).bind(&[0.0, 0.0]);
        let psi = StateVector::from_circuit(&qc).unwrap();
        for b in 0..(1 << 6) {
            assert!((psi.probability(b) - 1.0 / 64.0).abs() < 1e-10);
        }
    }

    #[test]
    fn qaoa_beats_random_guessing_at_good_parameters() {
        // On K33, sweep a small parameter grid; the best noiseless p=1 AR
        // must clearly beat the random-assignment baseline of 0.5.
        let g = instances::task1_three_regular_6();
        let h = cost_hamiltonian(&g);
        let qc = qaoa_circuit(&g, 1);
        let mut best = 0.0f64;
        for gi in 0..8 {
            for bi in 0..8 {
                let gamma = 0.1 + 0.1 * gi as f64;
                let beta = 0.1 + 0.1 * bi as f64;
                let psi = StateVector::from_circuit(&qc.bind(&[gamma, beta])).unwrap();
                best = best.max(psi.expectation(&h) / 9.0);
            }
        }
        assert!(best > 0.65, "best noiseless p=1 AR only {best}");
    }

    #[test]
    fn initial_point_has_right_arity() {
        assert_eq!(initial_point(1).len(), 2);
        assert_eq!(initial_point(3).len(), 6);
    }
}
