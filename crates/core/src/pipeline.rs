//! The full Step I-III co-optimization pipeline (Fig. 3 of the paper).
//!
//! Composes, for the hybrid gate-pulse model:
//!
//! - **Step I** (pulse-level optimization): binary search for the mixer
//!   pulse duration,
//! - **Step II** (gate-level optimization): SABRE placement +
//!   commutative cancellation on the gate part,
//! - **Step III** (error suppression): M3 measurement mitigation and
//!   CVaR cost aggregation,
//!
//! and trains the resulting model, returning the trained result together
//! with the duration-search record.

use hgp_device::Backend;
use hgp_graph::Graph;

use crate::duration_search::{search_min_duration, DurationSearchResult};
use crate::models::{GateModelOptions, HybridModel};
use crate::training::{train, TrainConfig, TrainResult};

/// Pipeline switches (each maps to one step of Fig. 3).
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// QAOA depth.
    pub p: usize,
    /// Fixed physical region (the paper's fixed qubit mapping).
    pub region: Vec<usize>,
    /// Step I: run the duration binary search (otherwise keep 320 dt).
    pub pulse_optimization: bool,
    /// Step I tolerance on AR degradation.
    pub duration_tolerance: f64,
    /// Step II: gate-level optimization on the Hamiltonian layers.
    pub gate_optimization: bool,
    /// Step III: M3 measurement mitigation.
    pub m3: bool,
    /// Step III: CVaR aggregation fraction.
    pub cvar_alpha: Option<f64>,
    /// Training budget and shots.
    pub train: TrainConfig,
}

impl PipelineConfig {
    /// The paper's full configuration: all three steps on, CVaR 0.3.
    pub fn full(p: usize, region: Vec<usize>) -> Self {
        Self {
            p,
            region,
            pulse_optimization: true,
            duration_tolerance: 0.02,
            gate_optimization: true,
            m3: true,
            cvar_alpha: Some(0.3),
            train: TrainConfig::default(),
        }
    }

    /// The raw configuration: no optimization steps.
    pub fn raw(p: usize, region: Vec<usize>) -> Self {
        Self {
            p,
            region,
            pulse_optimization: false,
            duration_tolerance: 0.02,
            gate_optimization: false,
            m3: false,
            cvar_alpha: None,
            train: TrainConfig::default(),
        }
    }
}

/// Pipeline output.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// The trained hybrid model's result.
    pub result: TrainResult,
    /// The Step I record, when pulse optimization ran.
    pub duration_search: Option<DurationSearchResult>,
    /// Final mixer duration, `dt`.
    pub mixer_duration_dt: u32,
}

/// Runs the full pipeline on a backend/instance pair.
///
/// # Errors
///
/// Returns an error if the region is invalid for the graph.
pub fn run_pipeline(
    backend: &Backend,
    graph: &Graph,
    config: &PipelineConfig,
) -> Result<PipelineResult, String> {
    let gate_options = if config.gate_optimization {
        GateModelOptions::optimized()
    } else {
        GateModelOptions::raw()
    };
    let model = HybridModel::with_options(
        backend,
        graph,
        config.p,
        config.region.clone(),
        gate_options,
    )?;
    let mut train_config = config.train.clone();
    train_config.cvar_alpha = config.cvar_alpha;
    train_config.use_m3 = config.m3;
    let (model, duration_search) = if config.pulse_optimization {
        // Step I must judge candidates at the full training budget, or a
        // weak baseline lets crippled short durations slip through.
        let search = search_min_duration(
            &model,
            graph,
            &train_config,
            32,
            320,
            config.duration_tolerance,
        );
        (
            model.clone_with_duration(search.best_duration_dt),
            Some(search),
        )
    } else {
        (model, None)
    };
    let result = train(&model, graph, &train_config);
    Ok(PipelineResult {
        mixer_duration_dt: result.mixer_duration_dt,
        result,
        duration_search,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgp_graph::instances;

    #[test]
    fn raw_pipeline_runs() {
        let backend = Backend::ibmq_toronto();
        let graph = instances::task1_three_regular_6();
        let mut config = PipelineConfig::raw(1, vec![1, 2, 3, 4, 5, 7]);
        config.train.max_evals = 5;
        config.train.shots = 256;
        config.train.final_shots = 1024;
        let out = run_pipeline(&backend, &graph, &config).unwrap();
        assert!(out.duration_search.is_none());
        assert_eq!(out.mixer_duration_dt, 320);
        assert!(out.result.approximation_ratio > 0.3);
    }

    #[test]
    fn full_pipeline_shrinks_duration() {
        let backend = Backend::ibmq_toronto();
        let graph = instances::task1_three_regular_6();
        let mut config = PipelineConfig::full(1, vec![1, 2, 3, 4, 5, 7]);
        config.train.max_evals = 6;
        config.train.shots = 256;
        config.train.final_shots = 1024;
        config.duration_tolerance = 0.05;
        let out = run_pipeline(&backend, &graph, &config).unwrap();
        let search = out.duration_search.expect("step I ran");
        assert!(out.mixer_duration_dt <= 320);
        assert_eq!(out.mixer_duration_dt, search.best_duration_dt);
    }

    #[test]
    fn bad_region_is_an_error() {
        let backend = Backend::ibmq_toronto();
        let graph = instances::task1_three_regular_6();
        let config = PipelineConfig::raw(1, vec![0, 1]);
        assert!(run_pipeline(&backend, &graph, &config).is_err());
    }
}
