#![forbid(unsafe_code)]

//! The hybrid gate-pulse model for variational quantum algorithms.
//!
//! This crate implements the paper's contribution on top of the
//! workspace's substrates:
//!
//! - [`qaoa`]: QAOA for Max-Cut — cost Hamiltonian, gate-level ansatz,
//!   approximation ratio,
//! - [`program`]: the *hybrid program* IR — an instruction stream that
//!   freely mixes gate operations with compiled pulse blocks, the
//!   concrete form of the paper's "hybrid abstraction layer",
//! - [`models`]: the three model variants the paper compares — gate-level
//!   [`models::GateModel`], pulse-level [`models::PulseModel`] (VQP-like,
//!   all pulse parameters trainable, structure gradually lost), and the
//!   proposed [`models::HybridModel`] (gate-level Hamiltonian layer with
//!   problem knowledge, native-pulse mixer layer with amplitude / phase /
//!   frequency parameters),
//! - [`executor`]: machine-in-loop noisy execution — density-matrix
//!   simulation with duration-scaled decoherence, calibrated gate errors,
//!   and readout confusion,
//! - [`compile`]: the compile/execute split — [`compile::CircuitCompiler`]
//!   runs the per-*shape* work (cancellation, placement, routing) once,
//!   and [`compile::CompiledCircuit`] binds parameters per dispatch; the
//!   cacheable unit behind `hgp_serve`'s compiled-program cache,
//! - [`training`]: the COBYLA training loop (1024 shots, 50 iterations in
//!   the paper's setup) with optional CVaR aggregation and M3 mitigation,
//! - [`duration_search`]: Step I — binary search for the shortest mixer
//!   pulse duration that preserves performance (320 dt -> 128 dt in the
//!   paper),
//! - [`pipeline`]: Steps I-III composed into the evaluation
//!   configurations of the paper's Table II (Raw / GO / M3 / CVaR).
//!
//! # Quickstart
//!
//! ```
//! use hgp_core::prelude::*;
//! use hgp_graph::instances;
//!
//! let graph = instances::task1_three_regular_6();
//! let backend = hgp_device::Backend::ibmq_toronto();
//! let layout = vec![0, 1, 2, 3, 5, 8];
//! let model = HybridModel::new(&backend, &graph, 1, layout).expect("layout is coupled");
//! let config = TrainConfig { max_evals: 20, ..TrainConfig::default() };
//! let result = train(&model, &graph, &config);
//! assert!(result.approximation_ratio > 0.0 && result.approximation_ratio <= 1.0);
//! ```

pub mod compile;
pub mod cost;
pub mod duration_search;
pub mod executor;
pub mod models;
pub mod pipeline;
pub mod program;
pub mod qaoa;
pub mod template;
pub mod training;

/// Convenient re-exports for application code.
pub mod prelude {
    pub use crate::compile::{CircuitCompiler, CompiledCircuit};
    pub use crate::cost::CostEvaluator;
    pub use crate::duration_search::{search_min_duration, DurationSearchResult};
    pub use crate::executor::Executor;
    pub use crate::models::{GateModel, HybridModel, PulseModel, VqaModel};
    pub use crate::pipeline::{run_pipeline, PipelineConfig, PipelineResult};
    pub use crate::program::{Program, ProgramOp};
    pub use crate::qaoa::{approximation_ratio, cost_hamiltonian, cut_cost, qaoa_circuit};
    pub use crate::training::{objective_gradient, train, TrainConfig, TrainResult};
}
