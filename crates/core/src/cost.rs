//! Cost evaluation from measurement records.
//!
//! Wraps the Max-Cut cost with the paper's Step III options: CVaR
//! aggregation (`alpha = 0.3` in the evaluation) and M3 measurement
//! mitigation. The same evaluator is used inside the training loop and
//! for final reporting, as on hardware.

use hgp_graph::Graph;
use hgp_mitigation::{cvar, M3Mitigator};
use hgp_sim::Counts;

use crate::qaoa::cut_cost;

/// Evaluates the QAOA cost (expected or CVaR cut weight) from counts.
#[derive(Debug, Clone)]
pub struct CostEvaluator {
    graph: Graph,
    c_max: f64,
    /// CVaR fraction; `None` = plain expectation.
    pub cvar_alpha: Option<f64>,
    /// Measurement mitigation; `None` = raw counts.
    pub m3: Option<M3Mitigator>,
}

impl CostEvaluator {
    /// Builds an evaluator, solving the instance exactly for `C_max`.
    pub fn new(graph: &Graph) -> Self {
        let c_max = hgp_graph::brute_force(graph).value;
        Self {
            graph: graph.clone(),
            c_max,
            cvar_alpha: None,
            m3: None,
        }
    }

    /// Enables CVaR aggregation.
    pub fn with_cvar(mut self, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        self.cvar_alpha = Some(alpha);
        self
    }

    /// Enables M3 mitigation.
    pub fn with_m3(mut self, m3: M3Mitigator) -> Self {
        self.m3 = Some(m3);
        self
    }

    /// The exact optimum `C_max`.
    pub fn c_max(&self) -> f64 {
        self.c_max
    }

    /// The instance.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The (possibly mitigated, possibly CVaR-aggregated) cost of a shot
    /// record. Higher is better.
    pub fn cost(&self, counts: &Counts) -> f64 {
        let cut = |b: usize| cut_cost(&self.graph, b);
        match (&self.m3, self.cvar_alpha) {
            (None, None) => counts.expectation_of(cut),
            (None, Some(alpha)) => cvar(counts, cut, alpha, true),
            (Some(m3), None) => m3.apply(counts).expectation_of(cut),
            (Some(m3), Some(alpha)) => {
                // CVaR over the mitigated quasi-distribution, projected to
                // a true distribution with fractional weights.
                let probs = m3.apply(counts).to_probabilities();
                cvar_weighted(probs.iter().map(|(&b, &p)| (cut(b), p)), alpha)
            }
        }
    }

    /// Approximation ratio `cost / C_max` of a shot record.
    pub fn approximation_ratio(&self, counts: &Counts) -> f64 {
        self.cost(counts) / self.c_max
    }
}

/// CVaR (maximizing) over weighted outcomes with real weights summing
/// to ~1.
fn cvar_weighted(outcomes: impl Iterator<Item = (f64, f64)>, alpha: f64) -> f64 {
    let mut pairs: Vec<(f64, f64)> = outcomes.collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite costs"));
    let total: f64 = pairs.iter().map(|p| p.1).sum();
    let budget = alpha * total;
    let mut taken = 0.0;
    let mut acc = 0.0;
    for (value, weight) in pairs {
        if taken >= budget {
            break;
        }
        let take = weight.min(budget - taken);
        acc += value * take;
        taken += take;
    }
    if budget > 0.0 {
        acc / budget
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgp_graph::instances;
    use hgp_noise::ReadoutModel;

    fn record(pairs: &[(usize, u64)], n: usize) -> Counts {
        let mut c = Counts::new(n);
        for &(b, k) in pairs {
            c.record(b, k);
        }
        c
    }

    #[test]
    fn plain_expectation_path() {
        let g = instances::task1_three_regular_6();
        let eval = CostEvaluator::new(&g);
        assert_eq!(eval.c_max(), 9.0);
        // All shots on the optimal cut give AR 1.
        let best = hgp_graph::brute_force(&g).assignment;
        let counts = record(&[(best, 100)], 6);
        assert!((eval.approximation_ratio(&counts) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cvar_path_dominates_expectation() {
        let g = instances::task1_three_regular_6();
        let best = hgp_graph::brute_force(&g).assignment;
        let counts = record(&[(best, 30), (0, 70)], 6);
        let plain = CostEvaluator::new(&g).approximation_ratio(&counts);
        let cvar30 = CostEvaluator::new(&g)
            .with_cvar(0.3)
            .approximation_ratio(&counts);
        assert!(cvar30 > plain);
        assert!(
            (cvar30 - 1.0).abs() < 1e-12,
            "best 30% of shots are optimal"
        );
    }

    #[test]
    fn m3_path_restores_cost_under_readout_noise() {
        use rand::SeedableRng;
        let g = instances::task2_random_6();
        let best = hgp_graph::brute_force(&g).assignment;
        let truth = record(&[(best, 30_000)], 6);
        let model = ReadoutModel::uniform(6, 0.03);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let noisy = model.corrupt_counts(&truth, &mut rng);
        let raw = CostEvaluator::new(&g).approximation_ratio(&noisy);
        let mitigated = CostEvaluator::new(&g)
            .with_m3(M3Mitigator::from_readout_model(&model))
            .approximation_ratio(&noisy);
        assert!(raw < 1.0);
        assert!(
            mitigated > raw,
            "M3 should improve AR: {mitigated} vs {raw}"
        );
        assert!((mitigated - 1.0).abs() < 0.03);
    }

    #[test]
    fn combined_m3_cvar_path_runs() {
        let g = instances::task1_three_regular_6();
        let counts = record(&[(0b010101, 512), (0b000000, 512)], 6);
        let eval = CostEvaluator::new(&g)
            .with_cvar(0.3)
            .with_m3(M3Mitigator::from_readout_model(&ReadoutModel::uniform(
                6, 0.02,
            )));
        let ar = eval.approximation_ratio(&counts);
        assert!(ar > 0.0 && ar <= 1.001);
    }

    #[test]
    fn cvar_weighted_matches_unweighted() {
        let g = instances::task1_three_regular_6();
        let counts = record(&[(0b010101, 700), (0b000000, 300)], 6);
        let by_counts = CostEvaluator::new(&g).with_cvar(0.5).cost(&counts);
        let by_weight = cvar_weighted(
            [(cut_cost(&g, 0b010101), 0.7), (cut_cost(&g, 0b000000), 0.3)].into_iter(),
            0.5,
        );
        assert!((by_counts - by_weight).abs() < 1e-12);
    }
}
