//! Step I: binary search for the mixer pulse duration.
//!
//! The paper restricts Gaussian pulse durations to multiples of 32 dt (a
//! Qiskit-pulse constraint) and binary searches for the shortest mixer
//! duration whose trained approximation ratio stays within tolerance of
//! the full-length (320 dt) baseline — reporting 320 dt -> 128 dt with no
//! significant AR loss.

use hgp_graph::Graph;

use crate::models::HybridModel;
use crate::training::{train, TrainConfig};

/// Outcome of the duration binary search.
#[derive(Debug, Clone, PartialEq)]
pub struct DurationSearchResult {
    /// Shortest accepted duration, `dt`.
    pub best_duration_dt: u32,
    /// AR of the full-duration baseline.
    pub baseline_ar: f64,
    /// AR at the accepted duration.
    pub ar_at_best: f64,
    /// Every `(duration, AR)` pair evaluated, in evaluation order.
    pub evaluated: Vec<(u32, f64)>,
}

/// Binary searches mixer durations in `[min_dt, max_dt]` (multiples of
/// 32 dt). A duration is *accepted* when its trained AR is at least
/// `baseline - tolerance`.
///
/// # Panics
///
/// Panics unless `32 <= min_dt <= max_dt` and both are multiples of 32.
pub fn search_min_duration(
    model: &HybridModel<'_>,
    graph: &Graph,
    config: &TrainConfig,
    min_dt: u32,
    max_dt: u32,
    tolerance: f64,
) -> DurationSearchResult {
    assert!(
        min_dt >= 32 && min_dt.is_multiple_of(32),
        "min_dt must be a multiple of 32"
    );
    assert!(
        max_dt >= min_dt && max_dt.is_multiple_of(32),
        "max_dt must be a multiple of 32"
    );
    let mut evaluated = Vec::new();
    let baseline_model = model.clone_with_duration(max_dt);
    let baseline_ar = train(&baseline_model, graph, config).approximation_ratio;
    evaluated.push((max_dt, baseline_ar));
    // Binary search over the 32-dt grid: find the smallest accepted
    // duration, assuming acceptance is monotone in duration (longer
    // pulses can always reproduce shorter ones' rotations within the
    // amplitude bound).
    let mut lo = min_dt / 32; // candidate grid indices
    let mut hi = max_dt / 32; // hi is always accepted
    let mut ar_at_best = baseline_ar;
    while lo < hi {
        let mid = (lo + hi) / 2;
        let duration = mid * 32;
        let candidate = model.clone_with_duration(duration);
        let ar = train(&candidate, graph, config).approximation_ratio;
        evaluated.push((duration, ar));
        if ar >= baseline_ar - tolerance {
            hi = mid;
            ar_at_best = ar;
        } else {
            lo = mid + 1;
        }
    }
    DurationSearchResult {
        best_duration_dt: hi * 32,
        baseline_ar,
        ar_at_best,
        evaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgp_device::Backend;
    use hgp_graph::instances;

    #[test]
    fn search_returns_grid_aligned_duration() {
        let backend = Backend::ibmq_toronto();
        let graph = instances::task1_three_regular_6();
        let model = HybridModel::new(&backend, &graph, 1, vec![1, 2, 3, 4, 5, 7]).unwrap();
        let config = TrainConfig {
            max_evals: 6,
            shots: 512,
            final_shots: 2048,
            ..TrainConfig::default()
        };
        let result = search_min_duration(&model, &graph, &config, 32, 320, 0.05);
        assert_eq!(result.best_duration_dt % 32, 0);
        assert!(result.best_duration_dt >= 32 && result.best_duration_dt <= 320);
        // The search must have evaluated the baseline plus log2 grid steps.
        assert!(result.evaluated.len() >= 2);
        assert!(result.evaluated.len() <= 6);
    }

    #[test]
    fn generous_tolerance_accepts_short_durations() {
        let backend = Backend::ibmq_toronto();
        let graph = instances::task1_three_regular_6();
        let model = HybridModel::new(&backend, &graph, 1, vec![1, 2, 3, 4, 5, 7]).unwrap();
        let config = TrainConfig {
            max_evals: 4,
            shots: 256,
            final_shots: 1024,
            ..TrainConfig::default()
        };
        let loose = search_min_duration(&model, &graph, &config, 32, 320, 1.0);
        // Tolerance 1.0 accepts anything, so the search bottoms out.
        assert_eq!(loose.best_duration_dt, 32);
    }
}
