//! Fixed routing regions.
//!
//! The paper fixes the logical-to-physical qubit mapping; we generalize
//! slightly: models route inside a fixed *connected region* of physical
//! qubits, which bounds the simulated register width and keeps
//! comparisons fair across models.

use hgp_device::{Backend, CouplingMap};

/// Chooses a connected region of `n` physical qubits by BFS from the
/// best-connected qubit, preferring high-degree neighbours.
///
/// # Panics
///
/// Panics if the device has fewer than `n` connected qubits.
pub fn default_region(backend: &Backend, n: usize) -> Vec<usize> {
    let coupling = backend.coupling_map();
    assert!(n <= coupling.n_qubits(), "region larger than the device");
    let start = (0..coupling.n_qubits())
        .max_by_key(|&q| coupling.neighbors(q).len())
        .expect("device has qubits");
    let mut region = vec![start];
    while region.len() < n {
        // Frontier: neighbours of the region not yet inside, preferring
        // qubits with many links back into the region (keeps it dense).
        let mut best: Option<(usize, usize)> = None;
        for &q in &region {
            for nb in coupling.neighbors(q) {
                if region.contains(&nb) {
                    continue;
                }
                let links = coupling
                    .neighbors(nb)
                    .iter()
                    .filter(|x| region.contains(x))
                    .count();
                if best.is_none_or(|(_, bl)| links > bl) {
                    best = Some((nb, links));
                }
            }
        }
        let (next, _) = best.expect("device is too small or disconnected");
        region.push(next);
    }
    region
}

/// The induced coupling map on a region: wire `i` of the result is
/// physical qubit `region[i]`.
///
/// # Panics
///
/// Panics if the induced subgraph is disconnected (routing inside it
/// would deadlock).
pub fn region_coupling(backend: &Backend, region: &[usize]) -> CouplingMap {
    try_region_coupling(backend, region).expect("connected region")
}

/// Non-panicking form of [`region_coupling`], for regions derived from
/// request data: a disconnected region must fail its job, not the
/// thread.
///
/// # Errors
///
/// Returns an error naming the region if the induced subgraph is
/// disconnected.
pub fn try_region_coupling(backend: &Backend, region: &[usize]) -> Result<CouplingMap, String> {
    let coupling = backend.coupling_map();
    let mut edges = Vec::new();
    for (i, &p) in region.iter().enumerate() {
        for (j, &q) in region.iter().enumerate().skip(i + 1) {
            if coupling.are_coupled(p, q) {
                edges.push((i, j));
            }
        }
    }
    let sub = CouplingMap::new(region.len(), &edges);
    if !sub.is_connected() {
        return Err(format!("region {region:?} induces a disconnected subgraph"));
    }
    Ok(sub)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_region_is_connected() {
        for n in [4, 6, 8] {
            let backend = Backend::ibmq_toronto();
            let region = default_region(&backend, n);
            assert_eq!(region.len(), n);
            let sub = region_coupling(&backend, &region);
            assert!(sub.is_connected());
        }
    }

    #[test]
    fn region_coupling_reflects_device_edges() {
        let backend = Backend::ibmq_guadalupe();
        // Qubits 0-1-2-3 are a path on guadalupe.
        let sub = region_coupling(&backend, &[0, 1, 2, 3]);
        assert!(sub.are_coupled(0, 1));
        assert!(sub.are_coupled(1, 2));
        assert!(!sub.are_coupled(0, 3));
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn disconnected_region_panics() {
        let backend = Backend::ibmq_guadalupe();
        let _ = region_coupling(&backend, &[0, 15]);
    }
}
