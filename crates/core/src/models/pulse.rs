//! The pulse-level QAOA model (the VQP-style baseline of Fig. 5).
//!
//! The entire routed gate circuit is lowered to its calibrated pulse
//! schedule *once*, at the standard QAOA initial parameters; then every
//! physical pulse's amplitude and phase become trainable deviations.
//! Nothing pins the Hamiltonian layer's `RZZ` structure, so optimization
//! gradually trades it away — the paper's "loss of algorithm design
//! knowledge", which buys a larger search space and slower convergence.

use hgp_device::Backend;
use hgp_graph::Graph;
use hgp_pulse::calibration::PulseLibrary;
use hgp_pulse::propagator::{cr_propagator, drive_propagator, virtual_z};
use hgp_pulse::{Channel, PulseSpec, Waveform};
use hgp_sim::Counts;
use hgp_transpile::Layout;

use crate::models::gate::GateModel;
use crate::models::{GateModelOptions, VqaModel};
use crate::program::{BlockKind, Program};
use crate::qaoa::initial_point;

/// One pulse of the lowered template.
#[derive(Debug, Clone)]
enum TemplateItem {
    Drive {
        wire: usize,
        waveform: Waveform,
        amp0: f64,
        phase0: f64,
        freq0: f64,
    },
    CrossRes {
        control_wire: usize,
        target_wire: usize,
        waveform: Waveform,
        amp0: f64,
        phase0: f64,
    },
    VirtualZ {
        wire: usize,
        angle: f64,
    },
}

/// The pulse-level model. Parameters: `[d_amp, d_phase]` per physical
/// pulse, in schedule order (`amp' = amp0 * (1 + d_amp)`,
/// `phase' = phase0 + d_phase`), all starting at zero.
///
/// Deltas are bounded to trim ranges (`|d_amp| <= 0.075`,
/// `|d_phase| <= 0.075` rad) for the same reason the hybrid model bounds
/// its trims (see [`crate::models::hybrid`]): on a smooth simulated
/// landscape unbounded per-pulse freedom turns the ansatz into a far
/// stronger algorithm family than anything the paper's hardware-budget
/// training could realize.
#[derive(Debug, Clone)]
pub struct PulseModel<'a> {
    backend: &'a Backend,
    region: Vec<usize>,
    template: Vec<TemplateItem>,
    final_layout: Layout,
    n_logical: usize,
    n_physical_pulses: usize,
}

impl<'a> PulseModel<'a> {
    /// Lowers the routed level-`p` QAOA circuit at the standard initial
    /// point into a trainable pulse template.
    ///
    /// # Errors
    ///
    /// Returns an error if the region mismatches the graph or lowering
    /// hits a non-coupled pair (cannot happen after routing).
    pub fn new(
        backend: &'a Backend,
        graph: &Graph,
        p: usize,
        region: Vec<usize>,
    ) -> Result<Self, String> {
        let gate = GateModel::new(backend, graph, p, region.clone(), GateModelOptions::raw())?;
        let bound = gate.circuit().bind(&initial_point(p));
        // Lower on physical indices (the pulse library speaks physical).
        let physical = bound.remapped(&region, backend.n_qubits());
        let lib = PulseLibrary::new(backend);
        let schedule = lib.circuit_to_schedule(&physical)?;
        let wire_of = |phys: usize| -> usize {
            region
                .iter()
                .position(|&r| r == phys)
                .expect("schedule stays inside the region")
        };
        let mut items: Vec<(u32, TemplateItem)> = Vec::new();
        for played in schedule.items() {
            let item = match (&played.pulse, &played.channel) {
                (
                    PulseSpec::Drive {
                        waveform,
                        amp,
                        phase,
                        freq_shift,
                    },
                    Channel::Drive(q),
                ) => TemplateItem::Drive {
                    wire: wire_of(*q),
                    waveform: *waveform,
                    amp0: *amp,
                    phase0: *phase,
                    freq0: *freq_shift,
                },
                (
                    PulseSpec::CrossResonance {
                        waveform,
                        amp,
                        phase,
                    },
                    Channel::Control { control, target },
                ) => TemplateItem::CrossRes {
                    control_wire: wire_of(*control),
                    target_wire: wire_of(*target),
                    waveform: *waveform,
                    amp0: *amp,
                    phase0: *phase,
                },
                (PulseSpec::VirtualZ { angle }, Channel::Drive(q)) => TemplateItem::VirtualZ {
                    wire: wire_of(*q),
                    angle: *angle,
                },
                (p, c) => return Err(format!("unexpected pulse {p:?} on {c}")),
            };
            items.push((played.start, item));
        }
        items.sort_by_key(|(start, _)| *start);
        let template: Vec<TemplateItem> = items.into_iter().map(|(_, i)| i).collect();
        let n_physical_pulses = template
            .iter()
            .filter(|t| !matches!(t, TemplateItem::VirtualZ { .. }))
            .count();
        Ok(Self {
            backend,
            region,
            template,
            final_layout: gate_final_layout(&gate, graph.n_nodes()),
            n_logical: graph.n_nodes(),
            n_physical_pulses,
        })
    }

    /// Number of physical (trainable) pulses in the template.
    pub fn n_pulses(&self) -> usize {
        self.n_physical_pulses
    }
}

/// Extracts the final layout of a gate model by probing
/// `interpret_counts` with one-hot bitstrings.
fn gate_final_layout(gate: &GateModel<'_>, n_logical: usize) -> Layout {
    let region_size = gate.region_size();
    let mut map = vec![0usize; n_logical];
    for wire in 0..region_size {
        let mut c = Counts::new(region_size);
        c.record(1 << wire, 1);
        let logical = gate.interpret_counts(&c);
        for (bits, _) in logical.iter() {
            if bits != 0 {
                let l = bits.trailing_zeros() as usize;
                map[l] = wire;
            }
        }
    }
    Layout::new(map, region_size)
}

impl VqaModel for PulseModel<'_> {
    fn backend(&self) -> &Backend {
        self.backend
    }

    fn n_qubits(&self) -> usize {
        self.n_logical
    }

    fn region_size(&self) -> usize {
        self.region.len()
    }

    fn n_params(&self) -> usize {
        2 * self.n_physical_pulses
    }

    fn initial_params(&self) -> Vec<f64> {
        vec![0.0; self.n_params()]
    }

    fn build(&self, params: &[f64]) -> Program {
        assert_eq!(params.len(), self.n_params(), "parameter count");
        let mut program = Program::new(self.region.len());
        let mut pulse_idx = 0usize;
        for item in &self.template {
            match item {
                TemplateItem::Drive {
                    wire,
                    waveform,
                    amp0,
                    phase0,
                    freq0,
                } => {
                    let d_amp = params[2 * pulse_idx].clamp(-0.075, 0.075);
                    let d_phase = params[2 * pulse_idx + 1].clamp(-0.075, 0.075);
                    pulse_idx += 1;
                    let qp = self.backend.qubit(self.region[*wire]);
                    // True physics: amplitude miscalibration and frame
                    // offset distort the commanded pulse, exactly as for
                    // the hybrid model's mixer pulses.
                    let amp = (amp0 * (1.0 + d_amp)).clamp(-1.0, 1.0) * (1.0 + qp.amp_error);
                    let u = drive_propagator(
                        waveform,
                        amp,
                        phase0 + d_phase,
                        *freq0 + qp.freq_offset,
                        qp.drive_strength,
                    );
                    program.push_pulse_block(&[*wire], u, waveform.duration(), BlockKind::Drive);
                }
                TemplateItem::CrossRes {
                    control_wire,
                    target_wire,
                    waveform,
                    amp0,
                    phase0,
                } => {
                    let d_amp = params[2 * pulse_idx].clamp(-0.075, 0.075);
                    let d_phase = params[2 * pulse_idx + 1].clamp(-0.075, 0.075);
                    pulse_idx += 1;
                    let amp = (amp0 * (1.0 + d_amp)).clamp(-1.5, 1.5);
                    let control = self.region[*control_wire];
                    let target = self.region[*target_wire];
                    let edge = self.backend.edge(control, target);
                    let strength = self.backend.qubit(control).drive_strength;
                    let u = cr_propagator(waveform, amp, phase0 + d_phase, edge, strength);
                    program.push_pulse_block(
                        &[*control_wire, *target_wire],
                        u,
                        waveform.duration(),
                        BlockKind::CrossResonance,
                    );
                }
                TemplateItem::VirtualZ { wire, angle } => {
                    program.push_pulse_block(&[*wire], virtual_z(*angle), 0, BlockKind::Virtual);
                }
            }
        }
        program
    }

    fn layout(&self) -> &[usize] {
        &self.region
    }

    fn interpret_counts(&self, counts: &Counts) -> Counts {
        let map: Vec<usize> = (0..self.n_logical)
            .map(|l| self.final_layout.physical(l))
            .collect();
        counts.remapped(&map, self.n_logical)
    }

    fn mixer_duration_dt(&self) -> u32 {
        // The mixer inherits the gate-level lowering: two pulses per qubit.
        2 * self.backend.pulse_1q_duration_dt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostEvaluator;
    use crate::executor::Executor;
    use hgp_graph::instances;

    fn region6() -> Vec<usize> {
        vec![1, 2, 3, 4, 5, 7]
    }

    #[test]
    fn template_has_many_parameters() {
        let backend = Backend::ibmq_toronto();
        let graph = instances::task1_three_regular_6();
        let model = PulseModel::new(&backend, &graph, 1, region6()).unwrap();
        // Far more parameters than the hybrid model's 19 — the paper's
        // scalability complaint.
        assert!(model.n_params() > 100, "n_params = {}", model.n_params());
        assert!(model.n_pulses() * 2 == model.n_params());
    }

    #[test]
    fn zero_deltas_reproduce_the_gate_circuit() {
        // At zero deviations the pulse model IS the lowered gate circuit;
        // on an ideal backend its AR must match the gate model's closely.
        let backend = Backend::ideal(6);
        let graph = instances::task1_three_regular_6();
        let region: Vec<usize> = (0..6).collect();
        let pulse = PulseModel::new(&backend, &graph, 1, region.clone()).unwrap();
        let gate = GateModel::new(&backend, &graph, 1, region, GateModelOptions::raw()).unwrap();
        let eval = CostEvaluator::new(&graph);
        let exec = Executor::new(&backend, pulse.layout().to_vec());
        let c_pulse = exec.sample(&pulse.build(&pulse.initial_params()), 100_000, 2);
        let c_gate = exec.sample(&gate.build(&initial_point(1)), 100_000, 2);
        let ar_pulse = eval.approximation_ratio(&pulse.interpret_counts(&c_pulse));
        let ar_gate = eval.approximation_ratio(&gate.interpret_counts(&c_gate));
        assert!(
            (ar_pulse - ar_gate).abs() < 0.02,
            "pulse {ar_pulse} vs gate {ar_gate}"
        );
    }

    #[test]
    fn amplitude_deltas_change_the_distribution() {
        let backend = Backend::ibmq_toronto();
        let graph = instances::task2_random_6();
        let model = PulseModel::new(&backend, &graph, 1, region6()).unwrap();
        let exec = Executor::new(&backend, model.layout().to_vec());
        let base = exec.sample(&model.build(&model.initial_params()), 4096, 3);
        let mut perturbed = model.initial_params();
        for (i, v) in perturbed.iter_mut().enumerate() {
            if i % 2 == 0 {
                *v = 0.3; // +30% amplitude everywhere
            }
        }
        let moved = exec.sample(&model.build(&perturbed), 4096, 3);
        assert_ne!(base, moved);
    }
}
