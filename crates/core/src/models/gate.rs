//! The gate-level QAOA model (the paper's baseline).

use hgp_circuit::Circuit;
use hgp_device::Backend;
use hgp_sim::Counts;
use hgp_transpile::cancellation::cancel_gates;
use hgp_transpile::sabre::{choose_initial_layout, route};
use hgp_transpile::Layout;

use crate::models::region::region_coupling;
use crate::models::VqaModel;
use crate::program::Program;
use crate::qaoa::{initial_point, qaoa_circuit};

/// Gate-level compilation options (the paper's Raw vs GO configurations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateModelOptions {
    /// Commutative gate cancellation before and after routing.
    pub cancellation: bool,
    /// SABRE forward-backward iterations for placing logical qubits
    /// *within* the region (0 = trivial placement, the Raw setting).
    pub sabre_iterations: usize,
}

impl GateModelOptions {
    /// The unoptimized configuration.
    pub fn raw() -> Self {
        Self {
            cancellation: false,
            sabre_iterations: 0,
        }
    }

    /// The paper's "GO" configuration (SABRE + commutative cancellation).
    pub fn optimized() -> Self {
        Self {
            cancellation: true,
            sabre_iterations: 3,
        }
    }
}

/// Routes a logical circuit inside a fixed region, preserving free
/// parameters. Returns the region-wire circuit, the exit layout, and
/// the number of SWAPs routing inserted.
///
/// This is the one shape pipeline (cancellation, routing, cancellation)
/// shared by the model types and [`crate::compile::CircuitCompiler`] —
/// keeping the two in lockstep is what makes served jobs bit-identical
/// to model-driven runs.
pub(crate) fn route_in_region(
    circuit: &Circuit,
    backend: &Backend,
    region: &[usize],
    entry_layout: &Layout,
    options: &GateModelOptions,
) -> Result<(Circuit, Layout, usize), String> {
    let sub = region_coupling(backend, region);
    let mut logical = circuit.clone();
    if options.cancellation {
        logical = cancel_gates(&logical);
    }
    let routed = route(&logical, &sub, entry_layout);
    let mut out = routed.circuit;
    if options.cancellation {
        out = cancel_gates(&out);
    }
    Ok((out, routed.final_layout, routed.n_swaps))
}

/// The standard gate-level QAOA model: `RZZ` Hamiltonian layers and
/// `RX(2 beta)` mixer layers, routed inside a fixed region.
///
/// ```
/// use hgp_core::models::{GateModel, GateModelOptions, VqaModel};
/// use hgp_graph::instances;
/// use hgp_device::Backend;
///
/// let backend = Backend::ibmq_guadalupe();
/// let graph = instances::task1_three_regular_6();
/// let model = GateModel::new(&backend, &graph, 1, vec![0, 1, 2, 3, 5, 8],
///     GateModelOptions::raw()).expect("connected region");
/// assert_eq!(model.n_params(), 2);
/// assert_eq!(model.mixer_duration_dt(), 320); // RX = 2 calibrated pulses
/// ```
#[derive(Debug, Clone)]
pub struct GateModel<'a> {
    backend: &'a Backend,
    region: Vec<usize>,
    circuit: Circuit,
    final_layout: Layout,
    n_logical: usize,
    p: usize,
}

impl<'a> GateModel<'a> {
    /// Builds the model for a level-`p` QAOA on `graph`, routed inside
    /// `region` (physical qubits; must induce a connected subgraph and
    /// have exactly `graph.n_nodes()` entries).
    ///
    /// # Errors
    ///
    /// Returns an error if the region size mismatches the graph.
    ///
    /// # Panics
    ///
    /// Panics if the region induces a disconnected subgraph.
    pub fn new(
        backend: &'a Backend,
        graph: &hgp_graph::Graph,
        p: usize,
        region: Vec<usize>,
        options: GateModelOptions,
    ) -> Result<Self, String> {
        let n = graph.n_nodes();
        if region.len() != n {
            return Err(format!(
                "region has {} qubits but the graph has {n} nodes",
                region.len()
            ));
        }
        let logical = qaoa_circuit(graph, p);
        let sub = region_coupling(backend, &region);
        let entry = if options.sabre_iterations > 0 {
            choose_initial_layout(&logical, &sub, options.sabre_iterations)
        } else {
            Layout::trivial(n, n)
        };
        let (circuit, final_layout, _n_swaps) =
            route_in_region(&logical, backend, &region, &entry, &options)?;
        Ok(Self {
            backend,
            region,
            circuit,
            final_layout,
            n_logical: n,
            p,
        })
    }

    /// The routed, still-parametrized circuit (region-wire indices).
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The backend.
    pub fn backend(&self) -> &Backend {
        self.backend
    }

    /// QAOA depth.
    pub fn p(&self) -> usize {
        self.p
    }
}

impl VqaModel for GateModel<'_> {
    fn backend(&self) -> &Backend {
        self.backend
    }

    fn n_qubits(&self) -> usize {
        self.n_logical
    }

    fn region_size(&self) -> usize {
        self.region.len()
    }

    fn n_params(&self) -> usize {
        2 * self.p
    }

    fn initial_params(&self) -> Vec<f64> {
        initial_point(self.p)
    }

    fn initial_param_candidates(&self) -> Vec<Vec<f64>> {
        crate::qaoa::initial_candidates(self.p)
    }

    fn build(&self, params: &[f64]) -> Program {
        assert_eq!(params.len(), self.n_params(), "parameter count");
        let bound = self.circuit.bind(params);
        Program::from_circuit(&bound).expect("bound circuit")
    }

    fn layout(&self) -> &[usize] {
        &self.region
    }

    fn interpret_counts(&self, counts: &Counts) -> Counts {
        let map: Vec<usize> = (0..self.n_logical)
            .map(|l| self.final_layout.physical(l))
            .collect();
        counts.remapped(&map, self.n_logical)
    }

    fn mixer_duration_dt(&self) -> u32 {
        // RX(2 beta) costs two calibrated pulses per qubit.
        2 * self.backend.pulse_1q_duration_dt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostEvaluator;
    use crate::executor::Executor;
    use hgp_graph::instances;
    use hgp_sim::StateVector;

    fn toronto_region6() -> Vec<usize> {
        // A connected heavy-hex patch on the 27q Falcon layout.
        vec![1, 2, 3, 4, 5, 7]
    }

    #[test]
    fn model_builds_and_counts_params() {
        let backend = Backend::ibmq_toronto();
        let graph = instances::task1_three_regular_6();
        let model = GateModel::new(
            &backend,
            &graph,
            1,
            toronto_region6(),
            GateModelOptions::raw(),
        )
        .unwrap();
        assert_eq!(model.n_params(), 2);
        assert_eq!(model.region_size(), 6);
        let program = model.build(&model.initial_params());
        assert!(program.count_gates() > 0);
    }

    #[test]
    fn noiseless_evaluation_matches_direct_qaoa() {
        // On an ideal all-to-all backend, the routed model's distribution
        // must match the logical QAOA statevector.
        let backend = Backend::ideal(6);
        let graph = instances::task1_three_regular_6();
        let model = GateModel::new(
            &backend,
            &graph,
            1,
            vec![0, 1, 2, 3, 4, 5],
            GateModelOptions::raw(),
        )
        .unwrap();
        let params = [0.35, 0.25];
        let program = model.build(&params);
        let exec = Executor::new(&backend, model.layout().to_vec());
        let rho = exec.run(&program);
        let counts = exec.sample_state(&rho, 200_000, 3);
        let logical_counts = model.interpret_counts(&counts);
        // Reference distribution.
        let reference =
            StateVector::from_circuit(&crate::qaoa::qaoa_circuit(&graph, 1).bind(&params)).unwrap();
        for b in 0..(1 << 6) {
            let f = logical_counts.frequency(b);
            let p = reference.probability(b);
            assert!((f - p).abs() < 0.01, "state {b:06b}: {f} vs {p}");
        }
    }

    #[test]
    fn optimized_options_do_not_change_semantics() {
        let backend = Backend::ideal(6);
        let graph = instances::task2_random_6();
        let params = [0.4, 0.3];
        let eval = CostEvaluator::new(&graph);
        let mut ars = Vec::new();
        for options in [GateModelOptions::raw(), GateModelOptions::optimized()] {
            let model =
                GateModel::new(&backend, &graph, 1, vec![0, 1, 2, 3, 4, 5], options).unwrap();
            let exec = Executor::new(&backend, model.layout().to_vec());
            let counts = exec.sample(&model.build(&params), 100_000, 11);
            ars.push(eval.approximation_ratio(&model.interpret_counts(&counts)));
        }
        assert!(
            (ars[0] - ars[1]).abs() < 0.02,
            "raw vs optimized semantics differ: {ars:?}"
        );
    }

    #[test]
    fn gate_optimization_reduces_gate_count_on_hardware() {
        let backend = Backend::ibmq_toronto();
        let graph = instances::task1_three_regular_6();
        let raw = GateModel::new(
            &backend,
            &graph,
            1,
            toronto_region6(),
            GateModelOptions::raw(),
        )
        .unwrap();
        let opt = GateModel::new(
            &backend,
            &graph,
            1,
            toronto_region6(),
            GateModelOptions::optimized(),
        )
        .unwrap();
        assert!(
            opt.circuit().count_2q_gates() <= raw.circuit().count_2q_gates(),
            "GO should not add 2q gates"
        );
    }

    #[test]
    fn wrong_region_size_is_an_error() {
        let backend = Backend::ibmq_toronto();
        let graph = instances::task1_three_regular_6();
        let r = GateModel::new(&backend, &graph, 1, vec![0, 1, 2], GateModelOptions::raw());
        assert!(r.is_err());
    }
}
