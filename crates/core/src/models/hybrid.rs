//! The hybrid gate-pulse model — the paper's contribution.
//!
//! The Hamiltonian layer keeps its gate-level `RZZ` structure (problem
//! encoding, carefully calibrated 2q pulses, small parameter count); the
//! problem-agnostic mixer layer is replaced with one *native parametric
//! drive pulse per qubit*, exposing amplitude, phase, and per-pulse
//! frequency shift — parameters invisible at the gate level (§IV-A.1 of
//! the paper). The mixer pulse duration is a compile-time knob, binary
//! searched by Step I ([`crate::duration_search`]).

use hgp_circuit::{Circuit, ParamId};
use hgp_device::Backend;
use hgp_graph::Graph;
use hgp_pulse::propagator::drive_propagator;
use hgp_pulse::Waveform;
use hgp_sim::Counts;
use hgp_transpile::Layout;

use crate::models::gate::{route_in_region, GateModelOptions};
use crate::models::VqaModel;
use crate::program::{BlockKind, Program};
use crate::qaoa::{append_hamiltonian_layer, initial_point};

/// Hardware bound on the sustained mixer drive amplitude.
pub const MIXER_AMP_BOUND: f64 = 0.3;
/// Bound on the *accumulated* frequency-trim authority of one mixer
/// pulse, radians (`|freq_shift| * duration <= this`).
///
/// Hardware allows shifts of ~±100 MHz (±0.14 rad/dt, see
/// [`FREQ_SHIFT_HW_BOUND`]) — far more Z-authority over a 320 dt pulse
/// than the trim needs. On a smooth simulated landscape the optimizer
/// spends all of it synthesizing large interleaved Z rotations, leaving
/// the QAOA algorithm family entirely, which the paper's hardware-noise-
/// and budget-limited training could not do (their gains were ~5%). The
/// accumulated trim is therefore capped at about 1 rad — calibrating the
/// pulse parametrization's benefit to the paper's effect size — and made
/// duration-independent so Step I's duration reduction does not eat the
/// benefit (Fig. 5 finds none lost).
pub const FREQ_TRIM_AUTHORITY_RAD: f64 = 0.96;
/// The hardware limit on per-pulse frequency shifts, rad/dt (~100 MHz,
/// paper §IV-A.2).
pub const FREQ_SHIFT_HW_BOUND: f64 = 0.14;
/// Bound on the per-qubit carrier-phase trim, radians.
///
/// The phase parameter exists to track slow frame drift and residual `Z`
/// phases (paper §IV-A); it is a *trim*, not a free mixer axis — left
/// unbounded it turns the ansatz into a free-axis mixer, a materially
/// stronger algorithm than the QAOA family the paper evaluates.
pub const PHASE_TRIM_BOUND: f64 = 0.25;

/// One QAOA layer's gate part, routed inside the region.
#[derive(Debug, Clone)]
struct LayerPart {
    /// Routed Hamiltonian-layer circuit with one free param (`gamma`).
    circuit: Circuit,
    /// Region wire of each logical qubit when the mixer plays.
    wires: Vec<usize>,
}

/// The hybrid gate-pulse QAOA model.
///
/// Parameter layout (per QAOA layer, concatenated):
/// `[gamma, theta, phase_0, f_0, phase_1, f_1, ...]`:
///
/// - `theta` — the commanded mixer rotation angle, *shared* across qubits
///   (the mixer keeps its global `e^{-i beta X^n}` structure; `theta`
///   plays `2 beta`'s role and maps to each qubit's drive amplitude
///   through its calibration),
/// - per qubit, `phase` (drive phase, radians, clamped to the trim bound)
///   and `f` (frequency shift as a fraction of the allowed trim:
///   `freq = clamp(2 f, +-1) * bound`) — the pulse-only degrees of freedom
///   the paper highlights (§IV-A.1), which can cancel per-qubit frame
///   drift and calibration error invisible at the gate level.
///
/// All parameters are angle-like in magnitude so a single optimizer trust
/// region fits them.
///
/// ```
/// use hgp_core::models::{HybridModel, VqaModel};
/// use hgp_graph::instances;
/// use hgp_device::Backend;
///
/// let backend = Backend::ibmq_toronto();
/// let graph = instances::task1_three_regular_6();
/// let model = HybridModel::new(&backend, &graph, 1, vec![1, 2, 3, 4, 5, 7])
///     .expect("connected region");
/// assert_eq!(model.n_params(), 2 + 2 * 6);
/// assert_eq!(model.mixer_duration_dt(), 320); // raw, before Step I
/// ```
#[derive(Debug, Clone)]
pub struct HybridModel<'a> {
    backend: &'a Backend,
    region: Vec<usize>,
    layers: Vec<LayerPart>,
    final_layout: Layout,
    mixer_duration: u32,
    n_logical: usize,
    p: usize,
    options: GateModelOptions,
    graph: Graph,
}

impl<'a> HybridModel<'a> {
    /// Builds the hybrid model with the raw (unoptimized) gate part and
    /// the raw 320 dt mixer duration.
    ///
    /// # Errors
    ///
    /// Returns an error if the region size mismatches the graph.
    pub fn new(
        backend: &'a Backend,
        graph: &Graph,
        p: usize,
        region: Vec<usize>,
    ) -> Result<Self, String> {
        Self::with_options(backend, graph, p, region, GateModelOptions::raw())
    }

    /// Builds the hybrid model with explicit gate-level options (the
    /// paper's GO configuration uses [`GateModelOptions::optimized`]).
    ///
    /// # Errors
    ///
    /// Returns an error if the region size mismatches the graph.
    pub fn with_options(
        backend: &'a Backend,
        graph: &Graph,
        p: usize,
        region: Vec<usize>,
        options: GateModelOptions,
    ) -> Result<Self, String> {
        let n = graph.n_nodes();
        if region.len() != n {
            return Err(format!(
                "region has {} qubits but the graph has {n} nodes",
                region.len()
            ));
        }
        assert!(p > 0, "need at least one QAOA layer");
        // Route each Hamiltonian layer separately, chaining layouts so the
        // mixer pulses always land on the right wires. Under the GO
        // configuration, SABRE picks the first layer's placement inside
        // the region (as for the gate model).
        let mut layers = Vec::with_capacity(p);
        let mut current = if options.sabre_iterations > 0 {
            let mut probe = Circuit::new(n);
            let gamma = probe.add_param();
            append_hamiltonian_layer(&mut probe, graph, gamma);
            let sub = crate::models::region::region_coupling(backend, &region);
            hgp_transpile::sabre::choose_initial_layout(&probe, &sub, options.sabre_iterations)
        } else {
            Layout::trivial(n, n)
        };
        for layer in 0..p {
            let mut qc = Circuit::new(n);
            let gamma = qc.add_param();
            debug_assert_eq!(gamma, ParamId(0));
            if layer == 0 {
                // The initial |+> wall belongs to the first layer's gate
                // part (state preparation stays at the gate level, Fig. 1).
                for q in 0..n {
                    qc.h(q);
                }
            }
            append_hamiltonian_layer(&mut qc, graph, gamma);
            let (circuit, out_layout, _n_swaps) =
                route_in_region(&qc, backend, &region, &current, &options)?;
            let wires = (0..n).map(|l| out_layout.physical(l)).collect();
            layers.push(LayerPart { circuit, wires });
            current = out_layout;
        }
        Ok(Self {
            backend,
            region,
            layers,
            final_layout: current,
            mixer_duration: 320,
            n_logical: n,
            p,
            options,
            graph: graph.clone(),
        })
    }

    /// Sets the mixer pulse duration (Step I's knob). Must be a positive
    /// multiple of 32 dt per the Gaussian waveform constraint.
    ///
    /// # Panics
    ///
    /// Panics on an invalid duration.
    pub fn with_mixer_duration(mut self, duration_dt: u32) -> Self {
        assert!(
            duration_dt > 0 && duration_dt.is_multiple_of(32),
            "mixer duration must be a positive multiple of 32 dt"
        );
        self.mixer_duration = duration_dt;
        self
    }

    /// Rebuilds this model with a different mixer duration (used by the
    /// Step I binary search).
    pub fn clone_with_duration(&self, duration_dt: u32) -> Self {
        self.clone().with_mixer_duration(duration_dt)
    }

    /// The gate-level options the gate part was compiled with.
    pub fn options(&self) -> GateModelOptions {
        self.options
    }

    /// The problem instance.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The backend.
    pub fn backend(&self) -> &Backend {
        self.backend
    }

    /// QAOA depth.
    pub fn p(&self) -> usize {
        self.p
    }

    /// The mixer waveform at the current duration.
    pub fn mixer_waveform(&self) -> Waveform {
        Waveform::gaussian(self.mixer_duration)
    }

    /// Number of parameters per layer: `gamma`, the shared mixer angle
    /// `theta`, and `(phase, freq)` per qubit.
    pub fn params_per_layer(&self) -> usize {
        2 + 2 * self.n_logical
    }

    /// The drive amplitude that reproduces `RX(theta)` at the current
    /// mixer duration on region wire `wire` (used for initialization).
    pub fn amp_for_angle(&self, wire: usize, theta: f64) -> f64 {
        let strength = self.backend.qubit(self.region[wire]).drive_strength;
        theta / (strength * self.mixer_waveform().area())
    }

    /// Expands a gate-level `[gamma_1, beta_1, ...]` point into this
    /// model's parameter vector (`theta = 2 beta`, trims zero).
    fn params_from_gate_point(&self, point: &[f64]) -> Vec<f64> {
        let mut params = Vec::with_capacity(self.n_params());
        for layer in 0..self.p {
            params.push(point[2 * layer]);
            params.push(2.0 * point[2 * layer + 1]);
            for _ in 0..self.n_logical {
                params.push(0.0); // phase
                params.push(0.0); // frequency-shift scale
            }
        }
        params
    }
}

impl VqaModel for HybridModel<'_> {
    fn backend(&self) -> &Backend {
        self.backend
    }

    fn n_qubits(&self) -> usize {
        self.n_logical
    }

    fn region_size(&self) -> usize {
        self.region.len()
    }

    fn n_params(&self) -> usize {
        self.p * self.params_per_layer()
    }

    fn initial_params(&self) -> Vec<f64> {
        // gamma from the standard schedule; mixer pulses initialized at
        // the gate-level equivalent RX(2 beta) — "initialized from the
        // gate-level circuit".
        self.params_from_gate_point(&initial_point(self.p))
    }

    fn initial_param_candidates(&self) -> Vec<Vec<f64>> {
        crate::qaoa::initial_candidates(self.p)
            .iter()
            .map(|point| self.params_from_gate_point(point))
            .collect()
    }

    fn build(&self, params: &[f64]) -> Program {
        assert_eq!(params.len(), self.n_params(), "parameter count");
        let mut program = Program::new(self.region.len());
        let waveform = self.mixer_waveform();
        let per_layer = self.params_per_layer();
        for (layer_idx, layer) in self.layers.iter().enumerate() {
            let chunk = &params[layer_idx * per_layer..(layer_idx + 1) * per_layer];
            let gamma = chunk[0];
            let theta = chunk[1];
            let bound = layer.circuit.bind(&[gamma]);
            program.append(&Program::from_circuit(&bound).expect("bound layer"));
            let freq_bound =
                (FREQ_TRIM_AUTHORITY_RAD / f64::from(self.mixer_duration)).min(FREQ_SHIFT_HW_BOUND);
            for l in 0..self.n_logical {
                let phase = chunk[2 + 2 * l].clamp(-PHASE_TRIM_BOUND, PHASE_TRIM_BOUND);
                // The raw parameter is a *fraction* of the allowed trim, so
                // the same physical pulse has the same parameter value at
                // every duration (Step I changes durations mid-pipeline).
                let freq_param = (2.0 * chunk[2 + 2 * l + 1]).clamp(-1.0, 1.0) * freq_bound;
                let wire = layer.wires[l];
                let qp = self.backend.qubit(self.region[wire]);
                // Commanded amplitude, then the *true* physics: amplitude
                // miscalibration and residual frame offset act on the
                // pulse exactly as on the gate model's pulses — but here
                // the trainable parameters can cancel them.
                let amp_cmd = self
                    .amp_for_angle(wire, theta)
                    .clamp(-MIXER_AMP_BOUND, MIXER_AMP_BOUND);
                let unitary = drive_propagator(
                    &waveform,
                    amp_cmd * (1.0 + qp.amp_error),
                    phase,
                    freq_param + qp.freq_offset,
                    qp.drive_strength,
                );
                program.push_pulse_block(&[wire], unitary, self.mixer_duration, BlockKind::Drive);
            }
        }
        program
    }

    fn layout(&self) -> &[usize] {
        &self.region
    }

    fn interpret_counts(&self, counts: &Counts) -> Counts {
        let map: Vec<usize> = (0..self.n_logical)
            .map(|l| self.final_layout.physical(l))
            .collect();
        counts.remapped(&map, self.n_logical)
    }

    fn mixer_duration_dt(&self) -> u32 {
        self.mixer_duration
    }

    fn coarse_param_ids(&self) -> Option<Vec<usize>> {
        // Per layer: gamma and the shared mixer angle theta — exactly the
        // gate-level QAOA's (gamma, beta) pair. Coarse-stage training over
        // these dimensions is the gate model's own optimization, so the
        // hybrid never loses to its gate-level sub-model.
        let per_layer = self.params_per_layer();
        Some(
            (0..self.p)
                .flat_map(|l| [l * per_layer, l * per_layer + 1])
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostEvaluator;
    use crate::executor::Executor;
    use hgp_graph::instances;

    fn region6() -> Vec<usize> {
        vec![1, 2, 3, 4, 5, 7]
    }

    #[test]
    fn parameter_layout() {
        let backend = Backend::ibmq_toronto();
        let graph = instances::task1_three_regular_6();
        let model = HybridModel::new(&backend, &graph, 2, region6()).unwrap();
        assert_eq!(model.n_params(), 2 * (2 + 12));
        assert_eq!(model.initial_params().len(), model.n_params());
    }

    #[test]
    fn initial_params_reproduce_gate_level_mixer() {
        // At the initial parameters, the hybrid mixer pulse equals
        // RX(2 beta) on every qubit, so on an ideal backend the hybrid and
        // gate models produce the same distribution.
        let backend = Backend::ideal(6);
        let graph = instances::task1_three_regular_6();
        let region: Vec<usize> = (0..6).collect();
        let hybrid = HybridModel::new(&backend, &graph, 1, region.clone()).unwrap();
        let params = hybrid.initial_params();
        let program = hybrid.build(&params);
        let exec = Executor::new(&backend, hybrid.layout().to_vec());
        let counts = hybrid.interpret_counts(&exec.sample(&program, 150_000, 1));

        let base = initial_point(1);
        let reference = crate::qaoa::qaoa_circuit(&graph, 1).bind(&base);
        let psi = hgp_sim::StateVector::from_circuit(&reference).unwrap();
        for b in 0..(1usize << 6) {
            assert!(
                (counts.frequency(b) - psi.probability(b)).abs() < 0.012,
                "state {b:06b}"
            );
        }
    }

    #[test]
    fn mixer_duration_is_configurable() {
        let backend = Backend::ibmq_toronto();
        let graph = instances::task1_three_regular_6();
        let model = HybridModel::new(&backend, &graph, 1, region6())
            .unwrap()
            .with_mixer_duration(128);
        assert_eq!(model.mixer_duration_dt(), 128);
        let program = model.build(&model.initial_params());
        // 6 mixer blocks of 128 dt.
        assert_eq!(program.pulse_duration_dt(), 6 * 128);
    }

    #[test]
    #[should_panic(expected = "multiple of 32")]
    fn invalid_duration_panics() {
        let backend = Backend::ibmq_toronto();
        let graph = instances::task1_three_regular_6();
        let _ = HybridModel::new(&backend, &graph, 1, region6())
            .unwrap()
            .with_mixer_duration(100);
    }

    #[test]
    fn amp_bound_is_enforced() {
        let backend = Backend::ibmq_toronto();
        let graph = instances::task1_three_regular_6();
        let model = HybridModel::new(&backend, &graph, 1, region6()).unwrap();
        let mut params = model.initial_params();
        params[1] = 50.0; // absurd amplitude; must be clamped, not explode
        let program = model.build(&params);
        let exec = Executor::new(&backend, model.layout().to_vec());
        let rho = exec.run(&program);
        assert!((rho.trace() - 1.0).abs() < 1e-8);
    }

    #[test]
    fn hybrid_runs_with_noise_and_scores_reasonably() {
        let backend = Backend::ibmq_toronto();
        let graph = instances::task1_three_regular_6();
        let model = HybridModel::new(&backend, &graph, 1, region6()).unwrap();
        let exec = Executor::new(&backend, model.layout().to_vec());
        let counts = exec.sample(&model.build(&model.initial_params()), 1024, 9);
        let eval = CostEvaluator::new(&graph);
        let ar = eval.approximation_ratio(&model.interpret_counts(&counts));
        assert!(ar > 0.4 && ar < 0.9, "initial hybrid AR {ar}");
    }
}
