//! The hybrid gate-pulse model — the paper's contribution.
//!
//! The Hamiltonian layer keeps its gate-level `RZZ` structure (problem
//! encoding, carefully calibrated 2q pulses, small parameter count); the
//! problem-agnostic mixer layer is replaced with one *native parametric
//! drive pulse per qubit*, exposing amplitude, phase, and per-pulse
//! frequency shift — parameters invisible at the gate level (§IV-A.1 of
//! the paper). The mixer pulse duration is a compile-time knob, binary
//! searched by Step I ([`crate::duration_search`]).

use hgp_device::Backend;
use hgp_graph::Graph;
use hgp_pulse::Waveform;
use hgp_sim::Counts;

use crate::compile::{CircuitCompiler, CompiledProgram, HybridShape};
use crate::models::gate::GateModelOptions;
use crate::models::VqaModel;
use crate::program::Program;
use crate::qaoa::initial_point;

/// Hardware bound on the sustained mixer drive amplitude.
pub const MIXER_AMP_BOUND: f64 = 0.3;
/// Bound on the *accumulated* frequency-trim authority of one mixer
/// pulse, radians (`|freq_shift| * duration <= this`).
///
/// Hardware allows shifts of ~±100 MHz (±0.14 rad/dt, see
/// [`FREQ_SHIFT_HW_BOUND`]) — far more Z-authority over a 320 dt pulse
/// than the trim needs. On a smooth simulated landscape the optimizer
/// spends all of it synthesizing large interleaved Z rotations, leaving
/// the QAOA algorithm family entirely, which the paper's hardware-noise-
/// and budget-limited training could not do (their gains were ~5%). The
/// accumulated trim is therefore capped at about 1 rad — calibrating the
/// pulse parametrization's benefit to the paper's effect size — and made
/// duration-independent so Step I's duration reduction does not eat the
/// benefit (Fig. 5 finds none lost).
pub const FREQ_TRIM_AUTHORITY_RAD: f64 = 0.96;
/// The hardware limit on per-pulse frequency shifts, rad/dt (~100 MHz,
/// paper §IV-A.2).
pub const FREQ_SHIFT_HW_BOUND: f64 = 0.14;
/// Bound on the per-qubit carrier-phase trim, radians.
///
/// The phase parameter exists to track slow frame drift and residual `Z`
/// phases (paper §IV-A); it is a *trim*, not a free mixer axis — left
/// unbounded it turns the ansatz into a free-axis mixer, a materially
/// stronger algorithm than the QAOA family the paper evaluates.
pub const PHASE_TRIM_BOUND: f64 = 0.25;

/// The hybrid gate-pulse QAOA model.
///
/// Parameter layout (per QAOA layer, concatenated):
/// `[gamma, theta, phase_0, f_0, phase_1, f_1, ...]`:
///
/// - `theta` — the commanded mixer rotation angle, *shared* across qubits
///   (the mixer keeps its global `e^{-i beta X^n}` structure; `theta`
///   plays `2 beta`'s role and maps to each qubit's drive amplitude
///   through its calibration),
/// - per qubit, `phase` (drive phase, radians, clamped to the trim bound)
///   and `f` (frequency shift as a fraction of the allowed trim:
///   `freq = clamp(2 f, +-1) * bound`) — the pulse-only degrees of freedom
///   the paper highlights (§IV-A.1), which can cancel per-qubit frame
///   drift and calibration error invisible at the gate level.
///
/// All parameters are angle-like in magnitude so a single optimizer trust
/// region fits them.
///
/// ```
/// use hgp_core::models::{HybridModel, VqaModel};
/// use hgp_graph::instances;
/// use hgp_device::Backend;
///
/// let backend = Backend::ibmq_toronto();
/// let graph = instances::task1_three_regular_6();
/// let model = HybridModel::new(&backend, &graph, 1, vec![1, 2, 3, 4, 5, 7])
///     .expect("connected region");
/// assert_eq!(model.n_params(), 2 + 2 * 6);
/// assert_eq!(model.mixer_duration_dt(), 320); // raw, before Step I
/// ```
#[derive(Debug, Clone)]
pub struct HybridModel<'a> {
    backend: &'a Backend,
    /// The shape artifact everything delegates to — the same type the
    /// serve layer caches, so model-driven and served hybrid runs are
    /// one code path ([`crate::compile::CompiledProgram`]).
    compiled: CompiledProgram,
}

impl<'a> HybridModel<'a> {
    /// Builds the hybrid model with the raw (unoptimized) gate part and
    /// the raw 320 dt mixer duration.
    ///
    /// # Errors
    ///
    /// Returns an error if the region size mismatches the graph.
    pub fn new(
        backend: &'a Backend,
        graph: &Graph,
        p: usize,
        region: Vec<usize>,
    ) -> Result<Self, String> {
        Self::with_options(backend, graph, p, region, GateModelOptions::raw())
    }

    /// Builds the hybrid model with explicit gate-level options (the
    /// paper's GO configuration uses [`GateModelOptions::optimized`]).
    ///
    /// The shape work — per-layer Hamiltonian routing with chained
    /// layouts, mixer pulse calibration — is
    /// [`CircuitCompiler::compile_hybrid`]; the model is a thin view
    /// over the resulting [`CompiledProgram`].
    ///
    /// # Errors
    ///
    /// Returns an error if the region size mismatches the graph.
    pub fn with_options(
        backend: &'a Backend,
        graph: &Graph,
        p: usize,
        region: Vec<usize>,
        options: GateModelOptions,
    ) -> Result<Self, String> {
        let n = graph.n_nodes();
        if region.len() != n {
            return Err(format!(
                "region has {} qubits but the graph has {n} nodes",
                region.len()
            ));
        }
        assert!(p > 0, "need at least one QAOA layer");
        let shape = HybridShape::new(graph.clone(), p).with_options(options);
        let compiled = CircuitCompiler::new(backend, region).compile_hybrid(&shape)?;
        Ok(Self { backend, compiled })
    }

    /// Wraps an already-compiled hybrid program (e.g. one pulled from
    /// the serve cache) as a trainable model. `backend` must be the one
    /// the shape was compiled against.
    pub fn from_compiled(backend: &'a Backend, compiled: CompiledProgram) -> Self {
        Self { backend, compiled }
    }

    /// The underlying compiled artifact.
    pub fn compiled(&self) -> &CompiledProgram {
        &self.compiled
    }

    /// Consumes the model, yielding its compiled artifact.
    pub fn into_compiled(self) -> CompiledProgram {
        self.compiled
    }

    /// Sets the mixer pulse duration (Step I's knob). Must be a positive
    /// multiple of 32 dt per the Gaussian waveform constraint. Routing
    /// is reused; only the mixer waveform recompiles.
    ///
    /// # Panics
    ///
    /// Panics on an invalid duration.
    pub fn with_mixer_duration(mut self, duration_dt: u32) -> Self {
        self.compiled = self.compiled.with_mixer_duration(duration_dt);
        self
    }

    /// Rebuilds this model with a different mixer duration (used by the
    /// Step I binary search).
    pub fn clone_with_duration(&self, duration_dt: u32) -> Self {
        self.clone().with_mixer_duration(duration_dt)
    }

    /// The gate-level options the gate part was compiled with.
    pub fn options(&self) -> GateModelOptions {
        self.compiled.shape().options()
    }

    /// The problem instance.
    pub fn graph(&self) -> &Graph {
        self.compiled.shape().graph()
    }

    /// The backend.
    pub fn backend(&self) -> &Backend {
        self.backend
    }

    /// QAOA depth.
    pub fn p(&self) -> usize {
        self.compiled.shape().p()
    }

    /// The mixer waveform at the current duration.
    pub fn mixer_waveform(&self) -> Waveform {
        self.compiled.mixer_waveform()
    }

    /// Number of parameters per layer: `gamma`, the shared mixer angle
    /// `theta`, and `(phase, freq)` per qubit.
    pub fn params_per_layer(&self) -> usize {
        self.compiled.shape().params_per_layer()
    }

    /// The drive amplitude that reproduces `RX(theta)` at the current
    /// mixer duration on region wire `wire` (used for initialization).
    pub fn amp_for_angle(&self, wire: usize, theta: f64) -> f64 {
        self.compiled.amp_for_angle(wire, theta)
    }

    /// Expands a gate-level `[gamma_1, beta_1, ...]` point into this
    /// model's parameter vector (`theta = 2 beta`, trims zero).
    fn params_from_gate_point(&self, point: &[f64]) -> Vec<f64> {
        let mut params = Vec::with_capacity(self.n_params());
        for layer in 0..self.p() {
            params.push(point[2 * layer]);
            params.push(2.0 * point[2 * layer + 1]);
            for _ in 0..self.n_qubits() {
                params.push(0.0); // phase
                params.push(0.0); // frequency-shift scale
            }
        }
        params
    }
}

impl VqaModel for HybridModel<'_> {
    fn backend(&self) -> &Backend {
        self.backend
    }

    fn n_qubits(&self) -> usize {
        self.compiled.n_qubits()
    }

    fn region_size(&self) -> usize {
        self.compiled.region().len()
    }

    fn n_params(&self) -> usize {
        self.compiled.n_params()
    }

    fn initial_params(&self) -> Vec<f64> {
        // gamma from the standard schedule; mixer pulses initialized at
        // the gate-level equivalent RX(2 beta) — "initialized from the
        // gate-level circuit".
        self.params_from_gate_point(&initial_point(self.p()))
    }

    fn initial_param_candidates(&self) -> Vec<Vec<f64>> {
        crate::qaoa::initial_candidates(self.p())
            .iter()
            .map(|point| self.params_from_gate_point(point))
            .collect()
    }

    fn build(&self, params: &[f64]) -> Program {
        // Commanded amplitudes, then the *true* physics: amplitude
        // miscalibration and residual frame offset act on the pulse
        // exactly as on the gate model's pulses — but here the trainable
        // parameters can cancel them. See `CompiledProgram::bind`.
        self.compiled.bind(params)
    }

    fn layout(&self) -> &[usize] {
        self.compiled.region()
    }

    fn interpret_counts(&self, counts: &Counts) -> Counts {
        self.compiled.decode_counts(counts)
    }

    fn mixer_duration_dt(&self) -> u32 {
        self.compiled.mixer_duration_dt()
    }

    fn coarse_param_ids(&self) -> Option<Vec<usize>> {
        // Per layer: gamma and the shared mixer angle theta — exactly the
        // gate-level QAOA's (gamma, beta) pair. Coarse-stage training over
        // these dimensions is the gate model's own optimization, so the
        // hybrid never loses to its gate-level sub-model.
        Some(self.compiled.shape().coarse_param_ids())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostEvaluator;
    use crate::executor::Executor;
    use hgp_graph::instances;

    fn region6() -> Vec<usize> {
        vec![1, 2, 3, 4, 5, 7]
    }

    #[test]
    fn parameter_layout() {
        let backend = Backend::ibmq_toronto();
        let graph = instances::task1_three_regular_6();
        let model = HybridModel::new(&backend, &graph, 2, region6()).unwrap();
        assert_eq!(model.n_params(), 2 * (2 + 12));
        assert_eq!(model.initial_params().len(), model.n_params());
    }

    #[test]
    fn initial_params_reproduce_gate_level_mixer() {
        // At the initial parameters, the hybrid mixer pulse equals
        // RX(2 beta) on every qubit, so on an ideal backend the hybrid and
        // gate models produce the same distribution.
        let backend = Backend::ideal(6);
        let graph = instances::task1_three_regular_6();
        let region: Vec<usize> = (0..6).collect();
        let hybrid = HybridModel::new(&backend, &graph, 1, region.clone()).unwrap();
        let params = hybrid.initial_params();
        let program = hybrid.build(&params);
        let exec = Executor::new(&backend, hybrid.layout().to_vec());
        let counts = hybrid.interpret_counts(&exec.sample(&program, 150_000, 1));

        let base = initial_point(1);
        let reference = crate::qaoa::qaoa_circuit(&graph, 1).bind(&base);
        let psi = hgp_sim::StateVector::from_circuit(&reference).unwrap();
        for b in 0..(1usize << 6) {
            assert!(
                (counts.frequency(b) - psi.probability(b)).abs() < 0.012,
                "state {b:06b}"
            );
        }
    }

    #[test]
    fn mixer_duration_is_configurable() {
        let backend = Backend::ibmq_toronto();
        let graph = instances::task1_three_regular_6();
        let model = HybridModel::new(&backend, &graph, 1, region6())
            .unwrap()
            .with_mixer_duration(128);
        assert_eq!(model.mixer_duration_dt(), 128);
        let program = model.build(&model.initial_params());
        // 6 mixer blocks of 128 dt.
        assert_eq!(program.pulse_duration_dt(), 6 * 128);
    }

    #[test]
    #[should_panic(expected = "multiple of 32")]
    fn invalid_duration_panics() {
        let backend = Backend::ibmq_toronto();
        let graph = instances::task1_three_regular_6();
        let _ = HybridModel::new(&backend, &graph, 1, region6())
            .unwrap()
            .with_mixer_duration(100);
    }

    #[test]
    fn amp_bound_is_enforced() {
        let backend = Backend::ibmq_toronto();
        let graph = instances::task1_three_regular_6();
        let model = HybridModel::new(&backend, &graph, 1, region6()).unwrap();
        let mut params = model.initial_params();
        params[1] = 50.0; // absurd amplitude; must be clamped, not explode
        let program = model.build(&params);
        let exec = Executor::new(&backend, model.layout().to_vec());
        let rho = exec.run(&program);
        assert!((rho.trace() - 1.0).abs() < 1e-8);
    }

    #[test]
    fn hybrid_runs_with_noise_and_scores_reasonably() {
        let backend = Backend::ibmq_toronto();
        let graph = instances::task1_three_regular_6();
        let model = HybridModel::new(&backend, &graph, 1, region6()).unwrap();
        let exec = Executor::new(&backend, model.layout().to_vec());
        let counts = exec.sample(&model.build(&model.initial_params()), 1024, 9);
        let eval = CostEvaluator::new(&graph);
        let ar = eval.approximation_ratio(&model.interpret_counts(&counts));
        assert!(ar > 0.4 && ar < 0.9, "initial hybrid AR {ar}");
    }
}
