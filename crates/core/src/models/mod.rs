//! The three VQA model variants the paper compares.
//!
//! | Model | Hamiltonian layer | Mixer layer | Parameters / layer |
//! |---|---|---|---|
//! | [`GateModel`] | gates (`RZZ`) | gates (`RX`) | 2 (`gamma`, `beta`) |
//! | [`HybridModel`] | gates (`RZZ`) — *algorithm knowledge kept* | native pulses | 1 + 3n (`gamma` + per-qubit amp/phase/freq) |
//! | [`PulseModel`] | trainable pulses | trainable pulses | 2 per physical pulse (structure gradually lost) |
//!
//! Every model routes its gate content inside a fixed connected *region*
//! of physical qubits (the paper fixes the logical-to-physical mapping),
//! so the density-matrix width never exceeds the region size.

mod gate;
mod hybrid;
mod pulse;
mod region;

pub(crate) use gate::route_in_region;
pub use gate::{GateModel, GateModelOptions};
pub use hybrid::{
    HybridModel, FREQ_SHIFT_HW_BOUND, FREQ_TRIM_AUTHORITY_RAD, MIXER_AMP_BOUND, PHASE_TRIM_BOUND,
};
pub use pulse::PulseModel;
pub use region::{default_region, region_coupling, try_region_coupling};

use crate::program::Program;

/// A trainable VQA model: parameters in, executable hybrid program out.
///
/// Models are `Sync`: the training loop evaluates independent objective
/// probes (multi-start warm-up, simplex initializations, parameter-shift
/// gradients) in parallel, building one program per worker from the same
/// shared model.
pub trait VqaModel: Sync {
    /// The backend the model is compiled against.
    fn backend(&self) -> &hgp_device::Backend;

    /// Number of *logical* qubits (the problem size).
    fn n_qubits(&self) -> usize;

    /// Width of the simulated register (the routing region size).
    fn region_size(&self) -> usize;

    /// Number of trainable parameters.
    fn n_params(&self) -> usize;

    /// A sensible starting point for the optimizer.
    fn initial_params(&self) -> Vec<f64>;

    /// Builds the executable program for a parameter vector.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != self.n_params()`.
    fn build(&self, params: &[f64]) -> Program;

    /// The region: `layout[i]` = physical qubit of region wire `i`.
    fn layout(&self) -> &[usize];

    /// Maps measured region-wire counts to logical-qubit counts
    /// (accounting for routing's final permutation).
    fn interpret_counts(&self, counts: &hgp_sim::Counts) -> hgp_sim::Counts;

    /// Duration of one mixer layer in `dt` (the paper's headline
    /// duration metric).
    fn mixer_duration_dt(&self) -> u32;

    /// Indices of the *core* parameters for hierarchical training, if the
    /// model benefits from it.
    ///
    /// When present, the training loop first optimizes only these
    /// dimensions (the algorithmic parameters, e.g. QAOA's
    /// `gamma`/`theta`), then refines the full vector — the standard
    /// coarse-to-fine protocol for pulse-augmented ansatze, which keeps a
    /// high-dimensional model from losing to its own low-dimensional
    /// sub-model under a tight evaluation budget.
    fn coarse_param_ids(&self) -> Option<Vec<usize>> {
        None
    }

    /// Candidate starting points for training (the optimizer probes each
    /// once and starts from the best). Defaults to the single
    /// [`VqaModel::initial_params`] point.
    fn initial_param_candidates(&self) -> Vec<Vec<f64>> {
        vec![self.initial_params()]
    }
}
