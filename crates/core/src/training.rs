//! Machine-in-loop training.
//!
//! The paper's protocol: COBYLA, 50 iterations maximum, 1024 shots per
//! cost evaluation, optional CVaR aggregation (`alpha = 0.3`) and M3
//! mitigation. Each evaluation runs the full noisy pipeline — build
//! program, execute on the density matrix, sample with readout confusion,
//! aggregate — so the optimizer sees exactly what hardware training sees.
//!
//! Execution is routed through the [`hgp_sim::SimBackend`] engine (via
//! [`Executor`]), and independent objective probes — the multi-start
//! warm-up, COBYLA's simplex initializations/rebuilds, and
//! parameter-shift gradients — are issued as batches and evaluated in
//! parallel over rayon workers. Every evaluation derives its sampling
//! seed from its *position* in the evaluation stream, not from thread
//! scheduling, so results are bit-identical to the sequential path.

use hgp_graph::Graph;
use hgp_mitigation::M3Mitigator;
use hgp_optim::{
    parameter_shift_gradient_batch, BatchObjective, Cobyla, OptimizeResult, STANDARD_SHIFT,
};
use hgp_sim::seed::stream_seed;
use rayon::prelude::*;

use crate::cost::CostEvaluator;
use crate::executor::Executor;
use crate::models::VqaModel;

/// Training configuration (defaults follow the paper's experiment setup).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// COBYLA evaluation budget (the paper's "maximum iteration 50").
    pub max_evals: usize,
    /// Shots per cost evaluation.
    pub shots: usize,
    /// CVaR fraction for the cost (None = plain expectation).
    pub cvar_alpha: Option<f64>,
    /// Apply M3 measurement mitigation inside the loop and at reporting.
    pub use_m3: bool,
    /// Base RNG seed (each evaluation perturbs it deterministically).
    pub seed: u64,
    /// Shots for the final reported evaluation.
    pub final_shots: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            max_evals: 50,
            shots: 1024,
            cvar_alpha: None,
            use_m3: false,
            seed: 42,
            final_shots: 8192,
        }
    }
}

/// Outcome of one training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainResult {
    /// Best parameters found.
    pub best_params: Vec<f64>,
    /// Final approximation ratio under the configured cost path
    /// (CVaR/M3 included when enabled) at `final_shots`.
    pub approximation_ratio: f64,
    /// Final AR under the *plain expectation* path — comparable across
    /// configurations.
    pub expectation_ar: f64,
    /// Best-so-far AR after each optimizer iteration (the training curve).
    pub history: Vec<f64>,
    /// Function evaluations spent.
    pub n_evals: usize,
    /// Iterations to reach within 1% AR of the final value — the
    /// convergence-speed metric behind the paper's "4x faster" claim.
    pub iterations_to_converge: usize,
    /// Mixer layer duration of the trained model, `dt`.
    pub mixer_duration_dt: u32,
}

/// The shared objective machinery of [`train`] and
/// [`objective_gradient`]: the executor for the model's layout, the
/// cost evaluator with the config's CVaR/M3 options applied, and the
/// exact optimum `C_max`.
fn objective_setup<'a>(
    model: &'a dyn VqaModel,
    graph: &Graph,
    config: &TrainConfig,
) -> (Executor<'a>, CostEvaluator, f64) {
    assert_eq!(model.n_qubits(), graph.n_nodes(), "model/graph width");
    let exec = Executor::new(model.backend(), model.layout().to_vec());
    let mut evaluator = CostEvaluator::new(graph);
    if let Some(alpha) = config.cvar_alpha {
        evaluator = evaluator.with_cvar(alpha);
    }
    if config.use_m3 {
        evaluator = evaluator.with_m3(M3Mitigator::from_readout_model(exec.readout()));
    }
    let c_max = evaluator.c_max();
    (exec, evaluator, c_max)
}

/// One objective probe (negative approximation ratio), identified by
/// its position in the evaluation stream. The position (not call order
/// or thread id) derives the sampling seed, so a batch may run its
/// points on any worker and still reproduce the sequential stream bit
/// for bit.
#[allow(clippy::too_many_arguments)]
fn evaluate_probe(
    model: &dyn VqaModel,
    exec: &Executor<'_>,
    evaluator: &CostEvaluator,
    c_max: f64,
    config: &TrainConfig,
    params: &[f64],
    eval_id: u64,
) -> f64 {
    let program = model.build(params);
    let counts = exec.sample(&program, config.shots, stream_seed(config.seed, eval_id));
    let logical = model.interpret_counts(&counts);
    // Minimize the negative AR.
    -evaluator.cost(&logical) / c_max
}

/// Two-stage (coarse-then-fine) COBYLA minimization over an arbitrary
/// batch objective — the training loop's optimizer core, factored out
/// so the same protocol can run over *any* evaluation engine: the local
/// parallel executor ([`train`] wraps it) or a serving layer
/// (`hgp_serve::Service::hybrid_expectation_batch` is exactly this
/// objective shape).
///
/// Protocol:
///
/// 1. probe every `candidates` starting point in one batch and start
///    from the best,
/// 2. when `coarse_ids` is given, optimize only those dimensions first
///    (the algorithmic parameters — QAOA's `gamma`/`theta`), the full
///    step budget, from the winning candidate,
/// 3. refine the full vector from the coarse optimum, the full step
///    budget again.
///
/// "`max_evals` iterations" counts optimization steps; COBYLA's simplex
/// initialization (`dim + 1` evaluations) is granted on top per stage,
/// so models of different parameter counts get the same number of
/// *steps*. The returned result's `history` is the merged best-so-far
/// curve and `n_evals` counts every objective evaluation, candidate
/// probes included.
///
/// # Panics
///
/// Panics if `candidates` is empty or a coarse id is out of range.
pub fn minimize_two_stage(
    objective: &mut dyn BatchObjective,
    candidates: &[Vec<f64>],
    coarse_ids: Option<&[usize]>,
    max_evals: usize,
) -> OptimizeResult {
    assert!(!candidates.is_empty(), "need at least one starting point");
    let scores = objective.eval_batch(candidates);
    let mut x0 = scores
        .iter()
        .zip(candidates.iter())
        .min_by(|a, b| a.0.partial_cmp(b.0).expect("finite cost"))
        .map(|(_, c)| c.clone())
        .expect("non-empty candidates");
    let n_params = x0.len();
    let mut coarse_history: Vec<f64> = Vec::new();
    let mut coarse_evals = candidates.len();
    if let Some(core) = coarse_ids {
        // Hierarchical training: spend part of the budget on the core
        // (algorithmic) parameters alone, then refine everything.
        // Each stage gets the full step budget: the coarse stage is the
        // cheap low-dimensional search (the gate model's own problem), the
        // fine stage refines the pulse trims from its optimum.
        for &id in core {
            assert!(id < n_params, "coarse id {id} out of range");
        }
        let base = x0.clone();
        let mut core_objective = |xcs: &[Vec<f64>]| -> Vec<f64> {
            let fulls: Vec<Vec<f64>> = xcs
                .iter()
                .map(|xc| {
                    let mut full = base.clone();
                    for (i, &id) in core.iter().enumerate() {
                        full[id] = xc[i];
                    }
                    full
                })
                .collect();
            objective.eval_batch(&fulls)
        };
        let xc0: Vec<f64> = core.iter().map(|&id| x0[id]).collect();
        let coarse =
            Cobyla::new(max_evals + core.len() + 1).minimize_batch(&mut core_objective, &xc0);
        for (i, &id) in core.iter().enumerate() {
            x0[id] = coarse.x[i];
        }
        coarse_history = coarse.history;
        coarse_evals += coarse.n_evals;
    }
    let optimizer = Cobyla::new(max_evals + n_params + 1);
    let mut result = optimizer.minimize_batch(objective, &x0);
    result.n_evals += coarse_evals;
    if !coarse_history.is_empty() {
        // Merge the stages' best-so-far curves.
        let mut merged = coarse_history;
        let floor = merged.last().copied().unwrap_or(f64::INFINITY);
        merged.extend(result.history.iter().map(|&v| v.min(floor)));
        result.history = merged;
    }
    result
}

/// Trains a model on a Max-Cut instance.
///
/// # Panics
///
/// Panics if the model and graph disagree on qubit count.
pub fn train(model: &dyn VqaModel, graph: &Graph, config: &TrainConfig) -> TrainResult {
    let (exec, evaluator, c_max) = objective_setup(model, graph, config);
    let mut eval_counter = 0u64;
    let mut batch_objective = |xs: &[Vec<f64>]| -> Vec<f64> {
        let first_id = eval_counter + 1;
        eval_counter += xs.len() as u64;
        xs.par_iter()
            .enumerate()
            .map(|(i, x)| {
                evaluate_probe(
                    model,
                    &exec,
                    &evaluator,
                    c_max,
                    config,
                    x,
                    first_id + i as u64,
                )
            })
            .collect()
    };
    // Probe the candidate starts — one parallel batch — and begin from
    // the best (the standard counter to QAOA's multimodal landscape;
    // every model gets the same protocol).
    let candidates = model.initial_param_candidates();
    let result = minimize_two_stage(
        &mut batch_objective,
        &candidates,
        model.coarse_param_ids().as_deref(),
        config.max_evals,
    );
    // Final high-shot evaluation at the best parameters.
    let program = model.build(&result.x);
    let rho = exec.run(&program);
    // The final report is stream 0 — distinct from every training probe,
    // which start at stream 1.
    let final_counts = exec.sample_state(&rho, config.final_shots, stream_seed(config.seed, 0));
    let logical = model.interpret_counts(&final_counts);
    let approximation_ratio = evaluator.cost(&logical) / c_max;
    let expectation_ar = CostEvaluator::new(graph).cost(&logical) / c_max;
    let history: Vec<f64> = result.history.iter().map(|v| -v).collect();
    let iterations_to_converge = result.iterations_to_reach(0.01 * result.fun.abs().max(0.01));
    TrainResult {
        best_params: result.x,
        approximation_ratio,
        expectation_ar,
        history,
        n_evals: result.n_evals,
        iterations_to_converge,
        mixer_duration_dt: model.mixer_duration_dt(),
    }
}

/// Parameter-shift gradient of the (negative-AR) training objective at
/// `params`, with all `2 n` shifted programs built, executed, and
/// sampled in parallel.
///
/// Uses the exact rule (valid for the gate models, whose parameters all
/// enter through involutory rotation generators); the shifted
/// evaluations derive their seeds from their position in the batch, so
/// the gradient is deterministic per `config.seed`.
///
/// # Panics
///
/// Panics if the model and graph disagree on qubit count or
/// `params.len() != model.n_params()`.
pub fn objective_gradient(
    model: &dyn VqaModel,
    graph: &Graph,
    config: &TrainConfig,
    params: &[f64],
) -> Vec<f64> {
    assert_eq!(params.len(), model.n_params(), "parameter count");
    let (exec, evaluator, c_max) = objective_setup(model, graph, config);
    let mut parallel_batch = |xs: &[Vec<f64>]| -> Vec<f64> {
        xs.par_iter()
            .enumerate()
            .map(|(i, x)| evaluate_probe(model, &exec, &evaluator, c_max, config, x, 1 + i as u64))
            .collect()
    };
    parameter_shift_gradient_batch(&mut parallel_batch, params, STANDARD_SHIFT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{GateModel, GateModelOptions, HybridModel};
    use hgp_device::Backend;
    use hgp_graph::instances;

    #[test]
    fn gate_model_trains_on_ideal_backend() {
        let backend = Backend::ideal(6);
        let graph = instances::task1_three_regular_6();
        let model = GateModel::new(
            &backend,
            &graph,
            1,
            (0..6).collect(),
            GateModelOptions::raw(),
        )
        .unwrap();
        let config = TrainConfig {
            max_evals: 30,
            shots: 2048,
            ..TrainConfig::default()
        };
        let result = train(&model, &graph, &config);
        // Noiseless p=1 QAOA on K33 should land well above random (0.5).
        assert!(
            result.approximation_ratio > 0.6,
            "AR = {}",
            result.approximation_ratio
        );
        assert!(!result.history.is_empty());
        assert_eq!(result.mixer_duration_dt, 320);
    }

    #[test]
    fn training_improves_over_initial_point() {
        let backend = Backend::ideal(6);
        let graph = instances::task2_random_6();
        let model = GateModel::new(
            &backend,
            &graph,
            1,
            (0..6).collect(),
            GateModelOptions::raw(),
        )
        .unwrap();
        let config = TrainConfig {
            max_evals: 40,
            shots: 2048,
            ..TrainConfig::default()
        };
        let result = train(&model, &graph, &config);
        let first = result.history.first().copied().unwrap();
        let last = result.history.last().copied().unwrap();
        assert!(
            last >= first - 1e-9,
            "history must not regress: {first} -> {last}"
        );
    }

    #[test]
    fn cvar_training_reports_higher_ar() {
        let backend = Backend::ibmq_toronto();
        let graph = instances::task1_three_regular_6();
        let region = vec![1, 2, 3, 4, 5, 7];
        let model = HybridModel::new(&backend, &graph, 1, region).unwrap();
        let base = TrainConfig {
            max_evals: 8,
            shots: 512,
            final_shots: 4096,
            ..TrainConfig::default()
        };
        let plain = train(&model, &graph, &base);
        let cvar = train(
            &model,
            &graph,
            &TrainConfig {
                cvar_alpha: Some(0.3),
                ..base
            },
        );
        assert!(
            cvar.approximation_ratio > plain.approximation_ratio,
            "CVaR AR {} should beat plain {}",
            cvar.approximation_ratio,
            plain.approximation_ratio
        );
    }

    #[test]
    fn gradient_is_deterministic_and_sized() {
        let backend = Backend::ideal(6);
        let graph = instances::task1_three_regular_6();
        let model = GateModel::new(
            &backend,
            &graph,
            1,
            (0..6).collect(),
            GateModelOptions::raw(),
        )
        .unwrap();
        let config = TrainConfig {
            shots: 1024,
            ..TrainConfig::default()
        };
        let x = model.initial_params();
        let g1 = objective_gradient(&model, &graph, &config, &x);
        let g2 = objective_gradient(&model, &graph, &config, &x);
        assert_eq!(g1.len(), model.n_params());
        assert_eq!(g1, g2);
        // At a generic point the gradient should not vanish identically.
        assert!(g1.iter().any(|g| g.abs() > 1e-6), "gradient = {g1:?}");
    }

    #[test]
    fn results_are_deterministic() {
        let backend = Backend::ibmq_guadalupe();
        let graph = instances::task2_random_6();
        let region = vec![1, 2, 3, 4, 5, 8];
        let model = HybridModel::new(&backend, &graph, 1, region).unwrap();
        let config = TrainConfig {
            max_evals: 6,
            shots: 256,
            final_shots: 1024,
            ..TrainConfig::default()
        };
        let a = train(&model, &graph, &config);
        let b = train(&model, &graph, &config);
        assert_eq!(a, b);
    }
}
