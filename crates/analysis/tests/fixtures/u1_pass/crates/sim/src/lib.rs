#![deny(unsafe_op_in_unsafe_fn)]
//! U1 pass: the unsafe block argues its obligations.

pub fn first(xs: &[u64]) -> u64 {
    assert!(!xs.is_empty());
    // SAFETY: the assert above guarantees at least one element, so the
    // pointer read is in bounds; `as_ptr` is aligned by construction.
    unsafe { *xs.as_ptr() }
}
