#![forbid(unsafe_code)]
//! D2 fail: entropy seeding and opaque seed provenance.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub fn sample_entropy() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

pub fn sample_opaque(job: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(job * 31 + 7);
    rng.gen()
}
