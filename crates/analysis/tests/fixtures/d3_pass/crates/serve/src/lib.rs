#![forbid(unsafe_code)]
//! D3 pass: timing confined to the exempt metrics module.

pub mod metrics;
