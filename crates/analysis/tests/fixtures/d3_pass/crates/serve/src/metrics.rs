//! Stage clocks live here by policy.

use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}
