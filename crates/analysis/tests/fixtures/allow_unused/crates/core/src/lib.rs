#![forbid(unsafe_code)]
//! Allow hygiene: a stale entry that suppresses nothing.

use std::collections::BTreeMap;

pub fn tally(xs: &[u64]) -> BTreeMap<u64, u64> {
    // hgp-analysis: allow(d1) -- stale: this map is already ordered.
    let mut m = BTreeMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}
