//! L1 fail: no unsafe anywhere, but the property is not pinned.

pub fn add(a: u64, b: u64) -> u64 {
    a.wrapping_add(b)
}
