#![deny(unsafe_op_in_unsafe_fn)]
//! U2 pass: the kernel is reached only through the dispatch macro.

/// # Safety
/// The running CPU must provide avx2.
#[target_feature(enable = "avx2")]
pub unsafe fn kern_sum(xs: &[f64]) -> f64 {
    xs.iter().sum()
}

macro_rules! kernel {
    ($name:ident($($arg:expr),*)) => {{
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the probe on the line above confirmed the
            // feature, which is the kernel's only precondition.
            unsafe { $name($($arg),*) }
        } else {
            $($arg.iter().sum())*
        }
    }};
}

pub fn caller(xs: &[f64]) -> f64 {
    kernel!(kern_sum(xs))
}
