#![forbid(unsafe_code)]
//! Allow hygiene: an entry with no justification is malformed and
//! suppresses nothing.

use std::collections::BTreeMap;

pub struct Index {
    // hgp-analysis: allow(d1)
    pub by_name: std::collections::HashMap<String, u64>,
    pub ordered: BTreeMap<u64, String>,
}
