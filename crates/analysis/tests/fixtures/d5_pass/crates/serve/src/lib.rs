#![forbid(unsafe_code)]
//! D5 pass: threads only in the daemon module.

pub mod daemon;
