//! The daemon owns its worker threads by policy.

pub fn start(xs: Vec<u64>) -> std::thread::JoinHandle<u64> {
    std::thread::spawn(move || xs.iter().sum())
}
