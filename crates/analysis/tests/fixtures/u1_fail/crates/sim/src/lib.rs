#![deny(unsafe_op_in_unsafe_fn)]
//! U1 fail: an unsafe block with no SAFETY argument.

pub fn first(xs: &[u64]) -> u64 {
    assert!(!xs.is_empty());
    unsafe { *xs.as_ptr() }
}
