#![forbid(unsafe_code)]
//! D6 pass: the replay kernel is time-free; measurement wraps it from
//! outside via `hgp_obs::timed` at the call boundary.

pub mod replay;
