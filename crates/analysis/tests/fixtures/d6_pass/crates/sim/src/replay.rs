//! A time-free replay kernel: identical per-op work whether or not the
//! caller is profiling, because the caller times the whole call.

pub fn apply_diag_run(amps: &mut [f64], phases: &[f64]) {
    for (a, p) in amps.iter_mut().zip(phases) {
        *a *= p.cos();
    }
}
