#![forbid(unsafe_code)]
//! Not a pinned path: FMA is free here.

pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        acc = x.mul_add(*y, acc);
    }
    acc
}
