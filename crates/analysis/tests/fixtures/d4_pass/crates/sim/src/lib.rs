#![forbid(unsafe_code)]
//! D4 pass: the pinned reference chain, annotated as such.

pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        // hgp-analysis: allow(d4) -- this chain IS the pinned reference.
        acc = x.mul_add(*y, acc);
    }
    acc
}
