#![forbid(unsafe_code)]
//! D4 fail: an unannotated FMA in a bit-parity-pinned module.

pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        acc = x.mul_add(*y, acc);
    }
    acc
}
