#![deny(unsafe_op_in_unsafe_fn)]
//! U2 fail: a `#[target_feature]` kernel called outside the dispatch.

/// # Safety
/// The running CPU must provide avx2.
#[target_feature(enable = "avx2")]
pub unsafe fn kern_sum(xs: &[f64]) -> f64 {
    xs.iter().sum()
}

pub fn caller(xs: &[f64]) -> f64 {
    // SAFETY: none — this is exactly the bypass U2 exists to catch.
    unsafe { kern_sum(xs) }
}
