#![forbid(unsafe_code)]
//! D1 pass: ordered map, deterministic iteration.

use std::collections::BTreeMap;

pub fn tally(xs: &[u64]) -> BTreeMap<u64, u64> {
    let mut m = BTreeMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}
