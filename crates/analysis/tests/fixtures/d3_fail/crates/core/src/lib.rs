#![forbid(unsafe_code)]
//! D3 fail: wall-clock read on a result path.

use std::time::Instant;

pub fn run_until_bored(budget_ms: u128) -> u64 {
    let t0 = Instant::now();
    let mut n = 0;
    while t0.elapsed().as_millis() < budget_ms {
        n += 1;
    }
    n
}
