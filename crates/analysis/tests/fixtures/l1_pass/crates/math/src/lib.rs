#![forbid(unsafe_code)]
//! L1 pass: the unsafe-free property is pinned at the root.

pub fn add(a: u64, b: u64) -> u64 {
    a.wrapping_add(b)
}
