#![forbid(unsafe_code)]
//! D1 fail: an unordered map in a result-producing crate.

use std::collections::HashMap;

pub fn tally(xs: &[u64]) -> HashMap<u64, u64> {
    let mut m = HashMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}
