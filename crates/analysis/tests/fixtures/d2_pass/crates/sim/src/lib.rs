#![forbid(unsafe_code)]
//! D2 pass: seeds visibly routed through the blessed derivation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::seed::{mix64, stream_seed};

pub fn sample(base: u64, stream: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(stream_seed(mix64(base), stream));
    rng.gen()
}
