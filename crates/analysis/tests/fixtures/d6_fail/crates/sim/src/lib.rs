#![forbid(unsafe_code)]
//! D6 fail: a replay kernel timing itself through an abstract clock.

pub mod replay;
