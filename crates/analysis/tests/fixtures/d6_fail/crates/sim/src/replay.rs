//! A replay kernel that smuggles timing in through a clock handle,
//! dodging D3 (no `Instant`/`SystemTime` token in sight) but not D6.

pub trait Clock {
    type Stamp;
    fn now(&self) -> Self::Stamp;
}

pub fn apply_diag_run<C: Clock>(clock: &C, amps: &mut [f64], phases: &[f64]) -> C::Stamp {
    let start = clock.now();
    for (a, p) in amps.iter_mut().zip(phases) {
        *a *= p.cos();
    }
    let _ = start;
    clock.now()
}
