#![forbid(unsafe_code)]
//! D5 fail: a raw worker thread outside the serving front end files.

pub fn compute_in_background(xs: Vec<u64>) -> std::thread::JoinHandle<u64> {
    std::thread::spawn(move || xs.iter().sum())
}
