//! Fixture-based positive/negative tests for every rule, plus the
//! dogfood check: the real workspace must be clean under the default
//! configuration.
//!
//! Each fixture under `tests/fixtures/` is a miniature workspace root
//! (`crates/<name>/src/...`) whose crate and file names mirror the real
//! policy paths, so the default [`Config`] applies to fixtures and to
//! the repository identically.

use std::path::{Path, PathBuf};

use hgp_analysis::{check_workspace, Config, Report, Rule};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn report(name: &str) -> Report {
    check_workspace(&fixture(name), &Config::default())
        .unwrap_or_else(|e| panic!("fixture `{name}` failed to load: {e}"))
}

/// The failing fixture must produce at least one finding, every finding
/// must carry the expected rule, and the passing fixture must be clean.
fn assert_rule_pair(rule: Rule, fail: &str, pass: &str) {
    let failing = report(fail);
    assert!(
        !failing.findings.is_empty(),
        "fixture `{fail}` should produce findings"
    );
    for f in &failing.findings {
        assert_eq!(
            f.rule, rule,
            "fixture `{fail}` produced an off-rule finding: {f}"
        );
    }
    let passing = report(pass);
    assert!(
        passing.is_clean(),
        "fixture `{pass}` should be clean, got:\n{}",
        passing.render(false)
    );
}

#[test]
fn d1_unordered_maps() {
    assert_rule_pair(Rule::D1, "d1_fail", "d1_pass");
}

#[test]
fn d2_rng_discipline() {
    assert_rule_pair(Rule::D2, "d2_fail", "d2_pass");
    // The failing fixture holds both D2 shapes: entropy seeding and a
    // seed with no visible blessed derivation.
    let failing = report("d2_fail");
    assert_eq!(failing.findings.len(), 2, "entropy + opaque provenance");
}

#[test]
fn d3_wall_clock() {
    assert_rule_pair(Rule::D3, "d3_fail", "d3_pass");
}

#[test]
fn d4_fma() {
    assert_rule_pair(Rule::D4, "d4_fail", "d4_pass");
    // The passing fixture pins its chain with an allow entry — the
    // suppression must be honored (counted), not silently dropped.
    let passing = report("d4_pass");
    assert_eq!(passing.suppressed.len(), 1);
    assert_eq!(passing.suppressed[0].finding.rule, Rule::D4);
    assert!(passing.suppressed[0].justification.contains("pinned"));
}

#[test]
fn d5_thread_spawn() {
    assert_rule_pair(Rule::D5, "d5_fail", "d5_pass");
}

#[test]
fn d6_timing_in_kernels() {
    assert_rule_pair(Rule::D6, "d6_fail", "d6_pass");
    // Every finding in the failing fixture is D6 alone: the abstract
    // clock carries no `Instant`/`SystemTime` token, so D3 stays quiet
    // while the call *shape* (`now`) still trips the kernel rule.
    let failing = report("d6_fail");
    assert_eq!(failing.findings.len(), 3, "trait decl + two call sites");
}

#[test]
fn u1_safety_comments() {
    assert_rule_pair(Rule::U1, "u1_fail", "u1_pass");
}

#[test]
fn u2_target_feature_dispatch() {
    assert_rule_pair(Rule::U2, "u2_fail", "u2_pass");
}

#[test]
fn l1_crate_headers() {
    assert_rule_pair(Rule::L1, "l1_fail", "l1_pass");
}

#[test]
fn unused_allow_is_a_finding() {
    let r = report("allow_unused");
    assert_eq!(r.findings.len(), 1, "got:\n{}", r.render(false));
    assert_eq!(r.findings[0].rule, Rule::Allow);
    assert!(r.findings[0].message.contains("suppresses nothing"));
}

#[test]
fn unjustified_allow_is_malformed_and_suppresses_nothing() {
    let r = report("allow_nojust");
    let rules: Vec<Rule> = r.findings.iter().map(|f| f.rule).collect();
    // The malformed entry is itself a finding, and the D1 violation it
    // sat next to stays live.
    assert!(rules.contains(&Rule::Allow), "got:\n{}", r.render(false));
    assert!(rules.contains(&Rule::D1), "got:\n{}", r.render(false));
}

/// The dogfood gate: the repository this crate ships in must be clean
/// under the default configuration, with every suppression justified.
#[test]
fn repository_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let r = check_workspace(&root, &Config::default()).expect("scan workspace");
    assert!(
        r.is_clean(),
        "workspace has lint findings:\n{}",
        r.render(false)
    );
    assert!(r.files_scanned > 50, "scan scope collapsed unexpectedly");
    for s in &r.suppressed {
        assert!(
            !s.justification.is_empty(),
            "unjustified suppression at {}:{}",
            s.finding.file,
            s.finding.line
        );
    }
}
