//! Findings, suppressions, and the check report.

use std::fmt;

/// A lint rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// No unordered `HashMap`/`HashSet` in result-producing crates.
    D1,
    /// RNG discipline: no entropy seeding; visible seed provenance.
    D2,
    /// No wall-clock reads outside the timing-exempt modules.
    D3,
    /// No `mul_add`/FMA in bit-parity-pinned modules unless annotated.
    D4,
    /// `thread::spawn` only in the serving front-end modules.
    D5,
    /// No timing calls of any shape inside the pinned replay kernels.
    D6,
    /// Every `unsafe` must be preceded by a `// SAFETY:` comment.
    U1,
    /// `#[target_feature]` fns only callable through a dispatch macro.
    U2,
    /// Crate headers: `forbid(unsafe_code)` / `deny(unsafe_op_in_unsafe_fn)`.
    L1,
    /// Allowlist hygiene: malformed, unjustified, or unused entries.
    Allow,
}

impl Rule {
    /// All checkable rules, in report order (excludes [`Rule::Allow`],
    /// which only ever fires on allowlist hygiene).
    pub const ALL: [Rule; 9] = [
        Rule::D1,
        Rule::D2,
        Rule::D3,
        Rule::D4,
        Rule::D5,
        Rule::D6,
        Rule::U1,
        Rule::U2,
        Rule::L1,
    ];

    /// The stable id used in reports and allowlist entries.
    pub fn id(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::D4 => "D4",
            Rule::D5 => "D5",
            Rule::D6 => "D6",
            Rule::U1 => "U1",
            Rule::U2 => "U2",
            Rule::L1 => "L1",
            Rule::Allow => "allow",
        }
    }

    /// One-line description, shown by `hgp_analysis rules`.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::D1 => "no unordered HashMap/HashSet in result-producing crates (use BTreeMap/BTreeSet)",
            Rule::D2 => "RNG discipline: no entropy seeding; seeds derive visibly from seed::stream_seed/mix64",
            Rule::D3 => "no wall-clock (Instant/SystemTime) outside the timing-exempt modules",
            Rule::D4 => "no mul_add/FMA in bit-parity-pinned modules unless annotated",
            Rule::D5 => "thread::spawn only in the serving front-end modules (rayon pool elsewhere)",
            Rule::D6 => "no timing calls (now/elapsed/duration_since, any clock) inside the pinned replay kernels",
            Rule::U1 => "every `unsafe` is preceded by a // SAFETY: justification",
            Rule::U2 => "#[target_feature] kernels are only reached through the dispatch macro",
            Rule::L1 => "crate headers: #![forbid(unsafe_code)] / #![deny(unsafe_op_in_unsafe_fn)]",
            Rule::Allow => "allowlist hygiene: entries parse, carry a justification, and suppress something",
        }
    }

    /// Parses a rule id, case-insensitively (`d1`, `D1`, ...).
    pub fn parse(s: &str) -> Option<Rule> {
        match s.to_ascii_lowercase().as_str() {
            "d1" => Some(Rule::D1),
            "d2" => Some(Rule::D2),
            "d3" => Some(Rule::D3),
            "d4" => Some(Rule::D4),
            "d5" => Some(Rule::D5),
            "d6" => Some(Rule::D6),
            "u1" => Some(Rule::U1),
            "u2" => Some(Rule::U2),
            "l1" => Some(Rule::L1),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// The rule that fired.
    pub rule: Rule,
    /// What is wrong and what to do about it.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A finding silenced by an in-source allowlist entry.
#[derive(Debug, Clone)]
pub struct Suppressed {
    /// The finding that would otherwise have been reported.
    pub finding: Finding,
    /// The allowlist entry's written justification.
    pub justification: String,
}

/// The result of one workspace check.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Findings silenced by justified allowlist entries.
    pub suppressed: Vec<Suppressed>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The machine-readable report: one `file:line: RULE: message` line
    /// per finding, then a summary line.
    pub fn render(&self, verbose: bool) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        if verbose {
            for s in &self.suppressed {
                out.push_str(&format!(
                    "{}:{}: note({}): suppressed -- {}\n",
                    s.finding.file, s.finding.line, s.finding.rule, s.justification
                ));
            }
        }
        out.push_str(&format!(
            "hgp-analysis: {} finding{}, {} suppression{} honored, {} file{} checked\n",
            self.findings.len(),
            plural(self.findings.len()),
            self.suppressed.len(),
            plural(self.suppressed.len()),
            self.files_scanned,
            plural(self.files_scanned),
        ));
        out
    }
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}
