#![forbid(unsafe_code)]

//! `hgp_analysis` — the workspace's determinism-and-unsafe-hygiene lint
//! pass.
//!
//! Every engine in this workspace stakes its value on one invariant:
//! any worker count, batch split, lane tier, or arrival order produces
//! results **bit-identical** to a sequential scalar reference. That
//! invariant is easy to break silently — an unordered map iteration
//! that reaches a result, an entropy-seeded RNG, a wall-clock branch,
//! a stray fused multiply-add in a parity-pinned kernel, an ad-hoc
//! worker thread — and cheap to check mechanically at the source level.
//! This crate is that check: a hand-rolled Rust lexer
//! ([`lexer`]) feeding per-file token-stream rule passes ([`rules`])
//! over the workspace's `src/` trees ([`engine`]), with an explicit
//! in-source allowlist for the justified exceptions ([`scan`]).
//!
//! # Rules
//!
//! | rule | checks |
//! |------|--------|
//! | `D1` | no `HashMap`/`HashSet` in result-producing crates |
//! | `D2` | no entropy seeding; visible `stream_seed`/`mix64` provenance |
//! | `D3` | no `Instant`/`SystemTime` outside timing-exempt modules |
//! | `D4` | no `mul_add` in bit-parity-pinned modules unless annotated |
//! | `D5` | `thread::spawn` only in the serving front end |
//! | `U1` | every `unsafe` preceded by a `// SAFETY:` comment |
//! | `U2` | `#[target_feature]` kernels only via the dispatch macro |
//! | `L1` | crate headers: `forbid(unsafe_code)` / `deny(unsafe_op_in_unsafe_fn)` |
//!
//! # Allowlist syntax
//!
//! A justified exception is annotated at the site it silences:
//!
//! ```text
//! // hgp-analysis: allow(d4) -- reference mul_add chain pinned by replay_parity proptests
//! acc = op[(r, c)].mul_add(v, acc);
//! ```
//!
//! The entry suppresses findings of that rule on its own line (trailing
//! form) or on the next code line below it. The justification is
//! mandatory; malformed, unjustified, or *unused* entries are findings
//! themselves, so suppressions cannot rot.
//!
//! # Running
//!
//! ```text
//! cargo run -p hgp_analysis -- check          # lint the workspace, exit 1 on findings
//! cargo run -p hgp_analysis -- check -v       # also print honored suppressions
//! cargo run -p hgp_analysis -- rules          # list the rules
//! ```
//!
//! The tool is dependency-free and never executes the code it lints;
//! it reads, lexes, and pattern-matches token streams. Scope is the
//! shipped code: `src/` trees of the root package and every crate
//! under `crates/` (inline `#[cfg(test)]` modules excluded), while
//! `tests/`, `benches/`, `examples/`, and `vendor/` stay out of scope.

pub mod config;
pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scan;

pub use config::Config;
pub use engine::{check_workspace, Workspace};
pub use report::{Finding, Report, Rule};
