#![forbid(unsafe_code)]

//! CLI entry point: `hgp_analysis check [--root DIR] [-v]` / `rules`.

use std::path::PathBuf;
use std::process::ExitCode;

use hgp_analysis::{check_workspace, Config, Rule};

const USAGE: &str = "\
usage: hgp_analysis <command>

commands:
  check [--root DIR] [-v|--verbose]   lint the workspace (default root: .)
                                      exit 0 when clean, 1 on findings
  rules                               list the rules and their ids
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("rules") => {
            for rule in Rule::ALL {
                println!("{}: {}", rule.id(), rule.describe());
            }
            println!("allow: {}", Rule::Allow.describe());
            ExitCode::SUCCESS
        }
        _ => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn check(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut verbose = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "-v" | "--verbose" => verbose = true,
            other => {
                eprintln!("unknown argument `{other}`");
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    match check_workspace(&root, &Config::default()) {
        Ok(report) => {
            print!("{}", report.render(verbose));
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("hgp-analysis: io error: {err}");
            ExitCode::from(2)
        }
    }
}
