//! The rule configuration: which crates and modules each pass covers.
//!
//! The default configuration *is* the workspace policy — fixtures and
//! the CI gate both run it unmodified. Every exemption below is a
//! deliberate policy decision with its rationale attached; loosening
//! one is a reviewed change to this file, not a scattering of inline
//! `allow`s.

/// Scope configuration for the rule passes.
///
/// Paths are workspace-relative, `/`-separated, and match by prefix, so
/// `"crates/bench/"` covers the whole crate while
/// `"crates/serve/src/wire.rs"` covers one file.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crates whose outputs reach served results, counts, expectations,
    /// or metrics — the crates rule **D1** (no unordered maps) and rule
    /// **D2**'s seed-provenance check apply to. Named by their directory
    /// under `crates/`.
    pub result_crates: Vec<String>,

    /// Identifiers whose appearance anywhere in non-test code means an
    /// entropy-seeded RNG (**D2**): nondeterministic by construction,
    /// never acceptable in this workspace.
    pub entropy_idents: Vec<String>,

    /// The blessed seed-derivation functions (**D2**): an RNG
    /// construction in a result crate must visibly consume one of these
    /// (or carry an annotated provenance justification).
    pub seed_fns: Vec<String>,

    /// Modules allowed to read the wall clock (**D3**). Policy: timing
    /// belongs to the metrics/bench layer and the serving front end's
    /// stage clocks, never to simulation or compilation code, where a
    /// time-dependent branch would silently break replay determinism.
    pub wallclock_exempt: Vec<String>,

    /// Bit-parity-pinned modules (**D4**): code whose floating-point
    /// results are proptest-pinned bit-identical to a reference
    /// implementation. A new `mul_add` here changes rounding (fused
    /// single-rounding vs separate ops) and silently breaks the pin, so
    /// every occurrence must be annotated as part of a pinned chain.
    pub pinned_paths: Vec<String>,

    /// The replay kernel modules (**D6**): the hot inner loops whose
    /// per-op work must be identical whether or not profiling is
    /// enabled. Rule D3 already bans `Instant`/`SystemTime` here; D6
    /// goes further and bans *any* timing-shaped call (`now`,
    /// `elapsed`, `duration_since`, even through an abstract clock
    /// handle), because the blessed pattern is to route measurement
    /// through `hgp_obs::timed` at the call boundary, keeping the
    /// kernels themselves free of time entirely.
    pub replay_kernel_paths: Vec<String>,

    /// Modules allowed to spawn OS threads (**D5**). Everything else
    /// rides the shared rayon pool, whose deterministic block
    /// partitioning is what the replay determinism proofs assume.
    pub spawn_allowed: Vec<String>,

    /// Names of the CPUID-dispatch macros (**U2**): the only code paths
    /// allowed to reference `#[target_feature]` kernels or the
    /// lane-multiversioned modules that hold them.
    pub dispatch_macros: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        let s = |v: &[&str]| v.iter().map(|x| x.to_string()).collect();
        Config {
            result_crates: s(&["core", "noise", "serve", "sim"]),
            entropy_idents: s(&["OsRng", "from_entropy", "from_os_rng", "thread_rng"]),
            seed_fns: s(&["mix64", "stream_seed"]),
            wallclock_exempt: s(&[
                // The bench crate exists to measure wall time.
                "crates/bench/",
                // The observability crate owns the single `Instant`
                // read (`hgp_obs::timed`) that every profiling hook
                // funnels through; results never flow through it.
                "crates/obs/",
                // The serving front end's stage clocks (queue wait,
                // validate/compile/bind/execute splits) feed ServeMetrics;
                // results never depend on them.
                "crates/serve/src/daemon.rs",
                "crates/serve/src/metrics.rs",
                "crates/serve/src/service.rs",
                "crates/serve/src/wire.rs",
            ]),
            // The whole simulation crate: every engine in it carries a
            // bit-parity pin against a reference implementation
            // (kernels/replay/batch/exact parity proptests).
            pinned_paths: s(&["crates/sim/src/"]),
            replay_kernel_paths: s(&[
                "crates/sim/src/kernels.rs",
                "crates/sim/src/replay.rs",
                "crates/sim/src/replay/",
            ]),
            spawn_allowed: s(&[
                "crates/serve/src/daemon.rs",
                "crates/serve/src/service.rs",
                "crates/serve/src/wire.rs",
            ]),
            dispatch_macros: s(&["kernel"]),
        }
    }
}

impl Config {
    /// Whether `path` falls under any of the given prefixes.
    pub fn path_in(path: &str, prefixes: &[String]) -> bool {
        prefixes.iter().any(|p| path.starts_with(p.as_str()))
    }
}
