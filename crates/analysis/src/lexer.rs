//! A hand-rolled Rust lexer, just deep enough for token-stream linting.
//!
//! The rule passes need exactly four guarantees from the lexer:
//!
//! 1. identifiers and keywords come out as [`TokenKind::Ident`] tokens
//!    with their source line,
//! 2. comments come out as *tokens* (not stripped), because the
//!    allowlist syntax and `// SAFETY:` discipline live in comments,
//! 3. nothing inside a string, raw string, char literal, or comment is
//!    ever mistaken for code (a `"thread_rng"` message string must not
//!    trip rule D2),
//! 4. lifetimes (`'a`) are distinguished from char literals (`'a'`),
//!    so generic code does not desynchronize the scan.
//!
//! Everything else — numeric precision, operator gluing (`::` is two
//! `:` puncts), keyword classification — is intentionally left to the
//! passes, which match on token *sequences*.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unsafe`, `HashMap`, `fn`, ...).
    Ident,
    /// A lifetime (`'a`, `'static`), *without* its trailing content.
    Lifetime,
    /// A numeric literal (including suffixed and float forms).
    Number,
    /// A string literal of any flavor: `"..."`, `r#"..."#`, `b"..."`.
    Str,
    /// A char or byte-char literal: `'x'`, `'\n'`, `b'a'`.
    Char,
    /// A single punctuation character (`#`, `:`, `{`, `$`, ...).
    Punct,
    /// A `//` comment, doc comments (`///`, `//!`) included.
    LineComment,
    /// A `/* ... */` comment (nesting honored), `/** ... */` included.
    BlockComment,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token class.
    pub kind: TokenKind,
    /// The source text. For comments this includes the delimiters; for
    /// multi-line tokens the line is the *starting* line.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Token {
    /// Whether this token is a comment of either flavor.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// Whether this is punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.as_bytes().first() == Some(&(c as u8))
    }

    /// Whether this is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Lexes `src` into a token stream, comments included.
///
/// The lexer never fails: malformed input (unterminated strings, stray
/// quotes) degrades to best-effort tokens, which is the right behavior
/// for a linter that must not crash on the code it is flagging.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn text_from(&self, start: usize) -> String {
        self.chars[start..self.pos].iter().collect()
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32) {
        let text = self.text_from(start);
        self.out.push(Token { kind, text, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            match c {
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ if c.is_whitespace() => self.pos += 1,
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                'r' if matches!(self.peek(1), Some('"' | '#')) => self.raw_or_ident(),
                'b' if matches!(self.peek(1), Some('"' | '\'' | 'r')) => self.byte_literal(),
                '\'' => self.lifetime_or_char(),
                '"' => self.cooked_string(),
                _ if is_ident_start(c) => self.ident(),
                _ if c.is_ascii_digit() => self.number(),
                _ => {
                    let start = self.pos;
                    self.pos += 1;
                    self.push(TokenKind::Punct, start, self.line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.pos += 1;
        }
        self.push(TokenKind::LineComment, start, self.line);
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        let line = self.line;
        self.pos += 2;
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (Some('\n'), _) => {
                    self.line += 1;
                    self.pos += 1;
                }
                (Some(_), _) => self.pos += 1,
                (None, _) => break,
            }
        }
        self.push(TokenKind::BlockComment, start, line);
    }

    /// At an `r` followed by `"` or `#`: a raw string `r"..."` /
    /// `r#"..."#`, a raw identifier `r#ident`, or a plain identifier.
    fn raw_or_ident(&mut self) {
        let mut hashes = 0usize;
        while self.peek(1 + hashes) == Some('#') {
            hashes += 1;
        }
        match self.peek(1 + hashes) {
            Some('"') => self.raw_string_body(1, hashes),
            Some(c) if hashes == 1 && is_ident_start(c) => {
                // Raw identifier `r#match`: skip the `r#`, lex the rest.
                let start = self.pos;
                self.pos += 2;
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.pos += 1;
                }
                self.push(TokenKind::Ident, start, self.line);
            }
            _ => self.ident(),
        }
    }

    /// At a `b` followed by `"`, `'`, or `r`: byte-string, byte-char,
    /// raw byte-string, or a plain identifier starting with `b`.
    fn byte_literal(&mut self) {
        match self.peek(1) {
            Some('"') => {
                self.pos += 1;
                self.cooked_string();
            }
            Some('\'') => {
                self.pos += 1;
                // A byte char `b'x'` can never be a lifetime.
                self.char_literal();
            }
            Some('r') => {
                let mut hashes = 0usize;
                while self.peek(2 + hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(2 + hashes) == Some('"') {
                    self.raw_string_body(2, hashes);
                } else {
                    self.ident();
                }
            }
            _ => self.ident(),
        }
    }

    /// Consumes a raw string whose opening quote sits `prefix + hashes`
    /// chars ahead (after `r`/`br` and `hashes` `#`s).
    fn raw_string_body(&mut self, prefix: usize, hashes: usize) {
        let start = self.pos;
        let line = self.line;
        self.pos += prefix + hashes + 1; // past the opening quote
        'scan: while let Some(c) = self.peek(0) {
            if c == '\n' {
                self.line += 1;
                self.pos += 1;
                continue;
            }
            if c == '"' {
                for h in 0..hashes {
                    if self.peek(1 + h) != Some('#') {
                        self.pos += 1;
                        continue 'scan;
                    }
                }
                self.pos += 1 + hashes;
                break;
            }
            self.pos += 1;
        }
        self.push(TokenKind::Str, start, line);
    }

    /// Consumes a `"..."` string with escapes; multi-line allowed.
    fn cooked_string(&mut self) {
        let start = self.pos;
        let line = self.line;
        self.pos += 1;
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => self.pos += 2,
                '"' => {
                    self.pos += 1;
                    break;
                }
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        self.push(TokenKind::Str, start, line);
    }

    /// At a `'`: a lifetime (`'a`, `'static`) or a char literal
    /// (`'a'`, `'\n'`, `'+'`). The discriminator: one ident-start char
    /// followed by a closing quote is a char literal; an ident run not
    /// closed by a quote is a lifetime.
    fn lifetime_or_char(&mut self) {
        match self.peek(1) {
            Some(c) if is_ident_start(c) && self.peek(2) != Some('\'') => {
                let start = self.pos;
                self.pos += 2;
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.pos += 1;
                }
                self.push(TokenKind::Lifetime, start, self.line);
            }
            Some(_) => self.char_literal(),
            None => {
                let start = self.pos;
                self.pos += 1;
                self.push(TokenKind::Punct, start, self.line);
            }
        }
    }

    /// Consumes a char literal from its opening `'`, escapes included.
    fn char_literal(&mut self) {
        let start = self.pos;
        self.pos += 1;
        if self.peek(0) == Some('\\') {
            self.pos += 2; // backslash + escape head (n, u, x, ', \, ...)
        } else {
            self.pos += 1;
        }
        // Consume through the closing quote (covers `\u{1F600}`, `\x41`).
        while let Some(c) = self.peek(0) {
            self.pos += 1;
            if c == '\'' {
                break;
            }
        }
        self.push(TokenKind::Char, start, self.line);
    }

    fn ident(&mut self) {
        let start = self.pos;
        self.pos += 1;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.pos += 1;
        }
        self.push(TokenKind::Ident, start, self.line);
    }

    fn number(&mut self) {
        let start = self.pos;
        self.pos += 1;
        while let Some(c) = self.peek(0) {
            // A `.` continues the number only before a digit, so a
            // method call on a literal (`1.0f64.mul_add(...)`) ends it.
            let continues = c.is_ascii_alphanumeric()
                || c == '_'
                || (c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()));
            if !continues {
                break;
            }
            self.pos += 1;
        }
        self.push(TokenKind::Number, start, self.line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        // A rule ident inside a raw string must not become a token.
        let toks = kinds(r###"let x = r#"thread_rng { unsafe }"# ;"###);
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "let".into()),
                (TokenKind::Ident, "x".into()),
                (TokenKind::Punct, "=".into()),
                (TokenKind::Str, r###"r#"thread_rng { unsafe }"#"###.into()),
                (TokenKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn raw_strings_with_more_hashes_and_embedded_quotes() {
        let src = r####"r##"a "# b"## + r"plain""####;
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokenKind::Str);
        assert_eq!(toks[0].1, r####"r##"a "# b"##"####);
        assert_eq!(toks[1], (TokenKind::Punct, "+".into()));
        assert_eq!(toks[2], (TokenKind::Str, r#"r"plain""#.into()));
    }

    #[test]
    fn raw_byte_strings_and_byte_chars() {
        let toks = kinds(r###"br#"HashMap"# b"bytes" b'x' banana"###);
        assert_eq!(toks[0].0, TokenKind::Str);
        assert_eq!(toks[1].0, TokenKind::Str);
        assert_eq!(toks[2].0, TokenKind::Char);
        assert_eq!(toks[3], (TokenKind::Ident, "banana".into()));
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let toks = kinds("r#match r#unsafe");
        assert_eq!(toks[0].0, TokenKind::Ident);
        assert_eq!(toks[1].0, TokenKind::Ident);
    }

    #[test]
    fn nested_block_comments_stay_one_token() {
        let src = "a /* outer /* inner */ still comment */ b";
        let toks = kinds(src);
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "a".into()),
                (
                    TokenKind::BlockComment,
                    "/* outer /* inner */ still comment */".into()
                ),
                (TokenKind::Ident, "b".into()),
            ]
        );
    }

    #[test]
    fn block_comment_tracks_lines_for_following_tokens() {
        let src = "/* one\ntwo\nthree */ x";
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokenKind::BlockComment);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].text, "x");
        assert_eq!(toks[1].line, 3);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str, c: char) { let y = 'z'; let s = 'static; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'static"]);
        let chars: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Char)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(chars, vec!["'z'"]);
    }

    #[test]
    fn escaped_char_literals() {
        let toks = kinds(r"let a = '\''; let b = '\\'; let c = '\u{1F600}'; let d = '\n';");
        let chars: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Char)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(chars, vec![r"'\''", r"'\\'", r"'\u{1F600}'", r"'\n'"]);
    }

    #[test]
    fn strings_with_escapes_do_not_leak_tokens() {
        let toks = kinds(r#"let s = "a \" unsafe \" b"; done"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("unsafe")));
        assert!(!idents(r#"let s = "a \" unsafe \" b"; done"#).contains(&"unsafe".to_string()));
    }

    #[test]
    fn line_comments_capture_text_and_doc_forms() {
        let toks = kinds("x // SAFETY: fine\n/// # Safety\ny");
        assert_eq!(toks[1], (TokenKind::LineComment, "// SAFETY: fine".into()));
        assert_eq!(toks[2], (TokenKind::LineComment, "/// # Safety".into()));
        assert_eq!(toks[3], (TokenKind::Ident, "y".into()));
    }

    #[test]
    fn numbers_and_ranges() {
        let toks = kinds("1.5 0x1F 2e-12 0..5 1_000u64");
        assert_eq!(toks[0], (TokenKind::Number, "1.5".into()));
        assert_eq!(toks[1], (TokenKind::Number, "0x1F".into()));
        // `2e-12` splits — fine for linting purposes.
        assert_eq!(toks[2].1, "2e");
        let range: Vec<_> = toks[5..8].iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(range, vec!["0", ".", "."]);
        assert_eq!(toks.last().unwrap().1, "1_000u64");
    }

    #[test]
    fn lines_are_tracked_through_strings() {
        let src = "a\n\"two\nline\"\nb";
        let toks = lex(src);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }
}
