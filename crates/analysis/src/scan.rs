//! Per-file scan state: lexed tokens plus the derived tables the rule
//! passes share — line classification, `#[cfg(test)]` region marking,
//! `SAFETY` comment locations, and parsed allowlist entries.

use crate::lexer::{lex, Token, TokenKind};
use crate::report::{Finding, Rule};

/// The allowlist marker looked for inside comments.
pub const ALLOW_MARKER: &str = "hgp-analysis:";

/// One parsed `// hgp-analysis: allow(<rule>) -- <justification>` entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Line of the comment itself.
    pub line: u32,
    /// The code line the entry targets (the next line bearing
    /// non-attribute code; the comment's own line when trailing).
    pub target_line: u32,
    /// The suppressed rule.
    pub rule: Rule,
    /// The written justification (non-empty by construction).
    pub justification: String,
}

/// Classification of one source line.
#[derive(Debug, Clone, Copy, Default)]
pub struct LineInfo {
    /// The line carries at least one non-comment token.
    pub has_code: bool,
    /// The line's first non-comment token is `#` (an attribute line).
    pub attr_start: bool,
    /// A comment on this line carries a `SAFETY` justification.
    pub safety: bool,
}

/// One scanned source file.
#[derive(Debug)]
pub struct FileScan {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// The owning crate's directory name under `crates/` (the root
    /// package scans as `"root"`).
    pub crate_name: String,
    /// Every token, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of the non-comment tokens, in order.
    pub code: Vec<usize>,
    /// Parallel to `tokens`: inside a `#[test]`/`#[cfg(test)]` region.
    pub in_test: Vec<bool>,
    /// 1-based line table (`lines[0]` is a dummy).
    pub lines: Vec<LineInfo>,
    /// Parsed allowlist entries.
    pub allows: Vec<AllowEntry>,
    /// Malformed allowlist entries found during parsing.
    pub allow_errors: Vec<Finding>,
}

impl FileScan {
    /// Lexes and analyzes one file.
    pub fn new(path: String, crate_name: String, source: &str) -> FileScan {
        let tokens = lex(source);
        let code: Vec<usize> = (0..tokens.len())
            .filter(|&i| !tokens[i].is_comment())
            .collect();
        let n_lines = source.lines().count().max(1);
        let mut lines = vec![LineInfo::default(); n_lines + 2];

        for &i in &code {
            let l = tokens[i].line as usize;
            if l < lines.len() {
                if !lines[l].has_code {
                    lines[l].attr_start = tokens[i].is_punct('#');
                }
                lines[l].has_code = true;
            }
        }
        for t in tokens.iter().filter(|t| t.is_comment()) {
            let l = t.line as usize;
            if l < lines.len() && (t.text.contains("SAFETY") || t.text.contains("# Safety")) {
                lines[l].safety = true;
            }
        }

        let in_test = mark_test_regions(&tokens, &code);
        let mut scan = FileScan {
            path,
            crate_name,
            tokens,
            code,
            in_test,
            lines,
            allows: Vec::new(),
            allow_errors: Vec::new(),
        };
        scan.parse_allows();
        scan
    }

    /// Iterates non-test code tokens as `(position-in-code, token)`.
    pub fn code_tokens(&self) -> impl Iterator<Item = (usize, &Token)> {
        self.code
            .iter()
            .enumerate()
            .filter(|&(_, &ti)| !self.in_test[ti])
            .map(|(ci, &ti)| (ci, &self.tokens[ti]))
    }

    /// The `i`-th code token, if any (test regions included).
    pub fn code_tok(&self, i: usize) -> Option<&Token> {
        self.code.get(i).map(|&ti| &self.tokens[ti])
    }

    /// Whether a walk upward from `line` (exclusive) over comment,
    /// blank, and attribute lines reaches a `SAFETY` comment — or the
    /// line itself carries one.
    pub fn safety_covers(&self, line: u32) -> bool {
        let line = line as usize;
        if self.lines.get(line).is_some_and(|l| l.safety) {
            return true;
        }
        let mut l = line.saturating_sub(1);
        while l >= 1 {
            let info = &self.lines[l];
            if info.safety {
                return true;
            }
            if info.has_code && !info.attr_start {
                return false;
            }
            l -= 1;
        }
        false
    }

    /// Parses allowlist entries out of every *plain* comment; records
    /// malformed entries as [`Rule::Allow`] findings. Doc comments are
    /// exempt so documentation can quote the syntax without creating a
    /// live (and then stale) suppression.
    fn parse_allows(&mut self) {
        let max_line = self.lines.len() as u32 - 1;
        for t in self.tokens.iter().filter(|t| t.is_comment()) {
            if is_doc_comment(&t.text) {
                continue;
            }
            let Some(pos) = t.text.find(ALLOW_MARKER) else {
                continue;
            };
            let body = t.text[pos + ALLOW_MARKER.len()..].trim();
            match parse_allow_body(body) {
                Ok((rule, justification)) => {
                    let target_line = target_code_line(&self.lines, t.line, max_line);
                    self.allows.push(AllowEntry {
                        line: t.line,
                        target_line,
                        rule,
                        justification,
                    });
                }
                Err(why) => self.allow_errors.push(Finding {
                    file: self.path.clone(),
                    line: t.line,
                    rule: Rule::Allow,
                    message: why,
                }),
            }
        }
    }
}

/// Whether a comment is a doc comment (`///`, `//!`, `/**`, `/*!`).
fn is_doc_comment(text: &str) -> bool {
    text.starts_with("///")
        || text.starts_with("//!")
        || text.starts_with("/**")
        || text.starts_with("/*!")
}

/// Parses `allow(<rule>) -- <justification>`.
fn parse_allow_body(body: &str) -> Result<(Rule, String), String> {
    let Some(rest) = body.strip_prefix("allow(") else {
        return Err(format!(
            "malformed allowlist entry: expected `{ALLOW_MARKER} allow(<rule>) -- <justification>`"
        ));
    };
    let Some(close) = rest.find(')') else {
        return Err("malformed allowlist entry: missing `)` after rule id".into());
    };
    let rule_id = rest[..close].trim();
    let Some(rule) = Rule::parse(rule_id) else {
        return Err(format!("unknown rule `{rule_id}` in allowlist entry"));
    };
    let tail = rest[close + 1..].trim();
    let Some(justification) = tail.strip_prefix("--") else {
        return Err("allowlist entry missing ` -- <justification>`".into());
    };
    let justification = justification.trim();
    if justification.is_empty() {
        return Err("allowlist entry has an empty justification".into());
    }
    Ok((rule, justification.to_string()))
}

/// The code line an allow comment on `line` targets: the line itself
/// when it carries code (trailing comment), otherwise the next line
/// holding non-attribute code.
fn target_code_line(lines: &[LineInfo], line: u32, max_line: u32) -> u32 {
    let l = line as usize;
    if lines.get(l).is_some_and(|i| i.has_code) {
        return line;
    }
    let mut d = l + 1;
    while d <= max_line as usize {
        let info = &lines[d];
        if info.has_code && !info.attr_start {
            return d as u32;
        }
        d += 1;
    }
    line
}

/// Marks tokens inside `#[test]` / `#[cfg(test)]` items (functions and
/// inline `mod tests { ... }` blocks). The determinism rules police
/// result-producing code; fixed-seed test scaffolding is out of scope.
fn mark_test_regions(tokens: &[Token], code: &[usize]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut ci = 0usize;
    while ci < code.len() {
        if !is_test_attr_at(tokens, code, ci) {
            ci += 1;
            continue;
        }
        let attr_start_tok = code[ci];
        // Consume this attribute and any further attributes/doc lines.
        let mut j = skip_attr(tokens, code, ci);
        while is_attr_at(tokens, code, j) {
            j = skip_attr(tokens, code, j);
        }
        // Skip to the item's end: the first `;` at depth 0, or the
        // matching `}` of its first depth-0 `{`.
        let mut depth = 0i32;
        let mut end_ci = j;
        while end_ci < code.len() {
            let t = &tokens[code[end_ci]];
            if t.kind == TokenKind::Punct {
                match t.text.as_bytes()[0] {
                    b'{' | b'(' | b'[' => depth += 1,
                    b'}' | b')' | b']' => {
                        depth -= 1;
                        if depth == 0 && t.text.as_bytes()[0] == b'}' {
                            break;
                        }
                    }
                    b';' if depth == 0 => break,
                    _ => {}
                }
            }
            end_ci += 1;
        }
        let end_tok = code.get(end_ci).copied().unwrap_or(tokens.len() - 1);
        for slot in in_test.iter_mut().take(end_tok + 1).skip(attr_start_tok) {
            *slot = true;
        }
        ci = end_ci + 1;
    }
    in_test
}

/// Whether code position `ci` starts an attribute (`#` `[`).
fn is_attr_at(tokens: &[Token], code: &[usize], ci: usize) -> bool {
    code.get(ci).is_some_and(|&t| tokens[t].is_punct('#'))
        && code.get(ci + 1).is_some_and(|&t| tokens[t].is_punct('['))
}

/// Whether code position `ci` starts a test attribute: `#[test]`,
/// `#[cfg(test)]`, `#[cfg(all(test, ...))]` — but not `#[cfg(not(test))]`.
fn is_test_attr_at(tokens: &[Token], code: &[usize], ci: usize) -> bool {
    if !is_attr_at(tokens, code, ci) {
        return false;
    }
    let mut depth = 0i32;
    let mut saw_test = false;
    let mut saw_not = false;
    for &ti in &code[ci + 1..] {
        let t = &tokens[ti];
        if t.kind == TokenKind::Punct {
            match t.text.as_bytes()[0] {
                b'[' | b'(' => depth += 1,
                b']' | b')' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
        } else if t.kind == TokenKind::Ident {
            match t.text.as_str() {
                "test" => saw_test = true,
                "not" => saw_not = true,
                _ => {}
            }
        }
    }
    saw_test && !saw_not
}

/// Position just past the attribute starting at code position `ci`.
fn skip_attr(tokens: &[Token], code: &[usize], ci: usize) -> usize {
    let mut depth = 0i32;
    let mut j = ci + 1;
    while j < code.len() {
        let t = &tokens[code[j]];
        if t.kind == TokenKind::Punct {
            match t.text.as_bytes()[0] {
                b'[' | b'(' => depth += 1,
                b']' | b')' => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> FileScan {
        FileScan::new("crates/x/src/lib.rs".into(), "x".into(), src)
    }

    #[test]
    fn cfg_test_mod_is_marked() {
        let s = scan(
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { unsafe {} }\n}\nfn live2() {}\n",
        );
        let unsafe_tok = s
            .tokens
            .iter()
            .position(|t| t.is_ident("unsafe"))
            .expect("has unsafe");
        assert!(s.in_test[unsafe_tok]);
        let live2 = s.tokens.iter().position(|t| t.is_ident("live2")).unwrap();
        assert!(!s.in_test[live2]);
    }

    #[test]
    fn cfg_not_test_is_not_marked() {
        let s = scan("#[cfg(not(test))]\nfn live() { let x = 1; }\n");
        let x = s.tokens.iter().position(|t| t.is_ident("x")).unwrap();
        assert!(!s.in_test[x]);
    }

    #[test]
    fn allow_entry_parses_with_target() {
        let s = scan(
            "fn f() {\n    // hgp-analysis: allow(d4) -- pinned reference chain\n    let y = a.mul_add(b, c);\n}\n",
        );
        assert_eq!(s.allows.len(), 1);
        let a = &s.allows[0];
        assert_eq!(a.rule, Rule::D4);
        assert_eq!(a.line, 2);
        assert_eq!(a.target_line, 3);
        assert_eq!(a.justification, "pinned reference chain");
        assert!(s.allow_errors.is_empty());
    }

    #[test]
    fn trailing_allow_targets_its_own_line() {
        let s = scan("let y = a.mul_add(b, c); // hgp-analysis: allow(d4) -- chain\n");
        assert_eq!(s.allows[0].target_line, 1);
    }

    #[test]
    fn allow_skips_attributes_to_reach_code() {
        let s = scan(
            "// hgp-analysis: allow(d3) -- timer for logs only\n#[inline]\nfn f() -> Instant { Instant::now() }\n",
        );
        assert_eq!(s.allows[0].target_line, 3);
    }

    #[test]
    fn malformed_allows_are_findings() {
        let cases = [
            "// hgp-analysis: allow(d9) -- no such rule\n",
            "// hgp-analysis: allow(d1)\n",
            "// hgp-analysis: allow(d1) -- \n",
            "// hgp-analysis: disallow(d1) -- what\n",
        ];
        for src in cases {
            let s = scan(src);
            assert_eq!(s.allows.len(), 0, "{src}");
            assert_eq!(s.allow_errors.len(), 1, "{src}");
            assert_eq!(s.allow_errors[0].rule, Rule::Allow);
        }
    }

    #[test]
    fn safety_walkup_spans_comments_and_attributes() {
        let s = scan(
            "// SAFETY: lanes verified by CPUID probe.\n#[target_feature(enable = \"avx2\")]\npub unsafe fn k() {}\n",
        );
        assert!(s.safety_covers(3));
        let s2 = scan("fn gap() {}\npub unsafe fn k() {}\n");
        assert!(!s2.safety_covers(2));
    }
}
