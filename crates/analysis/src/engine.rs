//! Workspace discovery, pass orchestration, and allowlist suppression.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::config::Config;
use crate::report::{Finding, Report, Rule, Suppressed};
use crate::rules;
use crate::scan::FileScan;

/// One workspace member crate (or the root package).
#[derive(Debug)]
pub struct CrateInfo {
    /// Directory name under `crates/`; `"root"` for the root package.
    pub name: String,
    /// Indices into [`Workspace::files`] of this crate's sources.
    pub files: Vec<usize>,
    /// Index of the crate root (`src/lib.rs`), when present.
    pub lib_rs: Option<usize>,
}

/// Every scanned file plus the crate structure.
#[derive(Debug, Default)]
pub struct Workspace {
    /// All scanned files, in deterministic (sorted-path) order.
    pub files: Vec<FileScan>,
    /// Member crates.
    pub crates: Vec<CrateInfo>,
}

/// Checks the workspace rooted at `root` under configuration `cfg`.
///
/// Scope: the `src/` trees of the root package and of every crate under
/// `crates/` — the code that ships. `tests/`, `benches/`, `examples/`,
/// and the vendored facade crates under `vendor/` are out of scope
/// (inline `#[cfg(test)]` modules are skipped token-wise instead).
pub fn check_workspace(root: &Path, cfg: &Config) -> io::Result<Report> {
    let ws = load_workspace(root)?;
    Ok(run(&ws, cfg))
}

/// Loads and scans every in-scope file.
pub fn load_workspace(root: &Path) -> io::Result<Workspace> {
    let mut ws = Workspace::default();
    // The root package.
    if root.join("src").is_dir() {
        load_crate(root, "src", "root", &mut ws)?;
    }
    // Member crates, in sorted order so reports are deterministic —
    // this linter is subject to its own contract.
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut names: Vec<String> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .filter(|e| e.path().is_dir())
            .filter_map(|e| e.file_name().into_string().ok())
            .collect();
        names.sort();
        for name in names {
            let src_rel = format!("crates/{name}/src");
            if root.join(&src_rel).is_dir() {
                load_crate(root, &src_rel, &name, &mut ws)?;
            }
        }
    }
    Ok(ws)
}

fn load_crate(root: &Path, src_rel: &str, crate_name: &str, ws: &mut Workspace) -> io::Result<()> {
    let mut paths = Vec::new();
    collect_rs_files(&root.join(src_rel), &mut paths)?;
    paths.sort();
    let mut info = CrateInfo {
        name: crate_name.to_string(),
        files: Vec::new(),
        lib_rs: None,
    };
    for path in paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = fs::read_to_string(&path)?;
        let idx = ws.files.len();
        ws.files
            .push(FileScan::new(rel.clone(), crate_name.to_string(), &source));
        info.files.push(idx);
        if rel == format!("{src_rel}/lib.rs") {
            info.lib_rs = Some(idx);
        }
    }
    ws.crates.push(info);
    Ok(())
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs the passes and applies allowlist suppression.
pub fn run(ws: &Workspace, cfg: &Config) -> Report {
    let raw = rules::run_all(ws, cfg);
    let mut findings = Vec::new();
    let mut suppressed = Vec::new();

    // Per-file used-flags for the allow entries.
    let mut used: Vec<Vec<bool>> = ws
        .files
        .iter()
        .map(|f| vec![false; f.allows.len()])
        .collect();

    for f in raw {
        let mut matched = None;
        if f.rule != Rule::Allow {
            if let Some((fi, file)) = ws
                .files
                .iter()
                .enumerate()
                .find(|(_, file)| file.path == f.file)
            {
                for (ai, allow) in file.allows.iter().enumerate() {
                    if allow.rule == f.rule && f.line >= allow.line && f.line <= allow.target_line {
                        matched = Some((fi, ai, allow.justification.clone()));
                        break;
                    }
                }
            }
        }
        match matched {
            Some((fi, ai, justification)) => {
                used[fi][ai] = true;
                suppressed.push(Suppressed {
                    finding: f,
                    justification,
                });
            }
            None => findings.push(f),
        }
    }

    // Allowlist hygiene: malformed entries and entries that suppress
    // nothing are findings themselves — a stale suppression is a hole
    // in the gate.
    for (fi, file) in ws.files.iter().enumerate() {
        findings.extend(file.allow_errors.iter().cloned());
        for (ai, allow) in file.allows.iter().enumerate() {
            if !used[fi][ai] {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: allow.line,
                    rule: Rule::Allow,
                    message: format!(
                        "allowlist entry for {} suppresses nothing on line {}; remove the \
                         stale entry",
                        allow.rule, allow.target_line
                    ),
                });
            }
        }
    }

    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    suppressed.sort_by(|a, b| {
        (a.finding.file.as_str(), a.finding.line).cmp(&(b.finding.file.as_str(), b.finding.line))
    });

    Report {
        findings,
        suppressed,
        files_scanned: ws.files.len(),
    }
}
