//! The rule passes. Each pass walks the shared [`FileScan`] token
//! tables and emits raw [`Finding`]s; the engine applies allowlist
//! suppression afterwards, so passes never need to know about it.

use crate::config::Config;
use crate::engine::Workspace;
use crate::lexer::TokenKind;
use crate::report::{Finding, Rule};
use crate::scan::FileScan;

/// Runs every pass over the workspace.
pub fn run_all(ws: &Workspace, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in &ws.files {
        d1_unordered_maps(file, cfg, &mut out);
        d2_rng_discipline(file, cfg, &mut out);
        d3_wall_clock(file, cfg, &mut out);
        d4_fma(file, cfg, &mut out);
        d5_thread_spawn(file, cfg, &mut out);
        d6_kernel_timing(file, cfg, &mut out);
        u1_safety_comments(file, &mut out);
    }
    u2_target_feature_dispatch(ws, cfg, &mut out);
    l1_crate_headers(ws, &mut out);
    out
}

fn finding(file: &FileScan, line: u32, rule: Rule, message: String) -> Finding {
    Finding {
        file: file.path.clone(),
        line,
        rule,
        message,
    }
}

/// **D1** — unordered `HashMap`/`HashSet` in result-producing crates.
/// Their iteration order varies per process (randomized hashing) and
/// per insertion history; any path from iteration order to a result,
/// count vector, or metrics line breaks bit-reproducibility.
fn d1_unordered_maps(file: &FileScan, cfg: &Config, out: &mut Vec<Finding>) {
    if !cfg.result_crates.contains(&file.crate_name) {
        return;
    }
    for (_, tok) in file.code_tokens() {
        if tok.kind == TokenKind::Ident && (tok.text == "HashMap" || tok.text == "HashSet") {
            out.push(finding(
                file,
                tok.line,
                Rule::D1,
                format!(
                    "`{}` in result-producing crate `{}`: iteration order is nondeterministic; \
                     use BTreeMap/BTreeSet, or annotate why ordering never reaches results",
                    tok.text, file.crate_name
                ),
            ));
        }
    }
}

/// **D2** — RNG discipline. Entropy-seeded RNGs are banned everywhere;
/// RNG construction in result-producing crates must visibly consume a
/// blessed derivation (`seed::stream_seed` / `seed::mix64`) or carry an
/// annotated provenance justification.
fn d2_rng_discipline(file: &FileScan, cfg: &Config, out: &mut Vec<Finding>) {
    for (ci, tok) in file.code_tokens() {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        if cfg.entropy_idents.contains(&tok.text) {
            out.push(finding(
                file,
                tok.line,
                Rule::D2,
                format!(
                    "entropy-seeded RNG (`{}`): results would differ per run; derive seeds \
                     through hgp_sim::seed::stream_seed/mix64 instead",
                    tok.text
                ),
            ));
            continue;
        }
        if cfg.result_crates.contains(&file.crate_name)
            && (tok.text == "seed_from_u64" || tok.text == "from_seed")
            && file.code_tok(ci + 1).is_some_and(|t| t.is_punct('('))
        {
            let ok = call_args_contain(file, ci + 1, &cfg.seed_fns);
            if !ok {
                out.push(finding(
                    file,
                    tok.line,
                    Rule::D2,
                    format!(
                        "RNG constructed via `{}` without visible stream_seed/mix64 derivation; \
                         route the seed through hgp_sim::seed or annotate its provenance",
                        tok.text
                    ),
                ));
            }
        }
    }
}

/// Whether the call whose `(` sits at code position `open` mentions any
/// of `names` inside its argument span.
fn call_args_contain(file: &FileScan, open: usize, names: &[String]) -> bool {
    let mut depth = 0i32;
    let mut i = open;
    while let Some(tok) = file.code_tok(i) {
        if tok.kind == TokenKind::Punct {
            match tok.text.as_bytes()[0] {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        return false;
                    }
                }
                _ => {}
            }
        } else if tok.kind == TokenKind::Ident && names.contains(&tok.text) {
            return true;
        }
        i += 1;
    }
    false
}

/// **D3** — wall-clock reads outside the timing-exempt modules. A
/// simulation or compilation path that branches on elapsed time cannot
/// replay bit-identically; timing belongs to metrics, benches, and the
/// serving front end's stage clocks.
fn d3_wall_clock(file: &FileScan, cfg: &Config, out: &mut Vec<Finding>) {
    if Config::path_in(&file.path, &cfg.wallclock_exempt) {
        return;
    }
    for (_, tok) in file.code_tokens() {
        if tok.kind == TokenKind::Ident && (tok.text == "Instant" || tok.text == "SystemTime") {
            out.push(finding(
                file,
                tok.line,
                Rule::D3,
                format!(
                    "wall-clock type `{}` outside the timing-exempt modules; results and \
                     control flow must not depend on elapsed time",
                    tok.text
                ),
            ));
        }
    }
}

/// **D4** — `mul_add` in bit-parity-pinned modules. A fused multiply-add
/// rounds once where separate ops round twice, so introducing (or
/// removing) one silently breaks a bit-parity pin. The intentional
/// reference chains are annotated; anything new must be too.
fn d4_fma(file: &FileScan, cfg: &Config, out: &mut Vec<Finding>) {
    if !Config::path_in(&file.path, &cfg.pinned_paths) {
        return;
    }
    for (_, tok) in file.code_tokens() {
        if tok.is_ident("mul_add") {
            out.push(finding(
                file,
                tok.line,
                Rule::D4,
                "`mul_add` in a bit-parity-pinned module: fused rounding differs from \
                 separate ops; annotate it as part of a pinned reference chain or remove it"
                    .into(),
            ));
        }
    }
}

/// **D5** — raw `thread::spawn` outside the serving front end. Worker
/// threads with ad-hoc work distribution reintroduce schedule-dependent
/// behavior; compute code must use the shared rayon pool's
/// deterministic block partitioning.
fn d5_thread_spawn(file: &FileScan, cfg: &Config, out: &mut Vec<Finding>) {
    if Config::path_in(&file.path, &cfg.spawn_allowed) {
        return;
    }
    for (ci, tok) in file.code_tokens() {
        if tok.kind == TokenKind::Ident && (tok.text == "spawn" || tok.text == "Builder") {
            let qualified_by_thread = ci >= 3
                && file.code_tok(ci - 1).is_some_and(|t| t.is_punct(':'))
                && file.code_tok(ci - 2).is_some_and(|t| t.is_punct(':'))
                && file.code_tok(ci - 3).is_some_and(|t| t.is_ident("thread"));
            if qualified_by_thread {
                out.push(finding(
                    file,
                    tok.line,
                    Rule::D5,
                    format!(
                        "`thread::{}` outside the serving front end; compute paths must ride \
                         the shared rayon pool (deterministic block partitioning)",
                        tok.text
                    ),
                ));
            }
        }
    }
}

/// **D6** — timing calls inside the pinned replay kernel modules. D3
/// catches the std wall-clock *types*; this pass catches the *shape* of
/// a timing call — `now`, `elapsed`, `duration_since`, on any receiver,
/// including an injected clock abstraction. The replay kernels must do
/// identical per-op work with profiling on or off (the bit-parity tests
/// assert it), so measurement belongs to `hgp_obs::timed` wrapping the
/// kernel from outside, never to the kernel body.
fn d6_kernel_timing(file: &FileScan, cfg: &Config, out: &mut Vec<Finding>) {
    if !Config::path_in(&file.path, &cfg.replay_kernel_paths) {
        return;
    }
    const TIMING_IDENTS: [&str; 5] = ["Instant", "SystemTime", "elapsed", "now", "duration_since"];
    for (_, tok) in file.code_tokens() {
        if tok.kind == TokenKind::Ident && TIMING_IDENTS.contains(&tok.text.as_str()) {
            out.push(finding(
                file,
                tok.line,
                Rule::D6,
                format!(
                    "timing call `{}` inside a pinned replay kernel module; kernels must be \
                     time-free — wrap the kernel in `hgp_obs::timed` at the call boundary instead",
                    tok.text
                ),
            ));
        }
    }
}

/// **U1** — every `unsafe` (block, fn, impl, trait) must be preceded by
/// a `// SAFETY:` comment arguing why its obligations hold.
fn u1_safety_comments(file: &FileScan, out: &mut Vec<Finding>) {
    for (_, tok) in file.code_tokens() {
        if tok.is_ident("unsafe") && !file.safety_covers(tok.line) {
            out.push(finding(
                file,
                tok.line,
                Rule::U1,
                "`unsafe` without a preceding `// SAFETY:` comment; state the bounds, \
                 alignment, or feature-availability argument that makes it sound"
                    .into(),
            ));
        }
    }
}

/// A code-token span inside one file.
#[derive(Debug, Clone, Copy)]
struct Span {
    file: usize,
    start: usize,
    end: usize,
}

impl Span {
    fn contains(&self, file: usize, ci: usize) -> bool {
        self.file == file && ci >= self.start && ci <= self.end
    }
}

/// **U2** — `#[target_feature]` kernels are only reachable through the
/// CPUID-dispatch macros. Collects (a) names of fns declared under
/// `#[target_feature]`, including declarations inside `macro_rules!`
/// templates, and (b) the module names those templates are instantiated
/// as (`lane_module!(kern_avx2, "avx2")` ⇒ `kern_avx2`). Any reference
/// to a lane module, or unqualified call of a kernel name, outside a
/// dispatch macro's definition or invocation is a finding — calling a
/// `#[target_feature]` fn on a CPU without the feature is immediate UB,
/// so the CPUID probe must be unbypassable.
fn u2_target_feature_dispatch(ws: &Workspace, cfg: &Config, out: &mut Vec<Finding>) {
    let mut tf_names: Vec<String> = Vec::new();
    let mut lane_modules: Vec<String> = Vec::new();
    let mut exempt_spans: Vec<Span> = Vec::new();
    let mut template_macros: Vec<String> = Vec::new();

    // Pass A: declarations, macro definitions, exempt spans.
    for (fi, file) in ws.files.iter().enumerate() {
        let n = file.code.len();
        let mut ci = 0usize;
        while ci < n {
            let tok = file.code_tok(ci).expect("in range");
            // #[target_feature(...)] ... fn <name>
            if tok.is_punct('#')
                && file.code_tok(ci + 1).is_some_and(|t| t.is_punct('['))
                && file
                    .code_tok(ci + 2)
                    .is_some_and(|t| t.is_ident("target_feature"))
            {
                let mut j = ci + 3;
                let limit = (ci + 40).min(n);
                while j < limit {
                    if file.code_tok(j).is_some_and(|t| t.is_ident("fn")) {
                        if let Some(name) = file.code_tok(j + 1) {
                            if name.kind == TokenKind::Ident && !tf_names.contains(&name.text) {
                                tf_names.push(name.text.clone());
                            }
                        }
                        break;
                    }
                    j += 1;
                }
            }
            // macro_rules! <name> { ... }
            if tok.is_ident("macro_rules") && file.code_tok(ci + 1).is_some_and(|t| t.is_punct('!'))
            {
                if let Some(name_tok) = file.code_tok(ci + 2) {
                    if name_tok.kind == TokenKind::Ident {
                        let name = name_tok.text.clone();
                        let (start, end) = delimited_span(file, ci + 3);
                        let has_tf = (start..=end.min(n.saturating_sub(1))).any(|k| {
                            file.code_tok(k)
                                .is_some_and(|t| t.is_ident("target_feature"))
                        });
                        if has_tf && !template_macros.contains(&name) {
                            template_macros.push(name.clone());
                        }
                        if cfg.dispatch_macros.contains(&name) {
                            exempt_spans.push(Span {
                                file: fi,
                                start: ci,
                                end,
                            });
                        }
                        ci = end + 1;
                        continue;
                    }
                }
            }
            ci += 1;
        }
    }

    // Pass B: template and dispatch macro *invocations*.
    for (fi, file) in ws.files.iter().enumerate() {
        let n = file.code.len();
        let mut ci = 0usize;
        while ci < n {
            let tok = file.code_tok(ci).expect("in range");
            if tok.kind == TokenKind::Ident
                && file.code_tok(ci + 1).is_some_and(|t| t.is_punct('!'))
                && !file
                    .code_tok(ci.wrapping_sub(1))
                    .is_some_and(|t| t.is_punct('!'))
            {
                let is_template = template_macros.contains(&tok.text);
                let is_dispatch = cfg.dispatch_macros.contains(&tok.text);
                if is_template || is_dispatch {
                    let (start, end) = delimited_span(file, ci + 2);
                    if is_template {
                        // First ident inside the invocation names the
                        // instantiated lane module.
                        for k in start + 1..end {
                            if let Some(t) = file.code_tok(k) {
                                if t.kind == TokenKind::Ident {
                                    if !lane_modules.contains(&t.text) {
                                        lane_modules.push(t.text.clone());
                                    }
                                    break;
                                }
                            }
                        }
                    }
                    if is_dispatch {
                        exempt_spans.push(Span {
                            file: fi,
                            start: ci,
                            end,
                        });
                    }
                    ci = end + 1;
                    continue;
                }
            }
            ci += 1;
        }
    }

    if tf_names.is_empty() && lane_modules.is_empty() {
        return;
    }

    // Pass C: flag stray references.
    for (fi, file) in ws.files.iter().enumerate() {
        for ci in 0..file.code.len() {
            let tok = file.code_tok(ci).expect("in range");
            if tok.kind != TokenKind::Ident {
                continue;
            }
            let exempt = exempt_spans.iter().any(|s| s.contains(fi, ci));
            if exempt {
                continue;
            }
            let next_is = |c: char| file.code_tok(ci + 1).is_some_and(|t| t.is_punct(c));
            if lane_modules.contains(&tok.text) && next_is(':') {
                out.push(finding(
                    file,
                    tok.line,
                    Rule::U2,
                    format!(
                        "reference to lane-multiversioned module `{}` outside the dispatch \
                         macro; `#[target_feature]` kernels must be reached through the \
                         CPUID-probed dispatch only",
                        tok.text
                    ),
                ));
                continue;
            }
            if tf_names.contains(&tok.text) && next_is('(') {
                let prev_is_fn = ci >= 1 && file.code_tok(ci - 1).is_some_and(|t| t.is_ident("fn"));
                let qualified = ci >= 1 && file.code_tok(ci - 1).is_some_and(|t| t.is_punct(':'));
                if !prev_is_fn && !qualified {
                    out.push(finding(
                        file,
                        tok.line,
                        Rule::U2,
                        format!(
                            "direct call of `#[target_feature]` kernel `{}` outside the \
                             dispatch macro; calling it without the CPUID probe is UB on \
                             CPUs lacking the feature",
                            tok.text
                        ),
                    ));
                }
            }
        }
    }
}

/// The code-token span of a delimited group starting at `open` (which
/// must be `(`, `[`, or `{`); returns `(open, close)` positions.
fn delimited_span(file: &FileScan, open: usize) -> (usize, usize) {
    let mut depth = 0i32;
    let mut i = open;
    while let Some(tok) = file.code_tok(i) {
        if tok.kind == TokenKind::Punct {
            match tok.text.as_bytes()[0] {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => {
                    depth -= 1;
                    if depth <= 0 {
                        return (open, i);
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
    (open, file.code.len().saturating_sub(1))
}

/// **L1** — crate headers. A crate containing `unsafe` must carry
/// `#![deny(unsafe_op_in_unsafe_fn)]` (so every unsafe operation sits in
/// an explicit, U1-auditable block); every other crate must carry
/// `#![forbid(unsafe_code)]` so new `unsafe` cannot appear without a
/// reviewed header change.
fn l1_crate_headers(ws: &Workspace, out: &mut Vec<Finding>) {
    for krate in &ws.crates {
        let Some(lib_idx) = krate.lib_rs else {
            continue;
        };
        let lib = &ws.files[lib_idx];
        let has_unsafe = krate.files.iter().any(|&fi| {
            ws.files[fi]
                .code_tokens()
                .any(|(_, t)| t.is_ident("unsafe"))
        });
        let headers = inner_lint_attrs(lib);
        if has_unsafe {
            let ok = headers.iter().any(|(level, lint)| {
                (level == "deny" || level == "forbid") && lint == "unsafe_op_in_unsafe_fn"
            });
            if !ok {
                out.push(finding(
                    lib,
                    1,
                    Rule::L1,
                    format!(
                        "crate `{}` contains unsafe code but its root lacks \
                         `#![deny(unsafe_op_in_unsafe_fn)]`",
                        krate.name
                    ),
                ));
            }
        } else {
            let ok = headers
                .iter()
                .any(|(level, lint)| level == "forbid" && lint == "unsafe_code");
            if !ok {
                out.push(finding(
                    lib,
                    1,
                    Rule::L1,
                    format!(
                        "unsafe-free crate `{}` must pin that property with \
                         `#![forbid(unsafe_code)]` at the crate root",
                        krate.name
                    ),
                ));
            }
        }
    }
}

/// Extracts `#![level(lint)]` inner attributes from a crate root.
fn inner_lint_attrs(file: &FileScan) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for ci in 0..file.code.len() {
        let at = |k: usize| file.code_tok(ci + k);
        if at(0).is_some_and(|t| t.is_punct('#'))
            && at(1).is_some_and(|t| t.is_punct('!'))
            && at(2).is_some_and(|t| t.is_punct('['))
        {
            if let (Some(level), Some(open), Some(lint), Some(close)) = (at(3), at(4), at(5), at(6))
            {
                if level.kind == TokenKind::Ident
                    && open.is_punct('(')
                    && lint.kind == TokenKind::Ident
                    && close.is_punct(')')
                {
                    out.push((level.text.clone(), lint.text.clone()));
                }
            }
        }
    }
    out
}
