#![forbid(unsafe_code)]

//! Graphs and Max-Cut instances for QAOA benchmarking.
//!
//! Provides the undirected weighted [`Graph`] type, random-graph
//! generators ([`generators`]), exact brute-force Max-Cut
//! ([`maxcut`]), and the three fixed benchmark instances of the paper's
//! Fig. 4 ([`instances`]).
//!
//! # Example
//!
//! ```
//! use hgp_graph::{instances, maxcut};
//! let g = instances::task1_three_regular_6();
//! let best = maxcut::brute_force(&g);
//! assert_eq!(best.value, 9.0);
//! ```

pub mod generators;
pub mod graph;
pub mod instances;
pub mod maxcut;

pub use graph::{Edge, Graph};
pub use maxcut::{brute_force, cut_value, MaxCutSolution};
