//! Exact Max-Cut by exhaustive search.
//!
//! The benchmark graphs have 6-8 vertices, so the `2^(n-1)` enumeration is
//! instantaneous and provides the ground-truth `C_max` used in the
//! approximation ratio `alpha = C* / C_max`.

use crate::graph::Graph;

/// An optimal (or candidate) cut: a bit mask assigning each vertex to one
/// of two sets, and the cut's weight.
#[derive(Debug, Clone, PartialEq)]
pub struct MaxCutSolution {
    /// Bit `v` gives the side of vertex `v`.
    pub assignment: usize,
    /// Total weight of edges crossing the cut.
    pub value: f64,
}

/// Weight of the cut induced by `assignment` (bit `v` = side of vertex `v`).
///
/// ```
/// use hgp_graph::{Graph, maxcut::cut_value};
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
/// // Putting vertex 1 alone cuts two of the triangle's edges.
/// assert_eq!(cut_value(&g, 0b010), 2.0);
/// ```
pub fn cut_value(graph: &Graph, assignment: usize) -> f64 {
    graph
        .edges()
        .iter()
        .filter(|e| ((assignment >> e.u) ^ (assignment >> e.v)) & 1 == 1)
        .map(|e| e.weight)
        .sum()
}

/// Exhaustive Max-Cut.
///
/// Enumerates `2^(n-1)` assignments (vertex 0 fixed to side 0 by the cut's
/// symmetry) and returns the best.
///
/// # Panics
///
/// Panics if the graph has more than 30 vertices (the enumeration would be
/// infeasible) or no vertices.
pub fn brute_force(graph: &Graph) -> MaxCutSolution {
    let n = graph.n_nodes();
    assert!(n > 0, "graph must have vertices");
    assert!(n <= 30, "brute force limited to 30 vertices");
    let mut best = MaxCutSolution {
        assignment: 0,
        value: 0.0,
    };
    for assignment in 0..(1usize << (n - 1)) {
        let value = cut_value(graph, assignment);
        if value > best.value {
            best = MaxCutSolution { assignment, value };
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_maxcut_is_two() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(brute_force(&g).value, 2.0);
    }

    #[test]
    fn bipartite_graph_cuts_everything() {
        // K_{2,2}: 4 edges, all cuttable.
        let g = Graph::from_edges(4, &[(0, 2), (0, 3), (1, 2), (1, 3)]);
        let best = brute_force(&g);
        assert_eq!(best.value, 4.0);
        // The assignment separates {0,1} from {2,3}.
        let a = best.assignment;
        assert_eq!(a & 1, (a >> 1) & 1);
        assert_eq!((a >> 2) & 1, (a >> 3) & 1);
        assert_ne!(a & 1, (a >> 2) & 1);
    }

    #[test]
    fn weighted_edges_count_properly() {
        let g = Graph::from_weighted_edges(3, &[(0, 1, 5.0), (1, 2, 1.0), (0, 2, 1.0)]);
        // Best cut separates 0 and 1 (weight 5 + 1 from one side edge).
        assert_eq!(brute_force(&g).value, 6.0);
    }

    #[test]
    fn cut_value_of_trivial_assignment_is_zero() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(cut_value(&g, 0), 0.0);
        assert_eq!(cut_value(&g, 0b1111), 0.0);
    }

    #[test]
    fn five_cycle_maxcut_is_four() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert_eq!(brute_force(&g).value, 4.0);
    }
}
