//! The undirected weighted graph type.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A weighted undirected edge `(u, v, w)` with `u < v`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Smaller endpoint.
    pub u: usize,
    /// Larger endpoint.
    pub v: usize,
    /// Edge weight (1.0 for unweighted Max-Cut).
    pub weight: f64,
}

/// An undirected graph with weighted edges and no self-loops.
///
/// ```
/// use hgp_graph::Graph;
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
/// assert_eq!(g.n_nodes(), 4);
/// assert_eq!(g.n_edges(), 4);
/// assert_eq!(g.degree(1), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    n_nodes: usize,
    edges: Vec<Edge>,
}

impl Graph {
    /// Creates an empty graph on `n_nodes` vertices.
    pub fn new(n_nodes: usize) -> Self {
        Self {
            n_nodes,
            edges: Vec::new(),
        }
    }

    /// Builds an unweighted graph from an edge list.
    ///
    /// # Panics
    ///
    /// Panics on self-loops, out-of-range endpoints, or duplicate edges.
    pub fn from_edges(n_nodes: usize, edges: &[(usize, usize)]) -> Self {
        let mut g = Self::new(n_nodes);
        for &(u, v) in edges {
            g.add_edge(u, v, 1.0);
        }
        g
    }

    /// Builds a weighted graph from `(u, v, w)` triples.
    ///
    /// # Panics
    ///
    /// Panics on self-loops, out-of-range endpoints, or duplicate edges.
    pub fn from_weighted_edges(n_nodes: usize, edges: &[(usize, usize, f64)]) -> Self {
        let mut g = Self::new(n_nodes);
        for &(u, v, w) in edges {
            g.add_edge(u, v, w);
        }
        g
    }

    /// Adds an edge.
    ///
    /// # Panics
    ///
    /// Panics on a self-loop, out-of-range endpoint, or duplicate edge.
    pub fn add_edge(&mut self, u: usize, v: usize, weight: f64) {
        assert_ne!(u, v, "self-loops are not allowed");
        assert!(
            u < self.n_nodes && v < self.n_nodes,
            "endpoint out of range"
        );
        let (u, v) = if u < v { (u, v) } else { (v, u) };
        assert!(
            !self.edges.iter().any(|e| e.u == u && e.v == v),
            "duplicate edge ({u}, {v})"
        );
        self.edges.push(Edge { u, v, weight });
    }

    /// Whether `(u, v)` is an edge.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        let (u, v) = if u < v { (u, v) } else { (v, u) };
        self.edges.iter().any(|e| e.u == u && e.v == v)
    }

    /// Number of vertices.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of edges.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edge list.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.weight).sum()
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.edges.iter().filter(|e| e.u == v || e.v == v).count()
    }

    /// Neighbors of `v`, ascending.
    pub fn neighbors(&self, v: usize) -> Vec<usize> {
        let mut out: BTreeSet<usize> = BTreeSet::new();
        for e in &self.edges {
            if e.u == v {
                out.insert(e.v);
            } else if e.v == v {
                out.insert(e.u);
            }
        }
        out.into_iter().collect()
    }

    /// Whether every vertex is reachable from vertex 0 (true for the empty
    /// graph on one vertex).
    pub fn is_connected(&self) -> bool {
        if self.n_nodes == 0 {
            return true;
        }
        let mut seen = vec![false; self.n_nodes];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(v) = stack.pop() {
            for n in self.neighbors(v) {
                if !seen[n] {
                    seen[n] = true;
                    stack.push(n);
                }
            }
        }
        seen.into_iter().all(|s| s)
    }

    /// Whether the graph is `d`-regular.
    pub fn is_regular(&self, d: usize) -> bool {
        (0..self.n_nodes).all(|v| self.degree(v) == d)
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "graph(n={}, m={})", self.n_nodes, self.edges.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_properties() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(g.n_edges(), 3);
        assert!(g.is_regular(2));
        assert!(g.is_connected());
        assert_eq!(g.neighbors(0), vec![1, 2]);
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn disconnected_graph_detected() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!g.is_connected());
    }

    #[test]
    fn weights_sum() {
        let g = Graph::from_weighted_edges(3, &[(0, 1, 2.0), (1, 2, 0.5)]);
        assert_eq!(g.total_weight(), 2.5);
    }

    #[test]
    fn edges_are_normalized() {
        let mut g = Graph::new(3);
        g.add_edge(2, 0, 1.0);
        assert_eq!(g.edges()[0].u, 0);
        assert_eq!(g.edges()[0].v, 2);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        let mut g = Graph::new(2);
        g.add_edge(1, 1, 1.0);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_edge_panics() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 0, 1.0);
    }
}
