//! The three fixed benchmark instances of the paper's Fig. 4.
//!
//! | Task | Graph | Max-Cut |
//! |------|-------|---------|
//! | 1 | 3-regular, 6 nodes | 9 |
//! | 2 | Erdős–Rényi-style, 6 nodes | 8 |
//! | 3 | 3-regular, 8 nodes | 10 |
//!
//! The paper gives the graph families and optimal cut values but not the
//! exact edge lists; the instances below are concrete representatives with
//! exactly the stated optima (asserted by unit tests against the exact
//! brute-force solver).

use crate::graph::Graph;

/// Task 1: a 3-regular graph on 6 vertices with Max-Cut 9.
///
/// `K_{3,3}` is the canonical choice: it is 3-regular with 9 edges and,
/// being bipartite, all 9 edges are cut by the optimal partition.
pub fn task1_three_regular_6() -> Graph {
    Graph::from_edges(
        6,
        &[
            (0, 3),
            (0, 4),
            (0, 5),
            (1, 3),
            (1, 4),
            (1, 5),
            (2, 3),
            (2, 4),
            (2, 5),
        ],
    )
}

/// Task 2: a randomized (Erdős–Rényi-style) graph on 6 vertices with
/// Max-Cut 8.
///
/// A connected 6-vertex, 10-edge graph whose exact optimum is 8; the edge
/// list was drawn from `G(6, 0.5)` (seed 7 of [`crate::generators::erdos_renyi`])
/// and fixed here so benchmarks are reproducible.
pub fn task2_random_6() -> Graph {
    Graph::from_edges(
        6,
        &[
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 5),
            (1, 3),
            (1, 4),
            (1, 5),
            (2, 5),
            (3, 4),
            (3, 5),
        ],
    )
}

/// Task 3: a 3-regular graph on 8 vertices with Max-Cut 10.
///
/// The Wagner graph (Möbius ladder `V_8 = C_8(1, 4)`): 3-regular,
/// 12 edges, non-bipartite, with Max-Cut exactly 10.
pub fn task3_three_regular_8() -> Graph {
    Graph::from_edges(
        8,
        &[
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 6),
            (6, 7),
            (0, 7),
            (0, 4),
            (1, 5),
            (2, 6),
            (3, 7),
        ],
    )
}

/// All three benchmark tasks as `(name, graph, optimal_cut)` triples, in
/// paper order.
pub fn all_tasks() -> Vec<(&'static str, Graph, f64)> {
    vec![
        ("task1: 3-regular 6 nodes", task1_three_regular_6(), 9.0),
        ("task2: random 6 nodes", task2_random_6(), 8.0),
        ("task3: 3-regular 8 nodes", task3_three_regular_8(), 10.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxcut::brute_force;

    #[test]
    fn task1_matches_paper() {
        let g = task1_three_regular_6();
        assert!(g.is_regular(3));
        assert!(g.is_connected());
        assert_eq!(g.n_nodes(), 6);
        assert_eq!(brute_force(&g).value, 9.0);
    }

    #[test]
    fn task2_matches_paper() {
        let g = task2_random_6();
        assert!(g.is_connected());
        assert_eq!(g.n_nodes(), 6);
        assert_eq!(brute_force(&g).value, 8.0);
    }

    #[test]
    fn task3_matches_paper() {
        let g = task3_three_regular_8();
        assert!(g.is_regular(3));
        assert!(g.is_connected());
        assert_eq!(g.n_nodes(), 8);
        assert_eq!(brute_force(&g).value, 10.0);
    }

    #[test]
    fn all_tasks_lists_consistent_optima() {
        for (name, g, opt) in all_tasks() {
            assert_eq!(brute_force(&g).value, opt, "{name}");
        }
    }
}
