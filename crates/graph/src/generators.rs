//! Random graph generators: `d`-regular (pairing model) and
//! Erdős–Rényi `G(n, p)`.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::graph::Graph;

/// Generates a random `d`-regular graph on `n` vertices via the
/// configuration (pairing) model, retrying until a simple graph appears.
///
/// Deterministic for a given `seed`.
///
/// # Panics
///
/// Panics if `n * d` is odd or `d >= n` (no simple `d`-regular graph
/// exists), or if 10 000 attempts fail to produce a simple matching
/// (practically unreachable for the small sizes used here).
///
/// ```
/// use hgp_graph::generators::random_regular;
/// let g = random_regular(8, 3, 42);
/// assert!(g.is_regular(3));
/// assert_eq!(g.n_edges(), 12);
/// ```
pub fn random_regular(n: usize, d: usize, seed: u64) -> Graph {
    assert!(
        (n * d).is_multiple_of(2),
        "n*d must be even for a d-regular graph"
    );
    assert!(d < n, "degree must be below the vertex count");
    let mut rng = StdRng::seed_from_u64(seed);
    'attempt: for _ in 0..10_000 {
        // Stubs: vertex v appears d times.
        let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
        stubs.shuffle(&mut rng);
        let mut g = Graph::new(n);
        let mut adj = vec![vec![false; n]; n];
        for pair in stubs.chunks(2) {
            let (u, v) = (pair[0], pair[1]);
            if u == v || adj[u][v] {
                continue 'attempt;
            }
            adj[u][v] = true;
            adj[v][u] = true;
            g.add_edge(u, v, 1.0);
        }
        return g;
    }
    panic!("failed to generate a simple {d}-regular graph on {n} vertices");
}

/// Generates an Erdős–Rényi graph `G(n, p)`: each of the `n(n-1)/2`
/// possible edges is present independently with probability `p`.
///
/// Deterministic for a given `seed`.
///
/// # Panics
///
/// Panics if `p` is not within `[0, 1]`.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen::<f64>() < p {
                g.add_edge(u, v, 1.0);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_generator_is_regular_and_deterministic() {
        let a = random_regular(6, 3, 7);
        let b = random_regular(6, 3, 7);
        assert_eq!(a, b);
        assert!(a.is_regular(3));
        assert_eq!(a.n_edges(), 9);
    }

    #[test]
    fn regular_generator_varies_with_seed() {
        let a = random_regular(10, 3, 1);
        let b = random_regular(10, 3, 2);
        assert!(a.is_regular(3) && b.is_regular(3));
        // Overwhelmingly likely to differ.
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_stub_count_panics() {
        let _ = random_regular(5, 3, 0);
    }

    #[test]
    fn erdos_renyi_extremes() {
        let empty = erdos_renyi(5, 0.0, 0);
        assert_eq!(empty.n_edges(), 0);
        let full = erdos_renyi(5, 1.0, 0);
        assert_eq!(full.n_edges(), 10);
    }

    #[test]
    fn erdos_renyi_is_deterministic() {
        let a = erdos_renyi(8, 0.4, 99);
        let b = erdos_renyi(8, 0.4, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn erdos_renyi_density_is_plausible() {
        // Over many seeds, edge count should concentrate near p * C(n,2).
        let n = 12;
        let p = 0.5;
        let total: usize = (0..50).map(|s| erdos_renyi(n, p, s).n_edges()).sum();
        let mean = total as f64 / 50.0;
        let expect = p * (n * (n - 1) / 2) as f64;
        assert!((mean - expect).abs() < 5.0, "mean {mean} vs {expect}");
    }
}
