//! Zero-noise extrapolation (ZNE) by unitary folding.
//!
//! One of the observable-level error-suppression techniques the paper's
//! Step III lists as compatible with the hybrid model (Fig. 3, "ZNE").
//! The noise level of a circuit is artificially amplified by *folding*:
//! each invertible gate `G` becomes `G (G† G)^k`, stretching the error
//! exposure by an odd factor `2k + 1` while leaving the ideal unitary
//! unchanged. Measuring the observable at several amplification factors
//! and extrapolating to zero noise estimates the noiseless value.

use hgp_circuit::{Circuit, Instruction};

/// Folds every invertible gate of `circuit` to amplify noise by the odd
/// factor `scale` (`1` returns a copy; `3` plays each gate three times as
/// `G G† G`; ...). Gates without an inverse in the gate set (e.g. `U3`)
/// are left unfolded — their error is not amplified, making the
/// amplification factor slightly conservative for such circuits.
///
/// # Panics
///
/// Panics if `scale` is even or zero.
pub fn fold_gates(circuit: &Circuit, scale: usize) -> Circuit {
    assert!(scale % 2 == 1, "folding scale must be odd (got {scale})");
    let k = (scale - 1) / 2;
    let mut out = Circuit::new(circuit.n_qubits());
    out.add_params(circuit.n_params());
    for inst in circuit.instructions() {
        match inst {
            Instruction::Gate { gate, qubits } => {
                out.push(*gate, qubits);
                if let Some(inv) = gate.inverse() {
                    for _ in 0..k {
                        out.push(inv, qubits);
                        out.push(*gate, qubits);
                    }
                }
            }
            other => out.instructions_mut().push(other.clone()),
        }
    }
    out
}

/// Richardson extrapolation of `(noise_scale, value)` measurements to
/// `scale = 0`, using the unique polynomial through all points.
///
/// With measurements at scales `1, 3, 5, ...` this is the standard ZNE
/// estimator. Two points give linear extrapolation; three, quadratic.
///
/// # Panics
///
/// Panics if fewer than two points are given or scales repeat.
pub fn richardson(points: &[(f64, f64)]) -> f64 {
    assert!(points.len() >= 2, "extrapolation needs at least two points");
    // Lagrange interpolation evaluated at x = 0.
    let mut total = 0.0;
    for (i, &(xi, yi)) in points.iter().enumerate() {
        let mut weight = 1.0;
        for (j, &(xj, _)) in points.iter().enumerate() {
            if i != j {
                assert!((xi - xj).abs() > 1e-12, "noise scales must be distinct");
                weight *= xj / (xj - xi);
            }
        }
        total += weight * yi;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgp_sim::StateVector;

    fn bell() -> Circuit {
        let mut qc = Circuit::new(2);
        qc.h(0).cx(0, 1).rzz(0, 1, 0.7).rx(1, 0.4);
        qc
    }

    #[test]
    fn folding_preserves_ideal_semantics() {
        let qc = bell();
        let ideal = StateVector::from_circuit(&qc).unwrap();
        for scale in [1, 3, 5] {
            let folded = fold_gates(&qc, scale);
            let psi = StateVector::from_circuit(&folded).unwrap();
            assert!(
                (ideal.fidelity(&psi) - 1.0).abs() < 1e-10,
                "scale {scale} changed the unitary"
            );
        }
    }

    #[test]
    fn folding_multiplies_gate_count() {
        let qc = bell();
        let folded = fold_gates(&qc, 3);
        // Every gate in `bell` is invertible, so counts triple.
        assert_eq!(folded.count_gates(), 3 * qc.count_gates());
    }

    #[test]
    fn scale_one_is_identity_fold() {
        let qc = bell();
        assert_eq!(fold_gates(&qc, 1).count_gates(), qc.count_gates());
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_scale_panics() {
        let _ = fold_gates(&bell(), 2);
    }

    #[test]
    fn richardson_recovers_linear_models_exactly() {
        // value(s) = 7 - 2s: zero-noise value is 7.
        let pts = [(1.0, 5.0), (3.0, 1.0)];
        assert!((richardson(&pts) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn richardson_recovers_quadratic_models_exactly() {
        // value(s) = 4 - s + 0.5 s^2.
        let f = |s: f64| 4.0 - s + 0.5 * s * s;
        let pts = [(1.0, f(1.0)), (3.0, f(3.0)), (5.0, f(5.0))];
        assert!((richardson(&pts) - 4.0).abs() < 1e-10);
    }

    #[test]
    fn zne_improves_noisy_expectation() {
        // End-to-end: amplify depolarizing-like decay exp(-c s) and check
        // linear ZNE moves the estimate toward the true value.
        let truth = 1.0;
        let decay = |s: f64| truth * (-0.15 * s).exp();
        let noisy = decay(1.0);
        let est = richardson(&[(1.0, decay(1.0)), (3.0, decay(3.0))]);
        assert!((est - truth).abs() < (noisy - truth).abs());
    }
}
