//! Zero-noise extrapolation (ZNE) by unitary folding or noise-model
//! scaling.
//!
//! One of the observable-level error-suppression techniques the paper's
//! Step III lists as compatible with the hybrid model (Fig. 3, "ZNE").
//! Two amplification mechanisms are provided:
//!
//! - **Gate folding** ([`fold_gates`]): each invertible gate `G` becomes
//!   `G (G† G)^k`, stretching the error exposure by an odd factor
//!   `2k + 1` while leaving the ideal unitary unchanged — the only
//!   option on hardware, but an approximation (folded copies re-execute
//!   the schedule, so idle windows change too).
//! - **Noise folding** ([`fold_noise`]): the simulator's typed
//!   [`NoiseModel`] is scaled directly — depolarizing probabilities and
//!   decoherence exposure times multiply by the scale while the circuit
//!   (and hence the ideal unitary and schedule) is untouched. This is
//!   the exact amplification ZNE's theory assumes, and it needs no
//!   extra gate executions.
//!
//! Measuring the observable at several amplification factors and
//! extrapolating to zero noise ([`richardson`], or [`zne_noise_scaled`]
//! end to end) estimates the noiseless value.

use hgp_circuit::{Circuit, Instruction};
use hgp_noise::NoiseModel;

/// Folds every invertible gate of `circuit` to amplify noise by the odd
/// factor `scale` (`1` returns a copy; `3` plays each gate three times as
/// `G G† G`; ...). Gates without an inverse in the gate set (e.g. `U3`)
/// are left unfolded — their error is not amplified, making the
/// amplification factor slightly conservative for such circuits.
///
/// # Panics
///
/// Panics if `scale` is even or zero.
pub fn fold_gates(circuit: &Circuit, scale: usize) -> Circuit {
    assert!(scale % 2 == 1, "folding scale must be odd (got {scale})");
    let k = (scale - 1) / 2;
    let mut out = Circuit::new(circuit.n_qubits());
    out.add_params(circuit.n_params());
    for inst in circuit.instructions() {
        match inst {
            Instruction::Gate { gate, qubits } => {
                out.push(*gate, qubits);
                if let Some(inv) = gate.inverse() {
                    for _ in 0..k {
                        out.push(inv, qubits);
                        out.push(*gate, qubits);
                    }
                }
            }
            other => out.instructions_mut().push(other.clone()),
        }
    }
    out
}

/// Amplifies a noise model by `scale` — the noise-folding counterpart
/// of [`fold_gates`]. `fold_noise(model, 1.0)` is exactly `model`
/// (scale-1 channel construction is bit-identical), and scales compose
/// multiplicatively.
///
/// # Panics
///
/// Panics if `scale` is negative or non-finite.
pub fn fold_noise(model: &NoiseModel, scale: f64) -> NoiseModel {
    model.scaled(scale)
}

/// End-to-end ZNE over noise-model scaling: evaluates the observable at
/// every `scales` entry through `evaluate` (which receives the
/// amplified model) and Richardson-extrapolates to zero noise.
///
/// ```ignore
/// let sim = NoisySimulator::new(&backend);
/// let model = sim.noise_model(&layout);
/// let est = zne_noise_scaled(&model, &[1.0, 3.0], |m| {
///     let rho: DensityMatrix = sim.simulate_with_model(&qc, m).unwrap();
///     SimBackend::expectation(&rho, &obs)
/// });
/// ```
///
/// # Panics
///
/// Panics if fewer than two scales are given or scales repeat
/// ([`richardson`]'s contract), or on [`fold_noise`]'s contract.
pub fn zne_noise_scaled<F: FnMut(&NoiseModel) -> f64>(
    model: &NoiseModel,
    scales: &[f64],
    mut evaluate: F,
) -> f64 {
    let points: Vec<(f64, f64)> = scales
        .iter()
        .map(|&s| (s, evaluate(&fold_noise(model, s))))
        .collect();
    richardson(&points)
}

/// Richardson extrapolation of `(noise_scale, value)` measurements to
/// `scale = 0`, using the unique polynomial through all points.
///
/// With measurements at scales `1, 3, 5, ...` this is the standard ZNE
/// estimator. Two points give linear extrapolation; three, quadratic.
///
/// # Panics
///
/// Panics if fewer than two points are given or scales repeat.
pub fn richardson(points: &[(f64, f64)]) -> f64 {
    assert!(points.len() >= 2, "extrapolation needs at least two points");
    // Lagrange interpolation evaluated at x = 0.
    let mut total = 0.0;
    for (i, &(xi, yi)) in points.iter().enumerate() {
        let mut weight = 1.0;
        for (j, &(xj, _)) in points.iter().enumerate() {
            if i != j {
                assert!((xi - xj).abs() > 1e-12, "noise scales must be distinct");
                weight *= xj / (xj - xi);
            }
        }
        total += weight * yi;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgp_sim::StateVector;

    fn bell() -> Circuit {
        let mut qc = Circuit::new(2);
        qc.h(0).cx(0, 1).rzz(0, 1, 0.7).rx(1, 0.4);
        qc
    }

    #[test]
    fn folding_preserves_ideal_semantics() {
        let qc = bell();
        let ideal = StateVector::from_circuit(&qc).unwrap();
        for scale in [1, 3, 5] {
            let folded = fold_gates(&qc, scale);
            let psi = StateVector::from_circuit(&folded).unwrap();
            assert!(
                (ideal.fidelity(&psi) - 1.0).abs() < 1e-10,
                "scale {scale} changed the unitary"
            );
        }
    }

    #[test]
    fn folding_multiplies_gate_count() {
        let qc = bell();
        let folded = fold_gates(&qc, 3);
        // Every gate in `bell` is invertible, so counts triple.
        assert_eq!(folded.count_gates(), 3 * qc.count_gates());
    }

    #[test]
    fn scale_one_is_identity_fold() {
        let qc = bell();
        assert_eq!(fold_gates(&qc, 1).count_gates(), qc.count_gates());
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_scale_panics() {
        let _ = fold_gates(&bell(), 2);
    }

    #[test]
    fn richardson_recovers_linear_models_exactly() {
        // value(s) = 7 - 2s: zero-noise value is 7.
        let pts = [(1.0, 5.0), (3.0, 1.0)];
        assert!((richardson(&pts) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn richardson_recovers_quadratic_models_exactly() {
        // value(s) = 4 - s + 0.5 s^2.
        let f = |s: f64| 4.0 - s + 0.5 * s * s;
        let pts = [(1.0, f(1.0)), (3.0, f(3.0)), (5.0, f(5.0))];
        assert!((richardson(&pts) - 4.0).abs() < 1e-10);
    }

    #[test]
    fn zne_improves_noisy_expectation() {
        // End-to-end: amplify depolarizing-like decay exp(-c s) and check
        // linear ZNE moves the estimate toward the true value.
        let truth = 1.0;
        let decay = |s: f64| truth * (-0.15 * s).exp();
        let noisy = decay(1.0);
        let est = richardson(&[(1.0, decay(1.0)), (3.0, decay(3.0))]);
        assert!((est - truth).abs() < (noisy - truth).abs());
    }

    mod noise_folding {
        use super::super::*;
        use hgp_circuit::Circuit;
        use hgp_device::Backend;
        use hgp_math::pauli::{Pauli, PauliString, PauliSum};
        use hgp_noise::NoisySimulator;
        use hgp_sim::{DensityMatrix, SimBackend, StateVector};

        fn zz_circuit() -> (Circuit, PauliSum) {
            let mut qc = Circuit::new(2);
            qc.h(0).cx(0, 1).rzz(0, 1, 0.7).rx(1, 0.4);
            let zz = PauliSum::from_terms(vec![PauliString::new(
                2,
                vec![(0, Pauli::Z), (1, Pauli::Z)],
                1.0,
            )]);
            (qc, zz)
        }

        #[test]
        fn scale_one_is_bit_identical_to_the_unscaled_model() {
            let backend = Backend::ibmq_toronto();
            let sim = NoisySimulator::new(&backend);
            let (qc, _) = zz_circuit();
            let model = sim.noise_model(&[0, 1]);
            let a: DensityMatrix = sim.simulate_with_model(&qc, &model).unwrap();
            let b: DensityMatrix = sim
                .simulate_with_model(&qc, &fold_noise(&model, 1.0))
                .unwrap();
            for i in 0..4 {
                for j in 0..4 {
                    assert_eq!(a.get(i, j).re.to_bits(), b.get(i, j).re.to_bits());
                    assert_eq!(a.get(i, j).im.to_bits(), b.get(i, j).im.to_bits());
                }
            }
        }

        #[test]
        fn noise_scaling_decays_the_observable_monotonically() {
            let backend = Backend::ibmq_toronto();
            let sim = NoisySimulator::new(&backend);
            let (qc, zz) = zz_circuit();
            let model = sim.noise_model(&[0, 1]);
            let at = |s: f64| {
                let rho: DensityMatrix = sim
                    .simulate_with_model(&qc, &fold_noise(&model, s))
                    .unwrap();
                SimBackend::expectation(&rho, &zz)
            };
            let (v1, v3, v5) = (at(1.0), at(3.0), at(5.0));
            assert!(v1.abs() > v3.abs() && v3.abs() > v5.abs(), "{v1} {v3} {v5}");
        }

        #[test]
        fn noise_scaled_zne_beats_the_raw_noisy_value() {
            let backend = Backend::ibmq_toronto();
            let sim = NoisySimulator::new(&backend);
            let (qc, zz) = zz_circuit();
            let ideal = StateVector::from_circuit(&qc).unwrap().expectation(&zz);
            let model = sim.noise_model(&[0, 1]);
            let evaluate = |m: &NoiseModel| {
                let rho: DensityMatrix = sim.simulate_with_model(&qc, m).unwrap();
                SimBackend::expectation(&rho, &zz)
            };
            let raw = evaluate(&model);
            let est = zne_noise_scaled(&model, &[1.0, 3.0, 5.0], evaluate);
            assert!(
                (est - ideal).abs() < (raw - ideal).abs(),
                "zne {est} vs raw {raw} (ideal {ideal})"
            );
        }
    }
}
