#![forbid(unsafe_code)]

//! Error suppression for measurement results (the paper's "Step III").
//!
//! Two techniques make up the evaluated protocol:
//!
//! - [`M3Mitigator`]: matrix-free measurement mitigation (Nation et al.,
//!   PRX Quantum 2021). Instead of inverting the full `2^n x 2^n`
//!   assignment matrix, the solver works in the subspace spanned by the
//!   *observed* bitstrings, with matrix elements generated on the fly
//!   from per-qubit confusion parameters,
//! - [`cvar()`]: Conditional Value-at-Risk cost aggregation (Barkoutsos et
//!   al., Quantum 2020) — the cost averages only the best `alpha`
//!   fraction of shots, sharpening the optimizer's signal. The paper sets
//!   `alpha = 0.3`.
//!
//! # Example
//!
//! ```
//! use hgp_sim::Counts;
//! use hgp_noise::ReadoutModel;
//! use hgp_mitigation::M3Mitigator;
//! use rand::SeedableRng;
//!
//! // A state that is truly always |11>, read through 5% noisy readout.
//! let model = ReadoutModel::uniform(2, 0.05);
//! let mut truth = Counts::new(2);
//! truth.record(0b11, 10_000);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let noisy = model.corrupt_counts(&truth, &mut rng);
//! assert!(noisy.frequency(0b11) < 1.0);
//!
//! let mitigated = M3Mitigator::from_readout_model(&model).apply(&noisy);
//! // Mitigation restores (nearly) all probability to |11>.
//! assert!(mitigated.probability(0b11) > 0.99);
//! ```

pub mod cvar;
pub mod m3;
pub mod zne;

pub use cvar::cvar;
pub use m3::{M3Mitigator, QuasiDistribution};
pub use zne::{fold_gates, richardson};
