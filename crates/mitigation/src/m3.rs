//! Matrix-free measurement mitigation (M3).
//!
//! The full assignment matrix `A` over `n` qubits has `4^n` entries, but a
//! shot record only ever observes a handful of distinct bitstrings. M3
//! restricts `A` to the observed subspace, normalizes its columns (so
//! probability leaking *out* of the subspace does not bias the solution),
//! and solves `A_sub x = p_noisy`. Entries of `A_sub` factor over qubits,
//! so each is generated on demand from the per-qubit confusion
//! parameters — no matrix is ever materialized beyond the
//! `observed x observed` system.

use std::collections::BTreeMap;

use hgp_noise::readout::QubitReadout;
use hgp_noise::ReadoutModel;
use hgp_sim::Counts;

/// A mitigated quasi-probability distribution.
///
/// Entries can be slightly negative (mitigation is an inverse problem);
/// they sum to ~1. Expectation values remain well-defined.
#[derive(Debug, Clone, PartialEq)]
pub struct QuasiDistribution {
    n_qubits: usize,
    probs: BTreeMap<usize, f64>,
}

impl QuasiDistribution {
    /// Quasi-probability of a bitstring (0 if unobserved).
    pub fn probability(&self, bitstring: usize) -> f64 {
        self.probs.get(&bitstring).copied().unwrap_or(0.0)
    }

    /// Iterates `(bitstring, quasi_probability)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.probs.iter().map(|(&b, &p)| (b, p))
    }

    /// Sum of all quasi-probabilities (~1).
    pub fn total(&self) -> f64 {
        self.probs.values().sum()
    }

    /// Expectation of a per-bitstring cost under the quasi-distribution.
    pub fn expectation_of(&self, cost: impl Fn(usize) -> f64) -> f64 {
        self.probs.iter().map(|(&b, &p)| cost(b) * p).sum()
    }

    /// Projects onto the nearest true probability distribution (clip
    /// negatives, renormalize) — used when downstream code needs real
    /// probabilities (e.g. CVaR over mitigated shots).
    pub fn to_probabilities(&self) -> BTreeMap<usize, f64> {
        let clipped: BTreeMap<usize, f64> =
            self.probs.iter().map(|(&b, &p)| (b, p.max(0.0))).collect();
        let sum: f64 = clipped.values().sum();
        if sum <= 0.0 {
            return clipped;
        }
        clipped.into_iter().map(|(b, p)| (b, p / sum)).collect()
    }
}

/// The M3 mitigator.
///
/// See the crate-level example.
#[derive(Debug, Clone, PartialEq)]
pub struct M3Mitigator {
    qubits: Vec<QubitReadout>,
    /// Iterative-solver tolerance on the residual's max-norm.
    tol: f64,
    /// Iteration cap before falling back to direct elimination.
    max_iters: usize,
}

impl M3Mitigator {
    /// Builds a mitigator from per-qubit confusion parameters.
    pub fn new(qubits: Vec<QubitReadout>) -> Self {
        Self {
            qubits,
            tol: 1e-10,
            max_iters: 200,
        }
    }

    /// Builds a mitigator matching a [`ReadoutModel`] (in practice: from
    /// the same calibration data the noise came from, as on hardware
    /// where M3 runs its own calibration circuits).
    pub fn from_readout_model(model: &ReadoutModel) -> Self {
        Self::new((0..model.n_qubits()).map(|q| model.qubit(q)).collect())
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.qubits.len()
    }

    /// Element `P(observe row | true col)` of the assignment matrix,
    /// generated on the fly (factorizes over qubits).
    fn assignment(&self, row: usize, col: usize) -> f64 {
        let mut p = 1.0;
        for (q, r) in self.qubits.iter().enumerate() {
            let true_bit = (col >> q) & 1;
            let obs_bit = (row >> q) & 1;
            p *= match (true_bit, obs_bit) {
                (0, 0) => 1.0 - r.p01,
                (0, 1) => r.p01,
                (1, 1) => 1.0 - r.p10,
                (1, 0) => r.p10,
                _ => unreachable!(),
            };
            if p == 0.0 {
                return 0.0;
            }
        }
        p
    }

    /// Mitigates a shot record, returning quasi-probabilities over the
    /// observed bitstrings.
    ///
    /// # Panics
    ///
    /// Panics if the counts' width disagrees with the calibration or the
    /// record is empty.
    #[allow(clippy::needless_range_loop)] // dense index iteration over the assignment matrix
    pub fn apply(&self, counts: &Counts) -> QuasiDistribution {
        assert_eq!(counts.n_qubits(), self.qubits.len(), "width mismatch");
        let observed = counts.observed();
        assert!(!observed.is_empty(), "cannot mitigate an empty record");
        let m = observed.len();
        let total = counts.total() as f64;
        let p_noisy: Vec<f64> = observed
            .iter()
            .map(|&b| counts.count(b) as f64 / total)
            .collect();
        // Column normalizers: probability of staying inside the subspace.
        let col_norm: Vec<f64> = observed
            .iter()
            .map(|&col| observed.iter().map(|&row| self.assignment(row, col)).sum())
            .collect();
        let a =
            |row: usize, col: usize| self.assignment(observed[row], observed[col]) / col_norm[col];
        // Jacobi iteration with diagonal preconditioning; A_sub is
        // strongly diagonally dominant for realistic readout errors.
        let mut x = p_noisy.clone();
        let mut solved = false;
        for _ in 0..self.max_iters {
            let mut max_resid = 0.0f64;
            let mut next = vec![0.0; m];
            for i in 0..m {
                let mut ax = 0.0;
                for j in 0..m {
                    ax += a(i, j) * x[j];
                }
                let resid = p_noisy[i] - ax;
                max_resid = max_resid.max(resid.abs());
                next[i] = x[i] + resid / a(i, i);
            }
            x = next;
            if max_resid < self.tol {
                solved = true;
                break;
            }
        }
        if !solved {
            // Direct solve fallback (observed subspaces are small).
            x = self.direct_solve(&observed, &p_noisy, &col_norm);
        }
        QuasiDistribution {
            n_qubits: self.qubits.len(),
            probs: observed.into_iter().zip(x).collect(),
        }
    }

    #[allow(clippy::needless_range_loop)] // Gaussian elimination indexes two rows at once
    fn direct_solve(&self, observed: &[usize], p: &[f64], col_norm: &[f64]) -> Vec<f64> {
        let m = observed.len();
        let mut a: Vec<Vec<f64>> = (0..m)
            .map(|i| {
                (0..m)
                    .map(|j| self.assignment(observed[i], observed[j]) / col_norm[j])
                    .collect()
            })
            .collect();
        let mut b = p.to_vec();
        // Gaussian elimination with partial pivoting.
        for col in 0..m {
            let pivot = (col..m)
                .max_by(|&i, &j| {
                    a[i][col]
                        .abs()
                        .partial_cmp(&a[j][col].abs())
                        .expect("finite")
                })
                .expect("nonempty");
            a.swap(col, pivot);
            b.swap(col, pivot);
            let d = a[col][col];
            assert!(d.abs() > 1e-14, "assignment matrix is singular");
            for row in (col + 1)..m {
                let factor = a[row][col] / d;
                for k in col..m {
                    a[row][k] -= factor * a[col][k];
                }
                b[row] -= factor * b[col];
            }
        }
        let mut x = vec![0.0; m];
        for row in (0..m).rev() {
            let mut acc = b[row];
            for k in (row + 1)..m {
                acc -= a[row][k] * x[k];
            }
            x[row] = acc / a[row][row];
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn symmetric(n: usize, e: f64) -> M3Mitigator {
        M3Mitigator::new(vec![QubitReadout::symmetric(e); n])
    }

    #[test]
    fn identity_calibration_is_a_no_op() {
        let m3 = symmetric(2, 0.0);
        let mut counts = Counts::new(2);
        counts.record(0b01, 30);
        counts.record(0b10, 70);
        let q = m3.apply(&counts);
        assert!((q.probability(0b01) - 0.3).abs() < 1e-12);
        assert!((q.probability(0b10) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn recovers_known_distribution() {
        // Truth: 50/50 over |000> and |111>; corrupt with 4% readout and
        // mitigate back.
        let model = ReadoutModel::uniform(3, 0.04);
        let mut truth = Counts::new(3);
        truth.record(0b000, 50_000);
        truth.record(0b111, 50_000);
        let mut rng = StdRng::seed_from_u64(23);
        let noisy = model.corrupt_counts(&truth, &mut rng);
        // Noise spreads mass to neighbours.
        assert!(noisy.frequency(0b000) < 0.47);
        let m3 = M3Mitigator::from_readout_model(&model);
        let q = m3.apply(&noisy);
        assert!((q.probability(0b000) - 0.5).abs() < 0.02);
        assert!((q.probability(0b111) - 0.5).abs() < 0.02);
        assert!((q.total() - 1.0).abs() < 0.02);
    }

    #[test]
    fn improves_expectation_values() {
        // Observable: parity ZZ on |11> should be +1.
        let model = ReadoutModel::uniform(2, 0.06);
        let mut truth = Counts::new(2);
        truth.record(0b11, 40_000);
        let mut rng = StdRng::seed_from_u64(5);
        let noisy = model.corrupt_counts(&truth, &mut rng);
        let parity = |b: usize| {
            if b.count_ones().is_multiple_of(2) {
                1.0
            } else {
                -1.0
            }
        };
        let raw = noisy.expectation_of(parity);
        let mitigated = M3Mitigator::from_readout_model(&model)
            .apply(&noisy)
            .expectation_of(parity);
        assert!(raw < 0.85, "noise should visibly bias parity (raw {raw})");
        assert!(mitigated > 0.97, "mitigated parity {mitigated}");
    }

    #[test]
    fn asymmetric_errors_are_handled() {
        let m3 = M3Mitigator::new(vec![
            QubitReadout {
                p01: 0.02,
                p10: 0.15,
            },
            QubitReadout {
                p01: 0.08,
                p10: 0.01,
            },
        ]);
        // True state |01> (qubit0 = 1): qubit 0 often decays to read 0.
        let model = ReadoutModel::new(vec![
            QubitReadout {
                p01: 0.02,
                p10: 0.15,
            },
            QubitReadout {
                p01: 0.08,
                p10: 0.01,
            },
        ]);
        let mut truth = Counts::new(2);
        truth.record(0b01, 60_000);
        let mut rng = StdRng::seed_from_u64(11);
        let noisy = model.corrupt_counts(&truth, &mut rng);
        let q = m3.apply(&noisy);
        assert!((q.probability(0b01) - 1.0).abs() < 0.02);
    }

    #[test]
    fn quasi_probabilities_can_go_negative_but_project_cleanly() {
        let model = ReadoutModel::uniform(2, 0.1);
        let mut truth = Counts::new(2);
        truth.record(0b00, 1_000);
        let mut rng = StdRng::seed_from_u64(2);
        let noisy = model.corrupt_counts(&truth, &mut rng);
        let q = M3Mitigator::from_readout_model(&model).apply(&noisy);
        let proj = q.to_probabilities();
        let sum: f64 = proj.values().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        for &p in proj.values() {
            assert!(p >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let m3 = symmetric(3, 0.01);
        let mut counts = Counts::new(2);
        counts.record(0, 1);
        let _ = m3.apply(&counts);
    }
}
