//! Conditional Value-at-Risk cost aggregation.
//!
//! For a maximization problem, `CVaR_alpha` averages the cost over only
//! the best `alpha` fraction of shots. `alpha = 1` recovers the plain
//! expectation; `alpha -> 0` approaches the best sampled value. QAOA with
//! CVaR converges to good cuts much faster because the tail of bad
//! bitstrings stops diluting the signal — the paper uses `alpha = 0.3`.

use hgp_sim::Counts;

/// CVaR of a per-bitstring cost over a shot record.
///
/// With `maximize = true` the *largest* costs are kept; otherwise the
/// smallest. The boundary outcome is included fractionally so the
/// statistic is continuous in `alpha`.
///
/// # Panics
///
/// Panics if `alpha` is not in `(0, 1]` or the record is empty.
///
/// ```
/// use hgp_sim::Counts;
/// use hgp_mitigation::cvar;
/// let mut counts = Counts::new(2);
/// counts.record(0b00, 50); // cost 0
/// counts.record(0b11, 50); // cost 2
/// let cost = |b: usize| b.count_ones() as f64;
/// assert_eq!(cvar(&counts, cost, 1.0, true), 1.0);  // plain mean
/// assert_eq!(cvar(&counts, cost, 0.5, true), 2.0);  // best half
/// ```
pub fn cvar(counts: &Counts, cost: impl Fn(usize) -> f64, alpha: f64, maximize: bool) -> f64 {
    assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
    let total = counts.total();
    assert!(total > 0, "cannot aggregate an empty record");
    let mut outcomes: Vec<(f64, u64)> = counts.iter().map(|(b, c)| (cost(b), c)).collect();
    outcomes.sort_by(|a, b| {
        if maximize {
            b.0.partial_cmp(&a.0).expect("finite costs")
        } else {
            a.0.partial_cmp(&b.0).expect("finite costs")
        }
    });
    let budget = alpha * total as f64;
    let mut taken = 0.0;
    let mut acc = 0.0;
    for (value, count) in outcomes {
        if taken >= budget {
            break;
        }
        let take = (count as f64).min(budget - taken);
        acc += value * take;
        taken += take;
    }
    acc / budget
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(pairs: &[(usize, u64)], n: usize) -> Counts {
        let mut c = Counts::new(n);
        for &(b, k) in pairs {
            c.record(b, k);
        }
        c
    }

    #[test]
    fn alpha_one_is_plain_expectation() {
        let c = record(&[(0, 25), (1, 25), (2, 25), (3, 25)], 2);
        let cost = |b: usize| b as f64;
        let mean = c.expectation_of(cost);
        assert!((cvar(&c, cost, 1.0, true) - mean).abs() < 1e-12);
        assert!((cvar(&c, cost, 1.0, false) - mean).abs() < 1e-12);
    }

    #[test]
    fn small_alpha_approaches_best_outcome() {
        let c = record(&[(0b00, 90), (0b11, 10)], 2);
        let cost = |b: usize| b.count_ones() as f64;
        assert_eq!(cvar(&c, cost, 0.1, true), 2.0);
        assert_eq!(cvar(&c, cost, 0.1, false), 0.0);
    }

    #[test]
    fn fractional_boundary_is_interpolated() {
        // 10 shots of cost 2, 90 of cost 0; alpha = 0.2 -> 20-shot budget:
        // 10 shots at 2 plus 10 at 0 = average 1.0.
        let c = record(&[(0b00, 90), (0b11, 10)], 2);
        let cost = |b: usize| b.count_ones() as f64;
        assert!((cvar(&c, cost, 0.2, true) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cvar_dominates_expectation_when_maximizing() {
        let c = record(&[(0, 40), (1, 30), (2, 20), (3, 10)], 2);
        let cost = |b: usize| b as f64;
        let mean = c.expectation_of(cost);
        for alpha in [0.1, 0.3, 0.5, 0.9] {
            assert!(cvar(&c, cost, alpha, true) >= mean - 1e-12, "alpha {alpha}");
        }
    }

    #[test]
    fn monotone_in_alpha_when_maximizing() {
        let c = record(&[(0, 10), (1, 20), (2, 30), (3, 40)], 2);
        let cost = |b: usize| b as f64;
        let mut prev = f64::INFINITY;
        for alpha in [0.1, 0.3, 0.5, 0.7, 1.0] {
            let v = cvar(&c, cost, alpha, true);
            assert!(v <= prev + 1e-12, "CVaR should shrink as alpha grows");
            prev = v;
        }
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn zero_alpha_panics() {
        let c = record(&[(0, 1)], 1);
        let _ = cvar(&c, |_| 0.0, 0.0, true);
    }
}
