//! Opt-in per-op-kind profiling for the replay engines.
//!
//! The replay hot loops are bit-parity-pinned and must not pay for
//! instrumentation they are not using, so profiling is a zero-sized
//! compile-time choice: every profiled entry point is generic over a
//! [`ProfileSink`], and the [`timed`] helper only reads the clock when
//! `P::ENABLED` is true. With [`NoProfile`] the whole hook — closure,
//! clock, record — monomorphizes to the plain op call. With
//! [`OpProfile`] each op's wall time is attributed to its
//! [`ReplayOpKind`] via relaxed atomic adds, so a single sink reference
//! can be shared across a rayon worker pool and read with
//! [`OpProfile::snapshot`] at any time, no merge step required.
//!
//! All clock reads live here, in the sink layer — never inside the
//! numeric sweeps themselves. `hgp_analysis` rule D6 enforces exactly
//! that: timing identifiers are banned from the replay kernel modules.

use std::sync::atomic::{AtomicU64, Ordering};

/// The op-kind buckets profiled execution time is attributed to.
///
/// These mirror the replay tape structure shared by the trajectory and
/// exact engines: fused diagonal runs, dense 1q/2q unitary
/// applications, the two channel shapes (mixed-unitary pick vs general
/// Kraus), and renormalization (the scalar engine's post-Kraus
/// renormalize; the batched engine's deferred scale resolution). The
/// exact engine maps its single-Kraus channels to
/// [`ReplayOpKind::MixedChannel`] and its resolved superoperator /
/// blockwise channels to [`ReplayOpKind::GeneralChannel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ReplayOpKind {
    /// A fused run of diagonal phase factors.
    DiagRun,
    /// A dense single-qubit operator application.
    Dense1q,
    /// A dense operator on two or more qubits.
    Dense2q,
    /// A mixed-unitary channel: cumulative-weight pick, optional
    /// unitary.
    MixedChannel,
    /// A general Kraus channel: branch-weight scan, Kraus application.
    GeneralChannel,
    /// State renormalization after a non-trace-preserving branch.
    Renorm,
}

impl ReplayOpKind {
    /// Number of kinds (array dimension for per-kind accumulators).
    pub const COUNT: usize = 6;

    /// All kinds, in report order.
    pub const ALL: [ReplayOpKind; ReplayOpKind::COUNT] = [
        ReplayOpKind::DiagRun,
        ReplayOpKind::Dense1q,
        ReplayOpKind::Dense2q,
        ReplayOpKind::MixedChannel,
        ReplayOpKind::GeneralChannel,
        ReplayOpKind::Renorm,
    ];

    /// Dense index into per-kind arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name, used as the Prometheus label value and
    /// the wire field name.
    pub fn name(self) -> &'static str {
        match self {
            ReplayOpKind::DiagRun => "diag_run",
            ReplayOpKind::Dense1q => "dense_1q",
            ReplayOpKind::Dense2q => "dense_2q",
            ReplayOpKind::MixedChannel => "mixed_channel",
            ReplayOpKind::GeneralChannel => "general_channel",
            ReplayOpKind::Renorm => "renorm",
        }
    }

    /// Inverse of [`ReplayOpKind::name`].
    pub fn parse(s: &str) -> Option<ReplayOpKind> {
        ReplayOpKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// A destination for per-op timing samples.
///
/// `ENABLED` gates the clock read in [`timed`] at compile time; an
/// implementation with `ENABLED == false` never has `record` called.
/// Sinks take `&self` and must be thread-safe: the batched and exact
/// engines share one sink across their rayon workers.
pub trait ProfileSink: Sync {
    /// Whether profiled entry points should read the clock at all.
    const ENABLED: bool;

    /// Attributes `ns` nanoseconds of one call to `kind`.
    fn record(&self, kind: ReplayOpKind, ns: u64);
}

/// The disabled sink: profiled entry points compile to the unprofiled
/// code exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoProfile;

impl ProfileSink for NoProfile {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&self, _kind: ReplayOpKind, _ns: u64) {}
}

/// A live per-op-kind accumulator: call counts and nanoseconds per
/// [`ReplayOpKind`], in relaxed atomics.
///
/// Relaxed ordering is enough: each add is independent and the totals
/// are only read via [`OpProfile::snapshot`], which tolerates being a
/// moment stale while workers are still running.
#[derive(Debug, Default)]
pub struct OpProfile {
    calls: [AtomicU64; ReplayOpKind::COUNT],
    ns: [AtomicU64; ReplayOpKind::COUNT],
}

impl OpProfile {
    /// A zeroed profile.
    pub fn new() -> Self {
        OpProfile::default()
    }

    /// Copies the current totals out.
    pub fn snapshot(&self) -> OpProfileSnapshot {
        let mut snap = OpProfileSnapshot::default();
        for i in 0..ReplayOpKind::COUNT {
            snap.calls[i] = self.calls[i].load(Ordering::Relaxed);
            snap.ns[i] = self.ns[i].load(Ordering::Relaxed);
        }
        snap
    }
}

impl ProfileSink for OpProfile {
    const ENABLED: bool = true;

    #[inline]
    fn record(&self, kind: ReplayOpKind, ns: u64) {
        let i = kind.index();
        self.calls[i].fetch_add(1, Ordering::Relaxed);
        self.ns[i].fetch_add(ns, Ordering::Relaxed);
    }
}

/// A plain-data copy of an [`OpProfile`]'s totals, indexable by
/// [`ReplayOpKind::index`]. This is what crosses the wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpProfileSnapshot {
    /// Calls per kind.
    pub calls: [u64; ReplayOpKind::COUNT],
    /// Nanoseconds per kind.
    pub ns: [u64; ReplayOpKind::COUNT],
}

impl OpProfileSnapshot {
    /// Total profiled nanoseconds across all kinds.
    pub fn total_ns(&self) -> u64 {
        self.ns.iter().fold(0u64, |a, &b| a.saturating_add(b))
    }

    /// Total profiled calls across all kinds.
    pub fn total_calls(&self) -> u64 {
        self.calls.iter().fold(0u64, |a, &b| a.saturating_add(b))
    }

    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.total_calls() == 0
    }
}

/// Runs `f`, attributing its wall time to `kind` — the single place
/// profiled replay code reads the clock. When `P::ENABLED` is false
/// this is exactly `f()`: no clock, no branch left after inlining.
#[inline(always)]
pub fn timed<P: ProfileSink, T>(sink: &P, kind: ReplayOpKind, f: impl FnOnce() -> T) -> T {
    if P::ENABLED {
        let t0 = std::time::Instant::now();
        let out = f();
        sink.record(kind, t0.elapsed().as_nanos() as u64);
        out
    } else {
        f()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for kind in ReplayOpKind::ALL {
            assert_eq!(ReplayOpKind::parse(kind.name()), Some(kind));
            assert_eq!(ReplayOpKind::ALL[kind.index()], kind);
        }
        assert_eq!(ReplayOpKind::parse("nope"), None);
    }

    #[test]
    fn timed_records_into_op_profile() {
        let sink = OpProfile::new();
        let x = timed(&sink, ReplayOpKind::DiagRun, || 41 + 1);
        assert_eq!(x, 42);
        timed(&sink, ReplayOpKind::DiagRun, || {
            std::thread::sleep(std::time::Duration::from_millis(2));
        });
        let snap = sink.snapshot();
        assert_eq!(snap.calls[ReplayOpKind::DiagRun.index()], 2);
        assert!(snap.ns[ReplayOpKind::DiagRun.index()] >= 2_000_000);
        assert_eq!(snap.calls[ReplayOpKind::Renorm.index()], 0);
        assert_eq!(snap.total_calls(), 2);
        assert!(!snap.is_empty());
    }

    #[test]
    fn no_profile_is_transparent() {
        let x = timed(&NoProfile, ReplayOpKind::Renorm, || "through");
        assert_eq!(x, "through");
    }

    #[test]
    fn shared_sink_accumulates_across_threads() {
        let sink = OpProfile::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        sink.record(ReplayOpKind::Dense1q, 3);
                    }
                });
            }
        });
        let snap = sink.snapshot();
        assert_eq!(snap.calls[ReplayOpKind::Dense1q.index()], 400);
        assert_eq!(snap.ns[ReplayOpKind::Dense1q.index()], 1200);
    }
}
