#![forbid(unsafe_code)]

//! # hgp_obs — observability primitives for the serving stack
//!
//! Dependency-free building blocks the daemon, wire front end, and
//! replay engines use to expose what they are doing without perturbing
//! what they compute:
//!
//! - [`Histogram`]: fixed 64-bucket log2 latency histograms. Bucketing
//!   is pure integer arithmetic (no floats), so recording the same
//!   values in any order or sharding always produces the same
//!   histogram — merge is exact, not approximate.
//! - [`profile`]: opt-in per-op-kind profiling for the replay engines.
//!   The [`profile::ProfileSink`] trait is monomorphized away: with
//!   [`profile::NoProfile`] the hooks compile to nothing, so the
//!   bit-parity-pinned hot paths are untouched when profiling is off.
//!   [`profile::OpProfile`] accumulates call counts and nanoseconds per
//!   [`profile::ReplayOpKind`] in relaxed atomics, so one sink can be
//!   shared across a worker pool with no merge step.
//! - [`trace`]: per-job span timelines ([`trace::JobTrace`]) collected
//!   into a bounded [`trace::FlightRecorder`] ring buffer — the last N
//!   completed jobs stay queryable after the fact (O(1) insert, so it
//!   can live under the serving locks).
//! - [`promtext`]: a Prometheus-style text renderer for counters,
//!   gauges, and histograms, used by the `metrics_snapshot` wire op.
//!
//! This crate knows nothing about jobs, circuits, or sockets: the
//! serving layer maps its own types onto these primitives (see
//! `hgp_serve::metrics` and `hgp_serve::daemon`).

pub mod histogram;
pub mod profile;
pub mod promtext;
pub mod trace;

pub use histogram::Histogram;
pub use profile::{timed, NoProfile, OpProfile, OpProfileSnapshot, ProfileSink, ReplayOpKind};
pub use promtext::PromText;
pub use trace::{FlightRecorder, JobTrace, Span, SpanKind};
