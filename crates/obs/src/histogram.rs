//! Fixed-size log2 histograms for latency accounting.
//!
//! A [`Histogram`] has 64 buckets: bucket 0 holds exactly the value 0,
//! and bucket `i >= 1` holds values `v` with `floor(log2(v)) == i - 1`,
//! i.e. the half-open power-of-two range `[2^(i-1), 2^i)`. Values at or
//! above `2^62` saturate into the last bucket. The bucketing path is
//! pure integer arithmetic (a `leading_zeros` and a min), so recording
//! is deterministic and [`Histogram::merge`] is exact: sharding a value
//! stream across workers and merging the shards produces the identical
//! histogram to recording them all in one, in any order.

/// Number of buckets in every [`Histogram`].
pub const BUCKETS: usize = 64;

/// A fixed 64-bucket log2 histogram of `u64` samples (typically
/// nanoseconds).
///
/// Tracks per-bucket counts plus the saturating total `sum` and
/// `count`, which the Prometheus renderer exposes as `_sum`/`_count`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// The bucket index `value` falls into: 0 for 0, else
    /// `min(63, floor(log2(value)) + 1)`. Integer-only.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            let floor_log2 = 63 - value.leading_zeros() as usize;
            (floor_log2 + 1).min(BUCKETS - 1)
        }
    }

    /// The inclusive upper bound of bucket `index`: 0 for bucket 0,
    /// `2^index - 1` for interior buckets, `u64::MAX` for the last.
    /// This is the value [`Histogram::quantile`] reports for a rank
    /// landing in that bucket.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 64`.
    #[inline]
    pub fn bucket_bound(index: usize) -> u64 {
        assert!(index < BUCKETS, "bucket index out of range");
        if index == BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Merges `other` into `self`. Exact: equivalent to having recorded
    /// `other`'s samples here (bucket-wise; `sum` saturates).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The per-bucket counts.
    pub fn counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// The upper bound of the bucket containing the `q`-quantile sample
    /// (0 if the histogram is empty). `q` is clamped to `[0, 1]`; the
    /// rank is `ceil(q * count)` clamped to at least 1, and the walk
    /// over cumulative bucket counts is integer-only, so the result is
    /// an upper bound on the true quantile, exact up to bucket width
    /// (~2x at this resolution).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil without going through a float product's edge cases at
        // huge counts is not needed here: count fits f64's 2^53 integer
        // range for any realistic sample volume.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_bound(i);
            }
        }
        Self::bucket_bound(BUCKETS - 1)
    }

    /// Median upper bound. See [`Histogram::quantile`].
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th-percentile upper bound. See [`Histogram::quantile`].
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th-percentile upper bound. See [`Histogram::quantile`].
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Rebuilds a histogram from raw parts — the wire-codec entry
    /// point. No consistency between `counts`, `count`, and `sum` is
    /// enforced; callers deserializing untrusted input get exactly what
    /// was sent.
    pub fn from_parts(counts: [u64; BUCKETS], count: u64, sum: u64) -> Self {
        Histogram { counts, count, sum }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index((1 << 62) - 1), 62);
        assert_eq!(Histogram::bucket_index(1 << 62), 63);
        assert_eq!(Histogram::bucket_index(u64::MAX), 63);
    }

    #[test]
    fn bucket_bounds_cover_their_ranges() {
        for i in 0..BUCKETS {
            let hi = Histogram::bucket_bound(i);
            assert_eq!(Histogram::bucket_index(hi), i, "upper bound of {i}");
            if i + 1 < BUCKETS {
                assert_eq!(Histogram::bucket_index(hi + 1), i + 1);
            }
        }
    }

    #[test]
    fn record_and_quantiles() {
        let mut h = Histogram::new();
        assert_eq!(h.p50(), 0);
        for v in [0u64, 1, 1, 7, 100, 1000, 100_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 101_109);
        // Rank 4 of 7 lands in the bucket holding 7: [4, 8).
        assert_eq!(h.p50(), 7);
        // The max sample's bucket bound covers p99/p999.
        assert_eq!(
            h.p99(),
            Histogram::bucket_bound(Histogram::bucket_index(100_000))
        );
        assert!(h.p999() >= h.p99());
    }

    #[test]
    fn merge_matches_single_stream() {
        let values = [0u64, 3, 9, 9, 1 << 40, u64::MAX, 17];
        let mut whole = Histogram::new();
        for &v in &values {
            whole.record(v);
        }
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for (i, &v) in values.iter().enumerate() {
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn from_parts_round_trips_accessors() {
        let mut h = Histogram::new();
        h.record(42);
        h.record(0);
        let rebuilt = Histogram::from_parts(*h.counts(), h.count(), h.sum());
        assert_eq!(rebuilt, h);
    }
}
