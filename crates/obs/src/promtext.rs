//! A Prometheus-style text-format renderer.
//!
//! Renders counters, gauges, and [`Histogram`]s into the classic
//! `text/plain; version=0.0.4` exposition format: `# HELP`/`# TYPE`
//! headers per metric family, optional `{label="value"}` sets, and
//! cumulative `_bucket{le="..."}` series plus `_sum`/`_count` for
//! histograms. Output is fully deterministic: families appear in the
//! order they were first emitted and labels in the order given.
//!
//! ```
//! use hgp_obs::{Histogram, PromText};
//!
//! let mut h = Histogram::new();
//! h.record(900);
//! let mut out = PromText::new();
//! out.counter("hgp_jobs_completed", "Jobs completed.", 3);
//! out.histogram("hgp_exec_ns", "Execution latency (ns).", &[], &h);
//! let text = out.finish();
//! assert!(text.contains("# TYPE hgp_jobs_completed counter"));
//! assert!(text.contains("hgp_exec_ns_bucket{le=\"1023\"} 1"));
//! assert!(text.contains("hgp_exec_ns_count 1"));
//! ```

use crate::histogram::{Histogram, BUCKETS};

/// An incremental text-format builder. See the module docs.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
    last_family: String,
}

impl PromText {
    /// An empty exposition.
    pub fn new() -> Self {
        PromText::default()
    }

    fn header(&mut self, family: &str, help: &str, kind: &str) {
        if self.last_family != family {
            self.out.push_str("# HELP ");
            self.out.push_str(family);
            self.out.push(' ');
            self.out.push_str(help);
            self.out.push_str("\n# TYPE ");
            self.out.push_str(family);
            self.out.push(' ');
            self.out.push_str(kind);
            self.out.push('\n');
            self.last_family = family.to_string();
        }
    }

    fn labels(out: &mut String, labels: &[(&str, &str)]) {
        if labels.is_empty() {
            return;
        }
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            for c in v.chars() {
                match c {
                    '\\' => out.push_str("\\\\"),
                    '"' => out.push_str("\\\""),
                    '\n' => out.push_str("\\n"),
                    _ => out.push(c),
                }
            }
            out.push('"');
        }
        out.push('}');
    }

    fn sample(&mut self, family: &str, labels: &[(&str, &str)], value: &str) {
        self.out.push_str(family);
        Self::labels(&mut self.out, labels);
        self.out.push(' ');
        self.out.push_str(value);
        self.out.push('\n');
    }

    /// Emits one `counter` sample. The family header is written the
    /// first time the family name appears; repeated calls with
    /// different labels extend the same family.
    pub fn counter_with(&mut self, family: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.header(family, help, "counter");
        self.sample(family, labels, &value.to_string());
    }

    /// [`PromText::counter_with`] without labels.
    pub fn counter(&mut self, family: &str, help: &str, value: u64) {
        self.counter_with(family, help, &[], value);
    }

    /// Emits one `gauge` sample.
    pub fn gauge_with(&mut self, family: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.header(family, help, "gauge");
        self.sample(family, labels, &format!("{value}"));
    }

    /// [`PromText::gauge_with`] without labels.
    pub fn gauge(&mut self, family: &str, help: &str, value: f64) {
        self.gauge_with(family, help, &[], value);
    }

    /// Emits a [`Histogram`] as cumulative `_bucket{le="..."}` series
    /// (empty buckets are skipped, except the mandatory `+Inf`),
    /// followed by `_sum` and `_count`. Extra `labels` are prepended to
    /// each bucket's `le` label.
    pub fn histogram(&mut self, family: &str, help: &str, labels: &[(&str, &str)], h: &Histogram) {
        self.header(family, help, "histogram");
        let bucket_family = format!("{family}_bucket");
        let mut cumulative = 0u64;
        for i in 0..BUCKETS {
            let c = h.counts()[i];
            cumulative += c;
            if c == 0 {
                continue;
            }
            if i == BUCKETS - 1 {
                // Folded into the +Inf bucket below.
                continue;
            }
            let le = Histogram::bucket_bound(i).to_string();
            let mut all = labels.to_vec();
            all.push(("le", &le));
            self.sample(&bucket_family, &all, &cumulative.to_string());
        }
        let mut inf = labels.to_vec();
        inf.push(("le", "+Inf"));
        self.sample(&bucket_family, &inf, &h.count().to_string());
        self.sample(&format!("{family}_sum"), labels, &h.sum().to_string());
        self.sample(&format!("{family}_count"), labels, &h.count().to_string());
    }

    /// The rendered exposition.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_families() {
        let mut p = PromText::new();
        p.counter_with(
            "hgp_admitted",
            "Admitted jobs.",
            &[("priority", "interactive")],
            4,
        );
        p.counter_with(
            "hgp_admitted",
            "Admitted jobs.",
            &[("priority", "batch")],
            9,
        );
        p.gauge("hgp_queue_depth", "Queued jobs.", 2.0);
        let text = p.finish();
        // One header per family, two samples for the labeled counter.
        assert_eq!(text.matches("# TYPE hgp_admitted counter").count(), 1);
        assert!(text.contains("hgp_admitted{priority=\"interactive\"} 4"));
        assert!(text.contains("hgp_admitted{priority=\"batch\"} 9"));
        assert!(text.contains("hgp_queue_depth 2"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut h = Histogram::new();
        h.record(1); // bucket 1, le 1
        h.record(3); // bucket 2, le 3
        h.record(3);
        let mut p = PromText::new();
        p.histogram("hgp_lat", "Latency.", &[], &h);
        let text = p.finish();
        assert!(text.contains("hgp_lat_bucket{le=\"1\"} 1"));
        assert!(text.contains("hgp_lat_bucket{le=\"3\"} 3"));
        assert!(text.contains("hgp_lat_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("hgp_lat_sum 7"));
        assert!(text.contains("hgp_lat_count 3"));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut p = PromText::new();
        p.counter_with("hgp_x", "X.", &[("k", "a\"b\\c\nd")], 1);
        let text = p.finish();
        assert!(text.contains("hgp_x{k=\"a\\\"b\\\\c\\nd\"} 1"));
    }
}
