//! Per-job span timelines and the flight recorder.
//!
//! A [`JobTrace`] is the ordered list of lifecycle [`Span`]s one job
//! passed through — when it arrived, when it was validated and
//! admitted, when compile/bind/execute finished, and when the result
//! was delivered — with nanosecond timestamps on a single monotonic
//! origin (the daemon's start instant). Completed traces land in a
//! [`FlightRecorder`]: a bounded ring buffer of the last N jobs,
//! O(1) per insert so it can live under the serving metrics lock, and
//! queryable after the fact (the `trace_tail` wire op) to answer "why
//! was *this* job slow" without any external tracing infrastructure.

use std::collections::VecDeque;

/// A job lifecycle stage, in canonical chain order.
///
/// The daemon records stages in the order they actually complete:
/// `Enqueued` (request arrived) → `Validated` (structural checks done)
/// → `Admitted` (id assigned, queued) → `Compiled` (artifact ready,
/// hit or miss) → `Bound` (params substituted) → `Executed` →
/// `Delivered` (result handed to the stream). Jobs that fail
/// validation carry a truncated chain ending at `Delivered`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// Request arrived at the submission boundary.
    Enqueued,
    /// Structural validation finished.
    Validated,
    /// Job id assigned and the job entered the priority queue.
    Admitted,
    /// Compiled artifact resolved (cache hit or fresh compile).
    Compiled,
    /// Parameters bound into the compiled template.
    Bound,
    /// Execution finished.
    Executed,
    /// Result delivered to the caller's stream.
    Delivered,
}

impl SpanKind {
    /// Number of kinds.
    pub const COUNT: usize = 7;

    /// All kinds, in canonical chain order.
    pub const ALL: [SpanKind; SpanKind::COUNT] = [
        SpanKind::Enqueued,
        SpanKind::Validated,
        SpanKind::Admitted,
        SpanKind::Compiled,
        SpanKind::Bound,
        SpanKind::Executed,
        SpanKind::Delivered,
    ];

    /// Stable snake_case name (wire field / label value).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Enqueued => "enqueued",
            SpanKind::Validated => "validated",
            SpanKind::Admitted => "admitted",
            SpanKind::Compiled => "compiled",
            SpanKind::Bound => "bound",
            SpanKind::Executed => "executed",
            SpanKind::Delivered => "delivered",
        }
    }

    /// Inverse of [`SpanKind::name`].
    pub fn parse(s: &str) -> Option<SpanKind> {
        SpanKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// One completed stage: which, and when (nanoseconds since the trace
/// origin — the daemon's start instant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// The stage that completed.
    pub kind: SpanKind,
    /// Completion time, ns since the recorder's origin.
    pub at_ns: u64,
}

/// The recorded timeline of one job.
///
/// `job_kind` and `priority` are dense indices owned by the serving
/// layer (job-spec kind and priority class); this crate treats them as
/// opaque labels so it stays dependency-free.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct JobTrace {
    /// The job id.
    pub job: u64,
    /// Serving-layer job-kind index (see `hgp_serve` `JobSpec`).
    pub job_kind: u32,
    /// Serving-layer priority index (0 = most urgent).
    pub priority: u32,
    /// Trajectory shots this job executed (0 for exact jobs).
    pub shots: u64,
    /// Whether compile was served from the artifact cache.
    pub cache_hit: bool,
    /// Whether the job produced a result (false: failed, e.g. at
    /// validation, with a truncated span chain).
    pub ok: bool,
    /// Completed stages, in completion order.
    pub spans: Vec<Span>,
}

impl JobTrace {
    /// The timestamp of the first span of `kind`, if recorded.
    pub fn at(&self, kind: SpanKind) -> Option<u64> {
        self.spans.iter().find(|s| s.kind == kind).map(|s| s.at_ns)
    }

    /// Whether every [`SpanKind`] is present exactly once with
    /// non-decreasing timestamps in recorded order — the shape every
    /// successfully served job must have.
    pub fn is_complete_chain(&self) -> bool {
        if self.spans.len() != SpanKind::COUNT {
            return false;
        }
        let mut seen = [false; SpanKind::COUNT];
        let mut last = 0u64;
        for span in &self.spans {
            let i = span.kind as usize;
            if seen[i] || span.at_ns < last {
                return false;
            }
            seen[i] = true;
            last = span.at_ns;
        }
        true
    }
}

/// A bounded ring buffer of the most recent [`JobTrace`]s.
///
/// Capacity 0 disables recording entirely (inserts are dropped and
/// counted). Insertion is O(1): one `pop_front` + `push_back` on a
/// pre-bounded `VecDeque`, cheap enough to sit under the daemon's
/// metrics lock.
#[derive(Debug, Default)]
pub struct FlightRecorder {
    capacity: usize,
    buf: VecDeque<JobTrace>,
    recorded: u64,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` traces (0 disables).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity,
            buf: VecDeque::with_capacity(capacity.min(4096)),
            recorded: 0,
        }
    }

    /// Whether traces are being kept at all.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Traces currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no traces are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total traces ever offered via [`FlightRecorder::record`],
    /// including those since evicted or dropped by a zero capacity.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Inserts a completed trace, evicting the oldest when full. O(1).
    pub fn record(&mut self, trace: JobTrace) {
        self.recorded += 1;
        if self.capacity == 0 {
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(trace);
    }

    /// The most recent `n` traces, oldest first.
    pub fn tail(&self, n: usize) -> Vec<JobTrace> {
        let take = n.min(self.buf.len());
        self.buf
            .iter()
            .skip(self.buf.len() - take)
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(job: u64) -> JobTrace {
        let spans = SpanKind::ALL
            .into_iter()
            .enumerate()
            .map(|(i, kind)| Span {
                kind,
                at_ns: 10 * (i as u64 + 1),
            })
            .collect();
        JobTrace {
            job,
            job_kind: 2,
            priority: 1,
            shots: 64,
            cache_hit: true,
            ok: true,
            spans,
        }
    }

    #[test]
    fn span_kind_names_round_trip() {
        for kind in SpanKind::ALL {
            assert_eq!(SpanKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(SpanKind::parse("queued"), None);
    }

    #[test]
    fn complete_chain_detection() {
        let t = trace(1);
        assert!(t.is_complete_chain());
        assert_eq!(t.at(SpanKind::Enqueued), Some(10));
        assert_eq!(t.at(SpanKind::Delivered), Some(70));

        let mut missing = trace(2);
        missing.spans.pop();
        assert!(!missing.is_complete_chain());

        let mut backwards = trace(3);
        backwards.spans[3].at_ns = 1;
        assert!(!backwards.is_complete_chain());

        let mut duplicated = trace(4);
        duplicated.spans[0].kind = SpanKind::Validated;
        assert!(!duplicated.is_complete_chain());
    }

    #[test]
    fn recorder_keeps_the_last_n() {
        let mut rec = FlightRecorder::new(3);
        assert!(rec.is_enabled());
        for i in 0..5 {
            rec.record(trace(i));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.recorded(), 5);
        let tail = rec.tail(2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].job, 3);
        assert_eq!(tail[1].job, 4);
        assert_eq!(rec.tail(100).len(), 3);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut rec = FlightRecorder::new(0);
        assert!(!rec.is_enabled());
        rec.record(trace(1));
        assert!(rec.is_empty());
        assert_eq!(rec.recorded(), 1);
        assert!(rec.tail(10).is_empty());
    }
}
