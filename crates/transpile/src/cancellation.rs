//! Commutative gate cancellation.
//!
//! Scans each qubit wire, cancelling adjacent self-inverse pairs
//! (`CX·CX`, `H·H`, ...) and merging same-axis rotations
//! (`RZ(a)·RZ(b) -> RZ(a+b)`, likewise `RX`, `RY`, `RZZ`), looking through
//! gates that *commute* with the candidate (diagonal gates slide past each
//! other and past a CX's control; X-axis gates slide past a CX's target).
//! Runs to a fixpoint.

use hgp_circuit::{Circuit, Gate, Instruction, Param};

/// Applies commutative cancellation until no rewrite fires.
///
/// Only bound or shared-parameter rotations merge when their parameters
/// can be added symbolically: two `Bound` angles always merge; `Free`
/// parameters merge only when they reference the same parameter id (their
/// scales/offsets add).
pub fn cancel_gates(circuit: &Circuit) -> Circuit {
    let mut current = circuit.clone();
    loop {
        let (next, changed) = one_pass(&current);
        current = next;
        if !changed {
            return current;
        }
    }
}

fn one_pass(circuit: &Circuit) -> (Circuit, bool) {
    let insts = circuit.instructions();
    let mut keep: Vec<Option<Instruction>> = insts.iter().cloned().map(Some).collect();
    let mut changed = false;
    for i in 0..insts.len() {
        let Some(Instruction::Gate {
            gate: g1,
            qubits: q1,
        }) = keep[i].clone()
        else {
            continue;
        };
        // Find the next gate on the same qubits that g1 could interact
        // with, skipping commuting gates.
        let mut j = i + 1;
        while j < insts.len() {
            let Some(inst2) = keep[j].clone() else {
                j += 1;
                continue;
            };
            let Instruction::Gate {
                gate: g2,
                qubits: q2,
            } = &inst2
            else {
                // Barriers and measurements block movement on their qubits.
                if inst2.qubits().iter().any(|q| q1.contains(q)) {
                    break;
                }
                j += 1;
                continue;
            };
            let overlap = q2.iter().any(|q| q1.contains(q));
            if !overlap {
                j += 1;
                continue;
            }
            // Same qubits in the same roles: try cancel / merge.
            if q1 == *q2 {
                if let Some(replacement) = combine(&g1, g2) {
                    keep[i] = replacement.map(|g| Instruction::Gate {
                        gate: g,
                        qubits: q1.clone(),
                    });
                    keep[j] = None;
                    changed = true;
                    break;
                }
            }
            if commutes(&g1, &q1, g2, q2) {
                j += 1;
                continue;
            }
            break;
        }
    }
    let mut out = Circuit::new(circuit.n_qubits());
    for _ in 0..circuit.n_params() {
        out.add_param();
    }
    for inst in keep.into_iter().flatten() {
        match inst {
            Instruction::Gate { gate, qubits } => {
                out.push(gate, &qubits);
            }
            other => out.instructions_mut().push(other),
        }
    }
    (out, changed)
}

/// If `g1` then `g2` on identical operands reduces, returns the
/// replacement (`None` inside the option = the pair annihilates).
fn combine(g1: &Gate, g2: &Gate) -> Option<Option<Gate>> {
    // Self-inverse pairs annihilate.
    if g1 == g2 && g1.is_self_inverse() {
        return Some(None);
    }
    // S/Sdg, T/Tdg inverse pairs.
    if let Some(inv) = g1.inverse() {
        if inv == *g2 && !matches!(g1, Gate::Rx(_) | Gate::Ry(_) | Gate::Rz(_) | Gate::Rzz(_)) {
            return Some(None);
        }
    }
    // Same-axis rotation merging.
    let merged = match (g1, g2) {
        (Gate::Rx(a), Gate::Rx(b)) => add_params(a, b).map(Gate::Rx),
        (Gate::Ry(a), Gate::Ry(b)) => add_params(a, b).map(Gate::Ry),
        (Gate::Rz(a), Gate::Rz(b)) => add_params(a, b).map(Gate::Rz),
        (Gate::Rzz(a), Gate::Rzz(b)) => add_params(a, b).map(Gate::Rzz),
        (Gate::Rzx(a), Gate::Rzx(b)) => add_params(a, b).map(Gate::Rzx),
        _ => None,
    };
    if let Some(g) = merged {
        // A zero-angle bound rotation disappears entirely.
        if let Some(v) = g.params()[0].value() {
            if v.abs() < 1e-15 {
                return Some(None);
            }
        }
        return Some(Some(g));
    }
    None
}

/// Adds two rotation parameters when symbolically possible.
fn add_params(a: &Param, b: &Param) -> Option<Param> {
    match (a, b) {
        (Param::Bound(x), Param::Bound(y)) => Some(Param::Bound(x + y)),
        (
            Param::Free {
                id: i1,
                scale: s1,
                offset: o1,
            },
            Param::Free {
                id: i2,
                scale: s2,
                offset: o2,
            },
        ) if i1 == i2 => Some(Param::Free {
            id: *i1,
            scale: s1 + s2,
            offset: o1 + o2,
        }),
        _ => None,
    }
}

/// Conservative commutation test between two gates with overlapping
/// operands.
fn commutes(g1: &Gate, q1: &[usize], g2: &Gate, q2: &[usize]) -> bool {
    // Diagonal gates commute with diagonal gates regardless of overlap.
    if g1.is_diagonal() && g2.is_diagonal() {
        return true;
    }
    // Diagonal 1q gate on a CX control commutes.
    let diag_past_cx = |diag: &Gate, dq: &[usize], cx_q: &[usize]| {
        diag.n_qubits() == 1 && diag.is_diagonal() && dq[0] == cx_q[0]
    };
    // X-axis 1q gate on a CX target commutes.
    let x_past_cx = |g: &Gate, gq: &[usize], cx_q: &[usize]| {
        matches!(g, Gate::X | Gate::Rx(_) | Gate::SX) && gq[0] == cx_q[1]
    };
    match (g1, g2) {
        (Gate::CX, _) => diag_past_cx(g2, q2, q1) || x_past_cx(g2, q2, q1),
        (_, Gate::CX) => diag_past_cx(g1, q1, q2) || x_past_cx(g1, q1, q2),
        // RZZ commutes with any diagonal overlap (covered above) and with
        // a CX whose control is one of its legs.
        (Gate::Rzz(_), _) => g2.is_diagonal(),
        (_, Gate::Rzz(_)) => g1.is_diagonal(),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacent_cx_pair_cancels() {
        let mut qc = Circuit::new(2);
        qc.cx(0, 1).cx(0, 1);
        let out = cancel_gates(&qc);
        assert_eq!(out.count_gates(), 0);
    }

    #[test]
    fn reversed_cx_does_not_cancel() {
        let mut qc = Circuit::new(2);
        qc.cx(0, 1).cx(1, 0);
        let out = cancel_gates(&qc);
        assert_eq!(out.count_gates(), 2);
    }

    #[test]
    fn h_pair_cancels_through_nothing() {
        let mut qc = Circuit::new(1);
        qc.h(0).h(0);
        assert_eq!(cancel_gates(&qc).count_gates(), 0);
    }

    #[test]
    fn rz_merges_through_cx_control() {
        // RZ(a) control CX RZ(b) control -> CX RZ(a+b).
        let mut qc = Circuit::new(2);
        qc.rz(0, 0.3).cx(0, 1).rz(0, 0.4);
        let out = cancel_gates(&qc);
        assert_eq!(out.count_gates(), 2);
        let angles: Vec<f64> = out
            .instructions()
            .iter()
            .filter_map(|i| match i.gate() {
                Some(Gate::Rz(p)) => p.value(),
                _ => None,
            })
            .collect();
        assert_eq!(angles, vec![0.7]);
        // Semantics preserved.
        assert!(out
            .unitary()
            .unwrap()
            .approx_eq(&qc.unitary().unwrap(), 1e-12));
    }

    #[test]
    fn x_merges_through_cx_target() {
        let mut qc = Circuit::new(2);
        qc.x(1).cx(0, 1).x(1);
        let out = cancel_gates(&qc);
        assert_eq!(out.count_gates(), 1);
        assert!(out
            .unitary()
            .unwrap()
            .approx_eq(&qc.unitary().unwrap(), 1e-12));
    }

    #[test]
    fn cx_pair_cancels_through_commuting_rz() {
        // CX, RZ on control, CX -> RZ alone.
        let mut qc = Circuit::new(2);
        qc.cx(0, 1).rz(0, 0.9).cx(0, 1);
        let out = cancel_gates(&qc);
        assert_eq!(out.count_gates(), 1);
        assert!(out
            .unitary()
            .unwrap()
            .approx_eq(&qc.unitary().unwrap(), 1e-12));
    }

    #[test]
    fn opposite_rotations_annihilate() {
        let mut qc = Circuit::new(1);
        qc.rx(0, 0.8).rx(0, -0.8);
        assert_eq!(cancel_gates(&qc).count_gates(), 0);
    }

    #[test]
    fn s_sdg_pair_cancels() {
        let mut qc = Circuit::new(1);
        qc.push(Gate::S, &[0]).push(Gate::Sdg, &[0]);
        assert_eq!(cancel_gates(&qc).count_gates(), 0);
    }

    #[test]
    fn free_parameters_with_same_id_merge() {
        let mut qc = Circuit::new(1);
        let p = qc.add_param();
        qc.rx_param(0, p, 1.0).rx_param(0, p, 1.0);
        let out = cancel_gates(&qc);
        assert_eq!(out.count_gates(), 1);
        let bound = out.bind(&[0.5]);
        let mut expect = Circuit::new(1);
        expect.rx(0, 1.0);
        assert!(bound
            .unitary()
            .unwrap()
            .approx_eq(&expect.unitary().unwrap(), 1e-12));
    }

    #[test]
    fn different_free_parameters_do_not_merge() {
        let mut qc = Circuit::new(1);
        let p1 = qc.add_param();
        let p2 = qc.add_param();
        qc.rx_param(0, p1, 1.0).rx_param(0, p2, 1.0);
        assert_eq!(cancel_gates(&qc).count_gates(), 2);
    }

    #[test]
    fn barrier_blocks_cancellation() {
        let mut qc = Circuit::new(1);
        qc.h(0).barrier().h(0);
        assert_eq!(cancel_gates(&qc).count_gates(), 2);
    }

    #[test]
    fn rzz_pair_merges() {
        let mut qc = Circuit::new(2);
        qc.rzz(0, 1, 0.5).rzz(0, 1, 0.25);
        let out = cancel_gates(&qc);
        assert_eq!(out.count_gates(), 1);
        assert!(out
            .unitary()
            .unwrap()
            .approx_eq(&qc.unitary().unwrap(), 1e-12));
    }

    #[test]
    fn qaoa_style_redundancy_collapses() {
        // Two QAOA Hamiltonian layers back to back with the same edge set
        // merge their RZZ angles.
        let mut qc = Circuit::new(3);
        qc.rzz(0, 1, 0.2)
            .rzz(1, 2, 0.2)
            .rzz(0, 1, 0.3)
            .rzz(1, 2, 0.3);
        let out = cancel_gates(&qc);
        assert_eq!(out.count_gates(), 2);
        assert!(out
            .unitary()
            .unwrap()
            .approx_eq(&qc.unitary().unwrap(), 1e-12));
    }
}
