#![forbid(unsafe_code)]

//! Gate-level compilation passes (the paper's "Step II").
//!
//! The hybrid gate-pulse workflow applies gate-level optimization to the
//! fixed-structure parts of a VQA. This crate provides the passes the
//! paper selects, plus the routing machinery they sit on:
//!
//! - [`sabre`]: SABRE qubit mapping and routing (Li, Ding, Xie; ASPLOS'19)
//!   — inserts SWAPs so every two-qubit gate lands on a coupler,
//! - [`cancellation`]: commutative gate cancellation — self-inverse pairs
//!   annihilate and same-axis rotations merge, looking through commuting
//!   neighbours,
//! - [`fusion`]: single-qubit resynthesis — runs of 1q gates collapse to
//!   one `U3`,
//! - [`basis`]: translation to the hardware basis `{RZ, SX, X, CX}`
//!   (`RZZ` is kept by request — the Hamiltonian layer's problem encoding),
//! - [`Transpiler`]: the composed pipeline with a [`TranspileOptions`]
//!   switchboard, returning the routed circuit plus initial/final layouts.
//!
//! # Example
//!
//! ```
//! use hgp_circuit::Circuit;
//! use hgp_device::Backend;
//! use hgp_transpile::{Transpiler, TranspileOptions};
//!
//! let backend = Backend::ibmq_guadalupe();
//! let mut qc = Circuit::new(3);
//! qc.h(0).cx(0, 1).cx(0, 2).cx(1, 2);
//! let out = Transpiler::new(&backend).run(&qc, &TranspileOptions::default());
//! // Every 2q gate in the output touches a real coupler.
//! for inst in out.circuit.instructions() {
//!     if let hgp_circuit::Instruction::Gate { qubits, .. } = inst {
//!         if qubits.len() == 2 {
//!             assert!(backend.coupling_map().are_coupled(qubits[0], qubits[1]));
//!         }
//!     }
//! }
//! ```

pub mod basis;
pub mod cancellation;
pub mod fusion;
pub mod layout;
pub mod sabre;
pub mod transpiler;

pub use layout::Layout;
pub use transpiler::{TranspileOptions, TranspiledCircuit, Transpiler};
