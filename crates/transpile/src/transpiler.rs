//! The composed transpilation pipeline.

use hgp_circuit::Circuit;
use hgp_device::Backend;

use crate::basis::to_basis;
use crate::cancellation::cancel_gates;
use crate::fusion::fuse_1q_runs;
use crate::layout::Layout;
use crate::sabre::{choose_initial_layout, route, RoutedCircuit};

/// Pipeline switches.
#[derive(Debug, Clone, PartialEq)]
pub struct TranspileOptions {
    /// Run commutative gate cancellation before and after routing.
    pub cancellation: bool,
    /// Fuse bound 1q-gate runs into single `U3`s.
    pub fusion: bool,
    /// Translate to the `{RZ, SX, X, CX}` basis at the end.
    pub basis_translation: bool,
    /// Keep `RZZ` intact through basis translation (the Hamiltonian
    /// layer's problem structure).
    pub keep_rzz: bool,
    /// Use SABRE forward-backward iteration to pick the initial layout
    /// (otherwise requires an explicit layout).
    pub sabre_layout_iterations: usize,
    /// Explicit initial layout (overrides SABRE layout selection). The
    /// paper fixes the logical-to-physical mapping for fair comparisons.
    pub initial_layout: Option<Vec<usize>>,
}

impl Default for TranspileOptions {
    fn default() -> Self {
        Self {
            cancellation: true,
            fusion: false,
            basis_translation: false,
            keep_rzz: true,
            sabre_layout_iterations: 3,
            initial_layout: None,
        }
    }
}

impl TranspileOptions {
    /// Routing only — no optimization passes (the paper's unoptimized
    /// "raw" configuration).
    pub fn raw() -> Self {
        Self {
            cancellation: false,
            fusion: false,
            basis_translation: false,
            keep_rzz: true,
            sabre_layout_iterations: 0,
            initial_layout: None,
        }
    }

    /// The paper's "GO" (gate-level optimization) configuration: SABRE
    /// mapping plus commutative cancellation.
    pub fn gate_optimized() -> Self {
        Self::default()
    }

    /// Sets a fixed initial layout.
    pub fn with_layout(mut self, layout: Vec<usize>) -> Self {
        self.initial_layout = Some(layout);
        self
    }
}

/// Result of transpilation.
#[derive(Debug, Clone)]
pub struct TranspiledCircuit {
    /// The physical circuit (width = device size).
    pub circuit: Circuit,
    /// Layout at entry.
    pub initial_layout: Layout,
    /// Layout at exit.
    pub final_layout: Layout,
    /// SWAPs inserted by routing.
    pub n_swaps: usize,
}

/// The composed pipeline (see [`TranspileOptions`]).
#[derive(Debug, Clone, Copy)]
pub struct Transpiler<'a> {
    backend: &'a Backend,
}

impl<'a> Transpiler<'a> {
    /// Creates a transpiler for `backend`.
    pub fn new(backend: &'a Backend) -> Self {
        Self { backend }
    }

    /// Runs the pipeline on a logical circuit.
    ///
    /// # Panics
    ///
    /// Panics if an explicit layout has the wrong width.
    pub fn run(&self, circuit: &Circuit, options: &TranspileOptions) -> TranspiledCircuit {
        let coupling = self.backend.coupling_map();
        let mut logical = circuit.clone();
        if options.cancellation {
            logical = cancel_gates(&logical);
        }
        if options.fusion {
            logical = fuse_1q_runs(&logical);
        }
        let initial_layout = match &options.initial_layout {
            Some(l) => Layout::new(l.clone(), coupling.n_qubits()),
            None if options.sabre_layout_iterations > 0 => {
                choose_initial_layout(&logical, coupling, options.sabre_layout_iterations)
            }
            None => Layout::trivial(logical.n_qubits(), coupling.n_qubits()),
        };
        let RoutedCircuit {
            circuit: mut routed,
            initial_layout,
            final_layout,
            n_swaps,
        } = route(&logical, coupling, &initial_layout);
        if options.cancellation {
            routed = cancel_gates(&routed);
        }
        if options.basis_translation {
            routed = to_basis(&routed, options.keep_rzz);
            if options.cancellation {
                routed = cancel_gates(&routed);
            }
        }
        TranspiledCircuit {
            circuit: routed,
            initial_layout,
            final_layout,
            n_swaps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgp_circuit::Instruction;

    fn qaoa_like(n: usize, edges: &[(usize, usize)]) -> Circuit {
        let mut qc = Circuit::new(n);
        for q in 0..n {
            qc.h(q);
        }
        for &(u, v) in edges {
            qc.rzz(u, v, 0.4);
        }
        for q in 0..n {
            qc.rx(q, 0.8);
        }
        qc
    }

    #[test]
    fn pipeline_produces_coupled_gates_only() {
        let backend = Backend::ibmq_guadalupe();
        let qc = qaoa_like(6, &[(0, 3), (1, 4), (2, 5), (0, 4), (1, 5), (2, 3)]);
        let out = Transpiler::new(&backend).run(&qc, &TranspileOptions::default());
        for inst in out.circuit.instructions() {
            if let Instruction::Gate { qubits, .. } = inst {
                if qubits.len() == 2 {
                    assert!(
                        backend.coupling_map().are_coupled(qubits[0], qubits[1]),
                        "uncoupled 2q gate after transpilation"
                    );
                }
            }
        }
    }

    #[test]
    fn fixed_layout_is_respected() {
        let backend = Backend::ibmq_guadalupe();
        let qc = qaoa_like(3, &[(0, 1), (1, 2)]);
        let layout = vec![1, 4, 7];
        let out = Transpiler::new(&backend).run(
            &qc,
            &TranspileOptions::default().with_layout(layout.clone()),
        );
        assert_eq!(out.initial_layout.as_slice(), layout.as_slice());
    }

    #[test]
    fn cancellation_reduces_gate_count() {
        let backend = Backend::ideal(4);
        let mut qc = Circuit::new(2);
        qc.cx(0, 1).cx(0, 1).h(0).h(0).rz(1, 0.4).rz(1, -0.4);
        let raw = Transpiler::new(&backend).run(&qc, &TranspileOptions::raw());
        let opt = Transpiler::new(&backend).run(&qc, &TranspileOptions::default());
        assert!(opt.circuit.count_gates() < raw.circuit.count_gates());
        assert_eq!(opt.circuit.count_gates(), 0);
    }

    #[test]
    fn basis_translation_composes_with_routing() {
        let backend = Backend::ibmq_guadalupe();
        let qc = qaoa_like(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let opts = TranspileOptions {
            basis_translation: true,
            keep_rzz: false,
            ..TranspileOptions::default()
        };
        let out = Transpiler::new(&backend).run(&qc, &opts);
        for inst in out.circuit.instructions() {
            if let Some(g) = inst.gate() {
                assert!(
                    matches!(
                        g,
                        hgp_circuit::Gate::Rz(_)
                            | hgp_circuit::Gate::SX
                            | hgp_circuit::Gate::X
                            | hgp_circuit::Gate::CX
                    ),
                    "gate {g} escaped basis translation"
                );
            }
        }
    }
}
