//! SABRE qubit mapping and routing (Li, Ding, Xie — ASPLOS 2019).
//!
//! Given a logical circuit and a coupling map, SABRE maintains a dynamic
//! layout and a *front layer* of gates whose dependencies are satisfied.
//! Executable gates (1q always; 2q when their operands are adjacent) are
//! emitted immediately; when the front layer is stuck, the SWAP that most
//! reduces a lookahead distance heuristic is inserted. The initial layout
//! is chosen by the standard forward-backward SABRE iteration.

use hgp_circuit::{Circuit, Gate, Instruction};
use hgp_device::CouplingMap;

use crate::layout::Layout;

/// Routing result: a physical circuit plus the layouts at entry and exit.
#[derive(Debug, Clone)]
pub struct RoutedCircuit {
    /// Circuit on physical qubit indices (width = device size), with
    /// SWAPs inserted.
    pub circuit: Circuit,
    /// Layout at circuit entry.
    pub initial_layout: Layout,
    /// Layout at circuit exit (SWAPs permute it).
    pub final_layout: Layout,
    /// Number of SWAPs inserted.
    pub n_swaps: usize,
}

/// Weight of the extended (lookahead) set in the SWAP heuristic.
const EXTENDED_WEIGHT: f64 = 0.5;
/// How many future gates the extended set examines.
const EXTENDED_SIZE: usize = 20;

/// Routes `circuit` onto `coupling` starting from `initial_layout`.
///
/// # Panics
///
/// Panics if the layout widths disagree with the circuit/coupling, or if
/// the coupling map is disconnected.
pub fn route(circuit: &Circuit, coupling: &CouplingMap, initial_layout: &Layout) -> RoutedCircuit {
    assert_eq!(
        initial_layout.n_logical(),
        circuit.n_qubits(),
        "layout width"
    );
    assert_eq!(
        initial_layout.n_physical(),
        coupling.n_qubits(),
        "device width"
    );
    assert!(coupling.is_connected(), "coupling map must be connected");
    let insts = circuit.instructions();
    // Dependency structure: per instruction, how many unmet predecessors;
    // per qubit, the queue of instruction ids.
    let mut pred_count = vec![0usize; insts.len()];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); insts.len()];
    {
        let mut last_on_wire: Vec<Option<usize>> = vec![None; circuit.n_qubits()];
        for (id, inst) in insts.iter().enumerate() {
            for &q in inst.qubits() {
                if let Some(p) = last_on_wire[q] {
                    succs[p].push(id);
                    pred_count[id] += 1;
                }
                last_on_wire[q] = Some(id);
            }
        }
    }
    let mut layout = initial_layout.clone();
    let mut out = Circuit::new(coupling.n_qubits());
    // Free parameters survive routing untouched.
    out.add_params(circuit.n_params());
    let mut front: Vec<usize> = (0..insts.len()).filter(|&i| pred_count[i] == 0).collect();
    let mut emitted = vec![false; insts.len()];
    let mut n_swaps = 0usize;
    let mut decay = vec![1.0f64; coupling.n_qubits()];
    let mut stall_guard = 0usize;
    while !front.is_empty() {
        // Emit every currently executable front gate.
        let mut progressed = false;
        let mut next_front: Vec<usize> = Vec::new();
        for &id in &front {
            let inst = &insts[id];
            let executable = match inst {
                Instruction::Gate { qubits, .. } if qubits.len() == 2 => {
                    coupling.are_coupled(layout.physical(qubits[0]), layout.physical(qubits[1]))
                }
                _ => true,
            };
            if executable {
                emit(&mut out, inst, &layout);
                emitted[id] = true;
                progressed = true;
                for &s in &succs[id] {
                    pred_count[s] -= 1;
                    if pred_count[s] == 0 {
                        next_front.push(s);
                    }
                }
            } else {
                next_front.push(id);
            }
        }
        front = next_front;
        front.sort_unstable();
        front.dedup();
        if front.is_empty() {
            break;
        }
        if progressed {
            stall_guard = 0;
            decay.iter_mut().for_each(|d| *d = 1.0);
            continue;
        }
        // Stuck: every front gate is a distant 2q gate. Pick the best SWAP.
        stall_guard += 1;
        assert!(
            stall_guard <= 10 * coupling.n_qubits() * coupling.n_qubits(),
            "SABRE failed to make progress (disconnected subgraph?)"
        );
        let blocked: Vec<(usize, usize)> = front
            .iter()
            .filter_map(|&id| match &insts[id] {
                Instruction::Gate { qubits, .. } if qubits.len() == 2 => {
                    Some((qubits[0], qubits[1]))
                }
                _ => None,
            })
            .collect();
        let extended = extended_set(insts, &front, &succs, &pred_count);
        let mut best: Option<((usize, usize), f64)> = None;
        for &(lq1, lq2) in &blocked {
            for &lq in &[lq1, lq2] {
                let p = layout.physical(lq);
                for nb in coupling.neighbors(p) {
                    let cand = if p < nb { (p, nb) } else { (nb, p) };
                    let mut trial = layout.clone();
                    trial.swap_physical(cand.0, cand.1);
                    let h = heuristic(&blocked, &extended, &trial, coupling)
                        * decay[cand.0].max(decay[cand.1]);
                    if best.is_none_or(|(_, bh)| h < bh) {
                        best = Some((cand, h));
                    }
                }
            }
        }
        let ((p1, p2), _) = best.expect("blocked front implies swap candidates");
        out.push(Gate::Swap, &[p1, p2]);
        layout.swap_physical(p1, p2);
        decay[p1] += 0.001;
        decay[p2] += 0.001;
        n_swaps += 1;
    }
    debug_assert!(emitted.iter().all(|&e| e));
    RoutedCircuit {
        circuit: out,
        initial_layout: initial_layout.clone(),
        final_layout: layout,
        n_swaps,
    }
}

/// The lookahead window: 2q gates reachable soon after the front layer.
fn extended_set(
    insts: &[Instruction],
    front: &[usize],
    succs: &[Vec<usize>],
    pred_count: &[usize],
) -> Vec<(usize, usize)> {
    let mut counts = pred_count.to_vec();
    let mut queue: Vec<usize> = front.to_vec();
    let mut out = Vec::new();
    let mut seen = 0usize;
    while let Some(id) = queue.pop() {
        if seen >= EXTENDED_SIZE {
            break;
        }
        for &s in &succs[id] {
            counts[s] = counts[s].saturating_sub(1);
            if counts[s] == 0 {
                if let Instruction::Gate { qubits, .. } = &insts[s] {
                    if qubits.len() == 2 {
                        out.push((qubits[0], qubits[1]));
                        seen += 1;
                    }
                }
                queue.push(s);
            }
        }
    }
    out
}

/// The SABRE distance heuristic over front and extended sets.
fn heuristic(
    front: &[(usize, usize)],
    extended: &[(usize, usize)],
    layout: &Layout,
    coupling: &CouplingMap,
) -> f64 {
    let dist =
        |&(a, b): &(usize, usize)| coupling.distance(layout.physical(a), layout.physical(b)) as f64;
    let f: f64 = front.iter().map(dist).sum::<f64>() / front.len().max(1) as f64;
    let e: f64 = if extended.is_empty() {
        0.0
    } else {
        extended.iter().map(dist).sum::<f64>() / extended.len() as f64
    };
    f + EXTENDED_WEIGHT * e
}

fn emit(out: &mut Circuit, inst: &Instruction, layout: &Layout) {
    match inst {
        Instruction::Gate { gate, qubits } => {
            let phys: Vec<usize> = qubits.iter().map(|&q| layout.physical(q)).collect();
            out.push(*gate, &phys);
        }
        Instruction::Barrier { .. } => {
            out.barrier();
        }
        Instruction::Measure { qubit, cbit } => {
            out.instructions_mut().push(Instruction::Measure {
                qubit: layout.physical(*qubit),
                cbit: *cbit,
            });
        }
    }
}

/// Chooses an initial layout with the forward-backward SABRE iteration:
/// route forward from a greedy seed, route the reverse circuit from the
/// final layout, and take the layout that results.
pub fn choose_initial_layout(
    circuit: &Circuit,
    coupling: &CouplingMap,
    iterations: usize,
) -> Layout {
    let n = circuit.n_qubits();
    // Greedy seed: put logical qubits on a connected physical region with
    // high connectivity (BFS from the max-degree qubit).
    let start = (0..coupling.n_qubits())
        .max_by_key(|&q| coupling.neighbors(q).len())
        .unwrap_or(0);
    let mut region = vec![start];
    let mut i = 0;
    while region.len() < n {
        let q = region[i];
        for nb in coupling.neighbors(q) {
            if !region.contains(&nb) && region.len() < n {
                region.push(nb);
            }
        }
        i += 1;
        assert!(i <= region.len(), "coupling map too small or disconnected");
    }
    let mut layout = Layout::new(region, coupling.n_qubits());
    let reversed = reverse_circuit(circuit);
    for _ in 0..iterations {
        let fwd = route(circuit, coupling, &layout);
        let back = route(&reversed, coupling, &fwd.final_layout);
        layout = back.final_layout;
    }
    layout
}

/// The circuit with gate order reversed (parameters untouched — only the
/// interaction pattern matters for layout selection).
fn reverse_circuit(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::new(circuit.n_qubits());
    for inst in circuit.instructions().iter().rev() {
        if let Instruction::Gate { gate, qubits } = inst {
            out.push(*gate, qubits);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgp_math::Matrix;

    /// Checks routed-circuit semantics: the routed unitary, conjugated by
    /// the entry/exit layout embeddings, equals the original.
    fn assert_equivalent(original: &Circuit, routed: &RoutedCircuit, n_physical: usize) {
        assert!(n_physical <= 10, "test helper limited to small devices");
        let u_orig = original.unitary().expect("bound");
        let u_routed = routed.circuit.unitary().expect("bound");
        let n_log = original.n_qubits();
        let dim_log = 1usize << n_log;
        // For every logical basis state |b>, embed through the initial
        // layout, apply the routed unitary, and read back through the
        // final layout; compare against U|b>.
        for b in 0..dim_log {
            let mut phys_in = 0usize;
            for l in 0..n_log {
                if (b >> l) & 1 == 1 {
                    phys_in |= 1 << routed.initial_layout.physical(l);
                }
            }
            // Column phys_in of u_routed, pulled back through final layout.
            let mut got = vec![hgp_math::Complex64::ZERO; dim_log];
            for row in 0..(1usize << n_physical) {
                let amp = u_routed[(row, phys_in)];
                if amp.norm() < 1e-12 {
                    continue;
                }
                // Decode row into logical bits via the final layout.
                let mut logical = 0usize;
                let mut stray = false;
                for p in 0..n_physical {
                    if (row >> p) & 1 == 1 {
                        match routed.final_layout.logical(p) {
                            Some(l) => logical |= 1 << l,
                            None => stray = true,
                        }
                    }
                }
                assert!(!stray, "amplitude leaked to an unused qubit");
                got[logical] += amp;
            }
            for l in 0..dim_log {
                let expect = u_orig[(l, b)];
                assert!(
                    (got[l] - expect).norm() < 1e-9,
                    "column {b} row {l}: {} vs {}",
                    got[l],
                    expect
                );
            }
        }
        let _ = Matrix::identity(1); // keep import used on all paths
    }

    #[test]
    fn already_routable_circuit_needs_no_swaps() {
        let coupling = CouplingMap::line(4);
        let mut qc = Circuit::new(3);
        qc.h(0).cx(0, 1).cx(1, 2);
        let layout = Layout::trivial(3, 4);
        let routed = route(&qc, &coupling, &layout);
        assert_eq!(routed.n_swaps, 0);
        assert_eq!(routed.circuit.count_2q_gates(), 2);
    }

    #[test]
    fn distant_gate_gets_swapped() {
        let coupling = CouplingMap::line(4);
        let mut qc = Circuit::new(4);
        qc.cx(0, 3);
        let layout = Layout::trivial(4, 4);
        let routed = route(&qc, &coupling, &layout);
        assert!(routed.n_swaps >= 1);
        for inst in routed.circuit.instructions() {
            if let Instruction::Gate { qubits, .. } = inst {
                if qubits.len() == 2 {
                    assert!(coupling.are_coupled(qubits[0], qubits[1]));
                }
            }
        }
        assert_equivalent(&qc, &routed, 4);
    }

    #[test]
    fn routing_preserves_semantics_on_random_circuit() {
        let coupling = CouplingMap::line(5);
        let mut qc = Circuit::new(5);
        qc.h(0)
            .cx(0, 4)
            .rx(2, 0.7)
            .cx(1, 3)
            .rzz(0, 2, 0.9)
            .cx(4, 1)
            .h(3)
            .cx(2, 4);
        let layout = Layout::trivial(5, 5);
        let routed = route(&qc, &coupling, &layout);
        assert!(routed.n_swaps > 0);
        assert_equivalent(&qc, &routed, 5);
    }

    #[test]
    fn ring_routing_semantics() {
        let coupling = CouplingMap::ring(6);
        let mut qc = Circuit::new(6);
        qc.cx(0, 3).cx(1, 4).cx(2, 5);
        let layout = Layout::trivial(6, 6);
        let routed = route(&qc, &coupling, &layout);
        assert_equivalent(&qc, &routed, 6);
    }

    #[test]
    fn initial_layout_lands_on_connected_region() {
        let coupling = CouplingMap::falcon_16();
        let mut qc = Circuit::new(6);
        for i in 0..6 {
            qc.cx(i, (i + 1) % 6);
        }
        let layout = choose_initial_layout(&qc, &coupling, 2);
        assert_eq!(layout.n_logical(), 6);
        // All chosen qubits distinct and in range (Layout::new enforces),
        // and the region should be reasonably tight: total pairwise
        // distance beats a spread-out placement.
        let spread: usize = (0..6)
            .flat_map(|a| (0..6).map(move |b| (a, b)))
            .map(|(a, b)| coupling.distance(layout.physical(a), layout.physical(b)))
            .sum();
        assert!(spread < 6 * 6 * 4, "layout too spread out: {spread}");
    }

    #[test]
    fn measurements_are_remapped() {
        let coupling = CouplingMap::line(3);
        let mut qc = Circuit::new(2);
        qc.h(0).measure_all();
        let layout = Layout::new(vec![2, 1], 3);
        let routed = route(&qc, &coupling, &layout);
        let mut measures: Vec<(usize, usize)> = routed
            .circuit
            .instructions()
            .iter()
            .filter_map(|i| match i {
                Instruction::Measure { qubit, cbit } => Some((*qubit, *cbit)),
                _ => None,
            })
            .collect();
        measures.sort_unstable();
        assert_eq!(measures, vec![(1, 1), (2, 0)]);
    }
}
