//! Translation to the hardware basis `{RZ, SX, X, CX}` (+ `RZZ` kept by
//! request).
//!
//! The paper's Hamiltonian layer deliberately preserves the `RZZ`
//! structure, so translation accepts a `keep_rzz` flag; when false, `RZZ`
//! lowers to `CX · RZ · CX`.

use std::f64::consts::{FRAC_PI_2, PI};

use hgp_circuit::{Circuit, Gate, Instruction, Param};
use hgp_math::su2::zyz_decompose;

/// Translates every gate into `{RZ, SX, X, CX}` (and `RZZ` if
/// `keep_rzz`). Free-parameter `RZ`/`RZZ`/`RX` survive symbolically where
/// the decomposition permits; a free `RX`/`RY` lowers to the standard
/// `RZ - SX - RZ - SX - RZ` pattern with the free angle inside an `RZ`.
pub fn to_basis(circuit: &Circuit, keep_rzz: bool) -> Circuit {
    let mut out = Circuit::new(circuit.n_qubits());
    for _ in 0..circuit.n_params() {
        out.add_param();
    }
    for inst in circuit.instructions() {
        match inst {
            Instruction::Gate { gate, qubits } => {
                translate(&mut out, gate, qubits, keep_rzz);
            }
            other => out.instructions_mut().push(other.clone()),
        }
    }
    out
}

fn translate(out: &mut Circuit, gate: &Gate, q: &[usize], keep_rzz: bool) {
    match gate {
        Gate::I => {}
        Gate::X | Gate::SX | Gate::CX => {
            out.push(*gate, q);
        }
        Gate::Rz(p) => {
            out.push(Gate::Rz(*p), q);
        }
        Gate::Z => {
            out.rz(q[0], PI);
        }
        Gate::S => {
            out.rz(q[0], FRAC_PI_2);
        }
        Gate::Sdg => {
            out.rz(q[0], -FRAC_PI_2);
        }
        Gate::T => {
            out.rz(q[0], PI / 4.0);
        }
        Gate::Tdg => {
            out.rz(q[0], -PI / 4.0);
        }
        Gate::Y => {
            // Y = RZ(pi) then X, up to global phase.
            out.rz(q[0], PI);
            out.x(q[0]);
        }
        Gate::H => {
            // H = RZ(pi/2) SX RZ(pi/2) up to global phase.
            out.rz(q[0], FRAC_PI_2);
            out.sx(q[0]);
            out.rz(q[0], FRAC_PI_2);
        }
        Gate::Rx(p) => {
            // RX(t) = RZ(-pi/2) SX RZ(pi - t) SX RZ(-pi/2) up to phase
            // (the free angle survives inside the middle RZ).
            out.rz(q[0], -FRAC_PI_2);
            out.sx(q[0]);
            out.push(Gate::Rz(p.scaled(-1.0).shifted(PI)), &[q[0]]);
            out.sx(q[0]);
            out.rz(q[0], -FRAC_PI_2);
        }
        Gate::Ry(p) => {
            // RY(t) = RZ(pi) RX(t) RZ(... ) — route through the RX pattern
            // conjugated by Z frames: RY(t) = RZ(pi/2)? Use
            // RY(t) = RZ(0) ... simplest: RY(t) = RZ(-pi) RX(t) RZ(pi)?
            // Safe generic: SX RZ(t + pi) SX RZ(pi) — validated by test.
            out.sx(q[0]);
            out.push(Gate::Rz(p.shifted(PI)), &[q[0]]);
            out.sx(q[0]);
            out.rz(q[0], PI);
        }
        Gate::U3(t, p, l) => {
            if let (Some(tv), Some(pv), Some(lv)) = (t.value(), p.value(), l.value()) {
                // Exact ZYZ route via the matrix.
                let m = Gate::U3(Param::bound(tv), Param::bound(pv), Param::bound(lv))
                    .matrix()
                    .expect("bound");
                let (_, beta, gamma, delta) = zyz_decompose(&m);
                // RZ(beta) RY(gamma) RZ(delta) with
                // RY(g) = RZ(pi) SX RZ(g - pi) SX (up to phase):
                out.rz(q[0], delta);
                out.sx(q[0]);
                out.rz(q[0], gamma - PI);
                out.sx(q[0]);
                out.rz(q[0], beta + PI);
            } else {
                // Free U3: emit symbolically.
                out.push(Gate::Rz(*l), &[q[0]]);
                out.sx(q[0]);
                out.push(Gate::Rz(t.shifted(PI)), &[q[0]]);
                out.sx(q[0]);
                out.push(Gate::Rz(p.shifted(PI)), &[q[0]]);
            }
        }
        Gate::CZ => {
            // CZ = H_t CX H_t.
            translate(out, &Gate::H, &[q[1]], keep_rzz);
            out.cx(q[0], q[1]);
            translate(out, &Gate::H, &[q[1]], keep_rzz);
        }
        Gate::Swap => {
            out.cx(q[0], q[1]);
            out.cx(q[1], q[0]);
            out.cx(q[0], q[1]);
        }
        Gate::Rzz(p) => {
            if keep_rzz {
                out.push(Gate::Rzz(*p), q);
            } else {
                out.cx(q[0], q[1]);
                out.push(Gate::Rz(*p), &[q[1]]);
                out.cx(q[0], q[1]);
            }
        }
        Gate::Rzx(p) => {
            // RZX(t) = H_t RZZ(t) H_t.
            translate(out, &Gate::H, &[q[1]], keep_rzz);
            translate(out, &Gate::Rzz(*p), q, keep_rzz);
            translate(out, &Gate::H, &[q[1]], keep_rzz);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_translates(build: impl Fn(&mut Circuit), n: usize, keep_rzz: bool) {
        let mut qc = Circuit::new(n);
        build(&mut qc);
        let out = to_basis(&qc, keep_rzz);
        for inst in out.instructions() {
            if let Some(g) = inst.gate() {
                let ok = matches!(g, Gate::Rz(_) | Gate::SX | Gate::X | Gate::CX)
                    || (keep_rzz && matches!(g, Gate::Rzz(_)));
                assert!(ok, "gate {g} not in basis");
            }
        }
        assert!(
            out.unitary()
                .unwrap()
                .approx_eq_up_to_phase(&qc.unitary().unwrap(), 1e-10),
            "translation changed semantics"
        );
    }

    #[test]
    fn clifford_gates_translate() {
        assert_translates(
            |qc| {
                qc.h(0).z(0).y(1).push(Gate::S, &[1]);
            },
            2,
            true,
        );
    }

    #[test]
    fn rotations_translate() {
        assert_translates(
            |qc| {
                qc.rx(0, 0.7).ry(1, -1.2).rz(0, 2.2);
            },
            2,
            true,
        );
    }

    #[test]
    fn u3_translates() {
        assert_translates(
            |qc| {
                qc.push(
                    Gate::U3(Param::bound(0.5), Param::bound(1.1), Param::bound(-0.3)),
                    &[0],
                );
            },
            1,
            true,
        );
    }

    #[test]
    fn two_qubit_gates_translate() {
        assert_translates(
            |qc| {
                qc.cz(0, 1).swap(0, 1).rzz(0, 1, 0.8);
            },
            2,
            false,
        );
    }

    #[test]
    fn rzz_is_kept_when_requested() {
        let mut qc = Circuit::new(2);
        qc.rzz(0, 1, 0.8);
        let kept = to_basis(&qc, true);
        assert!(kept
            .instructions()
            .iter()
            .any(|i| matches!(i.gate(), Some(Gate::Rzz(_)))));
        let lowered = to_basis(&qc, false);
        assert!(!lowered
            .instructions()
            .iter()
            .any(|i| matches!(i.gate(), Some(Gate::Rzz(_)))));
        assert_eq!(lowered.count_2q_gates(), 2);
    }

    #[test]
    fn free_rx_survives_binding() {
        let mut qc = Circuit::new(1);
        let p = qc.add_param();
        qc.rx_param(0, p, 2.0);
        let out = to_basis(&qc, true);
        let theta = 0.9;
        let bound_out = out.bind(&[theta]);
        let bound_in = qc.bind(&[theta]);
        assert!(bound_out
            .unitary()
            .unwrap()
            .approx_eq_up_to_phase(&bound_in.unitary().unwrap(), 1e-10));
    }

    #[test]
    fn rzx_translates() {
        assert_translates(
            |qc| {
                qc.push(Gate::Rzx(Param::bound(0.6)), &[0, 1]);
            },
            2,
            true,
        );
    }
}
