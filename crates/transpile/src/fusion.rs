//! Single-qubit gate fusion (resynthesis).
//!
//! Maximal runs of bound single-qubit gates on one wire collapse into a
//! single `U3`, cutting pulse count (every 1q stretch costs at most two
//! SX pulses after fusion). Runs containing free parameters are left
//! untouched — they must survive binding.

use hgp_circuit::{Circuit, Gate, Instruction, Param};
use hgp_math::su2::zyz_decompose;
use hgp_math::Matrix;

/// Fuses runs of bound 1q gates into single `U3` gates.
///
/// Identity-equivalent runs are dropped entirely.
pub fn fuse_1q_runs(circuit: &Circuit) -> Circuit {
    let insts = circuit.instructions();
    let mut out = Circuit::new(circuit.n_qubits());
    for _ in 0..circuit.n_params() {
        out.add_param();
    }
    // Pending accumulated unitary per qubit.
    let mut pending: Vec<Option<Matrix>> = vec![None; circuit.n_qubits()];
    let flush = |out: &mut Circuit, pending: &mut Vec<Option<Matrix>>, q: usize| {
        if let Some(u) = pending[q].take() {
            if u.approx_eq_up_to_phase(&Matrix::identity(2), 1e-12) {
                return;
            }
            let (_, beta, gamma, delta) = zyz_decompose(&u);
            // U3(theta, phi, lambda) = RZ(phi) RY(theta) RZ(lambda) up to
            // global phase, with theta = gamma, phi = beta, lambda = delta.
            out.push(
                Gate::U3(Param::bound(gamma), Param::bound(beta), Param::bound(delta)),
                &[q],
            );
        }
    };
    for inst in insts {
        match inst {
            Instruction::Gate { gate, qubits } if gate.n_qubits() == 1 && gate.is_bound() => {
                let q = qubits[0];
                let m = gate.matrix().expect("bound");
                pending[q] = Some(match pending[q].take() {
                    Some(acc) => m.matmul(&acc),
                    None => m,
                });
            }
            other => {
                for &q in other.qubits() {
                    flush(&mut out, &mut pending, q);
                }
                match other {
                    Instruction::Gate { gate, qubits } => {
                        out.push(*gate, qubits);
                    }
                    o => out.instructions_mut().push(o.clone()),
                }
            }
        }
    }
    for q in 0..circuit.n_qubits() {
        flush(&mut out, &mut pending, q);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_of_rotations_becomes_one_u3() {
        let mut qc = Circuit::new(1);
        qc.rx(0, 0.3).rz(0, 0.7).ry(0, -0.4).h(0);
        let out = fuse_1q_runs(&qc);
        assert_eq!(out.count_gates(), 1);
        assert!(out
            .unitary()
            .unwrap()
            .approx_eq_up_to_phase(&qc.unitary().unwrap(), 1e-10));
    }

    #[test]
    fn identity_runs_vanish() {
        let mut qc = Circuit::new(1);
        qc.h(0).h(0).x(0).x(0);
        assert_eq!(fuse_1q_runs(&qc).count_gates(), 0);
    }

    #[test]
    fn two_qubit_gates_interrupt_runs() {
        let mut qc = Circuit::new(2);
        qc.h(0).cx(0, 1).h(0);
        let out = fuse_1q_runs(&qc);
        // Each H survives as its own U3 around the CX.
        assert_eq!(out.count_gates(), 3);
        assert!(out
            .unitary()
            .unwrap()
            .approx_eq_up_to_phase(&qc.unitary().unwrap(), 1e-10));
    }

    #[test]
    fn free_parameters_are_preserved() {
        let mut qc = Circuit::new(1);
        let p = qc.add_param();
        qc.h(0).rx_param(0, p, 2.0).h(0);
        let out = fuse_1q_runs(&qc);
        // Hs fuse separately; the free RX survives symbolically.
        assert!(out
            .instructions()
            .iter()
            .any(|i| matches!(i.gate(), Some(Gate::Rx(Param::Free { .. })))));
        let bound_in = qc.bind(&[0.4]);
        let bound_out = out.bind(&[0.4]);
        assert!(bound_out
            .unitary()
            .unwrap()
            .approx_eq_up_to_phase(&bound_in.unitary().unwrap(), 1e-10));
    }

    #[test]
    fn multi_qubit_runs_fuse_independently() {
        let mut qc = Circuit::new(3);
        qc.h(0).h(1).rx(0, 0.5).ry(1, 0.2).rz(2, 1.0).cx(0, 1);
        let out = fuse_1q_runs(&qc);
        assert!(out
            .unitary()
            .unwrap()
            .approx_eq_up_to_phase(&qc.unitary().unwrap(), 1e-10));
        // Qubit 0 and 1 runs fused to one gate each + the rz + the cx.
        assert_eq!(out.count_gates(), 4);
    }
}
