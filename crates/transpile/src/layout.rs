//! Logical-to-physical qubit layouts.

use serde::{Deserialize, Serialize};

/// A bijection from logical circuit qubits to physical device qubits
/// (physical qubits outside the image are unused).
///
/// ```
/// use hgp_transpile::Layout;
/// let mut l = Layout::new(vec![5, 2, 7], 16);
/// assert_eq!(l.physical(0), 5);
/// assert_eq!(l.logical(7), Some(2));
/// l.swap_physical(5, 2); // a SWAP gate on physical wires 5 and 2
/// assert_eq!(l.physical(0), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Layout {
    /// `log_to_phys[l]` = physical qubit of logical `l`.
    log_to_phys: Vec<usize>,
    /// `phys_to_log[p]` = logical qubit on physical `p`, if any.
    phys_to_log: Vec<Option<usize>>,
}

impl Layout {
    /// Builds a layout placing logical qubit `l` on `log_to_phys[l]`.
    ///
    /// # Panics
    ///
    /// Panics if a physical index repeats or exceeds `n_physical`.
    pub fn new(log_to_phys: Vec<usize>, n_physical: usize) -> Self {
        let mut phys_to_log = vec![None; n_physical];
        for (l, &p) in log_to_phys.iter().enumerate() {
            assert!(p < n_physical, "physical qubit {p} out of range");
            assert!(phys_to_log[p].is_none(), "physical qubit {p} reused");
            phys_to_log[p] = Some(l);
        }
        Self {
            log_to_phys,
            phys_to_log,
        }
    }

    /// The identity layout on the first `n_logical` physical qubits.
    pub fn trivial(n_logical: usize, n_physical: usize) -> Self {
        Self::new((0..n_logical).collect(), n_physical)
    }

    /// Number of logical qubits.
    pub fn n_logical(&self) -> usize {
        self.log_to_phys.len()
    }

    /// Number of physical qubits.
    pub fn n_physical(&self) -> usize {
        self.phys_to_log.len()
    }

    /// Physical qubit hosting logical `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn physical(&self, l: usize) -> usize {
        self.log_to_phys[l]
    }

    /// Logical qubit on physical `p`, if occupied.
    pub fn logical(&self, p: usize) -> Option<usize> {
        self.phys_to_log[p]
    }

    /// The logical-to-physical vector.
    pub fn as_slice(&self) -> &[usize] {
        &self.log_to_phys
    }

    /// Updates the layout after a SWAP on two physical wires.
    ///
    /// Either wire may be unoccupied (swapping with an idle qubit).
    pub fn swap_physical(&mut self, p1: usize, p2: usize) {
        let l1 = self.phys_to_log[p1];
        let l2 = self.phys_to_log[p2];
        self.phys_to_log[p1] = l2;
        self.phys_to_log[p2] = l1;
        if let Some(l) = l1 {
            self.log_to_phys[l] = p2;
        }
        if let Some(l) = l2 {
            self.log_to_phys[l] = p1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_layout_is_identity() {
        let l = Layout::trivial(3, 8);
        for q in 0..3 {
            assert_eq!(l.physical(q), q);
            assert_eq!(l.logical(q), Some(q));
        }
        assert_eq!(l.logical(5), None);
    }

    #[test]
    fn swap_updates_both_directions() {
        let mut l = Layout::new(vec![0, 1], 4);
        l.swap_physical(1, 2);
        assert_eq!(l.physical(1), 2);
        assert_eq!(l.logical(1), None);
        assert_eq!(l.logical(2), Some(1));
        // Swap back.
        l.swap_physical(2, 1);
        assert_eq!(l.physical(1), 1);
    }

    #[test]
    fn swap_with_idle_qubit() {
        let mut l = Layout::new(vec![3], 5);
        l.swap_physical(3, 4);
        assert_eq!(l.physical(0), 4);
        assert_eq!(l.logical(3), None);
    }

    #[test]
    #[should_panic(expected = "reused")]
    fn duplicate_physical_panics() {
        let _ = Layout::new(vec![1, 1], 4);
    }
}
