//! Backend models: coupling, calibration, per-qubit and per-edge physics.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::calibration::Calibration;
use crate::coupling::CouplingMap;
use crate::{DT_NS, PULSE_1Q_DT};

/// Physics and error parameters of one qubit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QubitParams {
    /// Qubit transition frequency, GHz.
    pub frequency_ghz: f64,
    /// Transmon anharmonicity, GHz (negative).
    pub anharmonicity_ghz: f64,
    /// Relaxation time, microseconds.
    pub t1_us: f64,
    /// Dephasing time, microseconds.
    pub t2_us: f64,
    /// Single-qubit (X / SX) gate error.
    pub x_error: f64,
    /// Readout assignment error (symmetric model).
    pub readout_error: f64,
    /// Peak Rabi rate at unit drive amplitude, rad per `dt`.
    ///
    /// A resonant drive with envelope `amp * env(t)` rotates the qubit at
    /// instantaneous rate `amp * env(t) * drive_strength` rad/dt.
    pub drive_strength: f64,
    /// Residual frequency offset between the control frame and the actual
    /// qubit frequency, rad per `dt` (slow drift the daily calibration
    /// missed). Coherent: pulse-level frequency tuning can cancel it;
    /// gate-level users cannot see it (paper §IV-A.2).
    pub freq_offset: f64,
    /// Fractional miscalibration of the calibrated pulse amplitude
    /// (over/under-rotation of X/SX-derived gates). Coherent: trainable
    /// pulse amplitudes absorb it.
    pub amp_error: f64,
}

/// Physics and error parameters of one coupler (edge).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TwoQubitParams {
    /// CNOT gate error.
    pub cx_error: f64,
    /// Cross-resonance ZX coefficient (fraction of the drive strength that
    /// becomes a `Z(x)X` rotation rate).
    pub mu_zx: f64,
    /// Spurious IX coefficient of the CR drive.
    pub mu_ix: f64,
    /// Spurious ZI (Stark-shift-like) coefficient of the CR drive.
    pub mu_zi: f64,
    /// Duration of one CR half-pulse, in `dt`.
    pub cr_duration_dt: u32,
}

/// A superconducting quantum backend.
///
/// ```
/// use hgp_device::Backend;
/// let b = Backend::ibmq_guadalupe();
/// assert_eq!(b.n_qubits(), 16);
/// let q0 = b.qubit(0);
/// assert!(q0.t1_us > 10.0);
/// let cx_dt = b.cx_duration_dt(0, 1);
/// assert!(cx_dt > 500);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Backend {
    name: String,
    coupling: CouplingMap,
    calibration: Calibration,
    qubits: Vec<QubitParams>,
    edges: BTreeMap<(usize, usize), TwoQubitParams>,
}

impl Backend {
    /// Builds a backend from a coupling map and Table-I-style calibration
    /// averages, deriving per-qubit/per-edge values with deterministic
    /// jitter seeded by `name`.
    pub fn from_calibration(name: &str, coupling: CouplingMap, cal: Calibration) -> Self {
        let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
        });
        let mut rng = StdRng::seed_from_u64(seed);
        let n = coupling.n_qubits();
        let jitter = |rng: &mut StdRng, lo: f64, hi: f64| rng.gen_range(lo..hi);
        let qubits: Vec<QubitParams> = (0..n)
            .map(|q| {
                let t1_us = finite_scale(cal.t1_us, jitter(&mut rng, 0.7, 1.3));
                // Physical constraint: T2 <= 2*T1 must survive the jitter.
                let t2_us = finite_scale(cal.t2_us, jitter(&mut rng, 0.7, 1.3)).min(2.0 * t1_us);
                let noisy = cal.x_error > 0.0 || cal.t1_us.is_finite();
                QubitParams {
                    frequency_ghz: 4.8 + 0.02 * q as f64 + jitter(&mut rng, -0.05, 0.05),
                    anharmonicity_ghz: -0.34 + jitter(&mut rng, -0.01, 0.01),
                    t1_us,
                    t2_us,
                    x_error: cal.x_error * jitter(&mut rng, 0.6, 1.6),
                    readout_error: cal.readout_error * jitter(&mut rng, 0.5, 1.8),
                    drive_strength: 0.125 * jitter(&mut rng, 0.9, 1.1),
                    freq_offset: if noisy {
                        jitter(&mut rng, -0.0002, 0.0002)
                    } else {
                        0.0
                    },
                    amp_error: if noisy {
                        jitter(&mut rng, -0.01, 0.01)
                    } else {
                        0.0
                    },
                }
            })
            .collect();
        let mut edges = BTreeMap::new();
        for &(u, v) in coupling.edges() {
            edges.insert(
                (u, v),
                TwoQubitParams {
                    cx_error: cal.cx_error * jitter(&mut rng, 0.6, 1.8),
                    mu_zx: jitter(&mut rng, 0.035, 0.055),
                    mu_ix: jitter(&mut rng, 0.08, 0.12),
                    mu_zi: jitter(&mut rng, 0.015, 0.025),
                    cr_duration_dt: 256,
                },
            );
        }
        Self {
            name: name.to_owned(),
            coupling,
            calibration: cal,
            qubits,
            edges,
        }
    }

    /// The 27-qubit `ibm_auckland` model (lowest readout error in Table I).
    pub fn ibm_auckland() -> Self {
        Self::from_calibration(
            "ibm_auckland",
            CouplingMap::falcon_27(),
            Calibration::ibm_auckland(),
        )
    }

    /// The 27-qubit `ibmq_toronto` model (lowest CNOT error in Table I).
    pub fn ibmq_toronto() -> Self {
        Self::from_calibration(
            "ibmq_toronto",
            CouplingMap::falcon_27(),
            Calibration::ibmq_toronto(),
        )
    }

    /// The 16-qubit `ibmq_guadalupe` model.
    pub fn ibmq_guadalupe() -> Self {
        Self::from_calibration(
            "ibmq_guadalupe",
            CouplingMap::falcon_16(),
            Calibration::ibmq_guadalupe(),
        )
    }

    /// The 27-qubit `ibmq_montreal` model.
    pub fn ibmq_montreal() -> Self {
        Self::from_calibration(
            "ibmq_montreal",
            CouplingMap::falcon_27(),
            Calibration::ibmq_montreal(),
        )
    }

    /// All four paper backends, in Table I order.
    pub fn paper_backends() -> Vec<Backend> {
        vec![
            Self::ibm_auckland(),
            Self::ibmq_toronto(),
            Self::ibmq_guadalupe(),
            Self::ibmq_montreal(),
        ]
    }

    /// A noise-free, fully connected backend for unit tests.
    pub fn ideal(n_qubits: usize) -> Self {
        Self::from_calibration("ideal", CouplingMap::full(n_qubits), Calibration::ideal())
    }

    /// Backend name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.coupling.n_qubits()
    }

    /// The coupling map.
    pub fn coupling_map(&self) -> &CouplingMap {
        &self.coupling
    }

    /// The backend-average calibration data (Table I).
    pub fn calibration(&self) -> &Calibration {
        &self.calibration
    }

    /// Per-qubit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn qubit(&self, q: usize) -> &QubitParams {
        &self.qubits[q]
    }

    /// Per-edge parameters (order-insensitive).
    ///
    /// # Panics
    ///
    /// Panics if `(u, v)` is not a coupler.
    pub fn edge(&self, u: usize, v: usize) -> &TwoQubitParams {
        self.try_edge(u, v)
            .unwrap_or_else(|| panic!("({u}, {v}) is not a coupler of {}", self.name))
    }

    /// Per-edge parameters (order-insensitive), `None` for non-coupled
    /// pairs — the accessor for request-derived pairs that must fail a
    /// job rather than a thread.
    pub fn try_edge(&self, u: usize, v: usize) -> Option<&TwoQubitParams> {
        let key = if u < v { (u, v) } else { (v, u) };
        self.edges.get(&key)
    }

    /// Duration of a calibrated X or SX pulse, in `dt`.
    pub fn pulse_1q_duration_dt(&self) -> u32 {
        PULSE_1Q_DT
    }

    /// Duration of the echoed-CR CNOT schedule on a coupler, in `dt`:
    /// two CR half-pulses plus two echo X pulses on the control (the
    /// target's final SX plays in parallel with the last echo X).
    ///
    /// # Panics
    ///
    /// Panics if `(u, v)` is not a coupler.
    pub fn cx_duration_dt(&self, u: usize, v: usize) -> u32 {
        let e = self.edge(u, v);
        2 * e.cr_duration_dt + 2 * PULSE_1Q_DT
    }

    /// Measurement (readout) duration, in `dt`.
    pub fn measure_duration_dt(&self) -> u32 {
        (self.calibration.readout_length_ns / DT_NS).round() as u32
    }

    /// Average T1 across qubits, microseconds.
    pub fn mean_t1_us(&self) -> f64 {
        self.qubits.iter().map(|q| q.t1_us).sum::<f64>() / self.qubits.len() as f64
    }

    /// Average T2 across qubits, microseconds.
    pub fn mean_t2_us(&self) -> f64 {
        self.qubits.iter().map(|q| q.t2_us).sum::<f64>() / self.qubits.len() as f64
    }
}

/// Multiplies, propagating infinity cleanly (ideal backends have
/// `t1 = inf`).
fn finite_scale(base: f64, factor: f64) -> f64 {
    if base.is_finite() {
        base * factor
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backends_are_deterministic() {
        let a = Backend::ibmq_toronto();
        let b = Backend::ibmq_toronto();
        assert_eq!(a, b);
    }

    #[test]
    fn different_backends_differ() {
        let a = Backend::ibmq_toronto();
        let b = Backend::ibmq_montreal();
        assert_ne!(a.qubit(0).t1_us, b.qubit(0).t1_us);
    }

    #[test]
    fn per_qubit_values_jitter_around_calibration() {
        let b = Backend::ibm_auckland();
        let cal = b.calibration();
        for q in 0..b.n_qubits() {
            let qp = b.qubit(q);
            assert!(qp.t1_us > 0.5 * cal.t1_us && qp.t1_us < 1.5 * cal.t1_us);
            assert!(qp.x_error > 0.0);
            assert!(qp.readout_error > 0.0 && qp.readout_error < 0.1);
        }
    }

    #[test]
    fn edge_lookup_is_symmetric() {
        let b = Backend::ibmq_guadalupe();
        assert_eq!(b.edge(0, 1), b.edge(1, 0));
    }

    #[test]
    #[should_panic(expected = "not a coupler")]
    fn non_coupler_edge_panics() {
        let b = Backend::ibmq_guadalupe();
        let _ = b.edge(0, 15);
    }

    #[test]
    fn durations_are_sane() {
        let b = Backend::ibmq_toronto();
        assert_eq!(b.pulse_1q_duration_dt(), 160);
        let cx = b.cx_duration_dt(0, 1);
        // 2*256 + 2*160 = 832 dt ~ 185 ns.
        assert_eq!(cx, 832);
        // Toronto readout is 5962.667 ns = ~26832 dt.
        let m = b.measure_duration_dt();
        assert!((f64::from(m) * DT_NS - 5962.667).abs() < 1.0);
    }

    #[test]
    fn ideal_backend_is_noise_free() {
        let b = Backend::ideal(4);
        assert!(b.qubit(0).t1_us.is_infinite());
        assert_eq!(b.qubit(0).x_error, 0.0);
        assert!(b.coupling_map().are_coupled(0, 3));
    }

    #[test]
    fn paper_backends_match_names() {
        let names: Vec<String> = Backend::paper_backends()
            .iter()
            .map(|b| b.name().to_owned())
            .collect();
        assert_eq!(
            names,
            vec![
                "ibm_auckland",
                "ibmq_toronto",
                "ibmq_guadalupe",
                "ibmq_montreal"
            ]
        );
    }

    #[test]
    fn drive_strength_gives_reachable_pi_pulse() {
        // A pi rotation within a 160 dt Gaussian at amplitude <= 1 must be
        // possible: amp = pi / (strength * effective_area) <= 1.
        let b = Backend::ibmq_toronto();
        for q in 0..b.n_qubits() {
            let strength = b.qubit(q).drive_strength;
            // Gaussian with sigma = duration/4 has area ~ sigma * sqrt(2 pi).
            let area = 40.0 * (2.0 * std::f64::consts::PI).sqrt();
            let amp = std::f64::consts::PI / (strength * area);
            assert!(amp < 1.0, "qubit {q} cannot reach a pi pulse");
        }
    }
}
