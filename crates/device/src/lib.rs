#![forbid(unsafe_code)]

//! Superconducting backend models.
//!
//! The paper evaluates on four IBM machines (`ibm_auckland`,
//! `ibmq_toronto`, `ibmq_guadalupe`, `ibmq_montreal`). This crate models
//! them: heavy-hex coupling maps, the calibration data of the paper's
//! Table I (Pauli-X / CNOT / readout error, T1, T2, readout length), qubit
//! frequencies and anharmonicities, drive (Rabi) rates, cross-resonance
//! coupling coefficients, and the `dt = 2/9 ns` sample time that all pulse
//! durations are quoted in.
//!
//! Per-qubit parameters are derived from the backend-average calibration
//! values with deterministic, seeded jitter so that qubit selection and
//! mapping matter, as on real hardware.
//!
//! # Example
//!
//! ```
//! use hgp_device::Backend;
//! let toronto = Backend::ibmq_toronto();
//! assert_eq!(toronto.n_qubits(), 27);
//! assert!(toronto.coupling_map().are_coupled(0, 1));
//! // Table I: toronto has the lowest CNOT error of the four machines.
//! assert!(toronto.calibration().cx_error < Backend::ibm_auckland().calibration().cx_error);
//! ```

pub mod backend;
pub mod calibration;
pub mod coupling;

pub use backend::{Backend, QubitParams, TwoQubitParams};
pub use calibration::Calibration;
pub use coupling::CouplingMap;

/// IBM backend sample time: one `dt` is 2/9 ns.
pub const DT_NS: f64 = 2.0 / 9.0;

/// Duration of a calibrated single-qubit (X / SX) pulse, in `dt`.
pub const PULSE_1Q_DT: u32 = 160;

/// Converts a duration in `dt` units to nanoseconds.
#[inline]
pub fn dt_to_ns(dt: u32) -> f64 {
    f64::from(dt) * DT_NS
}

/// Converts a duration in `dt` units to microseconds.
#[inline]
pub fn dt_to_us(dt: u32) -> f64 {
    dt_to_ns(dt) * 1e-3
}
