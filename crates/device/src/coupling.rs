//! Qubit connectivity graphs (coupling maps).

use serde::{Deserialize, Serialize};

/// Undirected qubit connectivity with an all-pairs distance table.
///
/// The distance table drives SABRE's heuristic cost; it is computed once
/// by breadth-first search at construction time.
///
/// ```
/// use hgp_device::CouplingMap;
/// let line = CouplingMap::line(4);
/// assert!(line.are_coupled(1, 2));
/// assert!(!line.are_coupled(0, 3));
/// assert_eq!(line.distance(0, 3), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CouplingMap {
    n_qubits: usize,
    edges: Vec<(usize, usize)>,
    /// `dist[u * n + v]`, `usize::MAX / 2` when unreachable.
    dist: Vec<usize>,
}

impl CouplingMap {
    /// Builds a coupling map from an undirected edge list.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints or self-loops.
    pub fn new(n_qubits: usize, edges: &[(usize, usize)]) -> Self {
        for &(u, v) in edges {
            assert!(u < n_qubits && v < n_qubits, "edge endpoint out of range");
            assert_ne!(u, v, "self-coupling is not allowed");
        }
        let norm: Vec<(usize, usize)> = edges
            .iter()
            .map(|&(u, v)| if u < v { (u, v) } else { (v, u) })
            .collect();
        let mut map = Self {
            n_qubits,
            edges: norm,
            dist: Vec::new(),
        };
        map.compute_distances();
        map
    }

    /// A 1D chain `0 - 1 - ... - (n-1)`.
    pub fn line(n_qubits: usize) -> Self {
        let edges: Vec<(usize, usize)> = (0..n_qubits.saturating_sub(1))
            .map(|i| (i, i + 1))
            .collect();
        Self::new(n_qubits, &edges)
    }

    /// All-to-all connectivity (ideal device).
    pub fn full(n_qubits: usize) -> Self {
        let mut edges = Vec::new();
        for u in 0..n_qubits {
            for v in (u + 1)..n_qubits {
                edges.push((u, v));
            }
        }
        Self::new(n_qubits, &edges)
    }

    /// A ring `0 - 1 - ... - (n-1) - 0`.
    pub fn ring(n_qubits: usize) -> Self {
        assert!(n_qubits >= 3, "ring needs at least 3 qubits");
        let mut edges: Vec<(usize, usize)> = (0..n_qubits - 1).map(|i| (i, i + 1)).collect();
        edges.push((0, n_qubits - 1));
        Self::new(n_qubits, &edges)
    }

    fn compute_distances(&mut self) {
        let n = self.n_qubits;
        const INF: usize = usize::MAX / 2;
        let mut dist = vec![INF; n * n];
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(u, v) in &self.edges {
            adj[u].push(v);
            adj[v].push(u);
        }
        for s in 0..n {
            dist[s * n + s] = 0;
            let mut queue = std::collections::VecDeque::from([s]);
            while let Some(u) = queue.pop_front() {
                let du = dist[s * n + u];
                for &v in &adj[u] {
                    if dist[s * n + v] == INF {
                        dist[s * n + v] = du + 1;
                        queue.push_back(v);
                    }
                }
            }
        }
        self.dist = dist;
    }

    /// Number of qubits.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The undirected edge list (normalized `u < v`).
    #[inline]
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Whether `u` and `v` share a coupler.
    pub fn are_coupled(&self, u: usize, v: usize) -> bool {
        let (u, v) = if u < v { (u, v) } else { (v, u) };
        self.edges.contains(&(u, v))
    }

    /// Shortest path length in couplers between `u` and `v`.
    ///
    /// Returns a very large value when disconnected.
    #[inline]
    pub fn distance(&self, u: usize, v: usize) -> usize {
        self.dist[u * self.n_qubits + v]
    }

    /// Neighbors of qubit `q`.
    pub fn neighbors(&self, q: usize) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .edges
            .iter()
            .filter_map(|&(u, v)| {
                if u == q {
                    Some(v)
                } else if v == q {
                    Some(u)
                } else {
                    None
                }
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// Whether all qubits are mutually reachable.
    pub fn is_connected(&self) -> bool {
        (0..self.n_qubits).all(|v| self.distance(0, v) < usize::MAX / 2)
    }

    /// The heavy-hex coupling map of IBM's 27-qubit Falcon processors
    /// (`ibmq_toronto`, `ibmq_montreal`, `ibm_auckland`, ...).
    pub fn falcon_27() -> Self {
        Self::new(
            27,
            &[
                (0, 1),
                (1, 2),
                (1, 4),
                (2, 3),
                (3, 5),
                (4, 7),
                (5, 8),
                (6, 7),
                (7, 10),
                (8, 9),
                (8, 11),
                (10, 12),
                (11, 14),
                (12, 13),
                (12, 15),
                (13, 14),
                (14, 16),
                (15, 18),
                (16, 19),
                (17, 18),
                (18, 21),
                (19, 20),
                (19, 22),
                (21, 23),
                (22, 25),
                (23, 24),
                (24, 25),
                (25, 26),
            ],
        )
    }

    /// The heavy-hex coupling map of IBM's 16-qubit Falcon processor
    /// (`ibmq_guadalupe`).
    pub fn falcon_16() -> Self {
        Self::new(
            16,
            &[
                (0, 1),
                (1, 2),
                (1, 4),
                (2, 3),
                (3, 5),
                (4, 7),
                (5, 8),
                (6, 7),
                (7, 10),
                (8, 9),
                (8, 11),
                (10, 12),
                (11, 14),
                (12, 13),
                (12, 15),
                (13, 14),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_distances() {
        let m = CouplingMap::line(5);
        assert_eq!(m.distance(0, 4), 4);
        assert_eq!(m.distance(2, 2), 0);
        assert!(m.is_connected());
        assert_eq!(m.neighbors(2), vec![1, 3]);
    }

    #[test]
    fn ring_wraps_around() {
        let m = CouplingMap::ring(6);
        assert_eq!(m.distance(0, 5), 1);
        assert_eq!(m.distance(0, 3), 3);
    }

    #[test]
    fn full_map_is_distance_one() {
        let m = CouplingMap::full(4);
        for u in 0..4 {
            for v in 0..4 {
                if u != v {
                    assert_eq!(m.distance(u, v), 1);
                }
            }
        }
    }

    #[test]
    fn falcon_27_shape() {
        let m = CouplingMap::falcon_27();
        assert_eq!(m.n_qubits(), 27);
        assert_eq!(m.edges().len(), 28);
        assert!(m.is_connected());
        // Heavy-hex: degrees are at most 3.
        for q in 0..27 {
            assert!(m.neighbors(q).len() <= 3, "qubit {q} over-connected");
        }
    }

    #[test]
    fn falcon_16_shape() {
        let m = CouplingMap::falcon_16();
        assert_eq!(m.n_qubits(), 16);
        assert_eq!(m.edges().len(), 16);
        assert!(m.is_connected());
    }

    #[test]
    fn disconnected_map_detected() {
        let m = CouplingMap::new(4, &[(0, 1), (2, 3)]);
        assert!(!m.is_connected());
        assert!(m.distance(0, 3) > 1_000_000);
    }

    #[test]
    #[should_panic(expected = "self-coupling")]
    fn self_loop_panics() {
        let _ = CouplingMap::new(2, &[(1, 1)]);
    }
}
