//! Backend-level calibration summaries (the paper's Table I).

use serde::{Deserialize, Serialize};

/// Backend-average calibration data, exactly as reported in Table I of the
/// paper.
///
/// The paper's table labels T1/T2 "ms"; the values (~100-170) are plainly
/// microseconds for these Falcon processors, and are stored here as
/// microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// Average Pauli-X (single-qubit) gate error.
    pub x_error: f64,
    /// Average CNOT (two-qubit) gate error.
    pub cx_error: f64,
    /// Average readout (assignment) error.
    pub readout_error: f64,
    /// Average T1 relaxation time, microseconds.
    pub t1_us: f64,
    /// Average T2 dephasing time, microseconds.
    pub t2_us: f64,
    /// Readout pulse length, nanoseconds.
    pub readout_length_ns: f64,
}

impl Calibration {
    /// Table I column for `ibm_auckland`.
    pub fn ibm_auckland() -> Self {
        Self {
            x_error: 2.229e-4,
            cx_error: 1.164e-2,
            readout_error: 0.011,
            t1_us: 166.220,
            t2_us: 145.620,
            readout_length_ns: 757.333,
        }
    }

    /// Table I column for `ibmq_toronto`.
    pub fn ibmq_toronto() -> Self {
        Self {
            x_error: 2.774e-4,
            cx_error: 9.677e-3,
            readout_error: 0.031,
            t1_us: 104.200,
            t2_us: 120.760,
            readout_length_ns: 5962.667,
        }
    }

    /// Table I column for `ibmq_guadalupe`.
    pub fn ibmq_guadalupe() -> Self {
        Self {
            x_error: 3.023e-4,
            cx_error: 1.108e-2,
            readout_error: 0.025,
            t1_us: 102.320,
            t2_us: 102.530,
            readout_length_ns: 7111.111,
        }
    }

    /// Table I column for `ibmq_montreal`.
    pub fn ibmq_montreal() -> Self {
        Self {
            x_error: 2.780e-4,
            cx_error: 1.049e-2,
            readout_error: 0.015,
            t1_us: 123.99,
            t2_us: 95.01,
            readout_length_ns: 5201.778,
        }
    }

    /// An idealized (noise-free) calibration for unit tests.
    pub fn ideal() -> Self {
        Self {
            x_error: 0.0,
            cx_error: 0.0,
            readout_error: 0.0,
            t1_us: f64::INFINITY,
            t2_us: f64::INFINITY,
            readout_length_ns: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_orderings_hold() {
        // The paper's analysis hinges on these orderings:
        // toronto has the lowest CNOT error...
        let (a, t, g, m) = (
            Calibration::ibm_auckland(),
            Calibration::ibmq_toronto(),
            Calibration::ibmq_guadalupe(),
            Calibration::ibmq_montreal(),
        );
        assert!(t.cx_error < a.cx_error.min(g.cx_error).min(m.cx_error));
        // ...and auckland the lowest readout error.
        assert!(a.readout_error < t.readout_error.min(g.readout_error).min(m.readout_error));
    }

    #[test]
    fn t1_t2_are_physical() {
        for c in [
            Calibration::ibm_auckland(),
            Calibration::ibmq_toronto(),
            Calibration::ibmq_guadalupe(),
            Calibration::ibmq_montreal(),
        ] {
            assert!(c.t1_us > 0.0 && c.t2_us > 0.0);
            // T2 <= 2*T1 always holds physically.
            assert!(c.t2_us <= 2.0 * c.t1_us);
        }
    }

    #[test]
    fn ideal_calibration_is_noise_free() {
        let c = Calibration::ideal();
        assert_eq!(c.x_error, 0.0);
        assert!(c.t1_us.is_infinite());
    }
}
