//! Service throughput and latency accounting.

use std::fmt;

use hgp_obs::profile::{OpProfileSnapshot, ReplayOpKind};
use hgp_obs::{Histogram, PromText};

use crate::job::{JobSpec, Priority};

/// Cumulative counters over a service's lifetime.
///
/// `wall_ns` accumulates end-to-end [`crate::Service::run_batch`] time
/// (compile + dispatch + execution + collection), while the per-job
/// worker time is split into stages — `bind_ns` (parameter
/// substitution into the cached shape) and `exec_ns` (the simulation
/// itself) — next to the per-shape `compile_ns` and the admission-time
/// `validate_ns`. The split is what tells a cache-hit-heavy trajectory
/// batch (large `exec_ns`, tiny `bind_ns`, no `compile_ns`) apart from
/// an actual cache-miss storm, which aggregate latency alone conflates.
/// With `workers > 1` on a multi-core host, `bind_ns + exec_ns`
/// exceeding `wall_ns` is the parallel speedup made visible.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeMetrics {
    /// Jobs finished.
    pub jobs_completed: u64,
    /// Jobs answered with a typed [`crate::JobError`] (a subset of
    /// `jobs_completed`; failed jobs still consume stream positions).
    pub jobs_failed: u64,
    /// `run_batch` calls served.
    pub batches: u64,
    /// Shape groups dispatched (one per distinct structural key per
    /// batch).
    pub shape_groups: u64,
    /// Compiled-program cache hits (shape lookups).
    pub cache_hits: u64,
    /// Compiled-program cache misses (each one paid a compilation).
    pub cache_misses: u64,
    /// Time spent validating requests at admission (per job).
    pub validate_ns: u64,
    /// Time spent compiling shapes (per cache miss, not per job).
    pub compile_ns: u64,
    /// Summed per-job parameter-binding time across workers: program
    /// binds, and for trajectory jobs the schedule-template
    /// substitution.
    pub bind_ns: u64,
    /// Summed per-job execution time across workers (binding excluded).
    pub exec_ns: u64,
    /// Summed end-to-end batch wall time. [`crate::Service::run_batch`]
    /// accumulates per call; daemon snapshots report uptime here, so
    /// the derived throughputs read as lifetime rates either way.
    pub wall_ns: u64,
    /// Jobs waiting in the daemon's submission queue when this snapshot
    /// was taken (a gauge, not a counter; always 0 on the batch path).
    pub queue_depth: u64,
    /// Time admitted jobs spent queued before a worker picked them up —
    /// the stage upstream of `validate`/`compile`/`bind`/`exec` that
    /// only the daemon has. Large `queue_ns` with small worker stages
    /// means the pool, not the engine, is the bottleneck.
    pub queue_ns: u64,
    /// Daemon jobs admitted per priority class, indexed by
    /// [`crate::Priority::index`] (interactive/batch/background).
    pub admitted: [u64; 3],
    /// Daemon jobs refused with [`crate::Rejected::QueueFull`], per
    /// priority class.
    pub rejected_full: [u64; 3],
    /// Daemon jobs refused with [`crate::Rejected::TooLarge`], per
    /// priority class.
    pub rejected_large: [u64; 3],
    /// Stochastic trajectory shots finished by successful jobs (the
    /// four trajectory job kinds report their shot or trajectory count;
    /// other kinds contribute zero). This is the work unit the batched
    /// replay engine optimizes, so shots/second — not jobs/second — is
    /// the number to watch when tuning trajectory serving.
    pub shots_executed: u64,
    /// Per-job queue-wait latency histogram (daemon only; the batch
    /// path has no queue). Same samples `queue_ns` sums.
    pub queue_hist: Histogram,
    /// Per-job validation latency histogram.
    pub validate_hist: Histogram,
    /// Per-shape compile latency histogram (one sample per cache miss,
    /// like `compile_ns`).
    pub compile_hist: Histogram,
    /// Per-job parameter-binding latency histogram.
    pub bind_hist: Histogram,
    /// Per-job execution latency histogram. The `_hist` fields are what
    /// tell a tail stall apart from a uniformly slow stage — the means
    /// above cannot.
    pub exec_hist: Histogram,
    /// Per-priority-class worker latency (bind + execute) histograms,
    /// indexed by [`crate::Priority::index`]; daemon only.
    pub priority_hist: [Histogram; 3],
    /// Per-job-kind execution latency histograms, indexed by
    /// [`crate::JobSpec::kind_index`].
    pub kind_hist: [Histogram; JobSpec::KIND_COUNT],
}

impl ServeMetrics {
    /// End-to-end throughput over the service's lifetime, jobs/second.
    pub fn throughput_jobs_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.jobs_completed as f64 * 1e9 / self.wall_ns as f64
        }
    }

    /// Mean per-job worker latency (bind + execute), nanoseconds.
    pub fn mean_job_latency_ns(&self) -> f64 {
        if self.jobs_completed == 0 {
            0.0
        } else {
            (self.bind_ns + self.exec_ns) as f64 / self.jobs_completed as f64
        }
    }

    /// Mean per-job parameter-binding latency, nanoseconds.
    pub fn mean_bind_latency_ns(&self) -> f64 {
        if self.jobs_completed == 0 {
            0.0
        } else {
            self.bind_ns as f64 / self.jobs_completed as f64
        }
    }

    /// Trajectory shot throughput over the service's lifetime,
    /// shots/second.
    ///
    /// `wall_ns == 0` is guarded explicitly and yields `0.0`: a
    /// fresh service (or a daemon snapshot taken before the uptime
    /// clock has advanced a nanosecond) has no rate yet, and the guard
    /// keeps `shots_executed > 0` with zero wall from producing an
    /// infinite rate.
    pub fn shots_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.shots_executed as f64 * 1e9 / self.wall_ns as f64
        }
    }

    /// Mean worker execution time per trajectory shot, nanoseconds.
    ///
    /// `exec_ns` sums over every job kind, so read this on
    /// trajectory-dominated workloads (where non-trajectory execution
    /// time is negligible) — the serving benches and the replay
    /// acceptance bar both use it that way.
    pub fn mean_shot_exec_ns(&self) -> f64 {
        if self.shots_executed == 0 {
            0.0
        } else {
            self.exec_ns as f64 / self.shots_executed as f64
        }
    }

    /// Total daemon admissions across priority classes.
    pub fn admitted_total(&self) -> u64 {
        self.admitted.iter().sum()
    }

    /// Total daemon rejections (queue-full plus too-large) across
    /// priority classes.
    pub fn rejected_total(&self) -> u64 {
        self.rejected_full.iter().sum::<u64>() + self.rejected_large.iter().sum::<u64>()
    }

    /// Mean time a job waited in the daemon queue before a worker
    /// picked it up, nanoseconds.
    ///
    /// This mean is per **completed** job, not per admitted job:
    /// `queue_ns` only accumulates when a worker dequeues a job, so
    /// jobs still sitting in the queue contribute to neither the
    /// numerator nor the denominator. Under heavy backlog the true
    /// admitted-job wait is therefore higher than this figure —
    /// `queue_depth` is the companion gauge that exposes the backlog
    /// itself.
    pub fn mean_queue_wait_ns(&self) -> f64 {
        if self.jobs_completed == 0 {
            0.0
        } else {
            self.queue_ns as f64 / self.jobs_completed as f64
        }
    }

    /// Fraction of shape lookups served from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Records one completed job's worker-stage samples into the stage,
    /// priority, and kind histograms (and a compile sample when the job
    /// paid a cache miss). `queue_ns` is `None` on the batch path,
    /// which has no queue stage.
    pub fn record_job_stages(
        &mut self,
        queue_ns: Option<u64>,
        bind_ns: u64,
        exec_ns: u64,
        priority: Priority,
        kind_index: usize,
    ) {
        if let Some(q) = queue_ns {
            self.queue_hist.record(q);
        }
        self.bind_hist.record(bind_ns);
        self.exec_hist.record(exec_ns);
        self.priority_hist[priority.index()].record(bind_ns + exec_ns);
        self.kind_hist[kind_index].record(exec_ns);
    }

    /// Renders the snapshot in the Prometheus text exposition format:
    /// the counters above as `counter`/`gauge` families and every
    /// histogram as cumulative `_bucket`/`_sum`/`_count` series, with
    /// priority classes, job kinds, and replay op kinds as labels. Pass
    /// the daemon's engine-profile snapshot to append the per-op-kind
    /// replay breakdown (`hgp_replay_op_ns`/`hgp_replay_op_calls`).
    pub fn render_promtext(&self, profile: Option<&OpProfileSnapshot>) -> String {
        let mut p = PromText::new();
        p.counter("hgp_jobs_completed", "Jobs finished.", self.jobs_completed);
        p.counter(
            "hgp_jobs_failed",
            "Jobs answered with a typed error.",
            self.jobs_failed,
        );
        p.counter("hgp_batches", "run_batch calls served.", self.batches);
        p.counter(
            "hgp_shape_groups",
            "Shape groups dispatched.",
            self.shape_groups,
        );
        p.counter(
            "hgp_cache_hits",
            "Compiled-program cache hits.",
            self.cache_hits,
        );
        p.counter(
            "hgp_cache_misses",
            "Compiled-program cache misses.",
            self.cache_misses,
        );
        p.counter(
            "hgp_shots_executed",
            "Trajectory shots finished by successful jobs.",
            self.shots_executed,
        );
        p.counter(
            "hgp_wall_ns",
            "Batch wall time (batch path) or uptime (daemon), ns.",
            self.wall_ns,
        );
        p.gauge(
            "hgp_queue_depth",
            "Jobs waiting in the submission queue.",
            self.queue_depth as f64,
        );
        for pr in Priority::ALL {
            let labels = [("priority", pr.to_string())];
            let labels: Vec<(&str, &str)> = labels.iter().map(|(k, v)| (*k, v.as_str())).collect();
            p.counter_with(
                "hgp_admitted",
                "Daemon admissions per priority class.",
                &labels,
                self.admitted[pr.index()],
            );
            p.counter_with(
                "hgp_rejected_full",
                "Queue-full rejections per priority class.",
                &labels,
                self.rejected_full[pr.index()],
            );
            p.counter_with(
                "hgp_rejected_large",
                "Too-large rejections per priority class.",
                &labels,
                self.rejected_large[pr.index()],
            );
        }
        let stages: [(&str, &Histogram); 5] = [
            ("queue", &self.queue_hist),
            ("validate", &self.validate_hist),
            ("compile", &self.compile_hist),
            ("bind", &self.bind_hist),
            ("exec", &self.exec_hist),
        ];
        for (stage, hist) in stages {
            p.histogram(
                "hgp_stage_ns",
                "Per-stage latency (ns).",
                &[("stage", stage)],
                hist,
            );
        }
        for pr in Priority::ALL {
            let name = pr.to_string();
            p.histogram(
                "hgp_priority_job_ns",
                "Worker latency (bind + exec) per priority class (ns).",
                &[("priority", name.as_str())],
                &self.priority_hist[pr.index()],
            );
        }
        for (i, name) in JobSpec::KIND_NAMES.iter().enumerate() {
            p.histogram(
                "hgp_kind_exec_ns",
                "Execution latency per job kind (ns).",
                &[("kind", name)],
                &self.kind_hist[i],
            );
        }
        if let Some(snap) = profile {
            for kind in ReplayOpKind::ALL {
                let labels = [("op", kind.name())];
                p.counter_with(
                    "hgp_replay_op_calls",
                    "Profiled replay tape ops per kind.",
                    &labels,
                    snap.calls[kind.index()],
                );
            }
            for kind in ReplayOpKind::ALL {
                let labels = [("op", kind.name())];
                p.counter_with(
                    "hgp_replay_op_ns",
                    "Profiled replay wall time per op kind (ns).",
                    &labels,
                    snap.ns[kind.index()],
                );
            }
        }
        p.finish()
    }
}

impl fmt::Display for ServeMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} jobs ({} failed) in {} batches | {:.0} jobs/s | mean latency {:.1} us \
             (bind {:.1} us) | cache {}/{} hits ({:.0}%) | stages: queue {:.2} ms, \
             validate {:.2} ms, compile {:.2} ms, bind {:.2} ms, execute {:.2} ms | \
             exec p50/p99 {:.1}/{:.1} us | \
             {} shots, {:.0} shots/s, {:.2} us/shot exec | queue depth {} | \
             admitted i/b/g {}/{}/{} | rejected {} (full {}, too-large {})",
            self.jobs_completed,
            self.jobs_failed,
            self.batches,
            self.throughput_jobs_per_sec(),
            self.mean_job_latency_ns() / 1e3,
            self.mean_bind_latency_ns() / 1e3,
            self.cache_hits,
            self.cache_hits + self.cache_misses,
            100.0 * self.cache_hit_rate(),
            self.queue_ns as f64 / 1e6,
            self.validate_ns as f64 / 1e6,
            self.compile_ns as f64 / 1e6,
            self.bind_ns as f64 / 1e6,
            self.exec_ns as f64 / 1e6,
            self.exec_hist.p50() as f64 / 1e3,
            self.exec_hist.p99() as f64 / 1e3,
            self.shots_executed,
            self.shots_per_sec(),
            self.mean_shot_exec_ns() / 1e3,
            self.queue_depth,
            self.admitted[0],
            self.admitted[1],
            self.admitted[2],
            self.rejected_total(),
            self.rejected_full.iter().sum::<u64>(),
            self.rejected_large.iter().sum::<u64>(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let m = ServeMetrics {
            jobs_completed: 100,
            jobs_failed: 0,
            batches: 2,
            shape_groups: 3,
            cache_hits: 2,
            cache_misses: 1,
            validate_ns: 1_000_000,
            compile_ns: 5_000_000,
            bind_ns: 50_000_000,
            exec_ns: 150_000_000,
            wall_ns: 1_000_000_000,
            shots_executed: 25_000,
            queue_depth: 4,
            queue_ns: 200_000_000,
            admitted: [10, 80, 10],
            rejected_full: [0, 3, 1],
            rejected_large: [1, 0, 0],
            ..ServeMetrics::default()
        };
        assert!((m.throughput_jobs_per_sec() - 100.0).abs() < 1e-9);
        // Mean latency covers both worker stages: bind + execute.
        assert!((m.mean_job_latency_ns() - 2_000_000.0).abs() < 1e-9);
        assert!((m.mean_bind_latency_ns() - 500_000.0).abs() < 1e-9);
        assert!((m.cache_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.shots_per_sec() - 25_000.0).abs() < 1e-9);
        // 150 ms of execution over 25k shots: 6 us per shot.
        assert!((m.mean_shot_exec_ns() - 6_000.0).abs() < 1e-9);
        assert_eq!(m.admitted_total(), 100);
        assert_eq!(m.rejected_total(), 5);
        // 200 ms queued across 100 jobs: 2 ms mean queue wait.
        assert!((m.mean_queue_wait_ns() - 2_000_000.0).abs() < 1e-9);
        assert!(!m.to_string().is_empty());
    }

    #[test]
    fn zero_division_is_safe() {
        let m = ServeMetrics::default();
        assert_eq!(m.throughput_jobs_per_sec(), 0.0);
        assert_eq!(m.mean_job_latency_ns(), 0.0);
        assert_eq!(m.mean_bind_latency_ns(), 0.0);
        assert_eq!(m.cache_hit_rate(), 0.0);
        assert_eq!(m.shots_per_sec(), 0.0);
        assert_eq!(m.mean_shot_exec_ns(), 0.0);
        assert_eq!(m.mean_queue_wait_ns(), 0.0);
    }

    #[test]
    fn shots_per_sec_guards_zero_wall_explicitly() {
        // Executed shots with no wall time yet (a snapshot taken
        // before the clock advanced) must read as "no rate", not inf.
        let m = ServeMetrics {
            shots_executed: 10_000,
            wall_ns: 0,
            ..ServeMetrics::default()
        };
        assert_eq!(m.shots_per_sec(), 0.0);
        assert!(m.shots_per_sec().is_finite());
    }

    #[test]
    fn queue_wait_mean_is_per_completed_job() {
        // Five jobs admitted, two completed: the denominator is the
        // completed count — jobs still queued don't dilute the mean.
        let m = ServeMetrics {
            jobs_completed: 2,
            admitted: [5, 0, 0],
            queue_ns: 4_000_000,
            queue_depth: 3,
            ..ServeMetrics::default()
        };
        assert!((m.mean_queue_wait_ns() - 2_000_000.0).abs() < 1e-9);
    }

    #[test]
    fn stage_recording_feeds_all_histograms() {
        let mut m = ServeMetrics::default();
        m.validate_hist.record(500);
        m.compile_hist.record(80_000);
        m.record_job_stages(Some(1_000), 2_000, 30_000, Priority::Interactive, 4);
        m.record_job_stages(None, 1_000, 10_000, Priority::Batch, 2);
        assert_eq!(m.queue_hist.count(), 1);
        assert_eq!(m.bind_hist.count(), 2);
        assert_eq!(m.exec_hist.count(), 2);
        assert_eq!(m.priority_hist[0].count(), 1);
        assert_eq!(m.priority_hist[1].count(), 1);
        assert_eq!(m.priority_hist[2].count(), 0);
        assert_eq!(m.kind_hist[4].count(), 1);
        assert_eq!(m.kind_hist[2].count(), 1);
        assert_eq!(m.priority_hist[0].sum(), 32_000);
    }

    #[test]
    fn promtext_rendering_covers_counters_and_histograms() {
        let mut m = ServeMetrics {
            jobs_completed: 3,
            shots_executed: 768,
            admitted: [1, 2, 0],
            ..ServeMetrics::default()
        };
        m.record_job_stages(Some(900), 2_000, 30_000, Priority::Batch, 4);
        let text = m.render_promtext(None);
        assert!(text.contains("# TYPE hgp_jobs_completed counter"));
        assert!(text.contains("hgp_admitted{priority=\"batch\"} 2"));
        assert!(text.contains("# TYPE hgp_stage_ns histogram"));
        assert!(text.contains("hgp_stage_ns_count{stage=\"exec\"} 1"));
        assert!(text.contains("hgp_kind_exec_ns_sum{kind=\"trajectory_counts\"} 30000"));
        assert!(!text.contains("hgp_replay_op_ns"));

        let mut snap = OpProfileSnapshot::default();
        snap.calls[ReplayOpKind::DiagRun.index()] = 7;
        snap.ns[ReplayOpKind::DiagRun.index()] = 12345;
        let with_profile = m.render_promtext(Some(&snap));
        assert!(with_profile.contains("hgp_replay_op_calls{op=\"diag_run\"} 7"));
        assert!(with_profile.contains("hgp_replay_op_ns{op=\"diag_run\"} 12345"));
    }
}
