//! Service throughput and latency accounting.

use std::fmt;

/// Cumulative counters over a service's lifetime.
///
/// `wall_ns` accumulates end-to-end [`crate::Service::run_batch`] time
/// (compile + dispatch + execution + collection), while the per-job
/// worker time is split into stages — `bind_ns` (parameter
/// substitution into the cached shape) and `exec_ns` (the simulation
/// itself) — next to the per-shape `compile_ns` and the admission-time
/// `validate_ns`. The split is what tells a cache-hit-heavy trajectory
/// batch (large `exec_ns`, tiny `bind_ns`, no `compile_ns`) apart from
/// an actual cache-miss storm, which aggregate latency alone conflates.
/// With `workers > 1` on a multi-core host, `bind_ns + exec_ns`
/// exceeding `wall_ns` is the parallel speedup made visible.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeMetrics {
    /// Jobs finished.
    pub jobs_completed: u64,
    /// Jobs answered with a typed [`crate::JobError`] (a subset of
    /// `jobs_completed`; failed jobs still consume stream positions).
    pub jobs_failed: u64,
    /// `run_batch` calls served.
    pub batches: u64,
    /// Shape groups dispatched (one per distinct structural key per
    /// batch).
    pub shape_groups: u64,
    /// Compiled-program cache hits (shape lookups).
    pub cache_hits: u64,
    /// Compiled-program cache misses (each one paid a compilation).
    pub cache_misses: u64,
    /// Time spent validating requests at admission (per job).
    pub validate_ns: u64,
    /// Time spent compiling shapes (per cache miss, not per job).
    pub compile_ns: u64,
    /// Summed per-job parameter-binding time across workers: program
    /// binds, and for trajectory jobs the schedule-template
    /// substitution.
    pub bind_ns: u64,
    /// Summed per-job execution time across workers (binding excluded).
    pub exec_ns: u64,
    /// Summed end-to-end batch wall time. [`crate::Service::run_batch`]
    /// accumulates per call; daemon snapshots report uptime here, so
    /// the derived throughputs read as lifetime rates either way.
    pub wall_ns: u64,
    /// Jobs waiting in the daemon's submission queue when this snapshot
    /// was taken (a gauge, not a counter; always 0 on the batch path).
    pub queue_depth: u64,
    /// Time admitted jobs spent queued before a worker picked them up —
    /// the stage upstream of `validate`/`compile`/`bind`/`exec` that
    /// only the daemon has. Large `queue_ns` with small worker stages
    /// means the pool, not the engine, is the bottleneck.
    pub queue_ns: u64,
    /// Daemon jobs admitted per priority class, indexed by
    /// [`crate::Priority::index`] (interactive/batch/background).
    pub admitted: [u64; 3],
    /// Daemon jobs refused with [`crate::Rejected::QueueFull`], per
    /// priority class.
    pub rejected_full: [u64; 3],
    /// Daemon jobs refused with [`crate::Rejected::TooLarge`], per
    /// priority class.
    pub rejected_large: [u64; 3],
    /// Stochastic trajectory shots finished by successful jobs (the
    /// four trajectory job kinds report their shot or trajectory count;
    /// other kinds contribute zero). This is the work unit the batched
    /// replay engine optimizes, so shots/second — not jobs/second — is
    /// the number to watch when tuning trajectory serving.
    pub shots_executed: u64,
}

impl ServeMetrics {
    /// End-to-end throughput over the service's lifetime, jobs/second.
    pub fn throughput_jobs_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.jobs_completed as f64 * 1e9 / self.wall_ns as f64
        }
    }

    /// Mean per-job worker latency (bind + execute), nanoseconds.
    pub fn mean_job_latency_ns(&self) -> f64 {
        if self.jobs_completed == 0 {
            0.0
        } else {
            (self.bind_ns + self.exec_ns) as f64 / self.jobs_completed as f64
        }
    }

    /// Mean per-job parameter-binding latency, nanoseconds.
    pub fn mean_bind_latency_ns(&self) -> f64 {
        if self.jobs_completed == 0 {
            0.0
        } else {
            self.bind_ns as f64 / self.jobs_completed as f64
        }
    }

    /// Trajectory shot throughput over the service's lifetime,
    /// shots/second.
    pub fn shots_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.shots_executed as f64 * 1e9 / self.wall_ns as f64
        }
    }

    /// Mean worker execution time per trajectory shot, nanoseconds.
    ///
    /// `exec_ns` sums over every job kind, so read this on
    /// trajectory-dominated workloads (where non-trajectory execution
    /// time is negligible) — the serving benches and the replay
    /// acceptance bar both use it that way.
    pub fn mean_shot_exec_ns(&self) -> f64 {
        if self.shots_executed == 0 {
            0.0
        } else {
            self.exec_ns as f64 / self.shots_executed as f64
        }
    }

    /// Total daemon admissions across priority classes.
    pub fn admitted_total(&self) -> u64 {
        self.admitted.iter().sum()
    }

    /// Total daemon rejections (queue-full plus too-large) across
    /// priority classes.
    pub fn rejected_total(&self) -> u64 {
        self.rejected_full.iter().sum::<u64>() + self.rejected_large.iter().sum::<u64>()
    }

    /// Mean time an admitted job waited in the daemon queue before a
    /// worker picked it up, nanoseconds.
    pub fn mean_queue_wait_ns(&self) -> f64 {
        if self.jobs_completed == 0 {
            0.0
        } else {
            self.queue_ns as f64 / self.jobs_completed as f64
        }
    }

    /// Fraction of shape lookups served from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

impl fmt::Display for ServeMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} jobs ({} failed) in {} batches | {:.0} jobs/s | mean latency {:.1} us \
             (bind {:.1} us) | cache {}/{} hits ({:.0}%) | stages: queue {:.2} ms, \
             validate {:.2} ms, compile {:.2} ms, bind {:.2} ms, execute {:.2} ms | \
             {} shots, {:.0} shots/s, {:.2} us/shot exec | queue depth {} | \
             admitted i/b/g {}/{}/{} | rejected {} (full {}, too-large {})",
            self.jobs_completed,
            self.jobs_failed,
            self.batches,
            self.throughput_jobs_per_sec(),
            self.mean_job_latency_ns() / 1e3,
            self.mean_bind_latency_ns() / 1e3,
            self.cache_hits,
            self.cache_hits + self.cache_misses,
            100.0 * self.cache_hit_rate(),
            self.queue_ns as f64 / 1e6,
            self.validate_ns as f64 / 1e6,
            self.compile_ns as f64 / 1e6,
            self.bind_ns as f64 / 1e6,
            self.exec_ns as f64 / 1e6,
            self.shots_executed,
            self.shots_per_sec(),
            self.mean_shot_exec_ns() / 1e3,
            self.queue_depth,
            self.admitted[0],
            self.admitted[1],
            self.admitted[2],
            self.rejected_total(),
            self.rejected_full.iter().sum::<u64>(),
            self.rejected_large.iter().sum::<u64>(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let m = ServeMetrics {
            jobs_completed: 100,
            jobs_failed: 0,
            batches: 2,
            shape_groups: 3,
            cache_hits: 2,
            cache_misses: 1,
            validate_ns: 1_000_000,
            compile_ns: 5_000_000,
            bind_ns: 50_000_000,
            exec_ns: 150_000_000,
            wall_ns: 1_000_000_000,
            shots_executed: 25_000,
            queue_depth: 4,
            queue_ns: 200_000_000,
            admitted: [10, 80, 10],
            rejected_full: [0, 3, 1],
            rejected_large: [1, 0, 0],
        };
        assert!((m.throughput_jobs_per_sec() - 100.0).abs() < 1e-9);
        // Mean latency covers both worker stages: bind + execute.
        assert!((m.mean_job_latency_ns() - 2_000_000.0).abs() < 1e-9);
        assert!((m.mean_bind_latency_ns() - 500_000.0).abs() < 1e-9);
        assert!((m.cache_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.shots_per_sec() - 25_000.0).abs() < 1e-9);
        // 150 ms of execution over 25k shots: 6 us per shot.
        assert!((m.mean_shot_exec_ns() - 6_000.0).abs() < 1e-9);
        assert_eq!(m.admitted_total(), 100);
        assert_eq!(m.rejected_total(), 5);
        // 200 ms queued across 100 jobs: 2 ms mean queue wait.
        assert!((m.mean_queue_wait_ns() - 2_000_000.0).abs() < 1e-9);
        assert!(!m.to_string().is_empty());
    }

    #[test]
    fn zero_division_is_safe() {
        let m = ServeMetrics::default();
        assert_eq!(m.throughput_jobs_per_sec(), 0.0);
        assert_eq!(m.mean_job_latency_ns(), 0.0);
        assert_eq!(m.mean_bind_latency_ns(), 0.0);
        assert_eq!(m.cache_hit_rate(), 0.0);
        assert_eq!(m.shots_per_sec(), 0.0);
        assert_eq!(m.mean_shot_exec_ns(), 0.0);
        assert_eq!(m.mean_queue_wait_ns(), 0.0);
    }
}
