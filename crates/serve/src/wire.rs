//! The daemon's TCP front end: line-delimited JSON envelopes.
//!
//! One connection, two interleaved directions. The client writes
//! [`WireRequest`] envelopes, one JSON object per `\n`-terminated line;
//! the server answers with [`WireResponse`] envelopes on the same
//! framing, reusing the canonical [`crate::json`] codec for every
//! payload (requests, results, metrics), so the socket format *is* the
//! documented JSON format.
//!
//! # Protocol
//!
//! - `{"op":"ping"}` → `{"op":"pong"}`; `{"op":"metrics"}` → a
//!   [`ServeMetrics`] snapshot.
//! - `{"op":"metrics_snapshot"}` → metrics **plus** the per-op-kind
//!   engine profile; `{"op":"trace_tail","limit":N}` → the flight
//!   recorder's last N per-job span traces, oldest first.
//! - `{"op":"submit",...}` / `{"op":"submit_group",...}` runs daemon
//!   admission. The **acknowledgement comes first**: an `accepted`
//!   envelope carrying the admitted [`JobId`]s (the submission's
//!   id/seed-stream positions) or a `rejected` envelope carrying the
//!   typed [`Rejected`] reason. After the ack, each job's `result`
//!   envelope arrives **as it completes** — results of *different*
//!   submissions on one connection may interleave; correlate by job id.
//! - A malformed line gets an `error` envelope; the connection stays up.
//!   Lines above [`MAX_LINE_BYTES`] close the connection (hostile-input
//!   bound).
//!
//! [`WireClient`] speaks the client side, buffering interleaved result
//! envelopes so `submit → ack` reads stay simple. The `serve_daemon`
//! example drives a full mixed-priority session over a loopback socket.

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use hgp_obs::{JobTrace, OpProfileSnapshot};

use crate::daemon::Daemon;
use crate::job::{JobId, JobRequest, JobResult, Priority, Rejected};
use crate::json::{obj, JsonCodec, Value};
use crate::metrics::ServeMetrics;

/// Hard per-line bound (8 MiB): a connection that streams an unframed
/// or hostile payload is closed instead of buffering without limit.
pub const MAX_LINE_BYTES: usize = 8 << 20;

/// A client-to-server envelope.
#[derive(Debug, Clone, PartialEq)]
pub enum WireRequest {
    /// Submit one job under a priority class.
    Submit {
        /// The job.
        request: JobRequest,
        /// Its scheduling class.
        priority: Priority,
    },
    /// Submit a job group atomically under one priority class.
    SubmitGroup {
        /// The jobs, admitted all-or-nothing.
        requests: Vec<JobRequest>,
        /// The group's scheduling class.
        priority: Priority,
    },
    /// Request a [`ServeMetrics`] snapshot.
    Metrics,
    /// Request the observability snapshot: [`ServeMetrics`] plus the
    /// cumulative per-op-kind engine profile
    /// ([`hgp_obs::OpProfileSnapshot`], all-zero when profiling is
    /// disabled).
    MetricsSnapshot,
    /// Request the last `limit` traces from the daemon's flight
    /// recorder, oldest first.
    TraceTail {
        /// Maximum traces to return.
        limit: usize,
    },
    /// Liveness probe.
    Ping,
}

/// A server-to-client envelope.
#[derive(Debug, Clone, PartialEq)]
pub enum WireResponse {
    /// A submission was admitted; the ids are its stream positions, in
    /// submission order.
    Accepted {
        /// Admitted job ids.
        ids: Vec<JobId>,
    },
    /// A submission was refused at admission; nothing was consumed.
    Rejected {
        /// The typed reason.
        rejected: Rejected,
    },
    /// One completed job, delivered in completion order.
    Result {
        /// The job's result (output or typed error).
        result: JobResult,
    },
    /// A metrics snapshot.
    Metrics {
        /// Daemon-lifetime counters; `wall_ns` is uptime.
        metrics: ServeMetrics,
    },
    /// Answer to [`WireRequest::MetricsSnapshot`].
    MetricsSnapshot {
        /// Daemon-lifetime counters and histograms.
        metrics: ServeMetrics,
        /// Cumulative per-op-kind engine profile; all-zero when the
        /// daemon runs unprofiled.
        profile: OpProfileSnapshot,
    },
    /// Answer to [`WireRequest::TraceTail`].
    TraceTail {
        /// The recorder's last traces, oldest first.
        traces: Vec<JobTrace>,
    },
    /// Answer to [`WireRequest::Ping`].
    Pong,
    /// A protocol-level failure (malformed line, unrepresentable
    /// result); the connection stays open.
    Error {
        /// Human-readable cause.
        message: String,
    },
}

impl JsonCodec for WireRequest {
    fn to_json(&self) -> Value {
        match self {
            WireRequest::Submit { request, priority } => obj(vec![
                ("op", Value::Str("submit".into())),
                ("request", request.to_json()),
                ("priority", priority.to_json()),
            ]),
            WireRequest::SubmitGroup { requests, priority } => obj(vec![
                ("op", Value::Str("submit_group".into())),
                (
                    "requests",
                    Value::Arr(requests.iter().map(JsonCodec::to_json).collect()),
                ),
                ("priority", priority.to_json()),
            ]),
            WireRequest::Metrics => obj(vec![("op", Value::Str("metrics".into()))]),
            WireRequest::MetricsSnapshot => {
                obj(vec![("op", Value::Str("metrics_snapshot".into()))])
            }
            WireRequest::TraceTail { limit } => obj(vec![
                ("op", Value::Str("trace_tail".into())),
                ("limit", Value::from_usize(*limit)),
            ]),
            WireRequest::Ping => obj(vec![("op", Value::Str("ping".into()))]),
        }
    }

    fn from_json(value: &Value) -> Result<Self, String> {
        match value.get("op")?.as_str()? {
            "submit" => Ok(WireRequest::Submit {
                request: JobRequest::from_json(value.get("request")?)?,
                priority: Priority::from_json(value.get("priority")?)?,
            }),
            "submit_group" => Ok(WireRequest::SubmitGroup {
                requests: value
                    .get("requests")?
                    .as_arr()?
                    .iter()
                    .map(JobRequest::from_json)
                    .collect::<Result<_, _>>()?,
                priority: Priority::from_json(value.get("priority")?)?,
            }),
            "metrics" => Ok(WireRequest::Metrics),
            "metrics_snapshot" => Ok(WireRequest::MetricsSnapshot),
            "trace_tail" => Ok(WireRequest::TraceTail {
                limit: value.get("limit")?.as_usize()?,
            }),
            "ping" => Ok(WireRequest::Ping),
            other => Err(format!("unknown request op {other:?}")),
        }
    }
}

impl JsonCodec for WireResponse {
    fn to_json(&self) -> Value {
        match self {
            WireResponse::Accepted { ids } => obj(vec![
                ("op", Value::Str("accepted".into())),
                (
                    "ids",
                    Value::Arr(ids.iter().map(JsonCodec::to_json).collect()),
                ),
            ]),
            WireResponse::Rejected { rejected } => obj(vec![
                ("op", Value::Str("rejected".into())),
                ("rejected", rejected.to_json()),
            ]),
            WireResponse::Result { result } => obj(vec![
                ("op", Value::Str("result".into())),
                ("result", result.to_json()),
            ]),
            WireResponse::Metrics { metrics } => obj(vec![
                ("op", Value::Str("metrics".into())),
                ("metrics", metrics.to_json()),
            ]),
            WireResponse::MetricsSnapshot { metrics, profile } => obj(vec![
                ("op", Value::Str("metrics_snapshot".into())),
                ("metrics", metrics.to_json()),
                ("profile", profile.to_json()),
            ]),
            WireResponse::TraceTail { traces } => obj(vec![
                ("op", Value::Str("trace_tail".into())),
                (
                    "traces",
                    Value::Arr(traces.iter().map(JsonCodec::to_json).collect()),
                ),
            ]),
            WireResponse::Pong => obj(vec![("op", Value::Str("pong".into()))]),
            WireResponse::Error { message } => obj(vec![
                ("op", Value::Str("error".into())),
                ("message", Value::Str(message.clone())),
            ]),
        }
    }

    fn from_json(value: &Value) -> Result<Self, String> {
        match value.get("op")?.as_str()? {
            "accepted" => Ok(WireResponse::Accepted {
                ids: value
                    .get("ids")?
                    .as_arr()?
                    .iter()
                    .map(JobId::from_json)
                    .collect::<Result<_, _>>()?,
            }),
            "rejected" => Ok(WireResponse::Rejected {
                rejected: Rejected::from_json(value.get("rejected")?)?,
            }),
            "result" => Ok(WireResponse::Result {
                result: JobResult::from_json(value.get("result")?)?,
            }),
            "metrics" => Ok(WireResponse::Metrics {
                metrics: ServeMetrics::from_json(value.get("metrics")?)?,
            }),
            "metrics_snapshot" => Ok(WireResponse::MetricsSnapshot {
                metrics: ServeMetrics::from_json(value.get("metrics")?)?,
                profile: OpProfileSnapshot::from_json(value.get("profile")?)?,
            }),
            "trace_tail" => Ok(WireResponse::TraceTail {
                traces: value
                    .get("traces")?
                    .as_arr()?
                    .iter()
                    .map(JobTrace::from_json)
                    .collect::<Result<_, _>>()?,
            }),
            "pong" => Ok(WireResponse::Pong),
            "error" => Ok(WireResponse::Error {
                message: value.get("message")?.as_str()?.to_string(),
            }),
            other => Err(format!("unknown response op {other:?}")),
        }
    }
}

/// Reads one `\n`-terminated line, bounded at [`MAX_LINE_BYTES`].
///
/// Returns `Ok(None)` on a clean EOF at a line boundary. A line that
/// exceeds the bound or input that ends mid-line is an error.
fn read_capped_line<R: Read>(reader: &mut BufReader<R>) -> io::Result<Option<String>> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return if line.is_empty() {
                Ok(None)
            } else {
                Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-line",
                ))
            };
        }
        let (chunk, done) = match buf.iter().position(|&b| b == b'\n') {
            Some(at) => (&buf[..at], true),
            None => (buf, false),
        };
        if line.len() + chunk.len() > MAX_LINE_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line exceeds {MAX_LINE_BYTES} bytes"),
            ));
        }
        line.extend_from_slice(chunk);
        let consumed = chunk.len() + usize::from(done);
        reader.consume(consumed);
        if done {
            let text = String::from_utf8(line)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            return Ok(Some(text));
        }
    }
}

/// Writes one envelope line under the connection's writer lock, so a
/// streaming forwarder and the request handler never tear each other's
/// lines. Returns `false` once the peer is gone.
fn write_line(writer: &Mutex<TcpStream>, text: &str) -> bool {
    let mut stream = writer.lock().unwrap_or_else(|e| e.into_inner());
    stream
        .write_all(text.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .is_ok()
}

/// Encodes a response defensively: [`Value::from_f64`] panics on
/// non-finite numbers (JSON cannot carry them), and a job is allowed to
/// *produce* a NaN expectation from NaN parameters — that must become
/// an `error` envelope, not a dead forwarder thread.
fn encode_response(response: &WireResponse) -> Result<String, String> {
    catch_unwind(AssertUnwindSafe(|| response.to_json_string())).map_err(|payload| {
        payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "unrepresentable response".to_string())
    })
}

/// The TCP front end of a [`Daemon`]: accepts connections and speaks
/// the line-delimited envelope protocol. See the module docs.
#[derive(Debug)]
pub struct WireServer {
    daemon: Arc<Daemon>,
    listener_addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    /// Live connection streams, for forced unblock at shutdown.
    conns: Arc<Mutex<Vec<TcpStream>>>,
    accept_handle: Option<JoinHandle<()>>,
}

impl WireServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop over `daemon`.
    ///
    /// # Errors
    ///
    /// Errors if the address cannot be bound.
    pub fn start(daemon: Arc<Daemon>, addr: impl ToSocketAddrs) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let listener_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_handle = {
            let daemon = Arc::clone(&daemon);
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || {
                let mut handlers: Vec<JoinHandle<()>> = Vec::new();
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    if let Ok(registered) = stream.try_clone() {
                        conns
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .push(registered);
                    }
                    let daemon = Arc::clone(&daemon);
                    handlers.push(std::thread::spawn(move || {
                        handle_connection(daemon, stream)
                    }));
                }
                for handle in handlers {
                    let _ = handle.join();
                }
            })
        };
        Ok(Self {
            daemon,
            listener_addr,
            stop,
            conns,
            accept_handle: Some(accept_handle),
        })
    }

    /// The bound address (the port to connect to when started on
    /// port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.listener_addr
    }

    /// The daemon behind this front end.
    pub fn daemon(&self) -> &Arc<Daemon> {
        &self.daemon
    }

    /// Stops accepting, severs live connections, and joins the accept
    /// loop (which joins the per-connection handlers). The daemon keeps
    /// running — shut it down separately to drain its queue. Idempotent.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.listener_addr);
        for conn in self
            .conns
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
        {
            let _ = conn.shutdown(Shutdown::Both);
        }
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serves one connection: parse a request line, run daemon admission,
/// write the ack, and hand accepted streams to a forwarder thread that
/// delivers `result` envelopes as jobs complete.
fn handle_connection(daemon: Arc<Daemon>, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let writer = Arc::new(Mutex::new(stream));
    let mut forwarders: Vec<JoinHandle<()>> = Vec::new();
    // A clean EOF, an oversized line, or a severed socket all end the
    // session; queued jobs still run, their results are discarded by
    // the send-to-gone-receiver path.
    while let Ok(Some(line)) = read_capped_line(&mut reader) {
        if line.trim().is_empty() {
            continue;
        }
        let request = match WireRequest::from_json_str(&line) {
            Ok(request) => request,
            Err(message) => {
                let response = WireResponse::Error { message };
                if !write_line(&writer, &response.to_json_string()) {
                    break;
                }
                continue;
            }
        };
        let (requests, priority) = match request {
            WireRequest::Ping => {
                if !write_line(&writer, &WireResponse::Pong.to_json_string()) {
                    break;
                }
                continue;
            }
            WireRequest::Metrics => {
                let response = WireResponse::Metrics {
                    metrics: daemon.metrics(),
                };
                if !write_line(&writer, &response.to_json_string()) {
                    break;
                }
                continue;
            }
            WireRequest::MetricsSnapshot => {
                let response = WireResponse::MetricsSnapshot {
                    metrics: daemon.metrics(),
                    profile: daemon.profile_snapshot(),
                };
                if !write_line(&writer, &response.to_json_string()) {
                    break;
                }
                continue;
            }
            WireRequest::TraceTail { limit } => {
                let response = WireResponse::TraceTail {
                    traces: daemon.trace_tail(limit),
                };
                if !write_line(&writer, &response.to_json_string()) {
                    break;
                }
                continue;
            }
            WireRequest::Submit { request, priority } => (vec![request], priority),
            WireRequest::SubmitGroup { requests, priority } => (requests, priority),
        };
        if requests.is_empty() {
            let response = WireResponse::Error {
                message: "cannot submit an empty group".to_string(),
            };
            if !write_line(&writer, &response.to_json_string()) {
                break;
            }
            continue;
        }
        match daemon.submit_group(requests, priority) {
            Err(rejected) => {
                let response = WireResponse::Rejected { rejected };
                if !write_line(&writer, &response.to_json_string()) {
                    break;
                }
            }
            Ok(stream) => {
                // Ack first — the protocol promises the client its ids
                // before any result of this submission.
                let ack = WireResponse::Accepted {
                    ids: stream.ids().to_vec(),
                };
                if !write_line(&writer, &ack.to_json_string()) {
                    break;
                }
                let writer = Arc::clone(&writer);
                forwarders.push(std::thread::spawn(move || {
                    for result in stream {
                        let id = result.id;
                        let text = match encode_response(&WireResponse::Result { result }) {
                            Ok(text) => text,
                            Err(message) => WireResponse::Error {
                                message: format!("result for {id} not representable: {message}"),
                            }
                            .to_json_string(),
                        };
                        if !write_line(&writer, &text) {
                            // Peer gone: drain silently so the daemon's
                            // workers never block on this stream.
                            continue;
                        }
                    }
                }));
            }
        }
    }
    for handle in forwarders {
        let _ = handle.join();
    }
}

/// A blocking client for the envelope protocol.
///
/// Because results stream in completion order and may interleave with
/// later acks, the client buffers `result` envelopes internally: the
/// submit helpers return as soon as *their* ack arrives, and
/// [`WireClient::next_result`] serves buffered results first.
#[derive(Debug)]
pub struct WireClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    buffered: VecDeque<JobResult>,
}

impl WireClient {
    /// Connects to a [`WireServer`].
    ///
    /// # Errors
    ///
    /// Errors if the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let read_half = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(read_half),
            writer: stream,
            buffered: VecDeque::new(),
        })
    }

    /// Sends one raw request envelope.
    ///
    /// # Errors
    ///
    /// Errors if the socket write fails.
    pub fn send(&mut self, request: &WireRequest) -> io::Result<()> {
        self.writer.write_all(request.to_json_string().as_bytes())?;
        self.writer.write_all(b"\n")
    }

    /// Reads the next response envelope off the socket (not the result
    /// buffer).
    ///
    /// # Errors
    ///
    /// Errors on EOF, an oversized line, or a malformed envelope.
    pub fn recv(&mut self) -> io::Result<WireResponse> {
        let line = read_capped_line(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        WireResponse::from_json_str(&line)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Reads until a non-`result` envelope arrives, buffering the
    /// results that interleave.
    fn recv_ack(&mut self) -> io::Result<WireResponse> {
        loop {
            match self.recv()? {
                WireResponse::Result { result } => self.buffered.push_back(result),
                other => return Ok(other),
            }
        }
    }

    /// Submits one job; `Ok(Err(rejected))` is a daemon-level refusal,
    /// the outer error a transport/protocol failure.
    ///
    /// # Errors
    ///
    /// Errors if the transport fails or the server violates protocol.
    pub fn submit(
        &mut self,
        request: JobRequest,
        priority: Priority,
    ) -> io::Result<Result<Vec<JobId>, Rejected>> {
        self.send(&WireRequest::Submit { request, priority })?;
        self.read_submit_ack()
    }

    /// Submits a job group atomically; see [`WireClient::submit`].
    ///
    /// # Errors
    ///
    /// Errors if the transport fails or the server violates protocol.
    pub fn submit_group(
        &mut self,
        requests: Vec<JobRequest>,
        priority: Priority,
    ) -> io::Result<Result<Vec<JobId>, Rejected>> {
        self.send(&WireRequest::SubmitGroup { requests, priority })?;
        self.read_submit_ack()
    }

    fn read_submit_ack(&mut self) -> io::Result<Result<Vec<JobId>, Rejected>> {
        match self.recv_ack()? {
            WireResponse::Accepted { ids } => Ok(Ok(ids)),
            WireResponse::Rejected { rejected } => Ok(Err(rejected)),
            WireResponse::Error { message } => {
                Err(io::Error::new(io::ErrorKind::InvalidData, message))
            }
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected submission ack, got {other:?}"),
            )),
        }
    }

    /// The next completed job: buffered results first, then the socket.
    ///
    /// # Errors
    ///
    /// Errors if the transport fails or a non-`result` envelope arrives
    /// while results are owed.
    pub fn next_result(&mut self) -> io::Result<JobResult> {
        if let Some(result) = self.buffered.pop_front() {
            return Ok(result);
        }
        match self.recv()? {
            WireResponse::Result { result } => Ok(result),
            WireResponse::Error { message } => {
                Err(io::Error::new(io::ErrorKind::InvalidData, message))
            }
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected result, got {other:?}"),
            )),
        }
    }

    /// Collects `n` results and sorts them into id order.
    ///
    /// # Errors
    ///
    /// Errors if any [`WireClient::next_result`] read fails.
    pub fn collect_results(&mut self, n: usize) -> io::Result<Vec<JobResult>> {
        let mut results = Vec::with_capacity(n);
        for _ in 0..n {
            results.push(self.next_result()?);
        }
        results.sort_by_key(|r| r.id);
        Ok(results)
    }

    /// Fetches a metrics snapshot.
    ///
    /// # Errors
    ///
    /// Errors if the transport fails or the server violates protocol.
    pub fn metrics(&mut self) -> io::Result<ServeMetrics> {
        self.send(&WireRequest::Metrics)?;
        match self.recv_ack()? {
            WireResponse::Metrics { metrics } => Ok(metrics),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected metrics, got {other:?}"),
            )),
        }
    }

    /// Fetches the observability snapshot: metrics plus the per-op-kind
    /// engine profile.
    ///
    /// # Errors
    ///
    /// Errors if the transport fails or the server violates protocol.
    pub fn metrics_snapshot(&mut self) -> io::Result<(ServeMetrics, OpProfileSnapshot)> {
        self.send(&WireRequest::MetricsSnapshot)?;
        match self.recv_ack()? {
            WireResponse::MetricsSnapshot { metrics, profile } => Ok((metrics, profile)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected metrics snapshot, got {other:?}"),
            )),
        }
    }

    /// Fetches the last `limit` job traces from the daemon's flight
    /// recorder, oldest first.
    ///
    /// # Errors
    ///
    /// Errors if the transport fails or the server violates protocol.
    pub fn trace_tail(&mut self, limit: usize) -> io::Result<Vec<JobTrace>> {
        self.send(&WireRequest::TraceTail { limit })?;
        match self.recv_ack()? {
            WireResponse::TraceTail { traces } => Ok(traces),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected trace tail, got {other:?}"),
            )),
        }
    }

    /// Round-trips a ping.
    ///
    /// # Errors
    ///
    /// Errors if the transport fails or the server violates protocol.
    pub fn ping(&mut self) -> io::Result<()> {
        self.send(&WireRequest::Ping)?;
        match self.recv_ack()? {
            WireResponse::Pong => Ok(()),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected pong, got {other:?}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capped_line_reader_enforces_the_bound() {
        let text = "short line\n";
        let mut reader = BufReader::new(text.as_bytes());
        assert_eq!(
            read_capped_line(&mut reader).unwrap().as_deref(),
            Some("short line")
        );
        assert_eq!(read_capped_line(&mut reader).unwrap(), None);

        let mut eof_mid_line = BufReader::new("no newline".as_bytes());
        assert!(read_capped_line(&mut eof_mid_line).is_err());

        let huge = vec![b'x'; MAX_LINE_BYTES + 1];
        let mut oversized = BufReader::new(&huge[..]);
        assert!(read_capped_line(&mut oversized).is_err());
    }

    #[test]
    fn envelope_errors_name_the_unknown_op() {
        let err = WireRequest::from_json_str(r#"{"op":"frobnicate"}"#).unwrap_err();
        assert!(err.contains("frobnicate"), "{err}");
        let err = WireResponse::from_json_str(r#"{"op":"frobnicate"}"#).unwrap_err();
        assert!(err.contains("frobnicate"), "{err}");
    }
}
