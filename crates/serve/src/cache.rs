//! The compiled-program cache.
//!
//! Keyed by [`hgp_circuit::Circuit::structural_key`] /
//! [`hgp_core::compile::HybridShape::structural_key`] (hybrid keys fold
//! in a leading domain tag, keeping them apart from the untagged
//! circuit encoding): one entry per program *shape*, shared
//! by every parameter binding of that shape. Circuit and hybrid
//! gate-pulse artifacts share one LRU budget — a serving host trades
//! them off against each other like any other shapes. Entries hold
//! [`Arc`]s so in-flight batches keep their program alive even if the
//! entry is evicted mid-run.

use std::collections::BTreeMap;
use std::sync::Arc;

use hgp_core::compile::{CompiledCircuit, CompiledProgram};

/// A cached compiled artifact of either program family.
#[derive(Debug, Clone)]
pub enum CompiledArtifact {
    /// A transpiled circuit shape.
    Circuit(Arc<CompiledCircuit>),
    /// A compiled hybrid gate-pulse shape.
    Hybrid(Arc<CompiledProgram>),
}

impl CompiledArtifact {
    /// The structural cache key.
    pub fn key(&self) -> u64 {
        match self {
            CompiledArtifact::Circuit(c) => c.key(),
            CompiledArtifact::Hybrid(p) => p.key(),
        }
    }
}

impl From<Arc<CompiledCircuit>> for CompiledArtifact {
    fn from(c: Arc<CompiledCircuit>) -> Self {
        CompiledArtifact::Circuit(c)
    }
}

impl From<Arc<CompiledProgram>> for CompiledArtifact {
    fn from(p: Arc<CompiledProgram>) -> Self {
        CompiledArtifact::Hybrid(p)
    }
}

/// A least-recently-used cache of compiled programs.
///
/// Recency is tracked with a logical clock bumped on every access;
/// eviction scans for the minimum — `O(len)` per eviction, which is
/// irrelevant at the capacities a serving host uses (tens to hundreds
/// of shapes). The map is a `BTreeMap` for determinism hygiene (rule
/// D1): eviction ties cannot occur (clock values are unique), but a
/// key-ordered scan makes the choice visibly independent of hasher
/// state rather than accidentally so.
#[derive(Debug)]
pub struct ProgramCache {
    capacity: usize,
    clock: u64,
    entries: BTreeMap<u64, (CompiledArtifact, u64)>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ProgramCache {
    /// A cache holding at most `capacity` compiled shapes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Self {
            capacity,
            clock: 0,
            entries: BTreeMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up a shape, refreshing its recency. Counts a hit or miss.
    pub fn get(&mut self, key: u64) -> Option<CompiledArtifact> {
        self.clock += 1;
        match self.entries.get_mut(&key) {
            Some((compiled, used)) => {
                *used = self.clock;
                self.hits += 1;
                Some(compiled.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a freshly compiled shape, evicting the least recently
    /// used entry when full. Inserting an existing key refreshes it.
    pub fn insert(&mut self, compiled: impl Into<CompiledArtifact>) {
        let compiled = compiled.into();
        self.clock += 1;
        let key = compiled.key();
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            let oldest = self
                .entries
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(&k, _)| k)
                .expect("non-empty at capacity");
            self.entries.remove(&oldest);
            self.evictions += 1;
        }
        self.entries.insert(key, (compiled, self.clock));
    }

    /// Whether a shape is cached (does not refresh recency or count).
    pub fn contains(&self, key: u64) -> bool {
        self.entries.contains_key(&key)
    }

    /// Cached shapes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum shapes held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifetime lookup hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime lookup misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lifetime evictions.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgp_circuit::Circuit;
    use hgp_core::compile::CircuitCompiler;
    use hgp_device::Backend;

    fn compiled(backend: &Backend, theta: f64) -> Arc<CompiledCircuit> {
        let mut qc = Circuit::new(2);
        qc.h(0).cx(0, 1).rx(1, theta);
        Arc::new(
            CircuitCompiler::new(backend, vec![0, 1])
                .compile(&qc)
                .unwrap(),
        )
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let backend = Backend::ideal(2);
        let mut cache = ProgramCache::new(4);
        let c = compiled(&backend, 0.3);
        let key = c.key();
        assert!(cache.get(key).is_none());
        cache.insert(c);
        assert!(cache.get(key).is_some());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let backend = Backend::ideal(2);
        let mut cache = ProgramCache::new(2);
        let a = compiled(&backend, 0.1);
        let b = compiled(&backend, 0.2);
        let c = compiled(&backend, 0.3);
        let (ka, kb, kc) = (a.key(), b.key(), c.key());
        cache.insert(a);
        cache.insert(b);
        // Touch `a` so `b` is the LRU when `c` arrives.
        assert!(cache.get(ka).is_some());
        cache.insert(c);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.contains(ka));
        assert!(!cache.contains(kb));
        assert!(cache.contains(kc));
    }

    #[test]
    fn reinsert_refreshes_without_evicting() {
        let backend = Backend::ideal(2);
        let mut cache = ProgramCache::new(1);
        let a = compiled(&backend, 0.1);
        let key = a.key();
        cache.insert(Arc::clone(&a));
        cache.insert(a);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 0);
        assert!(cache.contains(key));
    }
}
