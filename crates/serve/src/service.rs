//! The job-execution service: same-shape batching over a worker pool.
//!
//! # Execution model
//!
//! [`Service::run_batch`] is the unit of scheduling:
//!
//! 1. **Admission** — each request gets a monotonically increasing
//!    [`JobId`] and a sampling seed derived from the service's base seed
//!    and that id ([`hgp_sim::seed::stream_seed`]), unless the request
//!    pinned one. Seeds are therefore a pure function of submission
//!    order, never of worker scheduling.
//! 2. **Compile** — jobs are grouped by
//!    [`Circuit::structural_key`]; each distinct shape is looked up in
//!    the LRU [`ProgramCache`] and compiled on miss
//!    ([`hgp_core::compile::CircuitCompiler`] — cancellation, SABRE
//!    placement, routing), once, no matter how many jobs share it.
//! 3. **Dispatch** — every shape group is chunked across the worker
//!    pool (std threads + mpsc channels). A chunk carries its shared
//!    `Arc<CompiledCircuit>`; workers bind each job's parameters
//!    (`O(gates)`) and execute. This is the same batch-evaluation shape
//!    as `hgp_optim`'s `BatchObjective`: one compiled artifact, a slice
//!    of parameter points, independent evaluations
//!    ([`Service::expectation_batch`] packages it as exactly that
//!    closure).
//! 4. **Collection** — results return over a channel and are reordered
//!    by submission index; metrics accumulate.
//!
//! Because a job's output depends only on `(compiled shape, params,
//! seed)` and all three are fixed at admission, **any concurrent
//! schedule is bit-identical to sequential execution** — the
//! integration suite pins this against hand-driven
//! [`Executor`](hgp_core::executor::Executor) runs.

use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use hgp_circuit::Circuit;
use hgp_core::compile::{CircuitCompiler, CompiledCircuit};
use hgp_core::models::GateModelOptions;
use hgp_device::Backend;
use hgp_math::pauli::PauliSum;
use hgp_sim::seed::stream_seed;
use hgp_sim::{DensityMatrix, SimBackend, StateVector};

use crate::cache::ProgramCache;
use crate::job::{JobId, JobOutput, JobRequest, JobResult, JobSpec};
use crate::metrics::ServeMetrics;

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Physical qubits circuits are routed into; a circuit of `n`
    /// qubits uses the first `n` entries (which must induce a connected
    /// subgraph).
    pub layout: Vec<usize>,
    /// Worker threads per batch. Defaults to the host's available
    /// parallelism, capped at 8.
    pub workers: usize,
    /// Compiled shapes kept in the LRU cache.
    pub cache_capacity: usize,
    /// Base seed of the service's evaluation stream.
    pub base_seed: u64,
    /// Transpilation passes applied once per shape.
    pub compile_options: GateModelOptions,
}

impl ServeConfig {
    /// Defaults: host parallelism (max 8) workers, 64 cached shapes,
    /// base seed 42, optimized compilation.
    pub fn new(layout: Vec<usize>) -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8);
        Self {
            layout,
            workers,
            cache_capacity: 64,
            base_seed: 42,
            compile_options: GateModelOptions::optimized(),
        }
    }

    /// Overrides the worker count.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        self.workers = workers;
        self
    }

    /// Overrides the cache capacity.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Overrides the base seed.
    pub fn with_base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Overrides the compilation passes.
    pub fn with_compile_options(mut self, options: GateModelOptions) -> Self {
        self.compile_options = options;
        self
    }
}

/// A job admitted to the stream: id and seed fixed, awaiting dispatch.
struct PreparedJob {
    index: usize,
    id: JobId,
    seed: u64,
    params: Vec<f64>,
    spec: JobSpec,
}

/// One unit of worker work: a chunk of same-shape jobs plus their
/// shared compiled program.
struct WorkUnit {
    compiled: Arc<CompiledCircuit>,
    cache_hit: bool,
    jobs: Vec<PreparedJob>,
}

/// The batched job-execution service. See the module docs.
#[derive(Debug)]
pub struct Service<'a> {
    backend: &'a Backend,
    config: ServeConfig,
    cache: ProgramCache,
    metrics: ServeMetrics,
    next_job: u64,
}

impl<'a> Service<'a> {
    /// Creates a service executing on `backend`.
    ///
    /// # Panics
    ///
    /// Panics if the layout references qubits outside the backend (the
    /// compiler validates on first use), `cache_capacity` is zero, or
    /// `workers` is zero.
    pub fn new(backend: &'a Backend, config: ServeConfig) -> Self {
        assert!(config.workers > 0, "need at least one worker");
        let cache = ProgramCache::new(config.cache_capacity);
        Self {
            backend,
            config,
            cache,
            metrics: ServeMetrics::default(),
            next_job: 0,
        }
    }

    /// The backend jobs execute on.
    pub fn backend(&self) -> &Backend {
        self.backend
    }

    /// The service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Cumulative metrics.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// The compiled-program cache (shape count, hit/miss counters).
    pub fn cache(&self) -> &ProgramCache {
        &self.cache
    }

    /// Serves one batch of jobs, returning results in submission order.
    ///
    /// # Panics
    ///
    /// Panics on malformed requests: a circuit wider than the layout, a
    /// parameter vector whose length disagrees with the circuit, or an
    /// expectation observable of the wrong width. Validation is atomic
    /// — it runs for the whole batch *before* any job id is assigned,
    /// so a rejected batch never advances the seed stream.
    pub fn run_batch(&mut self, requests: Vec<JobRequest>) -> Vec<JobResult> {
        if requests.is_empty() {
            return Vec::new();
        }
        let wall = Instant::now();
        let n_jobs = requests.len();

        // 0. Validate everything before touching the id/seed stream.
        for (index, request) in requests.iter().enumerate() {
            assert_eq!(
                request.params.len(),
                request.circuit.n_params(),
                "request {index}: expected {} parameter(s)",
                request.circuit.n_params()
            );
            match &request.spec {
                JobSpec::Expectation { observable }
                | JobSpec::TrajectoryExpectation { observable, .. } => {
                    assert_eq!(
                        observable.n_qubits(),
                        request.circuit.n_qubits(),
                        "request {index}: observable width must match the circuit"
                    );
                }
                _ => {}
            }
            match &request.spec {
                JobSpec::TrajectoryCounts { shots: 0 } => {
                    panic!("request {index}: trajectory sampling needs at least one shot")
                }
                JobSpec::TrajectoryExpectation {
                    trajectories: 0, ..
                } => panic!("request {index}: trajectory estimation needs at least one trajectory"),
                _ => {}
            }
        }

        // 1. Admission: fix ids and seeds by submission order.
        let compiler = CircuitCompiler::new(self.backend, self.config.layout.clone())
            .with_options(self.config.compile_options);
        let mut groups: Vec<(u64, &Circuit, Vec<PreparedJob>)> = Vec::new();
        for (index, request) in requests.iter().enumerate() {
            let id = JobId(self.next_job);
            self.next_job += 1;
            let seed = request
                .seed
                .unwrap_or_else(|| stream_seed(self.config.base_seed, id.0));
            let job = PreparedJob {
                index,
                id,
                seed,
                params: request.params.clone(),
                spec: request.spec.clone(),
            };
            let key = request.circuit.structural_key();
            match groups.iter_mut().find(|(k, _, _)| *k == key) {
                Some((_, _, jobs)) => jobs.push(job),
                None => groups.push((key, &request.circuit, vec![job])),
            }
        }

        // 2. Compile each distinct shape once (cache hit or miss).
        self.metrics.shape_groups += groups.len() as u64;
        let mut units: Vec<WorkUnit> = Vec::new();
        for (key, circuit, jobs) in groups {
            let (compiled, cache_hit) = match self.cache.get(key) {
                Some(compiled) => (compiled, true),
                None => {
                    let t0 = Instant::now();
                    let compiled = Arc::new(
                        compiler
                            .compile(circuit)
                            .unwrap_or_else(|e| panic!("compile failed: {e}")),
                    );
                    self.metrics.compile_ns += t0.elapsed().as_nanos() as u64;
                    self.cache.insert(Arc::clone(&compiled));
                    (compiled, false)
                }
            };
            // 3a. Chunk the group across the pool so one hot shape does
            // not serialize on a single worker.
            let chunk = jobs.len().div_ceil(self.config.workers).max(1);
            let mut jobs = jobs;
            while !jobs.is_empty() {
                let rest = jobs.split_off(chunk.min(jobs.len()));
                units.push(WorkUnit {
                    compiled: Arc::clone(&compiled),
                    cache_hit,
                    jobs,
                });
                jobs = rest;
            }
        }
        self.metrics.cache_hits = self.cache.hits();
        self.metrics.cache_misses = self.cache.misses();

        // 3b. Dispatch over the pool: a shared channel of work units in,
        // a channel of finished jobs out.
        let (unit_tx, unit_rx) = mpsc::channel::<WorkUnit>();
        for unit in units {
            unit_tx.send(unit).expect("receiver alive");
        }
        drop(unit_tx);
        let unit_rx = Arc::new(Mutex::new(unit_rx));
        let (result_tx, result_rx) = mpsc::channel::<(usize, JobResult)>();
        let backend = self.backend;
        let workers = self.config.workers.min(n_jobs).max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let unit_rx = Arc::clone(&unit_rx);
                let result_tx = result_tx.clone();
                scope.spawn(move || loop {
                    // Hold the receiver lock only to pop, not to work.
                    let unit = { unit_rx.lock().expect("no poisoned lock").recv() };
                    let Ok(unit) = unit else { break };
                    for job in unit.jobs {
                        let index = job.index;
                        let result = execute_job(backend, &unit.compiled, unit.cache_hit, job);
                        result_tx.send((index, result)).expect("collector alive");
                    }
                });
            }
            drop(result_tx);
            // 4. Collect and reorder.
            let mut slots: Vec<Option<JobResult>> = (0..n_jobs).map(|_| None).collect();
            for (index, result) in result_rx {
                self.metrics.exec_ns += result.elapsed_ns;
                slots[index] = Some(result);
            }
            let results: Vec<JobResult> = slots
                .into_iter()
                .map(|r| r.expect("every job reports exactly once"))
                .collect();
            self.metrics.jobs_completed += n_jobs as u64;
            self.metrics.batches += 1;
            self.metrics.wall_ns += wall.elapsed().as_nanos() as u64;
            results
        })
    }

    /// Serves a single job (a batch of one).
    pub fn run(&mut self, request: JobRequest) -> JobResult {
        self.run_batch(vec![request])
            .pop()
            .expect("one job in, one result out")
    }

    /// Evaluates `observable` on `circuit` at a slice of parameter
    /// points — the service-backed form of an `hgp_optim`
    /// `BatchObjective`. All points share one compiled program and fan
    /// out over the pool; values return in point order.
    ///
    /// ```ignore
    /// let mut objective =
    ///     |xs: &[Vec<f64>]| service.expectation_batch(&circuit, &observable, xs);
    /// let result = Cobyla::new(60).minimize_batch(&mut objective, &x0);
    /// ```
    pub fn expectation_batch(
        &mut self,
        circuit: &Circuit,
        observable: &PauliSum,
        points: &[Vec<f64>],
    ) -> Vec<f64> {
        let requests = points
            .iter()
            .map(|x| {
                JobRequest::new(
                    circuit.clone(),
                    x.clone(),
                    JobSpec::Expectation {
                        observable: observable.clone(),
                    },
                )
            })
            .collect();
        self.run_batch(requests)
            .into_iter()
            .map(|r| match r.output {
                JobOutput::Expectation { value } => value,
                other => unreachable!("expectation job produced {other:?}"),
            })
            .collect()
    }
}

/// Executes one job against its compiled shape. Pure in `(compiled,
/// params, seed)` — the determinism contract lives here.
fn execute_job(
    backend: &Backend,
    compiled: &CompiledCircuit,
    cache_hit: bool,
    job: PreparedJob,
) -> JobResult {
    let t0 = Instant::now();
    let output = match &job.spec {
        JobSpec::StateVector => {
            let wire = StateVector::execute(&compiled.circuit().bind(&job.params))
                .expect("compiled circuits bind fully");
            JobOutput::StateVector {
                probabilities: compiled.decode_probabilities(&wire.probabilities()),
            }
        }
        JobSpec::DensityMatrix => {
            let program = compiled.bind(&job.params);
            let rho: DensityMatrix = compiled.executor(backend).run_on(&program);
            JobOutput::DensityMatrix {
                probabilities: compiled.decode_probabilities(&rho.probabilities()),
                purity: rho.purity(),
            }
        }
        JobSpec::Counts { shots } => {
            let program = compiled.bind(&job.params);
            let counts = compiled
                .executor(backend)
                .sample(&program, *shots, job.seed);
            JobOutput::Counts(compiled.decode_counts(&counts))
        }
        JobSpec::Expectation { observable } => {
            let program = compiled.bind(&job.params);
            let rho: DensityMatrix = compiled.executor(backend).run_on(&program);
            JobOutput::Expectation {
                value: SimBackend::expectation(&rho, &compiled.wire_observable(observable)),
            }
        }
        JobSpec::TrajectoryCounts { shots } => {
            let program = compiled.bind(&job.params);
            // The executor reuses the noise model cached with the
            // compiled shape; trajectory i draws its randomness from
            // stream position (job seed, i).
            let counts = compiled
                .executor(backend)
                .sample_trajectories(&program, *shots, job.seed);
            JobOutput::TrajectoryCounts(compiled.decode_counts(&counts))
        }
        JobSpec::TrajectoryExpectation {
            observable,
            trajectories,
        } => {
            let program = compiled.bind(&job.params);
            let (value, std_error) = compiled.executor(backend).expectation_trajectories(
                &program,
                &compiled.wire_observable(observable),
                *trajectories,
                job.seed,
            );
            JobOutput::TrajectoryExpectation {
                value,
                std_error,
                trajectories: *trajectories,
            }
        }
    };
    JobResult {
        id: job.id,
        seed: job.seed,
        cache_hit,
        elapsed_ns: t0.elapsed().as_nanos() as u64,
        output,
    }
}
