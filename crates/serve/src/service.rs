//! The job-execution service: same-shape batching over a worker pool.
//!
//! # Execution model
//!
//! [`Service::run_batch`] is the unit of scheduling:
//!
//! 1. **Admission** — each request gets a monotonically increasing
//!    [`JobId`] and a sampling seed derived from the service's base seed
//!    and that id ([`hgp_sim::seed::stream_seed`]), unless the request
//!    pinned one. Seeds are therefore a pure function of submission
//!    order, never of worker scheduling. Requests that fail validation
//!    (bad parameter counts, mismatched observables, zero shot counts,
//!    a hybrid spec on a circuit payload) are answered with a
//!    [`JobError`] — they still consume their stream position, so the
//!    surviving jobs of the batch are bit-identical to a batch without
//!    the poisoned entry *replaced by any other single job*.
//! 2. **Compile** — jobs are grouped by structural key
//!    ([`Circuit::structural_key`] for circuit programs,
//!    [`hgp_core::compile::HybridShape::structural_key`] for hybrid
//!    gate-pulse programs); each distinct shape is looked up in the LRU
//!    [`ProgramCache`] and compiled on miss
//!    ([`hgp_core::compile::CircuitCompiler`] — cancellation, SABRE
//!    placement, routing; for hybrid shapes also per-layer layout
//!    chaining and mixer pulse calibration), once, no matter how many
//!    jobs share it. A shape that fails to compile (e.g. a malformed
//!    pulse schedule) fails exactly the jobs of that shape, with a
//!    compile-stage [`JobError`].
//! 3. **Dispatch** — every shape group is chunked across the worker
//!    pool (std threads + mpsc channels). A chunk carries its shared
//!    compiled artifact; workers bind each job's parameters and execute.
//!    The four trajectory kinds bind through the artifact's
//!    **schedule template** (`bind_replay`): the ASAP walk, idle
//!    analysis, and channel tables recorded once per shape (on its
//!    first trajectory bind) are reused, only the parametric entries
//!    (bound-angle diagonals, mixer pulse blocks) are substituted, and
//!    the shots run on the op-fused
//!    [`hgp_sim::ReplayEngine`] — bit-identical to the reference
//!    trajectory engine. Execution is wrapped in a panic boundary: any
//!    residual panic on request-derived data becomes an execute-stage
//!    [`JobError`] instead of killing the worker.
//! 4. **Collection** — results return over a channel and are reordered
//!    by submission index; metrics accumulate per stage
//!    (validate/compile/bind/execute — see [`ServeMetrics`]).
//!
//! Because a job's output depends only on `(compiled shape, params,
//! seed)` and all three are fixed at admission, **any concurrent
//! schedule is bit-identical to sequential execution** — the
//! integration suite pins this against hand-driven
//! [`Executor`](hgp_core::executor::Executor) runs for circuit and
//! hybrid programs alike.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use hgp_circuit::Circuit;
use hgp_core::compile::{CircuitCompiler, HybridShape};
use hgp_core::models::GateModelOptions;
use hgp_device::Backend;
use hgp_math::pauli::PauliSum;
use hgp_sim::seed::stream_seed;
use hgp_sim::{NoProfile, ProfileSink, SimBackend, StateVector};

use crate::cache::{CompiledArtifact, ProgramCache};
use crate::job::{
    JobError, JobId, JobOutput, JobProgram, JobRequest, JobResult, JobSpec, Priority,
};
use crate::metrics::ServeMetrics;

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Physical qubits circuits are routed into; a circuit of `n`
    /// qubits uses the first `n` entries (which must induce a connected
    /// subgraph).
    pub layout: Vec<usize>,
    /// Worker threads per batch. Defaults to the host's available
    /// parallelism, capped at 8.
    pub workers: usize,
    /// Compiled shapes kept in the LRU cache.
    pub cache_capacity: usize,
    /// Base seed of the service's evaluation stream.
    pub base_seed: u64,
    /// Transpilation passes applied once per circuit shape (hybrid
    /// shapes carry their own pass configuration).
    pub compile_options: GateModelOptions,
}

impl ServeConfig {
    /// Defaults: host parallelism (max 8) workers, 64 cached shapes,
    /// base seed 42, optimized compilation.
    pub fn new(layout: Vec<usize>) -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8);
        Self {
            layout,
            workers,
            cache_capacity: 64,
            base_seed: 42,
            compile_options: GateModelOptions::optimized(),
        }
    }

    /// Overrides the worker count.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        self.workers = workers;
        self
    }

    /// Overrides the cache capacity.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Overrides the base seed.
    pub fn with_base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Overrides the compilation passes for circuit shapes.
    pub fn with_compile_options(mut self, options: GateModelOptions) -> Self {
        self.compile_options = options;
        self
    }
}

/// A job admitted to the stream: id and seed fixed, awaiting dispatch.
///
/// This is the unit of the **shared worker core**: both the synchronous
/// batch path ([`Service::run_batch`]) and the long-lived daemon
/// ([`crate::daemon::Daemon`]) admit requests into `PreparedJob`s and
/// execute them through [`execute_job`], so the determinism contract is
/// written (and tested) exactly once.
pub(crate) struct PreparedJob {
    pub(crate) index: usize,
    pub(crate) id: JobId,
    pub(crate) seed: u64,
    pub(crate) params: Vec<f64>,
    pub(crate) spec: JobSpec,
}

impl PreparedJob {
    /// A result shell for a job that never reached a worker.
    pub(crate) fn failed(&self, error: JobError) -> JobResult {
        JobResult {
            id: self.id,
            seed: self.seed,
            cache_hit: false,
            elapsed_ns: 0,
            output: Err(error),
        }
    }
}

/// One unit of worker work: a chunk of same-shape jobs plus their
/// shared compiled program.
struct WorkUnit {
    compiled: CompiledArtifact,
    cache_hit: bool,
    jobs: Vec<PreparedJob>,
}

/// The batched job-execution service. See the module docs.
#[derive(Debug)]
pub struct Service<'a> {
    backend: &'a Backend,
    config: ServeConfig,
    cache: ProgramCache,
    metrics: ServeMetrics,
    next_job: u64,
}

impl<'a> Service<'a> {
    /// Creates a service executing on `backend`.
    ///
    /// # Panics
    ///
    /// Panics if the layout references qubits outside the backend (the
    /// compiler validates on first use), `cache_capacity` is zero, or
    /// `workers` is zero.
    pub fn new(backend: &'a Backend, config: ServeConfig) -> Self {
        assert!(config.workers > 0, "need at least one worker");
        let cache = ProgramCache::new(config.cache_capacity);
        Self {
            backend,
            config,
            cache,
            metrics: ServeMetrics::default(),
            next_job: 0,
        }
    }

    /// The backend jobs execute on.
    pub fn backend(&self) -> &Backend {
        self.backend
    }

    /// The service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Cumulative metrics.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// The compiled-program cache (shape count, hit/miss counters).
    pub fn cache(&self) -> &ProgramCache {
        &self.cache
    }

    /// Validates one request against its own declared shape. Runs at
    /// admission, before any execution; failures become validate-stage
    /// job errors, never panics.
    fn validate(request: &JobRequest) -> Result<(), JobError> {
        validate_request(request)
    }

    /// Compiles one shape group's program (cache miss path).
    fn compile_program(&mut self, program: &JobProgram) -> Result<CompiledArtifact, JobError> {
        let t0 = Instant::now();
        let artifact = compile_artifact(
            self.backend,
            &self.config.layout,
            self.config.compile_options,
            program,
        )?;
        let dt = t0.elapsed().as_nanos() as u64;
        self.metrics.compile_ns += dt;
        self.metrics.compile_hist.record(dt);
        Ok(artifact)
    }

    /// Serves one batch of jobs, returning results in submission order.
    ///
    /// Malformed requests — wrong parameter counts, mismatched
    /// observables, spec/program family mismatches, uncompilable shapes
    /// — fail **individually** with a typed [`JobError`]; the rest of
    /// the batch executes normally. Every admitted job (failed or not)
    /// consumes one position of the id/seed stream.
    pub fn run_batch(&mut self, requests: Vec<JobRequest>) -> Vec<JobResult> {
        if requests.is_empty() {
            return Vec::new();
        }
        let wall = Instant::now();
        let n_jobs = requests.len();

        // 1. Admission: fix ids and seeds by submission order; peel off
        // requests that fail validation.
        let mut rejected: Vec<(usize, JobResult)> = Vec::new();
        let mut groups: Vec<(u64, &JobProgram, Vec<PreparedJob>)> = Vec::new();
        for (index, request) in requests.iter().enumerate() {
            let id = JobId(self.next_job);
            self.next_job += 1;
            let seed = request
                .seed
                .unwrap_or_else(|| stream_seed(self.config.base_seed, id.0));
            let job = PreparedJob {
                index,
                id,
                seed,
                params: request.params.clone(),
                spec: request.spec.clone(),
            };
            let t_validate = Instant::now();
            let validation = Self::validate(request);
            let dt = t_validate.elapsed().as_nanos() as u64;
            self.metrics.validate_ns += dt;
            self.metrics.validate_hist.record(dt);
            if let Err(error) = validation {
                rejected.push((index, job.failed(error)));
                continue;
            }
            let key = request.program.structural_key();
            match groups.iter_mut().find(|(k, _, _)| *k == key) {
                Some((_, _, jobs)) => jobs.push(job),
                None => groups.push((key, &request.program, vec![job])),
            }
        }

        // 2. Compile each distinct shape once (cache hit or miss); a
        // compile failure fails its whole group, one error per job.
        self.metrics.shape_groups += groups.len() as u64;
        let mut units: Vec<WorkUnit> = Vec::new();
        for (key, program, jobs) in groups {
            let (compiled, cache_hit) = match self.cache.get(key) {
                Some(compiled) => (compiled, true),
                None => match self.compile_program(program) {
                    Ok(compiled) => {
                        self.cache.insert(compiled.clone());
                        (compiled, false)
                    }
                    Err(error) => {
                        for job in jobs {
                            let failed = job.failed(error.clone());
                            rejected.push((job.index, failed));
                        }
                        continue;
                    }
                },
            };
            // 3a. Chunk the group across the pool so one hot shape does
            // not serialize on a single worker.
            let chunk = jobs.len().div_ceil(self.config.workers).max(1);
            let mut jobs = jobs;
            while !jobs.is_empty() {
                let rest = jobs.split_off(chunk.min(jobs.len()));
                units.push(WorkUnit {
                    compiled: compiled.clone(),
                    cache_hit,
                    jobs,
                });
                jobs = rest;
            }
        }
        self.metrics.cache_hits = self.cache.hits();
        self.metrics.cache_misses = self.cache.misses();

        // 3b. Dispatch over the pool: a shared channel of work units in,
        // a channel of finished jobs out.
        let (unit_tx, unit_rx) = mpsc::channel::<WorkUnit>();
        for unit in units {
            unit_tx.send(unit).expect("receiver alive");
        }
        drop(unit_tx);
        let unit_rx = Arc::new(Mutex::new(unit_rx));
        let (result_tx, result_rx) = mpsc::channel::<(usize, JobResult, u64, u64, usize)>();
        let backend = self.backend;
        let workers = self.config.workers.min(n_jobs).max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let unit_rx = Arc::clone(&unit_rx);
                let result_tx = result_tx.clone();
                scope.spawn(move || loop {
                    // Hold the receiver lock only to pop, not to work.
                    let unit = { unit_rx.lock().expect("no poisoned lock").recv() };
                    let Ok(unit) = unit else { break };
                    for job in unit.jobs {
                        let index = job.index;
                        let shots = trajectory_shots(&job.spec);
                        let kind = job.spec.kind_index();
                        let (result, bind_ns) =
                            execute_job(backend, &unit.compiled, unit.cache_hit, job, &NoProfile);
                        result_tx
                            .send((index, result, bind_ns, shots, kind))
                            .expect("collector alive");
                    }
                });
            }
            drop(result_tx);
            // 4. Collect and reorder (rejected jobs fill their slots
            // directly).
            let mut slots: Vec<Option<JobResult>> = (0..n_jobs).map(|_| None).collect();
            for (index, result) in rejected {
                slots[index] = Some(result);
            }
            for (index, result, bind_ns, shots, kind) in result_rx {
                let exec_ns = result.elapsed_ns.saturating_sub(bind_ns);
                self.metrics.bind_ns += bind_ns;
                self.metrics.exec_ns += exec_ns;
                // The synchronous batch path has no priority classes;
                // everything lands in the default batch bucket. The
                // daemon records real priorities and queue waits.
                self.metrics
                    .record_job_stages(None, bind_ns, exec_ns, Priority::Batch, kind);
                if result.output.is_ok() {
                    self.metrics.shots_executed += shots;
                }
                slots[index] = Some(result);
            }
            let results: Vec<JobResult> = slots
                .into_iter()
                .map(|r| r.expect("every job reports exactly once"))
                .collect();
            self.metrics.jobs_failed += results.iter().filter(|r| r.output.is_err()).count() as u64;
            self.metrics.jobs_completed += n_jobs as u64;
            self.metrics.batches += 1;
            self.metrics.wall_ns += wall.elapsed().as_nanos() as u64;
            results
        })
    }

    /// Serves a single job (a batch of one).
    pub fn run(&mut self, request: JobRequest) -> JobResult {
        self.run_batch(vec![request])
            .pop()
            .expect("one job in, one result out")
    }

    /// Evaluates `observable` on `circuit` at a slice of parameter
    /// points — the service-backed form of an `hgp_optim`
    /// `BatchObjective`. All points share one compiled program and fan
    /// out over the pool; values return in point order.
    ///
    /// ```ignore
    /// let mut objective =
    ///     |xs: &[Vec<f64>]| service.expectation_batch(&circuit, &observable, xs);
    /// let result = Cobyla::new(60).minimize_batch(&mut objective, &x0);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if any job fails (an optimization driver is programmer
    /// infrastructure, not a request boundary).
    pub fn expectation_batch(
        &mut self,
        circuit: &Circuit,
        observable: &PauliSum,
        points: &[Vec<f64>],
    ) -> Vec<f64> {
        let requests = points
            .iter()
            .map(|x| {
                JobRequest::new(
                    circuit.clone(),
                    x.clone(),
                    JobSpec::Expectation {
                        observable: observable.clone(),
                    },
                )
            })
            .collect();
        self.run_batch(requests)
            .into_iter()
            .map(|r| match r.unwrap_output() {
                JobOutput::Expectation { value } => *value,
                other => unreachable!("expectation job produced {other:?}"),
            })
            .collect()
    }

    /// The hybrid counterpart of [`Service::expectation_batch`]:
    /// evaluates `observable` on the hybrid gate-pulse `shape` at a
    /// slice of full parameter points (`[gamma, theta, phase_0, f_0,
    /// ...]` per layer). One compiled hybrid program serves every point
    /// — this is the entry the two-stage (coarse gate / fine pulse-trim)
    /// training loop drives.
    ///
    /// # Panics
    ///
    /// Panics if any job fails.
    pub fn hybrid_expectation_batch(
        &mut self,
        shape: &HybridShape,
        observable: &PauliSum,
        points: &[Vec<f64>],
    ) -> Vec<f64> {
        let requests = points
            .iter()
            .map(|x| {
                JobRequest::hybrid(
                    shape.clone(),
                    x.clone(),
                    JobSpec::HybridExpectation {
                        observable: observable.clone(),
                    },
                )
            })
            .collect();
        self.run_batch(requests)
            .into_iter()
            .map(|r| match r.unwrap_output() {
                JobOutput::Expectation { value } => *value,
                other => unreachable!("hybrid expectation job produced {other:?}"),
            })
            .collect()
    }
}

/// Validates one request against its own declared shape — parameter
/// counts, observable widths, shot counts, spec/program family pairing.
/// Shared by the batch path and the daemon so both admit exactly the
/// same request set; failures become validate-stage job errors, never
/// panics.
pub(crate) fn validate_request(request: &JobRequest) -> Result<(), JobError> {
    if request.params.len() != request.program.n_params() {
        return Err(JobError::validate(format!(
            "expected {} parameter(s), got {}",
            request.program.n_params(),
            request.params.len()
        )));
    }
    let is_hybrid_program = matches!(request.program, JobProgram::Hybrid(_));
    if request.spec.is_hybrid() != is_hybrid_program {
        return Err(JobError::validate(if is_hybrid_program {
            "hybrid programs require a Hybrid* job spec"
        } else {
            "circuit programs cannot run under a Hybrid* job spec"
        }));
    }
    let observable = match &request.spec {
        JobSpec::Expectation { observable }
        | JobSpec::TrajectoryExpectation { observable, .. }
        | JobSpec::HybridExpectation { observable }
        | JobSpec::HybridTrajectoryExpectation { observable, .. } => Some(observable),
        _ => None,
    };
    if let Some(observable) = observable {
        if observable.n_qubits() != request.program.n_qubits() {
            return Err(JobError::validate(format!(
                "observable width {} must match the program width {}",
                observable.n_qubits(),
                request.program.n_qubits()
            )));
        }
    }
    match &request.spec {
        JobSpec::Counts { shots: 0 } | JobSpec::HybridCounts { shots: 0 } => {
            return Err(JobError::validate("sampling needs at least one shot"));
        }
        JobSpec::TrajectoryCounts { shots: 0 } | JobSpec::HybridTrajectoryCounts { shots: 0 } => {
            return Err(JobError::validate(
                "trajectory sampling needs at least one shot",
            ));
        }
        JobSpec::TrajectoryExpectation {
            trajectories: 0, ..
        }
        | JobSpec::HybridTrajectoryExpectation {
            trajectories: 0, ..
        } => {
            return Err(JobError::validate(
                "trajectory estimation needs at least one trajectory",
            ));
        }
        _ => {}
    }
    Ok(())
}

/// Compiles one program shape into its cached artifact form — the
/// cache-miss path shared by [`Service`] and the daemon. All
/// request-derived failures come back as compile-stage [`JobError`]s.
pub(crate) fn compile_artifact(
    backend: &Backend,
    layout: &[usize],
    options: GateModelOptions,
    program: &JobProgram,
) -> Result<CompiledArtifact, JobError> {
    let compiler = CircuitCompiler::new(backend, layout.to_vec()).with_options(options);
    match program {
        JobProgram::Circuit(circuit) => compiler
            .compile(circuit)
            .map(|c| CompiledArtifact::Circuit(Arc::new(c))),
        JobProgram::Hybrid(shape) => compiler
            .compile_hybrid(shape)
            .map(|p| CompiledArtifact::Hybrid(Arc::new(p))),
    }
    .map_err(JobError::compile)
}

/// Times the bind stage of a job, accumulating into `acc`.
fn timed_bind<T>(acc: &mut u64, f: impl FnOnce() -> T) -> T {
    let t0 = Instant::now();
    let out = f();
    *acc += t0.elapsed().as_nanos() as u64;
    out
}

/// Executes one job against its compiled shape, returning the result and
/// the job's bind-stage nanoseconds. Pure in `(compiled, params, seed)`
/// — the determinism contract lives here. The panic boundary converts
/// any residual panic on request-derived data into an execute-stage
/// [`JobError`]: a bad job must never take its worker thread down.
/// Stochastic shots a spec runs on the trajectory replay path — the
/// unit of the shots-executed metric. Counts jobs, not side effects:
/// expectation kinds execute one trajectory per requested sample, so
/// their trajectory count *is* their shot count. Non-trajectory kinds
/// (statevector, density matrix, exact sampling) report zero.
pub(crate) fn trajectory_shots(spec: &JobSpec) -> u64 {
    match spec {
        JobSpec::TrajectoryCounts { shots } | JobSpec::HybridTrajectoryCounts { shots } => {
            *shots as u64
        }
        JobSpec::TrajectoryExpectation { trajectories, .. }
        | JobSpec::HybridTrajectoryExpectation { trajectories, .. } => *trajectories as u64,
        _ => 0,
    }
}

pub(crate) fn execute_job<P: ProfileSink>(
    backend: &Backend,
    compiled: &CompiledArtifact,
    cache_hit: bool,
    job: PreparedJob,
    sink: &P,
) -> (JobResult, u64) {
    let t0 = Instant::now();
    let mut bind_ns = 0u64;
    let output = catch_unwind(AssertUnwindSafe(|| {
        execute_spec(backend, compiled, &job, &mut bind_ns, sink)
    }))
    .unwrap_or_else(|payload| {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "worker panicked".to_string());
        Err(JobError::execute(message))
    });
    let result = JobResult {
        id: job.id,
        seed: job.seed,
        cache_hit,
        elapsed_ns: t0.elapsed().as_nanos() as u64,
        output,
    };
    (result, bind_ns)
}

/// The spec dispatch of [`execute_job`]. Binds are timed into `bind_ns`
/// so the metrics can split per-job worker time into bind vs execute.
///
/// The four trajectory kinds ride the schedule-template path:
/// [`hgp_core::compile::CompiledCircuit::bind_replay`] /
/// [`hgp_core::compile::CompiledProgram::bind_replay`] substitute the
/// job's parameters into the tape recorded at compile time — no
/// per-dispatch schedule walk — and the replay engine runs the shots
/// with zero per-shot allocation, bit-identical to the reference
/// trajectory engine.
///
/// The five exact kinds (`DensityMatrix`/`Counts`/`Expectation` and
/// their hybrid twins) ride the analogous exact-path template:
/// `bind_exact` substitutes into the precompiled superoperator tape and
/// `run_exact_replay` evolves the density matrix with resolved channels
/// — no schedule walk, no Kraus re-embedding, no per-Kraus clones —
/// pinned against the reference density walk (bit-identical on
/// order-preserving ops, ≤ 1e-12 elementwise on resolved multi-Kraus
/// channels; see `hgp_sim::replay::exact`).
fn execute_spec<P: ProfileSink>(
    backend: &Backend,
    compiled: &CompiledArtifact,
    job: &PreparedJob,
    bind_ns: &mut u64,
    sink: &P,
) -> Result<JobOutput, JobError> {
    match (compiled, &job.spec) {
        (CompiledArtifact::Circuit(compiled), spec) if !spec.is_hybrid() => match spec {
            JobSpec::StateVector => {
                let bound = timed_bind(bind_ns, || compiled.circuit().bind(&job.params));
                let wire = StateVector::execute(&bound).expect("compiled circuits bind fully");
                Ok(JobOutput::StateVector {
                    probabilities: compiled.decode_probabilities(&wire.probabilities()),
                })
            }
            JobSpec::DensityMatrix => {
                let exec = compiled.executor(backend);
                let tape = timed_bind(bind_ns, || compiled.bind_exact(&exec, &job.params));
                let rho = exec.run_exact_replay_profiled(&tape, sink);
                Ok(JobOutput::DensityMatrix {
                    probabilities: compiled.decode_probabilities(&rho.probabilities()),
                    purity: rho.purity(),
                })
            }
            JobSpec::Counts { shots } => {
                let exec = compiled.executor(backend);
                let tape = timed_bind(bind_ns, || compiled.bind_exact(&exec, &job.params));
                let rho = exec.run_exact_replay_profiled(&tape, sink);
                let counts = exec.sample_state(&rho, *shots, job.seed);
                Ok(JobOutput::Counts(compiled.decode_counts(&counts)))
            }
            JobSpec::Expectation { observable } => {
                let exec = compiled.executor(backend);
                let tape = timed_bind(bind_ns, || compiled.bind_exact(&exec, &job.params));
                let rho = exec.run_exact_replay_profiled(&tape, sink);
                Ok(JobOutput::Expectation {
                    value: SimBackend::expectation(&rho, &compiled.wire_observable(observable)),
                })
            }
            JobSpec::TrajectoryCounts { shots } => {
                // Template path: substitute params into the schedule
                // recorded at compile time; trajectory i draws its
                // randomness from stream position (job seed, i).
                let exec = compiled.executor(backend);
                let replay = timed_bind(bind_ns, || compiled.bind_replay(&exec, &job.params));
                let counts = exec.sample_replay_profiled(&replay, *shots, job.seed, sink);
                Ok(JobOutput::TrajectoryCounts(compiled.decode_counts(&counts)))
            }
            JobSpec::TrajectoryExpectation {
                observable,
                trajectories,
            } => {
                let exec = compiled.executor(backend);
                let replay = timed_bind(bind_ns, || compiled.bind_replay(&exec, &job.params));
                let (value, std_error) = exec.expectation_replay_profiled(
                    &replay,
                    &compiled.wire_observable(observable),
                    *trajectories,
                    job.seed,
                    sink,
                );
                Ok(JobOutput::TrajectoryExpectation {
                    value,
                    std_error,
                    trajectories: *trajectories,
                })
            }
            _ => unreachable!("validated spec/program pairing"),
        },
        (CompiledArtifact::Hybrid(compiled), spec) => match spec {
            JobSpec::HybridCounts { shots } => {
                let exec = compiled.executor(backend);
                let tape = timed_bind(bind_ns, || compiled.bind_exact(&exec, &job.params));
                let rho = exec.run_exact_replay_profiled(&tape, sink);
                let counts = exec.sample_state(&rho, *shots, job.seed);
                Ok(JobOutput::Counts(compiled.decode_counts(&counts)))
            }
            JobSpec::HybridExpectation { observable } => {
                let exec = compiled.executor(backend);
                let tape = timed_bind(bind_ns, || compiled.bind_exact(&exec, &job.params));
                let rho = exec.run_exact_replay_profiled(&tape, sink);
                Ok(JobOutput::Expectation {
                    value: SimBackend::expectation(&rho, &compiled.wire_observable(observable)),
                })
            }
            JobSpec::HybridTrajectoryCounts { shots } => {
                let exec = compiled.executor(backend);
                let replay = timed_bind(bind_ns, || compiled.bind_replay(&exec, &job.params));
                let counts = exec.sample_replay_profiled(&replay, *shots, job.seed, sink);
                Ok(JobOutput::TrajectoryCounts(compiled.decode_counts(&counts)))
            }
            JobSpec::HybridTrajectoryExpectation {
                observable,
                trajectories,
            } => {
                let exec = compiled.executor(backend);
                let replay = timed_bind(bind_ns, || compiled.bind_replay(&exec, &job.params));
                let (value, std_error) = exec.expectation_replay_profiled(
                    &replay,
                    &compiled.wire_observable(observable),
                    *trajectories,
                    job.seed,
                    sink,
                );
                Ok(JobOutput::TrajectoryExpectation {
                    value,
                    std_error,
                    trajectories: *trajectories,
                })
            }
            _ => unreachable!("validated spec/program pairing"),
        },
        _ => unreachable!("validated spec/program pairing"),
    }
}
