#![forbid(unsafe_code)]

//! `hgp_serve` — the batched job-execution service over the hybrid
//! gate-pulse engine.
//!
//! The workloads this workspace reproduces are *shape-repetitive*:
//! thousands of QAOA evaluations that differ only in bound parameters.
//! Hand-driving [`hgp_core::executor::Executor`] re-transpiles and
//! re-allocates per call; this crate is the serving layer that
//! amortizes all of that:
//!
//! - [`job`]: serde-annotated, JSON-serializable [`JobRequest`] /
//!   [`JobResult`] types covering statevector, density-matrix,
//!   sampled-counts, and expectation-value workloads, plus the
//!   stochastic-trajectory pair [`JobSpec::TrajectoryCounts`] /
//!   [`JobSpec::TrajectoryExpectation`] — noisy results at `O(2^n)`
//!   statevector cost per shot, the only serve path that reaches
//!   12-20+ qubit noisy workloads,
//! - [`cache`]: a structural-hash LRU [`ProgramCache`] of compiled
//!   programs — transpilation happens once per circuit *shape*
//!   ([`hgp_circuit::Circuit::structural_key`]), parameter binding at
//!   dispatch ([`hgp_core::compile`]),
//! - [`service`]: the worker-pool [`Service`] (std threads + channels)
//!   with same-shape batching and per-job deterministic seed derivation
//!   ([`hgp_sim::seed`]) — any concurrent schedule is bit-identical to
//!   sequential execution,
//! - [`metrics`]: throughput/latency/cache accounting
//!   ([`ServeMetrics`]) — batch wall time, per-stage latencies, and the
//!   daemon's queue gauge / per-priority admission counters,
//! - [`json`]: the canonical wire format ([`json::JsonCodec`]),
//!   self-contained because the vendored serde facade is a no-op,
//! - [`daemon`]: the long-lived serving [`Daemon`] — a persistent
//!   worker pool behind a bounded, priority-classed submission queue
//!   with streaming [`ResultStream`] delivery, admission control and
//!   backpressure ([`Rejected`]), and a graceful draining shutdown;
//!   shares the batch path's worker core, so the bit-identity contract
//!   holds across both,
//! - [`wire`]: the TCP front end — line-delimited JSON
//!   [`WireRequest`] / [`WireResponse`] envelopes over a socket,
//!   served by [`WireServer`] and spoken by [`WireClient`].
//!
//! # Example
//!
//! ```
//! use hgp_core::qaoa::qaoa_circuit;
//! use hgp_device::Backend;
//! use hgp_graph::instances;
//! use hgp_serve::{JobRequest, JobSpec, ServeConfig, Service};
//!
//! let backend = Backend::ibmq_guadalupe();
//! let graph = instances::task1_three_regular_6();
//! let circuit = qaoa_circuit(&graph, 1); // parametrized: one shape
//! let mut service = Service::new(&backend, ServeConfig::new(vec![0, 1, 2, 3, 4, 5]));
//! let jobs = (0..4)
//!     .map(|i| {
//!         let gamma = 0.1 * (i + 1) as f64;
//!         JobRequest::new(circuit.clone(), vec![gamma, 0.25], JobSpec::Counts { shots: 256 })
//!     })
//!     .collect();
//! let results = service.run_batch(jobs);
//! assert_eq!(results.len(), 4);
//! // One shape => one compilation; every later job hits the cache.
//! assert_eq!(service.metrics().cache_misses, 1);
//! assert_eq!(service.metrics().cache_hits, 0); // same batch compiled it once
//! let again = service.run_batch(vec![JobRequest::new(
//!     circuit.clone(),
//!     vec![0.3, 0.25],
//!     JobSpec::StateVector,
//! )]);
//! assert!(again[0].cache_hit);
//! ```

pub mod cache;
pub mod daemon;
pub mod job;
pub mod json;
pub mod metrics;
pub mod service;
pub mod wire;

pub use cache::{CompiledArtifact, ProgramCache};
pub use daemon::{Daemon, DaemonConfig, ResultStream};
pub use hgp_obs::{FlightRecorder, Histogram, JobTrace, OpProfileSnapshot, Span, SpanKind};
pub use job::{
    JobError, JobId, JobOutput, JobProgram, JobRequest, JobResult, JobSpec, JobStage, Priority,
    Rejected,
};
pub use metrics::ServeMetrics;
pub use service::{ServeConfig, Service};
pub use wire::{WireClient, WireRequest, WireResponse, WireServer};
