//! Job and result types — the service's wire format.
//!
//! A [`JobRequest`] names a (possibly parametrized) logical circuit, the
//! parameter binding for this evaluation, and what to compute
//! ([`JobSpec`]). The service answers with a [`JobResult`] carrying the
//! [`JobOutput`] plus provenance: the job id, the sampling seed actually
//! used, whether the compiled program came from the cache, and the
//! execution latency.
//!
//! All types serialize through [`crate::json`] (see the `JsonCodec`
//! round-trip property suite) and derive the workspace's serde
//! annotations, so swapping a real serde backend in later is a
//! manifest-only change.

use serde::{Deserialize, Serialize};

use hgp_circuit::Circuit;
use hgp_math::pauli::PauliSum;
use hgp_sim::Counts;

/// Monotonically increasing job identifier, assigned at submission.
///
/// The id doubles as the job's position in the service's evaluation
/// stream: the default sampling seed is
/// `hgp_sim::seed::stream_seed(base_seed, id)`, which is what makes any
/// concurrent schedule bit-identical to sequential execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// What a job computes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobSpec {
    /// Ideal (noiseless) statevector simulation; returns the
    /// computational-basis probabilities in logical qubit order.
    StateVector,
    /// Noisy density-matrix execution through the machine-in-loop
    /// [`hgp_core::executor::Executor`]; returns probabilities (logical
    /// order, before readout confusion) and the state purity.
    DensityMatrix,
    /// Noisy execution plus `shots` sampled measurement outcomes with
    /// readout confusion — exactly what
    /// [`hgp_core::executor::Executor::sample`] returns, decoded to
    /// logical qubit order.
    Counts {
        /// Number of measurement shots.
        shots: usize,
    },
    /// Expectation value of an observable (given over logical qubits)
    /// on the noisy final state. Deterministic — no sampling.
    Expectation {
        /// The observable, width equal to the circuit.
        observable: PauliSum,
    },
    /// Noisy sampled counts via stochastic statevector trajectories —
    /// one `O(2^n)` trajectory (and one measurement shot, with
    /// shot-level readout confusion) per shot instead of one `O(4^n)`
    /// density-matrix run. The route to noisy sampling at widths the
    /// density matrix cannot reach.
    TrajectoryCounts {
        /// Number of shots (= trajectories).
        shots: usize,
    },
    /// Noisy expectation estimated as the mean of stochastic
    /// statevector trajectories; converges to the [`JobSpec::Expectation`]
    /// value at the Monte-Carlo rate, and the result carries its
    /// standard error.
    TrajectoryExpectation {
        /// The observable, width equal to the circuit.
        observable: PauliSum,
        /// Ensemble size.
        trajectories: usize,
    },
}

/// One unit of work submitted to the service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRequest {
    /// The logical circuit. Submit the *parametrized* circuit (not a
    /// pre-bound copy) so repeated shapes share one compiled program.
    pub circuit: Circuit,
    /// Binding for the circuit's free parameters
    /// (`len == circuit.n_params()`).
    pub params: Vec<f64>,
    /// What to compute.
    pub spec: JobSpec,
    /// Explicit sampling seed; `None` derives one from the service's
    /// base seed and the job id (the reproducible default).
    pub seed: Option<u64>,
}

impl JobRequest {
    /// A request with the default derived seed.
    pub fn new(circuit: Circuit, params: Vec<f64>, spec: JobSpec) -> Self {
        Self {
            circuit,
            params,
            spec,
            seed: None,
        }
    }

    /// Overrides the sampling seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }
}

/// The computed payload of a finished job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobOutput {
    /// Ideal probabilities, logical qubit order.
    StateVector {
        /// `2^n` computational-basis probabilities.
        probabilities: Vec<f64>,
    },
    /// Noisy-state probabilities and purity.
    DensityMatrix {
        /// `2^n` computational-basis probabilities, logical order.
        probabilities: Vec<f64>,
        /// `Tr(rho^2)` of the full wire state.
        purity: f64,
    },
    /// Sampled measurement outcomes, logical qubit order.
    Counts(Counts),
    /// The expectation value.
    Expectation {
        /// `<observable>` on the noisy final state.
        value: f64,
    },
    /// Trajectory-sampled measurement outcomes, logical qubit order.
    TrajectoryCounts(Counts),
    /// The trajectory estimate of an expectation value.
    TrajectoryExpectation {
        /// Ensemble mean of `<observable>` over the trajectories.
        value: f64,
        /// Standard error of the mean (`sigma / sqrt(N)`).
        std_error: f64,
        /// Ensemble size the estimate was computed from.
        trajectories: usize,
    },
}

/// A finished job: payload plus provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobResult {
    /// The job's id (submission order).
    pub id: JobId,
    /// The sampling seed used (derived or explicit). Recorded even for
    /// deterministic specs, so any result can be replayed.
    pub seed: u64,
    /// Whether the compiled program was already cached when this job's
    /// batch started (false exactly for jobs of a shape compiled for
    /// this batch).
    pub cache_hit: bool,
    /// Wall-clock execution time of this job on its worker.
    pub elapsed_ns: u64,
    /// The payload.
    pub output: JobOutput,
}
