//! Job and result types — the service's wire format.
//!
//! A [`JobRequest`] names a program ([`JobProgram`]: a possibly
//! parametrized logical circuit, or a hybrid gate-pulse
//! [`HybridShape`]), the parameter binding for this evaluation, and what
//! to compute ([`JobSpec`]). The service answers with a [`JobResult`]
//! carrying either the [`JobOutput`] or a typed per-job [`JobError`] —
//! a malformed request fails *its* job, never the batch or a worker
//! thread — plus provenance: the job id, the sampling seed actually
//! used, whether the compiled program came from the cache, and the
//! execution latency.
//!
//! All types serialize through [`crate::json`] (see the `JsonCodec`
//! round-trip property suite) and derive the workspace's serde
//! annotations, so swapping a real serde backend in later is a
//! manifest-only change.

use std::fmt;

use serde::{Deserialize, Serialize};

use hgp_circuit::Circuit;
use hgp_core::compile::HybridShape;
use hgp_math::pauli::PauliSum;
use hgp_sim::Counts;

/// Monotonically increasing job identifier, assigned at submission.
///
/// The id doubles as the job's position in the service's evaluation
/// stream: the default sampling seed is
/// `hgp_sim::seed::stream_seed(base_seed, id)`, which is what makes any
/// concurrent schedule bit-identical to sequential execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Scheduling class of a daemon submission.
///
/// The daemon's queue is **strict-priority with FIFO within a class**:
/// a worker always takes the oldest `Interactive` job first, then the
/// oldest `Batch` job, then the oldest `Background` job. The policy is
/// deterministic given the admission order — and because a job's output
/// is a pure function of `(compiled shape, params, seed)`, all fixed at
/// admission, the *results* are bit-identical under any priority mix;
/// priority only decides who waits.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum Priority {
    /// Latency-sensitive probes (an optimizer waiting on its objective).
    Interactive,
    /// The default class: ordinary batch work.
    #[default]
    Batch,
    /// Best-effort work that yields to everything else (sweeps,
    /// recalibration).
    Background,
}

impl Priority {
    /// All classes, highest priority first — the order workers scan.
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Batch, Priority::Background];

    /// Dense index of this class (0 = `Interactive`), used by the
    /// per-priority metrics arrays.
    pub fn index(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Batch => 1,
            Priority::Background => 2,
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Priority::Interactive => write!(f, "interactive"),
            Priority::Batch => write!(f, "batch"),
            Priority::Background => write!(f, "background"),
        }
    }
}

/// Why the daemon refused a submission at admission.
///
/// Rejection happens **before** a job consumes an id/seed stream
/// position — a rejected submission leaves no trace in the evaluation
/// stream, so retrying it later (or never) cannot perturb any other
/// job's seed. Contrast with [`JobError`]: an *admitted* job that fails
/// validation or compilation still consumes its position and is
/// answered through its result stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Rejected {
    /// The bounded submission queue cannot take the group. Back off and
    /// resubmit; nothing was admitted (groups are all-or-nothing).
    QueueFull {
        /// Jobs queued when the submission arrived.
        depth: usize,
        /// The configured queue bound.
        limit: usize,
    },
    /// A job asks for more sampled shots / trajectories than the
    /// daemon's per-job admission bound — the serving-level analogue of
    /// the wire format's width bounds.
    TooLarge {
        /// Shots the largest offending job requested.
        shots: u64,
        /// The configured per-job bound.
        limit: u64,
    },
    /// The daemon is draining for shutdown and no longer admits work.
    ShuttingDown,
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejected::QueueFull { depth, limit } => {
                write!(f, "queue full: {depth} of {limit} slots occupied")
            }
            Rejected::TooLarge { shots, limit } => {
                write!(
                    f,
                    "job too large: {shots} shots exceeds the per-job bound {limit}"
                )
            }
            Rejected::ShuttingDown => write!(f, "daemon is shutting down"),
        }
    }
}

impl std::error::Error for Rejected {}

/// The program a job executes.
///
/// Both families participate in the same structural-hash compiled cache
/// and the same id/seed stream; they differ only in what the compile
/// step produces (a routed wire circuit vs a hybrid gate-pulse
/// artifact) and which [`JobSpec`]s apply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobProgram {
    /// A (possibly parametrized) logical circuit. Submit the
    /// *parametrized* circuit (not a pre-bound copy) so repeated shapes
    /// share one compiled program. Pairs with the circuit
    /// [`JobSpec`] kinds.
    Circuit(Circuit),
    /// A hybrid gate-pulse QAOA shape (graph, depth, mixer duration,
    /// pass options); parameters are the
    /// [`hgp_core::models::HybridModel`] layout
    /// `[gamma, theta, phase_0, f_0, ...]` per layer. Pairs with the
    /// `Hybrid*` [`JobSpec`] kinds.
    Hybrid(HybridShape),
}

impl JobProgram {
    /// The shape's cache key ([`Circuit::structural_key`] /
    /// [`HybridShape::structural_key`]; hybrid keys carry a leading
    /// domain tag that keeps them apart from the untagged circuit
    /// encoding).
    pub fn structural_key(&self) -> u64 {
        match self {
            JobProgram::Circuit(circuit) => circuit.structural_key(),
            JobProgram::Hybrid(shape) => shape.structural_key(),
        }
    }

    /// Number of logical qubits.
    pub fn n_qubits(&self) -> usize {
        match self {
            JobProgram::Circuit(circuit) => circuit.n_qubits(),
            JobProgram::Hybrid(shape) => shape.n_qubits(),
        }
    }

    /// Number of parameters a dispatch must bind.
    pub fn n_params(&self) -> usize {
        match self {
            JobProgram::Circuit(circuit) => circuit.n_params(),
            JobProgram::Hybrid(shape) => shape.n_params(),
        }
    }
}

/// What a job computes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobSpec {
    /// Ideal (noiseless) statevector simulation; returns the
    /// computational-basis probabilities in logical qubit order.
    StateVector,
    /// Noisy density-matrix execution through the machine-in-loop
    /// [`hgp_core::executor::Executor`]; returns probabilities (logical
    /// order, before readout confusion) and the state purity.
    DensityMatrix,
    /// Noisy execution plus `shots` sampled measurement outcomes with
    /// readout confusion — exactly what
    /// [`hgp_core::executor::Executor::sample`] returns, decoded to
    /// logical qubit order.
    Counts {
        /// Number of measurement shots.
        shots: usize,
    },
    /// Expectation value of an observable (given over logical qubits)
    /// on the noisy final state. Deterministic — no sampling.
    Expectation {
        /// The observable, width equal to the circuit.
        observable: PauliSum,
    },
    /// Noisy sampled counts via stochastic statevector trajectories —
    /// one `O(2^n)` trajectory (and one measurement shot, with
    /// shot-level readout confusion) per shot instead of one `O(4^n)`
    /// density-matrix run. The route to noisy sampling at widths the
    /// density matrix cannot reach.
    TrajectoryCounts {
        /// Number of shots (= trajectories).
        shots: usize,
    },
    /// Noisy expectation estimated as the mean of stochastic
    /// statevector trajectories; converges to the [`JobSpec::Expectation`]
    /// value at the Monte-Carlo rate, and the result carries its
    /// standard error.
    TrajectoryExpectation {
        /// The observable, width equal to the circuit.
        observable: PauliSum,
        /// Ensemble size.
        trajectories: usize,
    },
    /// Noisy execution of a bound hybrid gate-pulse program
    /// ([`JobProgram::Hybrid`]) plus `shots` sampled measurement
    /// outcomes with readout confusion, decoded to logical qubit order —
    /// the hybrid analogue of [`JobSpec::Counts`].
    HybridCounts {
        /// Number of measurement shots.
        shots: usize,
    },
    /// Expectation value of an observable (over logical qubits) on the
    /// noisy final state of a bound hybrid program. Deterministic — no
    /// sampling. The hybrid analogue of [`JobSpec::Expectation`].
    HybridExpectation {
        /// The observable, width equal to the hybrid shape's graph.
        observable: PauliSum,
    },
    /// Hybrid sampled counts via stochastic statevector trajectories:
    /// pulse blocks enter the recorded schedule as unitary ops with
    /// duration-scaled noise channels, one `O(2^n)` trajectory per shot.
    HybridTrajectoryCounts {
        /// Number of shots (= trajectories).
        shots: usize,
    },
    /// Hybrid noisy expectation estimated from stochastic trajectories,
    /// with its standard error.
    HybridTrajectoryExpectation {
        /// The observable, width equal to the hybrid shape's graph.
        observable: PauliSum,
        /// Ensemble size.
        trajectories: usize,
    },
}

impl JobSpec {
    /// Number of job kinds ([`JobSpec`] variants) — the dimension of
    /// the per-kind metrics arrays.
    pub const KIND_COUNT: usize = 10;

    /// Stable snake_case names per kind, indexed by
    /// [`JobSpec::kind_index`]; used as Prometheus label values and
    /// trace annotations.
    pub const KIND_NAMES: [&'static str; JobSpec::KIND_COUNT] = [
        "state_vector",
        "density_matrix",
        "counts",
        "expectation",
        "trajectory_counts",
        "trajectory_expectation",
        "hybrid_counts",
        "hybrid_expectation",
        "hybrid_trajectory_counts",
        "hybrid_trajectory_expectation",
    ];

    /// Dense index of this spec's kind (variant), used by the per-kind
    /// metrics histograms and job traces.
    pub fn kind_index(&self) -> usize {
        match self {
            JobSpec::StateVector => 0,
            JobSpec::DensityMatrix => 1,
            JobSpec::Counts { .. } => 2,
            JobSpec::Expectation { .. } => 3,
            JobSpec::TrajectoryCounts { .. } => 4,
            JobSpec::TrajectoryExpectation { .. } => 5,
            JobSpec::HybridCounts { .. } => 6,
            JobSpec::HybridExpectation { .. } => 7,
            JobSpec::HybridTrajectoryCounts { .. } => 8,
            JobSpec::HybridTrajectoryExpectation { .. } => 9,
        }
    }

    /// The stable name of this spec's kind.
    pub fn kind_name(&self) -> &'static str {
        JobSpec::KIND_NAMES[self.kind_index()]
    }

    /// Whether this spec executes a hybrid gate-pulse program (and thus
    /// requires a [`JobProgram::Hybrid`] payload).
    pub fn is_hybrid(&self) -> bool {
        matches!(
            self,
            JobSpec::HybridCounts { .. }
                | JobSpec::HybridExpectation { .. }
                | JobSpec::HybridTrajectoryCounts { .. }
                | JobSpec::HybridTrajectoryExpectation { .. }
        )
    }
}

/// One unit of work submitted to the service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRequest {
    /// The program to execute (a circuit or a hybrid shape).
    pub program: JobProgram,
    /// Binding for the program's free parameters
    /// (`len == program.n_params()`).
    pub params: Vec<f64>,
    /// What to compute.
    pub spec: JobSpec,
    /// Explicit sampling seed; `None` derives one from the service's
    /// base seed and the job id (the reproducible default).
    pub seed: Option<u64>,
}

impl JobRequest {
    /// A circuit request with the default derived seed.
    pub fn new(circuit: Circuit, params: Vec<f64>, spec: JobSpec) -> Self {
        Self {
            program: JobProgram::Circuit(circuit),
            params,
            spec,
            seed: None,
        }
    }

    /// A hybrid gate-pulse request with the default derived seed.
    pub fn hybrid(shape: HybridShape, params: Vec<f64>, spec: JobSpec) -> Self {
        Self {
            program: JobProgram::Hybrid(shape),
            params,
            spec,
            seed: None,
        }
    }

    /// Overrides the sampling seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }
}

/// The stage at which a job failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobStage {
    /// Request validation (parameter counts, observable widths, shot
    /// counts, spec/program pairing) — before any execution.
    Validate,
    /// Shape compilation (routing, pulse-block compilation, layout).
    Compile,
    /// Execution on a worker.
    Execute,
}

impl fmt::Display for JobStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobStage::Validate => write!(f, "validate"),
            JobStage::Compile => write!(f, "compile"),
            JobStage::Execute => write!(f, "execute"),
        }
    }
}

/// A typed per-job failure.
///
/// Jobs fail *individually*: a poisoned request in a batch produces one
/// `JobError` result while every other job runs to completion, and the
/// id/seed stream advances exactly as if the job had succeeded — so a
/// retried batch with the bad job fixed reproduces the good jobs bit
/// for bit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobError {
    /// Where the job failed.
    pub stage: JobStage,
    /// Human-readable cause.
    pub message: String,
}

impl JobError {
    /// A validation-stage error.
    pub fn validate(message: impl Into<String>) -> Self {
        Self {
            stage: JobStage::Validate,
            message: message.into(),
        }
    }

    /// A compile-stage error.
    pub fn compile(message: impl Into<String>) -> Self {
        Self {
            stage: JobStage::Compile,
            message: message.into(),
        }
    }

    /// An execute-stage error.
    pub fn execute(message: impl Into<String>) -> Self {
        Self {
            stage: JobStage::Execute,
            message: message.into(),
        }
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} failed: {}", self.stage, self.message)
    }
}

impl std::error::Error for JobError {}

/// The computed payload of a finished job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobOutput {
    /// Ideal probabilities, logical qubit order.
    StateVector {
        /// `2^n` computational-basis probabilities.
        probabilities: Vec<f64>,
    },
    /// Noisy-state probabilities and purity.
    DensityMatrix {
        /// `2^n` computational-basis probabilities, logical order.
        probabilities: Vec<f64>,
        /// `Tr(rho^2)` of the full wire state.
        purity: f64,
    },
    /// Sampled measurement outcomes, logical qubit order.
    Counts(Counts),
    /// The expectation value.
    Expectation {
        /// `<observable>` on the noisy final state.
        value: f64,
    },
    /// Trajectory-sampled measurement outcomes, logical qubit order.
    TrajectoryCounts(Counts),
    /// The trajectory estimate of an expectation value.
    TrajectoryExpectation {
        /// Ensemble mean of `<observable>` over the trajectories.
        value: f64,
        /// Standard error of the mean (`sigma / sqrt(N)`).
        std_error: f64,
        /// Ensemble size the estimate was computed from.
        trajectories: usize,
    },
}

/// A finished job: payload (or typed failure) plus provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobResult {
    /// The job's id (submission order).
    pub id: JobId,
    /// The sampling seed used (derived or explicit). Recorded even for
    /// deterministic specs and failed jobs, so any result can be
    /// replayed.
    pub seed: u64,
    /// Whether the compiled program was already cached when this job's
    /// batch started (false exactly for jobs of a shape compiled for
    /// this batch, and for jobs that failed before compilation).
    pub cache_hit: bool,
    /// Wall-clock execution time of this job on its worker (0 for jobs
    /// rejected at validation).
    pub elapsed_ns: u64,
    /// The payload, or the typed failure.
    pub output: Result<JobOutput, JobError>,
}

impl JobResult {
    /// The successful payload.
    ///
    /// # Panics
    ///
    /// Panics (with the job error) if the job failed.
    pub fn unwrap_output(&self) -> &JobOutput {
        match &self.output {
            Ok(output) => output,
            Err(e) => panic!("{}: {e}", self.id),
        }
    }

    /// The failure, if the job failed.
    pub fn error(&self) -> Option<&JobError> {
        self.output.as_ref().err()
    }
}
