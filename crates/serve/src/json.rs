//! Canonical JSON serialization for the service's wire types.
//!
//! The workspace's `serde` is a vendored no-op facade (the build
//! container has no registry access), so the serve layer ships its own
//! self-contained JSON codec: a minimal [`Value`] model, a strict
//! parser, and [`JsonCodec`] implementations for every public job and
//! result type plus the simulator types they embed ([`Counts`],
//! [`Circuit`], [`PauliSum`]). When the real serde comes back, these
//! codecs define the wire format its derives must reproduce.
//!
//! # Fidelity
//!
//! - `f64` values are written with Rust's shortest round-trip formatting
//!   and re-parsed with `str::parse`, so every finite double survives a
//!   round trip **bit-exactly** (the property suite pins this).
//!   Non-finite values are rejected at encode time — JSON has no
//!   representation for them.
//! - `u64` values (seeds, shot counts, job ids) are written as decimal
//!   integers and parsed as integers, never through `f64`, so values
//!   above `2^53` survive.
//!
//! ```
//! use hgp_serve::json::JsonCodec;
//! use hgp_sim::Counts;
//!
//! let mut counts = Counts::new(2);
//! counts.record(0b11, 60);
//! counts.record(0b00, 40);
//! let text = counts.to_json_string();
//! assert_eq!(Counts::from_json_str(&text).unwrap(), counts);
//! ```

use std::fmt;

use hgp_circuit::{Circuit, Gate, Instruction, Param, ParamId};
use hgp_core::compile::HybridShape;
use hgp_core::models::GateModelOptions;
use hgp_graph::Graph;
use hgp_math::pauli::{Pauli, PauliString, PauliSum};
use hgp_obs::{Histogram, JobTrace, OpProfileSnapshot, Span, SpanKind};
use hgp_sim::Counts;

use crate::job::{
    JobError, JobId, JobOutput, JobProgram, JobRequest, JobResult, JobSpec, JobStage, Priority,
    Rejected,
};
use crate::metrics::ServeMetrics;

/// A JSON document.
///
/// Numbers are kept as their literal text ([`Value::Num`]) so integer
/// and floating interpretations are both lossless; accessors parse on
/// demand.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its literal text.
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (insertion-ordered).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// A number value for a finite `f64`.
    ///
    /// # Panics
    ///
    /// Panics on NaN or infinity — JSON cannot represent them.
    pub fn from_f64(v: f64) -> Value {
        assert!(v.is_finite(), "JSON cannot represent {v}");
        Value::Num(format!("{v}"))
    }

    /// A number value for a `u64`.
    pub fn from_u64(v: u64) -> Value {
        Value::Num(v.to_string())
    }

    /// A number value for a `usize`.
    pub fn from_usize(v: usize) -> Value {
        Value::Num(v.to_string())
    }

    /// The value as an `f64`.
    ///
    /// # Errors
    ///
    /// Errors if this is not a parsable number.
    pub fn as_f64(&self) -> Result<f64, String> {
        match self {
            Value::Num(s) => s.parse().map_err(|e| format!("bad number {s:?}: {e}")),
            other => Err(format!("expected number, got {other:?}")),
        }
    }

    /// The value as a `u64` (rejects fractional/negative literals).
    ///
    /// # Errors
    ///
    /// Errors if this is not an unsigned integer literal.
    pub fn as_u64(&self) -> Result<u64, String> {
        match self {
            Value::Num(s) => s.parse().map_err(|e| format!("bad integer {s:?}: {e}")),
            other => Err(format!("expected integer, got {other:?}")),
        }
    }

    /// The value as a `usize`.
    ///
    /// # Errors
    ///
    /// Errors if this is not an unsigned integer literal in range.
    pub fn as_usize(&self) -> Result<usize, String> {
        usize::try_from(self.as_u64()?).map_err(|e| e.to_string())
    }

    /// The value as a `bool`.
    ///
    /// # Errors
    ///
    /// Errors if this is not a boolean.
    pub fn as_bool(&self) -> Result<bool, String> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {other:?}")),
        }
    }

    /// The value as a string slice.
    ///
    /// # Errors
    ///
    /// Errors if this is not a string.
    pub fn as_str(&self) -> Result<&str, String> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(format!("expected string, got {other:?}")),
        }
    }

    /// The value as an array slice.
    ///
    /// # Errors
    ///
    /// Errors if this is not an array.
    pub fn as_arr(&self) -> Result<&[Value], String> {
        match self {
            Value::Arr(items) => Ok(items),
            other => Err(format!("expected array, got {other:?}")),
        }
    }

    /// Member `key` of an object.
    ///
    /// # Errors
    ///
    /// Errors if this is not an object or the key is absent.
    pub fn get(&self, key: &str) -> Result<&Value, String> {
        self.opt(key)?.ok_or_else(|| format!("missing key {key:?}"))
    }

    /// Member `key` of an object, if present.
    ///
    /// # Errors
    ///
    /// Errors if this is not an object.
    pub fn opt(&self, key: &str) -> Result<Option<&Value>, String> {
        match self {
            Value::Obj(members) => Ok(members.iter().find(|(k, _)| k == key).map(|(_, v)| v)),
            other => Err(format!("expected object, got {other:?}")),
        }
    }

    /// Parses a JSON document (strict: one value, no trailing input).
    ///
    /// # Errors
    ///
    /// Errors with a position-annotated message on malformed input.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(s) => write!(f, "{s}"),
            Value::Str(s) => {
                write!(f, "\"")?;
                for c in s.chars() {
                    match c {
                        '"' => write!(f, "\\\"")?,
                        '\\' => write!(f, "\\\\")?,
                        '\n' => write!(f, "\\n")?,
                        '\r' => write!(f, "\\r")?,
                        '\t' => write!(f, "\\t")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => write!(f, "{c}")?,
                    }
                }
                write!(f, "\"")
            }
            Value::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Obj(members) => {
                write!(f, "{{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}:{v}", Value::Str(k.clone()))?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Recursive-descent JSON parser over bytes.
struct Parser<'s> {
    bytes: &'s [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected {word} at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let s = p.pos;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            p.pos > s
        };
        // Integer part: "0" or a nonzero-led digit run (JSON forbids
        // leading zeros).
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(format!("leading zero at byte {start}"));
                }
            }
            Some(b'1'..=b'9') => {
                digits(self);
            }
            _ => return Err(format!("bad number at byte {start}")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(format!("bad fraction at byte {start}"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(format!("bad exponent at byte {start}"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        Ok(Value::Num(text.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| format!("invalid UTF-8 in string: {e}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("bad low surrogate".to_string());
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("bad code point {code:#x}"))?,
                            );
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| format!("bad \\u escape {s:?}"))?;
        self.pos = end;
        Ok(v)
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Types with a canonical JSON representation.
pub trait JsonCodec: Sized {
    /// Encodes to a JSON value.
    fn to_json(&self) -> Value;

    /// Decodes from a JSON value, validating all invariants.
    ///
    /// # Errors
    ///
    /// Errors on structural mismatch or invariant violations (bad
    /// widths, out-of-range indices, unknown tags).
    fn from_json(value: &Value) -> Result<Self, String>;

    /// Encodes to JSON text.
    fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }

    /// Decodes from JSON text.
    ///
    /// # Errors
    ///
    /// Errors on parse failure or [`JsonCodec::from_json`] failure.
    fn from_json_str(text: &str) -> Result<Self, String> {
        Self::from_json(&Value::parse(text)?)
    }
}

pub(crate) fn obj(members: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn f64_arr(values: &[f64]) -> Value {
    Value::Arr(values.iter().map(|&v| Value::from_f64(v)).collect())
}

fn f64_vec(value: &Value) -> Result<Vec<f64>, String> {
    value.as_arr()?.iter().map(Value::as_f64).collect()
}

impl JsonCodec for Counts {
    fn to_json(&self) -> Value {
        obj(vec![
            ("n_qubits", Value::from_usize(self.n_qubits())),
            (
                "counts",
                Value::Arr(
                    self.iter()
                        .map(|(b, c)| Value::Arr(vec![Value::from_usize(b), Value::from_u64(c)]))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(value: &Value) -> Result<Self, String> {
        let n_qubits = value.get("n_qubits")?.as_usize()?;
        if n_qubits == 0 || n_qubits > usize::BITS as usize - 1 {
            return Err(format!("bad qubit count {n_qubits}"));
        }
        let mut counts = Counts::new(n_qubits);
        for pair in value.get("counts")?.as_arr()? {
            let pair = pair.as_arr()?;
            if pair.len() != 2 {
                return Err("count entries are [bitstring, count] pairs".to_string());
            }
            let bitstring = pair[0].as_usize()?;
            if bitstring >= 1 << n_qubits {
                return Err(format!("bitstring {bitstring} out of range"));
            }
            counts.record(bitstring, pair[1].as_u64()?);
        }
        Ok(counts)
    }
}

impl JsonCodec for Param {
    fn to_json(&self) -> Value {
        match *self {
            Param::Bound(v) => obj(vec![("b", Value::from_f64(v))]),
            Param::Free { id, scale, offset } => obj(vec![(
                "f",
                Value::Arr(vec![
                    Value::from_usize(id.0),
                    Value::from_f64(scale),
                    Value::from_f64(offset),
                ]),
            )]),
        }
    }

    fn from_json(value: &Value) -> Result<Self, String> {
        if let Some(v) = value.opt("b")? {
            return Ok(Param::Bound(v.as_f64()?));
        }
        if let Some(v) = value.opt("f")? {
            let parts = v.as_arr()?;
            if parts.len() != 3 {
                return Err("free params are [id, scale, offset]".to_string());
            }
            return Ok(Param::Free {
                id: ParamId(parts[0].as_usize()?),
                scale: parts[1].as_f64()?,
                offset: parts[2].as_f64()?,
            });
        }
        Err("param must have key \"b\" or \"f\"".to_string())
    }
}

impl JsonCodec for Gate {
    fn to_json(&self) -> Value {
        obj(vec![
            ("name", Value::Str(self.name().to_string())),
            (
                "params",
                Value::Arr(self.params().iter().map(JsonCodec::to_json).collect()),
            ),
        ])
    }

    fn from_json(value: &Value) -> Result<Self, String> {
        let name = value.get("name")?.as_str()?;
        let params: Vec<Param> = value
            .get("params")?
            .as_arr()?
            .iter()
            .map(Param::from_json)
            .collect::<Result<_, _>>()?;
        let arity = |n: usize| -> Result<(), String> {
            if params.len() == n {
                Ok(())
            } else {
                Err(format!("gate {name} takes {n} parameter(s)"))
            }
        };
        let fixed = |g: Gate| -> Result<Gate, String> {
            arity(0)?;
            Ok(g)
        };
        match name {
            "id" => fixed(Gate::I),
            "x" => fixed(Gate::X),
            "y" => fixed(Gate::Y),
            "z" => fixed(Gate::Z),
            "h" => fixed(Gate::H),
            "s" => fixed(Gate::S),
            "sdg" => fixed(Gate::Sdg),
            "t" => fixed(Gate::T),
            "tdg" => fixed(Gate::Tdg),
            "sx" => fixed(Gate::SX),
            "cx" => fixed(Gate::CX),
            "cz" => fixed(Gate::CZ),
            "swap" => fixed(Gate::Swap),
            "rx" => {
                arity(1)?;
                Ok(Gate::Rx(params[0]))
            }
            "ry" => {
                arity(1)?;
                Ok(Gate::Ry(params[0]))
            }
            "rz" => {
                arity(1)?;
                Ok(Gate::Rz(params[0]))
            }
            "rzz" => {
                arity(1)?;
                Ok(Gate::Rzz(params[0]))
            }
            "rzx" => {
                arity(1)?;
                Ok(Gate::Rzx(params[0]))
            }
            "u3" => {
                arity(3)?;
                Ok(Gate::U3(params[0], params[1], params[2]))
            }
            other => Err(format!("unknown gate {other:?}")),
        }
    }
}

impl JsonCodec for Circuit {
    fn to_json(&self) -> Value {
        let instructions = self
            .instructions()
            .iter()
            .map(|inst| match inst {
                Instruction::Gate { gate, qubits } => obj(vec![
                    ("gate", gate.to_json()),
                    (
                        "qubits",
                        Value::Arr(qubits.iter().map(|&q| Value::from_usize(q)).collect()),
                    ),
                ]),
                Instruction::Barrier { qubits } => obj(vec![(
                    "barrier",
                    Value::Arr(qubits.iter().map(|&q| Value::from_usize(q)).collect()),
                )]),
                Instruction::Measure { qubit, cbit } => obj(vec![(
                    "measure",
                    Value::Arr(vec![Value::from_usize(*qubit), Value::from_usize(*cbit)]),
                )]),
            })
            .collect();
        obj(vec![
            ("n_qubits", Value::from_usize(self.n_qubits())),
            ("n_params", Value::from_usize(self.n_params())),
            ("instructions", Value::Arr(instructions)),
        ])
    }

    fn from_json(value: &Value) -> Result<Self, String> {
        let n_qubits = value.get("n_qubits")?.as_usize()?;
        if n_qubits == 0 {
            return Err("circuit must have at least one qubit".to_string());
        }
        let n_params = value.get("n_params")?.as_usize()?;
        let mut circuit = Circuit::new(n_qubits);
        circuit.add_params(n_params);
        let check_qubit = |q: usize| -> Result<usize, String> {
            if q < n_qubits {
                Ok(q)
            } else {
                Err(format!("qubit {q} out of range"))
            }
        };
        for inst in value.get("instructions")?.as_arr()? {
            if let Some(g) = inst.opt("gate")? {
                let gate = Gate::from_json(g)?;
                // Free-parameter ids must stay inside the declared table,
                // or binding would panic far from the decode site.
                for p in gate.params() {
                    if let Some(id) = p.param_id() {
                        if id.0 >= n_params {
                            return Err(format!("parameter {id} out of range"));
                        }
                    }
                }
                let qubits: Vec<usize> = inst
                    .get("qubits")?
                    .as_arr()?
                    .iter()
                    .map(|q| check_qubit(q.as_usize()?))
                    .collect::<Result<_, _>>()?;
                if qubits.len() != gate.n_qubits() {
                    return Err(format!("gate {} operand count", gate.name()));
                }
                if qubits.len() == 2 && qubits[0] == qubits[1] {
                    return Err("two-qubit gate operands must differ".to_string());
                }
                circuit.push(gate, &qubits);
            } else if let Some(b) = inst.opt("barrier")? {
                let qubits: Vec<usize> = b
                    .as_arr()?
                    .iter()
                    .map(|q| check_qubit(q.as_usize()?))
                    .collect::<Result<_, _>>()?;
                circuit
                    .instructions_mut()
                    .push(Instruction::Barrier { qubits });
            } else if let Some(m) = inst.opt("measure")? {
                let parts = m.as_arr()?;
                if parts.len() != 2 {
                    return Err("measure is [qubit, cbit]".to_string());
                }
                circuit.instructions_mut().push(Instruction::Measure {
                    qubit: check_qubit(parts[0].as_usize()?)?,
                    cbit: parts[1].as_usize()?,
                });
            } else {
                return Err("instruction must be gate/barrier/measure".to_string());
            }
        }
        Ok(circuit)
    }
}

impl JsonCodec for PauliSum {
    fn to_json(&self) -> Value {
        let terms = self
            .terms()
            .iter()
            .map(|t| {
                obj(vec![
                    ("coeff", Value::from_f64(t.coeff())),
                    (
                        "factors",
                        Value::Arr(
                            t.factors()
                                .iter()
                                .map(|&(q, p)| {
                                    Value::Arr(vec![
                                        Value::from_usize(q),
                                        Value::Str(p.to_string()),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        obj(vec![
            ("n_qubits", Value::from_usize(self.n_qubits())),
            ("terms", Value::Arr(terms)),
        ])
    }

    fn from_json(value: &Value) -> Result<Self, String> {
        let n_qubits = value.get("n_qubits")?.as_usize()?;
        if n_qubits == 0 {
            return Err("observable must have at least one qubit".to_string());
        }
        let mut terms = Vec::new();
        for term in value.get("terms")?.as_arr()? {
            let coeff = term.get("coeff")?.as_f64()?;
            let mut factors: Vec<(usize, Pauli)> = Vec::new();
            for factor in term.get("factors")?.as_arr()? {
                let parts = factor.as_arr()?;
                if parts.len() != 2 {
                    return Err("factors are [qubit, pauli] pairs".to_string());
                }
                let q = parts[0].as_usize()?;
                if q >= n_qubits {
                    return Err(format!("factor qubit {q} out of range"));
                }
                if factors.iter().any(|&(seen, _)| seen == q) {
                    return Err(format!("factor qubit {q} repeated"));
                }
                let letter = parts[1].as_str()?;
                let mut chars = letter.chars();
                let (Some(c), None) = (chars.next(), chars.next()) else {
                    return Err(format!("bad Pauli {letter:?}"));
                };
                factors.push((
                    q,
                    Pauli::from_char(c).map_err(|c| format!("bad Pauli {c:?}"))?,
                ));
            }
            terms.push(PauliString::new(n_qubits, factors, coeff));
        }
        if terms.is_empty() {
            return Err("observable needs at least one term".to_string());
        }
        Ok(PauliSum::from_terms(terms))
    }
}

impl JsonCodec for Graph {
    fn to_json(&self) -> Value {
        obj(vec![
            ("n_nodes", Value::from_usize(self.n_nodes())),
            (
                "edges",
                Value::Arr(
                    self.edges()
                        .iter()
                        .map(|e| {
                            Value::Arr(vec![
                                Value::from_usize(e.u),
                                Value::from_usize(e.v),
                                Value::from_f64(e.weight),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(value: &Value) -> Result<Self, String> {
        let n_nodes = value.get("n_nodes")?.as_usize()?;
        // Bound the width at parse time: the duplicate-edge checks below
        // are quadratic in the edge count, so an unbounded wire-supplied
        // graph could pin the parsing thread long before the shape-level
        // qubit bound (`HybridShape::MAX_QUBITS`) runs. 64 nodes is well
        // past anything the simulators can evaluate.
        if n_nodes > 64 {
            return Err(format!("graph has {n_nodes} nodes (wire format max 64)"));
        }
        let mut graph = Graph::new(n_nodes);
        for edge in value.get("edges")?.as_arr()? {
            let parts = edge.as_arr()?;
            if parts.len() != 3 {
                return Err("edges are [u, v, weight] triples".to_string());
            }
            let u = parts[0].as_usize()?;
            let v = parts[1].as_usize()?;
            // Pre-validate everything Graph::add_edge would panic on —
            // wire input must produce errors, not panics.
            if u == v {
                return Err(format!("self-loop on node {u}"));
            }
            if u >= n_nodes || v >= n_nodes {
                return Err(format!("edge ({u}, {v}) out of range"));
            }
            if graph.has_edge(u, v) {
                return Err(format!("duplicate edge ({u}, {v})"));
            }
            graph.add_edge(u, v, parts[2].as_f64()?);
        }
        Ok(graph)
    }
}

impl JsonCodec for GateModelOptions {
    fn to_json(&self) -> Value {
        obj(vec![
            ("cancellation", Value::Bool(self.cancellation)),
            ("sabre_iterations", Value::from_usize(self.sabre_iterations)),
        ])
    }

    fn from_json(value: &Value) -> Result<Self, String> {
        Ok(GateModelOptions {
            cancellation: value.get("cancellation")?.as_bool()?,
            sabre_iterations: value.get("sabre_iterations")?.as_usize()?,
        })
    }
}

impl JsonCodec for HybridShape {
    fn to_json(&self) -> Value {
        obj(vec![
            ("graph", self.graph().to_json()),
            ("p", Value::from_usize(self.p())),
            (
                "mixer_duration_dt",
                Value::from_u64(u64::from(self.mixer_duration_dt())),
            ),
            ("options", self.options().to_json()),
        ])
    }

    fn from_json(value: &Value) -> Result<Self, String> {
        let graph = Graph::from_json(value.get("graph")?)?;
        let p = value.get("p")?.as_usize()?;
        let duration = u32::try_from(value.get("mixer_duration_dt")?.as_u64()?)
            .map_err(|e| format!("bad mixer duration: {e}"))?;
        let options = GateModelOptions::from_json(value.get("options")?)?;
        Ok(HybridShape::new(graph, p)
            .with_mixer_duration(duration)
            .with_options(options))
    }
}

impl JsonCodec for JobProgram {
    fn to_json(&self) -> Value {
        match self {
            JobProgram::Circuit(circuit) => obj(vec![("circuit", circuit.to_json())]),
            JobProgram::Hybrid(shape) => obj(vec![("hybrid", shape.to_json())]),
        }
    }

    fn from_json(value: &Value) -> Result<Self, String> {
        // Exactly one program key: an ambiguous body (e.g. two request
        // templates merged by a client bug) must be a parse error, not
        // a silent preference.
        match (value.opt("circuit")?, value.opt("hybrid")?) {
            (Some(c), None) => Ok(JobProgram::Circuit(Circuit::from_json(c)?)),
            (None, Some(h)) => Ok(JobProgram::Hybrid(HybridShape::from_json(h)?)),
            _ => Err("program must have exactly one of \"circuit\"/\"hybrid\"".to_string()),
        }
    }
}

impl JsonCodec for JobStage {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }

    fn from_json(value: &Value) -> Result<Self, String> {
        match value.as_str()? {
            "validate" => Ok(JobStage::Validate),
            "compile" => Ok(JobStage::Compile),
            "execute" => Ok(JobStage::Execute),
            other => Err(format!("unknown job stage {other:?}")),
        }
    }
}

impl JsonCodec for JobError {
    fn to_json(&self) -> Value {
        obj(vec![
            ("stage", self.stage.to_json()),
            ("message", Value::Str(self.message.clone())),
        ])
    }

    fn from_json(value: &Value) -> Result<Self, String> {
        Ok(JobError {
            stage: JobStage::from_json(value.get("stage")?)?,
            message: value.get("message")?.as_str()?.to_string(),
        })
    }
}

impl JsonCodec for JobId {
    fn to_json(&self) -> Value {
        Value::from_u64(self.0)
    }

    fn from_json(value: &Value) -> Result<Self, String> {
        Ok(JobId(value.as_u64()?))
    }
}

impl JsonCodec for JobSpec {
    fn to_json(&self) -> Value {
        match self {
            JobSpec::StateVector => obj(vec![("kind", Value::Str("statevector".into()))]),
            JobSpec::DensityMatrix => obj(vec![("kind", Value::Str("density_matrix".into()))]),
            JobSpec::Counts { shots } => obj(vec![
                ("kind", Value::Str("counts".into())),
                ("shots", Value::from_usize(*shots)),
            ]),
            JobSpec::Expectation { observable } => obj(vec![
                ("kind", Value::Str("expectation".into())),
                ("observable", observable.to_json()),
            ]),
            JobSpec::TrajectoryCounts { shots } => obj(vec![
                ("kind", Value::Str("trajectory_counts".into())),
                ("shots", Value::from_usize(*shots)),
            ]),
            JobSpec::TrajectoryExpectation {
                observable,
                trajectories,
            } => obj(vec![
                ("kind", Value::Str("trajectory_expectation".into())),
                ("observable", observable.to_json()),
                ("trajectories", Value::from_usize(*trajectories)),
            ]),
            JobSpec::HybridCounts { shots } => obj(vec![
                ("kind", Value::Str("hybrid_counts".into())),
                ("shots", Value::from_usize(*shots)),
            ]),
            JobSpec::HybridExpectation { observable } => obj(vec![
                ("kind", Value::Str("hybrid_expectation".into())),
                ("observable", observable.to_json()),
            ]),
            JobSpec::HybridTrajectoryCounts { shots } => obj(vec![
                ("kind", Value::Str("hybrid_trajectory_counts".into())),
                ("shots", Value::from_usize(*shots)),
            ]),
            JobSpec::HybridTrajectoryExpectation {
                observable,
                trajectories,
            } => obj(vec![
                ("kind", Value::Str("hybrid_trajectory_expectation".into())),
                ("observable", observable.to_json()),
                ("trajectories", Value::from_usize(*trajectories)),
            ]),
        }
    }

    fn from_json(value: &Value) -> Result<Self, String> {
        match value.get("kind")?.as_str()? {
            "statevector" => Ok(JobSpec::StateVector),
            "density_matrix" => Ok(JobSpec::DensityMatrix),
            "counts" => Ok(JobSpec::Counts {
                shots: value.get("shots")?.as_usize()?,
            }),
            "expectation" => Ok(JobSpec::Expectation {
                observable: PauliSum::from_json(value.get("observable")?)?,
            }),
            "trajectory_counts" => Ok(JobSpec::TrajectoryCounts {
                shots: value.get("shots")?.as_usize()?,
            }),
            "trajectory_expectation" => Ok(JobSpec::TrajectoryExpectation {
                observable: PauliSum::from_json(value.get("observable")?)?,
                trajectories: value.get("trajectories")?.as_usize()?,
            }),
            "hybrid_counts" => Ok(JobSpec::HybridCounts {
                shots: value.get("shots")?.as_usize()?,
            }),
            "hybrid_expectation" => Ok(JobSpec::HybridExpectation {
                observable: PauliSum::from_json(value.get("observable")?)?,
            }),
            "hybrid_trajectory_counts" => Ok(JobSpec::HybridTrajectoryCounts {
                shots: value.get("shots")?.as_usize()?,
            }),
            "hybrid_trajectory_expectation" => Ok(JobSpec::HybridTrajectoryExpectation {
                observable: PauliSum::from_json(value.get("observable")?)?,
                trajectories: value.get("trajectories")?.as_usize()?,
            }),
            other => Err(format!("unknown job kind {other:?}")),
        }
    }
}

impl JsonCodec for JobRequest {
    fn to_json(&self) -> Value {
        // The program is flattened into the request object ("circuit"
        // or "hybrid" key), keeping circuit requests byte-compatible
        // with the pre-hybrid wire format.
        let program_member = match &self.program {
            JobProgram::Circuit(circuit) => ("circuit", circuit.to_json()),
            JobProgram::Hybrid(shape) => ("hybrid", shape.to_json()),
        };
        let mut members = vec![
            program_member,
            ("params", f64_arr(&self.params)),
            ("spec", self.spec.to_json()),
        ];
        if let Some(seed) = self.seed {
            members.push(("seed", Value::from_u64(seed)));
        }
        obj(members)
    }

    fn from_json(value: &Value) -> Result<Self, String> {
        Ok(JobRequest {
            program: JobProgram::from_json(value)?,
            params: f64_vec(value.get("params")?)?,
            spec: JobSpec::from_json(value.get("spec")?)?,
            seed: value.opt("seed")?.map(Value::as_u64).transpose()?,
        })
    }
}

impl JsonCodec for JobOutput {
    fn to_json(&self) -> Value {
        match self {
            JobOutput::StateVector { probabilities } => obj(vec![
                ("kind", Value::Str("statevector".into())),
                ("probabilities", f64_arr(probabilities)),
            ]),
            JobOutput::DensityMatrix {
                probabilities,
                purity,
            } => obj(vec![
                ("kind", Value::Str("density_matrix".into())),
                ("probabilities", f64_arr(probabilities)),
                ("purity", Value::from_f64(*purity)),
            ]),
            JobOutput::Counts(counts) => obj(vec![
                ("kind", Value::Str("counts".into())),
                ("counts", counts.to_json()),
            ]),
            JobOutput::Expectation { value } => obj(vec![
                ("kind", Value::Str("expectation".into())),
                ("value", Value::from_f64(*value)),
            ]),
            JobOutput::TrajectoryCounts(counts) => obj(vec![
                ("kind", Value::Str("trajectory_counts".into())),
                ("counts", counts.to_json()),
            ]),
            JobOutput::TrajectoryExpectation {
                value,
                std_error,
                trajectories,
            } => obj(vec![
                ("kind", Value::Str("trajectory_expectation".into())),
                ("value", Value::from_f64(*value)),
                ("std_error", Value::from_f64(*std_error)),
                ("trajectories", Value::from_usize(*trajectories)),
            ]),
        }
    }

    fn from_json(value: &Value) -> Result<Self, String> {
        match value.get("kind")?.as_str()? {
            "statevector" => Ok(JobOutput::StateVector {
                probabilities: f64_vec(value.get("probabilities")?)?,
            }),
            "density_matrix" => Ok(JobOutput::DensityMatrix {
                probabilities: f64_vec(value.get("probabilities")?)?,
                purity: value.get("purity")?.as_f64()?,
            }),
            "counts" => Ok(JobOutput::Counts(Counts::from_json(value.get("counts")?)?)),
            "expectation" => Ok(JobOutput::Expectation {
                value: value.get("value")?.as_f64()?,
            }),
            "trajectory_counts" => Ok(JobOutput::TrajectoryCounts(Counts::from_json(
                value.get("counts")?,
            )?)),
            "trajectory_expectation" => Ok(JobOutput::TrajectoryExpectation {
                value: value.get("value")?.as_f64()?,
                std_error: value.get("std_error")?.as_f64()?,
                trajectories: value.get("trajectories")?.as_usize()?,
            }),
            other => Err(format!("unknown output kind {other:?}")),
        }
    }
}

impl JsonCodec for JobResult {
    fn to_json(&self) -> Value {
        let payload = match &self.output {
            Ok(output) => ("output", output.to_json()),
            Err(error) => ("error", error.to_json()),
        };
        obj(vec![
            ("id", self.id.to_json()),
            ("seed", Value::from_u64(self.seed)),
            ("cache_hit", Value::Bool(self.cache_hit)),
            ("elapsed_ns", Value::from_u64(self.elapsed_ns)),
            payload,
        ])
    }

    fn from_json(value: &Value) -> Result<Self, String> {
        let output = match (value.opt("output")?, value.opt("error")?) {
            (Some(output), None) => Ok(JobOutput::from_json(output)?),
            (None, Some(error)) => Err(JobError::from_json(error)?),
            _ => return Err("result must have exactly one of \"output\"/\"error\"".to_string()),
        };
        Ok(JobResult {
            id: JobId::from_json(value.get("id")?)?,
            seed: value.get("seed")?.as_u64()?,
            cache_hit: value.get("cache_hit")?.as_bool()?,
            elapsed_ns: value.get("elapsed_ns")?.as_u64()?,
            output,
        })
    }
}

impl JsonCodec for Priority {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }

    fn from_json(value: &Value) -> Result<Self, String> {
        match value.as_str()? {
            "interactive" => Ok(Priority::Interactive),
            "batch" => Ok(Priority::Batch),
            "background" => Ok(Priority::Background),
            other => Err(format!("unknown priority {other:?}")),
        }
    }
}

impl JsonCodec for Rejected {
    fn to_json(&self) -> Value {
        match self {
            Rejected::QueueFull { depth, limit } => obj(vec![
                ("kind", Value::Str("queue_full".into())),
                ("depth", Value::from_usize(*depth)),
                ("limit", Value::from_usize(*limit)),
            ]),
            Rejected::TooLarge { shots, limit } => obj(vec![
                ("kind", Value::Str("too_large".into())),
                ("shots", Value::from_u64(*shots)),
                ("limit", Value::from_u64(*limit)),
            ]),
            Rejected::ShuttingDown => obj(vec![("kind", Value::Str("shutting_down".into()))]),
        }
    }

    fn from_json(value: &Value) -> Result<Self, String> {
        match value.get("kind")?.as_str()? {
            "queue_full" => Ok(Rejected::QueueFull {
                depth: value.get("depth")?.as_usize()?,
                limit: value.get("limit")?.as_usize()?,
            }),
            "too_large" => Ok(Rejected::TooLarge {
                shots: value.get("shots")?.as_u64()?,
                limit: value.get("limit")?.as_u64()?,
            }),
            "shutting_down" => Ok(Rejected::ShuttingDown),
            other => Err(format!("unknown rejection kind {other:?}")),
        }
    }
}

fn u64_arr(values: &[u64]) -> Value {
    Value::Arr(values.iter().map(|&v| Value::from_u64(v)).collect())
}

fn u64_arr_n<const N: usize>(value: &Value) -> Result<[u64; N], String> {
    let items = value.as_arr()?;
    if items.len() != N {
        return Err(format!("expected {N} entries, got {}", items.len()));
    }
    let mut out = [0u64; N];
    for (slot, item) in out.iter_mut().zip(items) {
        *slot = item.as_u64()?;
    }
    Ok(out)
}

fn u64_arr3(value: &Value) -> Result<[u64; 3], String> {
    u64_arr_n::<3>(value)
}

impl JsonCodec for Histogram {
    fn to_json(&self) -> Value {
        // Sparse encoding: only occupied buckets travel. A dense 64-slot
        // array would dominate every metrics snapshot with zeros.
        let buckets: Vec<Value> = self
            .counts()
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c != 0)
            .map(|(i, &c)| Value::Arr(vec![Value::from_usize(i), Value::from_u64(c)]))
            .collect();
        obj(vec![
            ("buckets", Value::Arr(buckets)),
            ("count", Value::from_u64(self.count())),
            ("sum", Value::from_u64(self.sum())),
        ])
    }

    fn from_json(value: &Value) -> Result<Self, String> {
        let mut counts = [0u64; hgp_obs::histogram::BUCKETS];
        for pair in value.get("buckets")?.as_arr()? {
            let pair = pair.as_arr()?;
            if pair.len() != 2 {
                return Err("histogram buckets are [index, count] pairs".into());
            }
            let i = pair[0].as_usize()?;
            *counts
                .get_mut(i)
                .ok_or_else(|| format!("histogram bucket index {i} out of range"))? =
                pair[1].as_u64()?;
        }
        Ok(Histogram::from_parts(
            counts,
            value.get("count")?.as_u64()?,
            value.get("sum")?.as_u64()?,
        ))
    }
}

impl JsonCodec for OpProfileSnapshot {
    fn to_json(&self) -> Value {
        obj(vec![
            ("calls", u64_arr(&self.calls)),
            ("ns", u64_arr(&self.ns)),
        ])
    }

    fn from_json(value: &Value) -> Result<Self, String> {
        Ok(OpProfileSnapshot {
            calls: u64_arr_n(value.get("calls")?)?,
            ns: u64_arr_n(value.get("ns")?)?,
        })
    }
}

impl JsonCodec for Span {
    fn to_json(&self) -> Value {
        obj(vec![
            ("kind", Value::Str(self.kind.name().into())),
            ("at_ns", Value::from_u64(self.at_ns)),
        ])
    }

    fn from_json(value: &Value) -> Result<Self, String> {
        let kind = value.get("kind")?.as_str()?;
        Ok(Span {
            kind: SpanKind::parse(kind).ok_or_else(|| format!("unknown span kind {kind:?}"))?,
            at_ns: value.get("at_ns")?.as_u64()?,
        })
    }
}

impl JsonCodec for JobTrace {
    fn to_json(&self) -> Value {
        obj(vec![
            ("job", Value::from_u64(self.job)),
            ("job_kind", Value::from_u64(u64::from(self.job_kind))),
            ("priority", Value::from_u64(u64::from(self.priority))),
            ("shots", Value::from_u64(self.shots)),
            ("cache_hit", Value::Bool(self.cache_hit)),
            ("ok", Value::Bool(self.ok)),
            (
                "spans",
                Value::Arr(self.spans.iter().map(JsonCodec::to_json).collect()),
            ),
        ])
    }

    fn from_json(value: &Value) -> Result<Self, String> {
        let spans = value
            .get("spans")?
            .as_arr()?
            .iter()
            .map(Span::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let narrow = |v: u64, what: &str| -> Result<u32, String> {
            u32::try_from(v).map_err(|_| format!("{what} {v} exceeds u32"))
        };
        Ok(JobTrace {
            job: value.get("job")?.as_u64()?,
            job_kind: narrow(value.get("job_kind")?.as_u64()?, "job_kind")?,
            priority: narrow(value.get("priority")?.as_u64()?, "priority")?,
            shots: value.get("shots")?.as_u64()?,
            cache_hit: value.get("cache_hit")?.as_bool()?,
            ok: value.get("ok")?.as_bool()?,
            spans,
        })
    }
}

fn hist_arr(values: &[Histogram]) -> Value {
    Value::Arr(values.iter().map(JsonCodec::to_json).collect())
}

fn hist_arr_n<const N: usize>(value: &Value) -> Result<[Histogram; N], String> {
    let items = value.as_arr()?;
    if items.len() != N {
        return Err(format!("expected {N} histograms, got {}", items.len()));
    }
    let mut out: [Histogram; N] = std::array::from_fn(|_| Histogram::default());
    for (slot, item) in out.iter_mut().zip(items) {
        *slot = Histogram::from_json(item)?;
    }
    Ok(out)
}

impl JsonCodec for ServeMetrics {
    fn to_json(&self) -> Value {
        obj(vec![
            ("jobs_completed", Value::from_u64(self.jobs_completed)),
            ("jobs_failed", Value::from_u64(self.jobs_failed)),
            ("batches", Value::from_u64(self.batches)),
            ("shape_groups", Value::from_u64(self.shape_groups)),
            ("cache_hits", Value::from_u64(self.cache_hits)),
            ("cache_misses", Value::from_u64(self.cache_misses)),
            ("validate_ns", Value::from_u64(self.validate_ns)),
            ("compile_ns", Value::from_u64(self.compile_ns)),
            ("bind_ns", Value::from_u64(self.bind_ns)),
            ("exec_ns", Value::from_u64(self.exec_ns)),
            ("wall_ns", Value::from_u64(self.wall_ns)),
            ("queue_depth", Value::from_u64(self.queue_depth)),
            ("queue_ns", Value::from_u64(self.queue_ns)),
            ("admitted", u64_arr(&self.admitted)),
            ("rejected_full", u64_arr(&self.rejected_full)),
            ("rejected_large", u64_arr(&self.rejected_large)),
            ("shots_executed", Value::from_u64(self.shots_executed)),
            ("queue_hist", self.queue_hist.to_json()),
            ("validate_hist", self.validate_hist.to_json()),
            ("compile_hist", self.compile_hist.to_json()),
            ("bind_hist", self.bind_hist.to_json()),
            ("exec_hist", self.exec_hist.to_json()),
            ("priority_hist", hist_arr(&self.priority_hist)),
            ("kind_hist", hist_arr(&self.kind_hist)),
        ])
    }

    fn from_json(value: &Value) -> Result<Self, String> {
        Ok(ServeMetrics {
            jobs_completed: value.get("jobs_completed")?.as_u64()?,
            jobs_failed: value.get("jobs_failed")?.as_u64()?,
            batches: value.get("batches")?.as_u64()?,
            shape_groups: value.get("shape_groups")?.as_u64()?,
            cache_hits: value.get("cache_hits")?.as_u64()?,
            cache_misses: value.get("cache_misses")?.as_u64()?,
            validate_ns: value.get("validate_ns")?.as_u64()?,
            compile_ns: value.get("compile_ns")?.as_u64()?,
            bind_ns: value.get("bind_ns")?.as_u64()?,
            exec_ns: value.get("exec_ns")?.as_u64()?,
            wall_ns: value.get("wall_ns")?.as_u64()?,
            queue_depth: value.get("queue_depth")?.as_u64()?,
            queue_ns: value.get("queue_ns")?.as_u64()?,
            admitted: u64_arr3(value.get("admitted")?)?,
            rejected_full: u64_arr3(value.get("rejected_full")?)?,
            rejected_large: u64_arr3(value.get("rejected_large")?)?,
            shots_executed: value.get("shots_executed")?.as_u64()?,
            queue_hist: Histogram::from_json(value.get("queue_hist")?)?,
            validate_hist: Histogram::from_json(value.get("validate_hist")?)?,
            compile_hist: Histogram::from_json(value.get("compile_hist")?)?,
            bind_hist: Histogram::from_json(value.get("bind_hist")?)?,
            exec_hist: Histogram::from_json(value.get("exec_hist")?)?,
            priority_hist: hist_arr_n(value.get("priority_hist")?)?,
            kind_hist: hist_arr_n(value.get("kind_hist")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_accepts_canonical_forms() {
        let v = Value::parse(r#"{"a":[1,-2.5,1e3,null,true,"x\n\"\u00e9"],"b":{}}"#).unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0].as_u64().unwrap(), 1);
        assert!((a[1].as_f64().unwrap() + 2.5).abs() < 1e-15);
        assert!((a[2].as_f64().unwrap() - 1000.0).abs() < 1e-12);
        assert_eq!(a[3], Value::Null);
        assert!(a[4].as_bool().unwrap());
        assert_eq!(a[5].as_str().unwrap(), "x\n\"\u{e9}");
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in [
            "", "{", "[1,]", "{\"a\":}", "01", "1 2", "\"\\q\"", "nul", "+3",
        ] {
            assert!(Value::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn value_round_trips_through_text() {
        let v =
            Value::parse(r#"{"k":[1,2.25,"s",{"n":null}],"big":18446744073709551615}"#).unwrap();
        let again = Value::parse(&v.to_string()).unwrap();
        assert_eq!(v, again);
        assert_eq!(again.get("big").unwrap().as_u64().unwrap(), u64::MAX);
    }

    #[test]
    fn f64_text_is_bit_exact() {
        for v in [
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1e300,
            -0.0,
            2.0_f64.powi(60),
        ] {
            let text = Value::from_f64(v).to_string();
            let back: f64 = Value::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} -> {text}");
        }
    }

    #[test]
    fn ambiguous_program_payloads_are_rejected() {
        // Both program keys present: must be a parse error, never a
        // silent preference for one of them.
        let both = r#"{"circuit":{"n_qubits":1,"n_params":0,"instructions":[]},
            "hybrid":{"graph":{"n_nodes":2,"edges":[[0,1,1.0]]},"p":1,
                      "mixer_duration_dt":320,
                      "options":{"cancellation":false,"sabre_iterations":0}},
            "params":[],"spec":{"kind":"statevector"}}"#;
        let err = JobRequest::from_json_str(both).unwrap_err();
        assert!(err.contains("exactly one"), "{err}");
        // Malformed graphs are parse errors too (never panics), and an
        // absurd wire-supplied width is rejected before the quadratic
        // edge validation can run.
        for bad in [
            r#"{"n_nodes":2,"edges":[[0,0,1.0]]}"#,
            r#"{"n_nodes":2,"edges":[[0,5,1.0]]}"#,
            r#"{"n_nodes":2,"edges":[[0,1,1.0],[1,0,2.0]]}"#,
            r#"{"n_nodes":100000,"edges":[]}"#,
        ] {
            assert!(Graph::from_json_str(bad).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn unknown_gate_and_bad_widths_are_rejected() {
        assert!(
            Gate::from_json(&Value::parse(r#"{"name":"frobnicate","params":[]}"#).unwrap())
                .is_err()
        );
        let bad_circuit = r#"{"n_qubits":1,"n_params":0,"instructions":[
            {"gate":{"name":"h","params":[]},"qubits":[4]}]}"#;
        assert!(Circuit::from_json_str(bad_circuit).is_err());
        let unbound_id = r#"{"n_qubits":1,"n_params":1,"instructions":[
            {"gate":{"name":"rx","params":[{"f":[3,1,0]}]},"qubits":[0]}]}"#;
        assert!(Circuit::from_json_str(unbound_id).is_err());
    }
}
