//! The long-lived serving daemon: a persistent worker pool behind a
//! bounded, priority-classed submission queue with streaming result
//! delivery.
//!
//! [`crate::Service::run_batch`] is the synchronous shape of the serving
//! layer: submit N jobs, block, collect. The [`Daemon`] is the
//! production shape the rest of the stack was built for — a service many
//! tenants share, that a training loop can *pipeline* against: clients
//! [`Daemon::submit`] individual jobs or [`Daemon::submit_group`] job
//! groups and receive results **as they complete** over an mpsc-backed
//! [`ResultStream`], while the next submission is already queued.
//!
//! # Lifecycle of a submission
//!
//! 1. **Admission control** — before anything consumes a stream
//!    position, the group is screened against the per-job size bound
//!    ([`DaemonConfig::max_job_shots`] →
//!    [`Rejected::TooLarge`], the serving-level continuation of the wire
//!    format's width bounds) and the bounded queue
//!    ([`DaemonConfig::max_queue_depth`] → [`Rejected::QueueFull`]).
//!    Groups are admitted **atomically**: a rejected group leaves no
//!    trace — no id, no seed, no queue slot — so backpressure can never
//!    perturb the seeds of jobs that were admitted.
//! 2. **Admission** — each job of an accepted group takes the next
//!    [`JobId`] and its position-derived seed
//!    ([`hgp_sim::seed::stream_seed`]), exactly as `run_batch` does.
//!    Requests that fail validation still consume their position and are
//!    answered through the stream with a validate-stage
//!    [`crate::JobError`]; valid jobs enter their priority class's FIFO.
//! 3. **Scheduling** — persistent workers take the oldest job of the
//!    highest non-empty class ([`Priority`]: interactive > batch >
//!    background). The policy is deterministic in the admission order,
//!    and because every job's output is a pure function of
//!    `(compiled shape, params, seed)` — all fixed at admission — **any
//!    worker count, arrival order, or priority interleaving yields
//!    results bit-identical to the sequential reference** (pinned by the
//!    `daemon_serving` proptests against [`crate::Service::run_batch`]).
//! 4. **Execution** — workers share one structural-key LRU
//!    [`crate::ProgramCache`] and the batch path's worker core
//!    (`execute_job`): compile once per shape, bind per dispatch,
//!    trajectory kinds ride the replay template. The `catch_unwind`
//!    panic boundary means a poisoned job fails alone with a typed
//!    error; a client that dropped its [`ResultStream`] merely discards
//!    that job's result — the worker moves on either way.
//! 5. **Shutdown** — [`Daemon::shutdown`] (or drop) stops admission and
//!    **drains**: queued jobs still execute and stream out before the
//!    workers exit. The drain is wedge-proof by construction: locks are
//!    poison-recovering, result delivery ignores vanished receivers, and
//!    a worker that somehow died is simply joined over — the remaining
//!    workers finish the queue.
//!
//! The TCP front end over this API lives in [`crate::wire`].

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

use hgp_circuit::Circuit;
use hgp_core::compile::HybridShape;
use hgp_device::Backend;
use hgp_math::pauli::PauliSum;
use hgp_obs::{FlightRecorder, JobTrace, NoProfile, OpProfile, OpProfileSnapshot, Span, SpanKind};
use hgp_sim::seed::stream_seed;

use crate::cache::ProgramCache;
use crate::job::{
    JobError, JobId, JobOutput, JobProgram, JobRequest, JobResult, JobSpec, Priority, Rejected,
};
use crate::metrics::ServeMetrics;
use crate::service::{
    compile_artifact, execute_job, trajectory_shots, validate_request, PreparedJob, ServeConfig,
};

/// Configuration of a [`Daemon`]: the underlying service parameters
/// plus the admission-control bounds only a long-lived queue needs.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Worker pool / cache / seed / compile configuration, shared with
    /// the batch path.
    pub service: ServeConfig,
    /// Maximum jobs waiting in the submission queue (in-flight jobs on
    /// workers do not count). Submissions that would overflow are
    /// answered [`Rejected::QueueFull`], whole groups atomically.
    pub max_queue_depth: usize,
    /// Per-job admission bound on sampled shots / trajectories;
    /// larger requests are answered [`Rejected::TooLarge`].
    pub max_job_shots: u64,
    /// Per-job [`JobTrace`]s kept in the flight recorder — the last N
    /// jobs, oldest evicted first. Zero disables tracing entirely
    /// (no spans are built, no recorder lock is taken).
    pub trace_capacity: usize,
    /// Whether workers accumulate per-op-kind engine profiles
    /// ([`OpProfile`]). Off by default: the engines then run with the
    /// compiled-out [`NoProfile`] sink, paying nothing.
    pub profile: bool,
}

impl DaemonConfig {
    /// Defaults: [`ServeConfig::new`] service parameters, a
    /// 1024-deep queue, a 2^20 per-job shot bound, a 256-job flight
    /// recorder, and engine profiling off.
    pub fn new(layout: Vec<usize>) -> Self {
        Self {
            service: ServeConfig::new(layout),
            max_queue_depth: 1024,
            max_job_shots: 1 << 20,
            trace_capacity: 256,
            profile: false,
        }
    }

    /// Overrides the worker count.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.service = self.service.with_workers(workers);
        self
    }

    /// Overrides the base seed of the daemon's evaluation stream.
    pub fn with_base_seed(mut self, seed: u64) -> Self {
        self.service = self.service.with_base_seed(seed);
        self
    }

    /// Overrides the compiled-shape cache capacity.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.service = self.service.with_cache_capacity(capacity);
        self
    }

    /// Overrides the submission queue bound.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero — a daemon that can admit nothing
    /// serves nothing.
    pub fn with_max_queue_depth(mut self, depth: usize) -> Self {
        assert!(depth > 0, "queue depth must be positive");
        self.max_queue_depth = depth;
        self
    }

    /// Overrides the per-job shot/trajectory admission bound.
    pub fn with_max_job_shots(mut self, shots: u64) -> Self {
        self.max_job_shots = shots;
        self
    }

    /// Overrides the flight-recorder capacity; zero disables tracing.
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Enables or disables per-op-kind engine profiling.
    pub fn with_profiling(mut self, enabled: bool) -> Self {
        self.profile = enabled;
        self
    }
}

/// A job sitting in the queue: admitted (id/seed fixed), waiting for a
/// worker.
struct QueuedJob {
    job: PreparedJob,
    program: JobProgram,
    key: u64,
    priority: Priority,
    enqueued: Instant,
    /// The partial trace (enqueued/validated/admitted spans); workers
    /// complete and deliver it to the flight recorder. `None` when
    /// tracing is disabled.
    trace: Option<JobTrace>,
    tx: mpsc::Sender<JobResult>,
}

/// Queue state under the daemon's mutex.
struct QueueState {
    /// One FIFO per priority class, indexed by [`Priority::index`].
    classes: [VecDeque<QueuedJob>; 3],
    /// Jobs currently queued (sum of the class lengths).
    depth: usize,
    /// Next stream position — ids and seeds are assigned from here,
    /// under the lock, so admission order is a total order.
    next_job: u64,
    /// False once shutdown has begun: no further admissions.
    open: bool,
}

impl QueueState {
    /// Pops the oldest job of the highest non-empty priority class.
    fn pop_next(&mut self) -> Option<QueuedJob> {
        for class in &mut self.classes {
            if let Some(job) = class.pop_front() {
                self.depth -= 1;
                return Some(job);
            }
        }
        None
    }
}

/// State shared between the daemon handle and its workers.
struct Shared {
    backend: Backend,
    config: DaemonConfig,
    queue: Mutex<QueueState>,
    work_ready: Condvar,
    cache: Mutex<ProgramCache>,
    metrics: Mutex<ServeMetrics>,
    /// Queue-depth gauge mirrored out of the queue lock so metrics
    /// snapshots never contend with admission.
    queue_depth: AtomicU64,
    /// The last-N-jobs trace ring; capacity 0 when tracing is off.
    recorder: Mutex<FlightRecorder>,
    /// Per-op-kind engine profile all workers share; `None` means the
    /// engines run with the compiled-out [`NoProfile`] sink.
    profile: Option<OpProfile>,
    started: Instant,
}

/// Nanoseconds since the daemon started — the clock all trace spans
/// share. Monotonic, so span chains are non-decreasing by construction.
fn now_ns(shared: &Shared) -> u64 {
    shared.started.elapsed().as_nanos() as u64
}

/// Locks a mutex, recovering from poisoning.
///
/// A worker that panics while holding a daemon lock must not take the
/// rest of the pool (or the shutdown drain) with it: every structure
/// guarded here is either monotonic counters or a queue whose entries
/// are self-contained, so the state a panicking thread leaves behind is
/// safe to keep using.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The largest sampled-shot request a spec makes, for admission
/// control. Trajectory kinds count trajectories, sampling kinds count
/// shots; deterministic kinds (statevector, density matrix, exact
/// expectation) are unbounded by this knob — their cost is bounded by
/// the wire format's width caps instead.
fn requested_shots(spec: &JobSpec) -> u64 {
    match spec {
        JobSpec::Counts { shots } | JobSpec::HybridCounts { shots } => *shots as u64,
        other => trajectory_shots(other),
    }
}

/// A handle to the results of one submission, delivered in completion
/// order as workers finish them.
///
/// The stream yields exactly one [`JobResult`] per admitted job
/// (including jobs that failed validation or compilation — those carry
/// typed errors), then ends. Results arrive in **completion order**;
/// use [`ResultStream::collect_ordered`] to reassemble submission
/// order, or match on [`JobResult::id`] against [`ResultStream::ids`].
///
/// Dropping the stream is always safe: workers detect the vanished
/// receiver and discard the remaining results without failing.
#[derive(Debug)]
pub struct ResultStream {
    rx: mpsc::Receiver<JobResult>,
    ids: Vec<JobId>,
    received: usize,
}

impl ResultStream {
    /// The admitted job ids of this submission, in submission order.
    /// Position `i` of the group got `ids()[i]` — and therefore the
    /// seed `stream_seed(base_seed, ids()[i].0)` unless it pinned one.
    pub fn ids(&self) -> &[JobId] {
        &self.ids
    }

    /// Results this stream will deliver in total.
    pub fn expected(&self) -> usize {
        self.ids.len()
    }

    /// Results delivered so far.
    pub fn received(&self) -> usize {
        self.received
    }

    /// Blocks for the next completed result; `None` once every admitted
    /// job has reported (or, defensively, if the daemon's workers died
    /// before delivering — a state the panic boundary makes
    /// unreachable from request data).
    pub fn recv(&mut self) -> Option<JobResult> {
        if self.received == self.ids.len() {
            return None;
        }
        match self.rx.recv() {
            Ok(result) => {
                self.received += 1;
                Some(result)
            }
            Err(_) => None,
        }
    }

    /// A completed result if one is already waiting; never blocks.
    pub fn try_recv(&mut self) -> Option<JobResult> {
        if self.received == self.ids.len() {
            return None;
        }
        match self.rx.try_recv() {
            Ok(result) => {
                self.received += 1;
                Some(result)
            }
            Err(_) => None,
        }
    }

    /// Drains the stream and returns all results sorted back into
    /// submission order — the blocking shape, equivalent to what
    /// [`crate::Service::run_batch`] returns for the same requests.
    pub fn collect_ordered(mut self) -> Vec<JobResult> {
        let mut results: Vec<JobResult> = Vec::with_capacity(self.ids.len());
        while let Some(result) = self.recv() {
            results.push(result);
        }
        results.sort_by_key(|r| r.id);
        results
    }
}

impl Iterator for ResultStream {
    type Item = JobResult;

    /// Completion-order iteration; see [`ResultStream::recv`].
    fn next(&mut self) -> Option<JobResult> {
        self.recv()
    }
}

/// The long-lived serving daemon. See the module docs for the
/// submission lifecycle and the determinism contract.
///
/// The handle is `Send + Sync`: share it behind an [`Arc`] across
/// client threads (the TCP front end does exactly that). Dropping the
/// last handle shuts the daemon down gracefully, draining queued work.
#[derive(Debug)]
pub struct Daemon {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("config", &self.config)
            .field("queue_depth", &self.queue_depth.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Daemon {
    /// Starts a daemon executing on `backend`: spawns the persistent
    /// worker pool and begins accepting submissions.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero workers, zero
    /// cache capacity, zero queue depth).
    pub fn start(backend: Backend, config: DaemonConfig) -> Self {
        assert!(config.service.workers > 0, "need at least one worker");
        assert!(config.max_queue_depth > 0, "queue depth must be positive");
        let cache = ProgramCache::new(config.service.cache_capacity);
        let workers = config.service.workers;
        let recorder = FlightRecorder::new(config.trace_capacity);
        let profile = config.profile.then(OpProfile::new);
        let shared = Arc::new(Shared {
            backend,
            config,
            queue: Mutex::new(QueueState {
                classes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                depth: 0,
                next_job: 0,
                open: true,
            }),
            work_ready: Condvar::new(),
            cache: Mutex::new(cache),
            metrics: Mutex::new(ServeMetrics::default()),
            queue_depth: AtomicU64::new(0),
            recorder: Mutex::new(recorder),
            profile,
            started: Instant::now(),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Self {
            shared,
            workers: Mutex::new(handles),
        }
    }

    /// The daemon configuration.
    pub fn config(&self) -> &DaemonConfig {
        &self.shared.config
    }

    /// Jobs currently waiting in the submission queue.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue_depth.load(Ordering::Relaxed) as usize
    }

    /// A metrics snapshot. `wall_ns` carries the daemon's uptime, so
    /// the derived throughputs are lifetime rates; `queue_depth` is the
    /// gauge at snapshot time.
    pub fn metrics(&self) -> ServeMetrics {
        let mut snapshot = lock(&self.shared.metrics).clone();
        snapshot.wall_ns = self.shared.started.elapsed().as_nanos() as u64;
        snapshot.queue_depth = self.shared.queue_depth.load(Ordering::Relaxed);
        snapshot
    }

    /// The last `n` completed job traces from the flight recorder,
    /// oldest first. Empty when tracing is disabled
    /// ([`DaemonConfig::trace_capacity`] of zero).
    pub fn trace_tail(&self, n: usize) -> Vec<JobTrace> {
        lock(&self.shared.recorder).tail(n)
    }

    /// The cumulative per-op-kind engine profile. All-zero (default)
    /// when profiling is disabled ([`DaemonConfig::profile`] false).
    pub fn profile_snapshot(&self) -> OpProfileSnapshot {
        self.shared
            .profile
            .as_ref()
            .map(OpProfile::snapshot)
            .unwrap_or_default()
    }

    /// Submits one job; a group of one — see [`Daemon::submit_group`].
    ///
    /// # Errors
    ///
    /// [`Rejected`] if admission control refuses the job; nothing was
    /// consumed and a later retry is seed-neutral.
    pub fn submit(
        &self,
        request: JobRequest,
        priority: Priority,
    ) -> Result<ResultStream, Rejected> {
        self.submit_group(vec![request], priority)
    }

    /// Submits a group of jobs atomically under one priority class,
    /// returning the stream of their results.
    ///
    /// The group is screened (size bound, queue bound) before any job
    /// consumes an id/seed position; on acceptance every job is admitted
    /// contiguously, so the group occupies positions
    /// `ids()[0] ..= ids()[n-1]` of the evaluation stream. Jobs that
    /// fail validation consume their position and are answered through
    /// the stream, identical to [`crate::Service::run_batch`] semantics.
    ///
    /// # Errors
    ///
    /// [`Rejected::TooLarge`] if any job exceeds the per-job shot
    /// bound, [`Rejected::QueueFull`] if the queue cannot take the
    /// whole group, [`Rejected::ShuttingDown`] after shutdown began.
    /// In every case nothing was admitted.
    ///
    /// # Panics
    ///
    /// Panics if `requests` is empty — an empty group has no results to
    /// stream.
    pub fn submit_group(
        &self,
        requests: Vec<JobRequest>,
        priority: Priority,
    ) -> Result<ResultStream, Rejected> {
        assert!(!requests.is_empty(), "cannot submit an empty group");
        let config = &self.shared.config;
        // Size screening first: it needs no lock and a too-large job
        // must not bump the queue-full counters.
        if let Some(shots) = requests
            .iter()
            .map(|r| requested_shots(&r.spec))
            .filter(|&s| s > config.max_job_shots)
            .max()
        {
            lock(&self.shared.metrics).rejected_large[priority.index()] += requests.len() as u64;
            return Err(Rejected::TooLarge {
                shots,
                limit: config.max_job_shots,
            });
        }
        // Validation is pure in the request, so it can run before the
        // queue lock; failures still consume stream positions below.
        // Timed per job so the validate histogram sees one sample per
        // request, not one per group.
        let enqueued_ns = now_ns(&self.shared);
        let validations: Vec<(Result<(), JobError>, u64)> = requests
            .iter()
            .map(|request| {
                let t0 = Instant::now();
                let validation = validate_request(request);
                (validation, t0.elapsed().as_nanos() as u64)
            })
            .collect();
        let validate_ns: u64 = validations.iter().map(|(_, ns)| ns).sum();
        let validate_samples: Vec<u64> = validations.iter().map(|(_, ns)| *ns).collect();
        let n_valid = validations.iter().filter(|(v, _)| v.is_ok()).count();
        let tracing = self.shared.config.trace_capacity > 0;

        let (tx, rx) = mpsc::channel();
        let mut ids = Vec::with_capacity(requests.len());
        let depth_after = {
            let mut queue = lock(&self.shared.queue);
            if !queue.open {
                drop(queue);
                // Shutdown rejections are lifecycle, not load; they
                // bump no backpressure counter.
                return Err(Rejected::ShuttingDown);
            }
            if queue.depth + n_valid > config.max_queue_depth {
                let depth = queue.depth;
                drop(queue);
                lock(&self.shared.metrics).rejected_full[priority.index()] += requests.len() as u64;
                return Err(Rejected::QueueFull {
                    depth,
                    limit: config.max_queue_depth,
                });
            }
            for (index, (request, (validation, validate_job_ns))) in
                requests.into_iter().zip(validations).enumerate()
            {
                let id = JobId(queue.next_job);
                queue.next_job += 1;
                let seed = request
                    .seed
                    .unwrap_or_else(|| stream_seed(config.service.base_seed, id.0));
                ids.push(id);
                let trace = tracing.then(|| JobTrace {
                    job: id.0,
                    job_kind: request.spec.kind_index() as u32,
                    priority: priority.index() as u32,
                    shots: requested_shots(&request.spec),
                    cache_hit: false,
                    ok: false,
                    spans: vec![
                        Span {
                            kind: SpanKind::Enqueued,
                            at_ns: enqueued_ns,
                        },
                        Span {
                            kind: SpanKind::Validated,
                            at_ns: enqueued_ns + validate_job_ns,
                        },
                    ],
                });
                let job = PreparedJob {
                    index,
                    id,
                    seed,
                    params: request.params,
                    spec: request.spec,
                };
                match validation {
                    Err(error) => {
                        // Answered immediately through the stream; the
                        // position is consumed, the queue never sees it.
                        // Its trace is a truncated chain: rejected at
                        // validation, delivered, never scheduled.
                        let _ = tx.send(job.failed(error));
                        if let Some(mut trace) = trace {
                            trace.spans.push(Span {
                                kind: SpanKind::Delivered,
                                at_ns: now_ns(&self.shared),
                            });
                            lock(&self.shared.recorder).record(trace);
                        }
                    }
                    Ok(()) => {
                        let key = request.program.structural_key();
                        let trace = trace.map(|mut trace| {
                            trace.spans.push(Span {
                                kind: SpanKind::Admitted,
                                at_ns: now_ns(&self.shared),
                            });
                            trace
                        });
                        queue.classes[priority.index()].push_back(QueuedJob {
                            job,
                            program: request.program,
                            key,
                            priority,
                            enqueued: Instant::now(),
                            trace,
                            tx: tx.clone(),
                        });
                        queue.depth += 1;
                    }
                }
            }
            queue.depth
        };
        self.shared
            .queue_depth
            .store(depth_after as u64, Ordering::Relaxed);
        {
            let mut metrics = lock(&self.shared.metrics);
            metrics.admitted[priority.index()] += ids.len() as u64;
            metrics.validate_ns += validate_ns;
            for ns in validate_samples {
                metrics.validate_hist.record(ns);
            }
            metrics.batches += 1;
            // Immediately-failed validations never reach a worker, so
            // account for them here.
            metrics.jobs_completed += (ids.len() - n_valid) as u64;
            metrics.jobs_failed += (ids.len() - n_valid) as u64;
        }
        self.shared.work_ready.notify_all();
        Ok(ResultStream {
            rx,
            ids,
            received: 0,
        })
    }

    /// The blocking convenience: submits a group at [`Priority::Batch`]
    /// and waits for all results in submission order — a drop-in
    /// stand-in for [`crate::Service::run_batch`] on a shared daemon.
    pub fn run_batch(&self, requests: Vec<JobRequest>) -> Result<Vec<JobResult>, Rejected> {
        Ok(self
            .submit_group(requests, Priority::Batch)?
            .collect_ordered())
    }

    /// Evaluates `observable` on `circuit` at a slice of parameter
    /// points through the daemon — the pipelined, service-backed form
    /// of an `hgp_optim` `BatchObjective`. Each optimizer probe batch
    /// is one submitted group; because submission returns as soon as
    /// the group is admitted, a training loop naturally pipelines its
    /// bookkeeping against the pool, and many tenants' objectives
    /// interleave on one daemon.
    ///
    /// ```ignore
    /// let mut objective =
    ///     |xs: &[Vec<f64>]| daemon.expectation_batch(&circuit, &obs, xs, Priority::Interactive);
    /// let result = Cobyla::new(60).minimize_batch(&mut objective, &x0);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the submission is rejected or any job fails (an
    /// optimization driver is programmer infrastructure, not a request
    /// boundary).
    pub fn expectation_batch(
        &self,
        circuit: &Circuit,
        observable: &PauliSum,
        points: &[Vec<f64>],
        priority: Priority,
    ) -> Vec<f64> {
        let requests = points
            .iter()
            .map(|x| {
                JobRequest::new(
                    circuit.clone(),
                    x.clone(),
                    JobSpec::Expectation {
                        observable: observable.clone(),
                    },
                )
            })
            .collect();
        self.collect_expectations(requests, priority)
    }

    /// The hybrid counterpart of [`Daemon::expectation_batch`]: full
    /// parameter points on a hybrid gate-pulse shape.
    ///
    /// # Panics
    ///
    /// Panics if the submission is rejected or any job fails.
    pub fn hybrid_expectation_batch(
        &self,
        shape: &HybridShape,
        observable: &PauliSum,
        points: &[Vec<f64>],
        priority: Priority,
    ) -> Vec<f64> {
        let requests = points
            .iter()
            .map(|x| {
                JobRequest::hybrid(
                    shape.clone(),
                    x.clone(),
                    JobSpec::HybridExpectation {
                        observable: observable.clone(),
                    },
                )
            })
            .collect();
        self.collect_expectations(requests, priority)
    }

    fn collect_expectations(&self, requests: Vec<JobRequest>, priority: Priority) -> Vec<f64> {
        self.submit_group(requests, priority)
            .expect("objective batch admitted")
            .collect_ordered()
            .into_iter()
            .map(|r| match r.unwrap_output() {
                JobOutput::Expectation { value } => *value,
                other => unreachable!("expectation job produced {other:?}"),
            })
            .collect()
    }

    /// Graceful shutdown: stops admission, **drains** every queued job
    /// (results still stream to their holders), joins the workers, and
    /// returns the final metrics snapshot. Idempotent — later calls
    /// (and the drop guard) are no-ops.
    pub fn shutdown(&self) -> ServeMetrics {
        {
            let mut queue = lock(&self.shared.queue);
            queue.open = false;
        }
        self.shared.work_ready.notify_all();
        let handles: Vec<JoinHandle<()>> = lock(&self.workers).drain(..).collect();
        for handle in handles {
            // A worker that panicked (outside the per-job boundary)
            // reports Err here; the drain already completed on the
            // surviving workers, so the daemon absorbs it.
            let _ = handle.join();
        }
        self.metrics()
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The persistent worker loop: take the next job by priority, compile
/// through the shared cache, execute through the shared worker core,
/// stream the result out, account metrics. Exits when the queue is
/// closed **and** empty — shutdown drains.
fn worker_loop(shared: &Shared) {
    let config = &shared.config.service;
    loop {
        let (queued, depth_after) = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(job) = queue.pop_next() {
                    break (job, queue.depth);
                }
                if !queue.open {
                    return;
                }
                queue = shared
                    .work_ready
                    .wait(queue)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        };
        shared
            .queue_depth
            .store(depth_after as u64, Ordering::Relaxed);
        let queue_ns = queued.enqueued.elapsed().as_nanos() as u64;

        // Compile through the shared cache. On a miss the compile runs
        // outside the cache lock — a concurrent worker may compile the
        // same shape redundantly, but compilation is deterministic, so
        // last-insert-wins is harmless and admission never stalls
        // behind a slow compile.
        let cached = lock(&shared.cache).get(queued.key);
        let (artifact, cache_hit, compile_ns) = match cached {
            Some(artifact) => (Ok(artifact), true, 0),
            None => {
                let t0 = Instant::now();
                let compiled = compile_artifact(
                    &shared.backend,
                    &config.layout,
                    config.compile_options,
                    &queued.program,
                );
                let compile_ns = t0.elapsed().as_nanos() as u64;
                if let Ok(artifact) = &compiled {
                    lock(&shared.cache).insert(artifact.clone());
                }
                (compiled, false, compile_ns)
            }
        };

        let shots = trajectory_shots(&queued.job.spec);
        let kind = queued.job.spec.kind_index();
        let priority = queued.priority;
        let mut trace = queued.trace;
        if let Some(trace) = &mut trace {
            trace.cache_hit = cache_hit;
            trace.spans.push(Span {
                kind: SpanKind::Compiled,
                at_ns: now_ns(shared),
            });
        }
        // Bind/execute boundaries are reconstructed from the worker
        // core's timings: the bind span closes `bind_ns` into the
        // execution window, the executed span closes the whole window.
        let exec_start_ns = now_ns(shared);
        let (result, bind_ns) = match artifact {
            Ok(artifact) => match &shared.profile {
                Some(profile) => {
                    execute_job(&shared.backend, &artifact, cache_hit, queued.job, profile)
                }
                None => execute_job(
                    &shared.backend,
                    &artifact,
                    cache_hit,
                    queued.job,
                    &NoProfile,
                ),
            },
            Err(error) => (queued.job.failed(error), 0),
        };
        let exec_ns = result.elapsed_ns.saturating_sub(bind_ns);

        {
            let mut metrics = lock(&shared.metrics);
            metrics.queue_ns += queue_ns;
            metrics.compile_ns += compile_ns;
            metrics.bind_ns += bind_ns;
            metrics.exec_ns += exec_ns;
            if !cache_hit {
                metrics.compile_hist.record(compile_ns);
            }
            metrics.record_job_stages(Some(queue_ns), bind_ns, exec_ns, priority, kind);
            metrics.jobs_completed += 1;
            if result.output.is_err() {
                metrics.jobs_failed += 1;
            } else {
                metrics.shots_executed += shots;
            }
            let cache = lock(&shared.cache);
            metrics.cache_hits = cache.hits();
            metrics.cache_misses = cache.misses();
        }

        if let Some(trace) = &mut trace {
            trace.ok = result.output.is_ok();
            trace.spans.push(Span {
                kind: SpanKind::Bound,
                at_ns: exec_start_ns + bind_ns,
            });
            trace.spans.push(Span {
                kind: SpanKind::Executed,
                at_ns: exec_start_ns + result.elapsed_ns,
            });
        }

        // The trace enters the recorder *before* the result reaches the
        // stream: a client that has seen a job's result is guaranteed to
        // find its trace in the flight recorder. The delivered span is
        // therefore stamped as the result is handed off.
        if let Some(mut trace) = trace {
            trace.spans.push(Span {
                kind: SpanKind::Delivered,
                at_ns: now_ns(shared),
            });
            lock(&shared.recorder).record(trace);
        }
        // The receiver may be long gone (client disconnected, stream
        // dropped); that discards this result and nothing else.
        let _ = queued.tx.send(result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgp_core::qaoa::qaoa_circuit;
    use hgp_graph::instances;

    fn counts_request(circuit: &Circuit, gamma: f64) -> JobRequest {
        JobRequest::new(
            circuit.clone(),
            vec![gamma, 0.25],
            JobSpec::Counts { shots: 64 },
        )
    }

    #[test]
    fn worker_panic_poisoning_the_queue_cannot_wedge_the_drain() {
        // Simulate the worst mid-job failure: a thread dies while
        // holding the queue lock, poisoning it. Admission and the
        // shutdown drain must recover the lock and finish normally.
        let backend = Backend::ibmq_guadalupe();
        let graph = instances::task1_three_regular_6();
        let circuit = qaoa_circuit(&graph, 1);
        let daemon = Daemon::start(
            backend,
            DaemonConfig::new(vec![0, 1, 2, 3, 4, 5]).with_workers(2),
        );

        let shared = Arc::clone(&daemon.shared);
        let _ = std::thread::spawn(move || {
            let _guard = shared.queue.lock().unwrap();
            panic!("worker died mid-queue-operation");
        })
        .join();
        assert!(daemon.shared.queue.is_poisoned());

        let stream = daemon
            .submit_group(
                (0..4)
                    .map(|i| counts_request(&circuit, 0.1 * (i + 1) as f64))
                    .collect(),
                Priority::Batch,
            )
            .expect("poisoned lock recovers");
        let results = stream.collect_ordered();
        assert_eq!(results.len(), 4);
        assert!(results.iter().all(|r| r.output.is_ok()));
        let metrics = daemon.shutdown();
        assert_eq!(metrics.jobs_completed, 4);
    }

    #[test]
    fn strict_priority_scan_order_matches_declaration() {
        assert_eq!(
            Priority::ALL.map(Priority::index),
            [0, 1, 2],
            "metrics arrays index by scan order"
        );
        let mut state = QueueState {
            classes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            depth: 0,
            next_job: 0,
            open: true,
        };
        assert!(state.pop_next().is_none());
    }
}
