//! Round-trip property tests of the JSON wire format: every public
//! `hgp_serve` job/result type (and the simulator types they embed)
//! must survive `to_json_string` -> `from_json_str` exactly — bound
//! f64 values bit for bit, u64 seeds above 2^53 included.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hgp_circuit::{Circuit, Gate, Param, ParamId};
use hgp_core::compile::HybridShape;
use hgp_core::models::GateModelOptions;
use hgp_graph::Graph;
use hgp_math::pauli::{Pauli, PauliString, PauliSum};
use hgp_serve::json::JsonCodec;
use hgp_serve::{
    Histogram, JobError, JobId, JobOutput, JobRequest, JobResult, JobSpec, JobStage, JobTrace,
    OpProfileSnapshot, Priority, Rejected, ServeMetrics, Span, SpanKind, WireRequest, WireResponse,
};
use hgp_sim::Counts;

/// A random (possibly parametrized) circuit drawn from the full gate
/// set, including barriers and measurements.
fn random_circuit(rng: &mut StdRng) -> Circuit {
    let n = rng.gen_range(1usize..5);
    let n_params = rng.gen_range(0usize..4);
    let mut qc = Circuit::new(n);
    qc.add_params(n_params);
    let angle = |rng: &mut StdRng| -> Param {
        if n_params > 0 && rng.gen_bool(0.5) {
            Param::free(ParamId(rng.gen_range(0..n_params)))
                .scaled(rng.gen_range(-3.0..3.0))
                .shifted(rng.gen_range(-1.0..1.0))
        } else {
            Param::bound(rng.gen_range(-7.0..7.0))
        }
    };
    for _ in 0..rng.gen_range(0usize..12) {
        let choice = rng.gen_range(0usize..19);
        let gate = match choice {
            0 => Gate::I,
            1 => Gate::X,
            2 => Gate::Y,
            3 => Gate::Z,
            4 => Gate::H,
            5 => Gate::S,
            6 => Gate::Sdg,
            7 => Gate::T,
            8 => Gate::Tdg,
            9 => Gate::SX,
            10 => Gate::Rx(angle(rng)),
            11 => Gate::Ry(angle(rng)),
            12 => Gate::Rz(angle(rng)),
            13 => Gate::U3(angle(rng), angle(rng), angle(rng)),
            14 if n >= 2 => Gate::CX,
            15 if n >= 2 => Gate::Rzz(angle(rng)),
            16 if n >= 2 => Gate::Rzx(angle(rng)),
            17 if n >= 2 => Gate::CZ,
            18 if n >= 2 => Gate::Swap,
            _ => Gate::H,
        };
        if gate.n_qubits() == 1 {
            let q = rng.gen_range(0..n);
            qc.push(gate, &[q]);
        } else {
            let a = rng.gen_range(0..n);
            let b = (a + rng.gen_range(1..n)) % n;
            qc.push(gate, &[a, b]);
        }
    }
    if rng.gen_bool(0.3) {
        qc.barrier();
    }
    if rng.gen_bool(0.3) {
        qc.measure_all();
    }
    qc
}

fn random_counts(rng: &mut StdRng) -> Counts {
    let n = rng.gen_range(1usize..6);
    let mut counts = Counts::new(n);
    for _ in 0..rng.gen_range(0usize..10) {
        counts.record(rng.gen_range(0..1 << n), rng.gen_range(1u64..1 << 40));
    }
    counts
}

fn random_observable(rng: &mut StdRng, n: usize) -> PauliSum {
    let n_terms = rng.gen_range(1usize..4);
    let terms = (0..n_terms)
        .map(|_| {
            let mut qubits: Vec<usize> = (0..n).collect();
            let k = rng.gen_range(0usize..=n.min(3));
            let mut factors = Vec::new();
            for _ in 0..k {
                let q = qubits.remove(rng.gen_range(0..qubits.len()));
                let p = match rng.gen_range(0u32..3) {
                    0 => Pauli::X,
                    1 => Pauli::Y,
                    _ => Pauli::Z,
                };
                factors.push((q, p));
            }
            PauliString::new(n, factors, rng.gen_range(-5.0..5.0))
        })
        .collect();
    PauliSum::from_terms(terms)
}

fn random_spec(rng: &mut StdRng, n: usize) -> JobSpec {
    match rng.gen_range(0u32..6) {
        0 => JobSpec::StateVector,
        1 => JobSpec::DensityMatrix,
        2 => JobSpec::Counts {
            shots: rng.gen_range(1usize..100_000),
        },
        3 => JobSpec::TrajectoryCounts {
            shots: rng.gen_range(1usize..100_000),
        },
        4 => JobSpec::TrajectoryExpectation {
            observable: random_observable(rng, n),
            trajectories: rng.gen_range(1usize..10_000),
        },
        _ => JobSpec::Expectation {
            observable: random_observable(rng, n),
        },
    }
}

fn random_graph(rng: &mut StdRng) -> Graph {
    let n = rng.gen_range(2usize..7);
    let mut graph = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(0.5) {
                graph.add_edge(u, v, rng.gen_range(-2.0..2.0));
            }
        }
    }
    graph
}

fn random_hybrid_shape(rng: &mut StdRng) -> HybridShape {
    let graph = random_graph(rng);
    let options = GateModelOptions {
        cancellation: rng.gen_bool(0.5),
        sabre_iterations: rng.gen_range(0usize..4),
    };
    HybridShape::new(graph, rng.gen_range(1usize..4))
        .with_mixer_duration(32 * rng.gen_range(1u32..12))
        .with_options(options)
}

fn random_hybrid_spec(rng: &mut StdRng, n: usize) -> JobSpec {
    match rng.gen_range(0u32..4) {
        0 => JobSpec::HybridCounts {
            shots: rng.gen_range(1usize..100_000),
        },
        1 => JobSpec::HybridTrajectoryCounts {
            shots: rng.gen_range(1usize..100_000),
        },
        2 => JobSpec::HybridTrajectoryExpectation {
            observable: random_observable(rng, n),
            trajectories: rng.gen_range(1usize..10_000),
        },
        _ => JobSpec::HybridExpectation {
            observable: random_observable(rng, n),
        },
    }
}

fn random_request(rng: &mut StdRng) -> JobRequest {
    let mut request = if rng.gen_bool(0.5) {
        let circuit = random_circuit(rng);
        let n = circuit.n_qubits();
        let params: Vec<f64> = (0..circuit.n_params())
            .map(|_| rng.gen_range(-7.0..7.0))
            .collect();
        JobRequest::new(circuit, params, random_spec(rng, n))
    } else {
        let shape = random_hybrid_shape(rng);
        let n = shape.n_qubits();
        let params: Vec<f64> = (0..shape.n_params())
            .map(|_| rng.gen_range(-7.0..7.0))
            .collect();
        JobRequest::hybrid(shape, params, random_hybrid_spec(rng, n))
    };
    if rng.gen_bool(0.5) {
        // Full u64 range: seeds above 2^53 must survive (they would not
        // through an f64 number path).
        request = request.with_seed(rng.gen());
    }
    request
}

fn random_outcome(rng: &mut StdRng) -> Result<JobOutput, JobError> {
    if rng.gen_bool(0.25) {
        let stage = match rng.gen_range(0u32..3) {
            0 => JobStage::Validate,
            1 => JobStage::Compile,
            _ => JobStage::Execute,
        };
        Err(JobError {
            stage,
            message: format!(
                "failure #{} with \"quotes\" and \n newlines",
                rng.gen::<u32>()
            ),
        })
    } else {
        Ok(random_output(rng))
    }
}

fn random_output(rng: &mut StdRng) -> JobOutput {
    let n = rng.gen_range(1usize..4);
    match rng.gen_range(0u32..6) {
        0 => JobOutput::StateVector {
            probabilities: (0..1 << n).map(|_| rng.gen_range(0.0..1.0)).collect(),
        },
        1 => JobOutput::DensityMatrix {
            probabilities: (0..1 << n).map(|_| rng.gen_range(0.0..1.0)).collect(),
            purity: rng.gen_range(0.0..1.0),
        },
        2 => JobOutput::Counts(random_counts(rng)),
        3 => JobOutput::TrajectoryCounts(random_counts(rng)),
        4 => JobOutput::TrajectoryExpectation {
            value: rng.gen_range(-100.0..100.0),
            std_error: rng.gen_range(0.0..1.0),
            trajectories: rng.gen_range(1usize..10_000),
        },
        _ => JobOutput::Expectation {
            value: rng.gen_range(-100.0..100.0),
        },
    }
}

fn random_result(rng: &mut StdRng) -> JobResult {
    JobResult {
        id: JobId(rng.gen()),
        seed: rng.gen(),
        cache_hit: rng.gen_bool(0.5),
        elapsed_ns: rng.gen(),
        output: random_outcome(rng),
    }
}

fn random_priority(rng: &mut StdRng) -> Priority {
    Priority::ALL[rng.gen_range(0usize..3)]
}

fn random_rejected(rng: &mut StdRng) -> Rejected {
    match rng.gen_range(0u32..3) {
        0 => Rejected::QueueFull {
            depth: rng.gen_range(0usize..1 << 20),
            limit: rng.gen_range(1usize..1 << 20),
        },
        1 => Rejected::TooLarge {
            // Full u64 range: counters must not round through f64.
            shots: rng.gen(),
            limit: rng.gen(),
        },
        _ => Rejected::ShuttingDown,
    }
}

/// Samples spanning every magnitude, so bucketing covers the first and
/// last buckets as well as the interior.
fn random_histogram(rng: &mut StdRng) -> Histogram {
    let mut hist = Histogram::new();
    for _ in 0..rng.gen_range(0usize..24) {
        let shift = rng.gen_range(0u32..64);
        hist.record(rng.gen::<u64>() >> shift);
    }
    hist
}

fn random_profile(rng: &mut StdRng) -> OpProfileSnapshot {
    let mut snap = OpProfileSnapshot::default();
    for i in 0..snap.calls.len() {
        snap.calls[i] = rng.gen();
        snap.ns[i] = rng.gen();
    }
    snap
}

/// A trace with a non-decreasing span prefix of the full lifecycle —
/// matching what the daemon records for completed and
/// validation-rejected jobs alike.
fn random_trace(rng: &mut StdRng) -> JobTrace {
    let mut at = rng.gen_range(0u64..1 << 40);
    let n_spans = rng.gen_range(1usize..=SpanKind::COUNT);
    let spans = SpanKind::ALL
        .iter()
        .take(n_spans)
        .map(|&kind| {
            at += rng.gen_range(0u64..1 << 30);
            Span { kind, at_ns: at }
        })
        .collect();
    JobTrace {
        job: rng.gen(),
        job_kind: rng.gen_range(0u32..10),
        priority: rng.gen_range(0u32..3),
        shots: rng.gen(),
        cache_hit: rng.gen_bool(0.5),
        ok: rng.gen_bool(0.5),
        spans,
    }
}

fn random_metrics(rng: &mut StdRng) -> ServeMetrics {
    ServeMetrics {
        jobs_completed: rng.gen(),
        jobs_failed: rng.gen(),
        batches: rng.gen(),
        shape_groups: rng.gen(),
        cache_hits: rng.gen(),
        cache_misses: rng.gen(),
        validate_ns: rng.gen(),
        compile_ns: rng.gen(),
        bind_ns: rng.gen(),
        exec_ns: rng.gen(),
        wall_ns: rng.gen(),
        queue_depth: rng.gen(),
        queue_ns: rng.gen(),
        admitted: [rng.gen(), rng.gen(), rng.gen()],
        rejected_full: [rng.gen(), rng.gen(), rng.gen()],
        rejected_large: [rng.gen(), rng.gen(), rng.gen()],
        shots_executed: rng.gen(),
        queue_hist: random_histogram(rng),
        validate_hist: random_histogram(rng),
        compile_hist: random_histogram(rng),
        bind_hist: random_histogram(rng),
        exec_hist: random_histogram(rng),
        priority_hist: std::array::from_fn(|_| random_histogram(rng)),
        kind_hist: std::array::from_fn(|_| random_histogram(rng)),
    }
}

fn random_wire_request(rng: &mut StdRng) -> WireRequest {
    match rng.gen_range(0u32..6) {
        0 => WireRequest::Submit {
            request: random_request(rng),
            priority: random_priority(rng),
        },
        1 => WireRequest::SubmitGroup {
            requests: (0..rng.gen_range(1usize..4))
                .map(|_| random_request(rng))
                .collect(),
            priority: random_priority(rng),
        },
        2 => WireRequest::Metrics,
        3 => WireRequest::MetricsSnapshot,
        4 => WireRequest::TraceTail {
            limit: rng.gen_range(0usize..1 << 20),
        },
        _ => WireRequest::Ping,
    }
}

fn random_wire_response(rng: &mut StdRng) -> WireResponse {
    match rng.gen_range(0u32..8) {
        0 => WireResponse::Accepted {
            ids: (0..rng.gen_range(0usize..5))
                .map(|_| JobId(rng.gen()))
                .collect(),
        },
        1 => WireResponse::Rejected {
            rejected: random_rejected(rng),
        },
        2 => WireResponse::Result {
            result: random_result(rng),
        },
        3 => WireResponse::Metrics {
            metrics: random_metrics(rng),
        },
        4 => WireResponse::MetricsSnapshot {
            metrics: random_metrics(rng),
            profile: random_profile(rng),
        },
        5 => WireResponse::TraceTail {
            traces: (0..rng.gen_range(0usize..4))
                .map(|_| random_trace(rng))
                .collect(),
        },
        6 => WireResponse::Pong,
        _ => WireResponse::Error {
            message: format!("wire failure #{} with \"quotes\"", rng.gen::<u32>()),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn counts_round_trip(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let counts = random_counts(&mut rng);
        prop_assert_eq!(Counts::from_json_str(&counts.to_json_string()).unwrap(), counts);
    }

    #[test]
    fn circuit_round_trip(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let circuit = random_circuit(&mut rng);
        let back = Circuit::from_json_str(&circuit.to_json_string()).unwrap();
        // Equality is structural: same instructions, params, width —
        // and therefore the same structural key / cache identity.
        prop_assert_eq!(back.structural_key(), circuit.structural_key());
        prop_assert_eq!(back, circuit);
    }

    #[test]
    fn job_request_round_trip(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let request = random_request(&mut rng);
        prop_assert_eq!(JobRequest::from_json_str(&request.to_json_string()).unwrap(), request);
    }

    #[test]
    fn job_result_round_trip(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let result = JobResult {
            id: JobId(rng.gen()),
            seed: rng.gen(),
            cache_hit: rng.gen_bool(0.5),
            elapsed_ns: rng.gen(),
            output: random_outcome(&mut rng),
        };
        prop_assert_eq!(JobResult::from_json_str(&result.to_json_string()).unwrap(), result);
    }

    #[test]
    fn hybrid_shape_round_trip(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let shape = random_hybrid_shape(&mut rng);
        let back = HybridShape::from_json_str(&shape.to_json_string()).unwrap();
        // Structural equality implies cache-key equality: the wire
        // format preserves the serve layer's shape identity.
        prop_assert_eq!(back.structural_key(), shape.structural_key());
        prop_assert_eq!(back, shape);
    }

    #[test]
    fn observable_round_trip(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let width = rng.gen_range(1usize..6);
        let obs = random_observable(&mut rng, width);
        prop_assert_eq!(PauliSum::from_json_str(&obs.to_json_string()).unwrap(), obs);
    }

    #[test]
    fn wire_request_round_trip(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let envelope = random_wire_request(&mut rng);
        prop_assert_eq!(
            WireRequest::from_json_str(&envelope.to_json_string()).unwrap(),
            envelope
        );
    }

    #[test]
    fn wire_response_round_trip(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let envelope = random_wire_response(&mut rng);
        prop_assert_eq!(
            WireResponse::from_json_str(&envelope.to_json_string()).unwrap(),
            envelope
        );
    }

    #[test]
    fn metrics_round_trip(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let metrics = random_metrics(&mut rng);
        prop_assert_eq!(
            ServeMetrics::from_json_str(&metrics.to_json_string()).unwrap(),
            metrics
        );
    }

    #[test]
    fn histogram_round_trip(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let hist = random_histogram(&mut rng);
        prop_assert_eq!(Histogram::from_json_str(&hist.to_json_string()).unwrap(), hist);
    }

    #[test]
    fn job_trace_round_trip(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = random_trace(&mut rng);
        prop_assert_eq!(JobTrace::from_json_str(&trace.to_json_string()).unwrap(), trace);
    }

    #[test]
    fn histogram_merge_is_exact_and_associative(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_histogram(&mut rng);
        let b = random_histogram(&mut rng);
        let c = random_histogram(&mut rng);
        // Associativity: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        // Commutativity, and merge preserves count exactly.
        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab = a.clone();
        ab.merge(&b);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.count(), a.count() + b.count());
    }

    #[test]
    fn histogram_quantiles_are_monotone(seed in 0u64..u64::MAX, q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let hist = random_histogram(&mut rng);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(hist.quantile(lo) <= hist.quantile(hi));
        prop_assert!(hist.p50() <= hist.p99());
        prop_assert!(hist.p99() <= hist.p999());
    }

    #[test]
    fn histogram_buckets_cover_every_value(value in 0u64..u64::MAX) {
        // Every u64 lands in exactly one bucket, whose inclusive upper
        // bound is >= the value (and the previous bucket's is below it).
        let index = Histogram::bucket_index(value);
        prop_assert!(Histogram::bucket_bound(index) >= value);
        if index > 0 {
            prop_assert!(Histogram::bucket_bound(index - 1) < value);
        }
        let mut hist = Histogram::new();
        hist.record(value);
        prop_assert_eq!(hist.counts()[index], 1);
        prop_assert_eq!(hist.quantile(1.0), Histogram::bucket_bound(index));
    }
}
