//! Integration tests of the serving layer's core contracts:
//!
//! - serving through the worker pool is **bit-identical** to sequential
//!   hand-driven `Executor` runs (the acceptance bar for every later
//!   scaling PR),
//! - results are invariant under the worker count and batch split,
//! - the compiled-program cache actually dedupes shape work,
//! - the service plugs into `hgp_optim`-style batch optimization.

use hgp_circuit::Circuit;
use hgp_core::compile::CircuitCompiler;
use hgp_core::qaoa::{cost_hamiltonian, qaoa_circuit};
use hgp_device::Backend;
use hgp_graph::instances;
use hgp_optim::Cobyla;
use hgp_serve::{JobOutput, JobRequest, JobSpec, ServeConfig, Service};
use hgp_sim::seed::stream_seed;
use hgp_sim::Counts;

fn qaoa_points(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| vec![0.05 + 0.07 * i as f64, 0.30 - 0.03 * i as f64])
        .collect()
}

/// The sequential reference: compile + bind + replay each job by hand
/// with the same seeds the service derives. Exact jobs serve off the
/// precompiled superoperator tape, so the reference walks that same
/// path: walk-compile the tape per point (pinned bit-identical to the
/// template bind the service uses by the `hgp_core` template tests),
/// replay it, and sample the resulting state.
fn sequential_counts(
    backend: &Backend,
    layout: Vec<usize>,
    circuit: &Circuit,
    points: &[Vec<f64>],
    shots: usize,
    base_seed: u64,
) -> Vec<Counts> {
    let compiler = CircuitCompiler::new(backend, layout);
    let compiled = compiler.compile(circuit).unwrap();
    let exec = compiled.executor(backend);
    points
        .iter()
        .enumerate()
        .map(|(i, params)| {
            let tape = exec.exact_replay_program(&compiled.bind(params));
            let rho = exec.run_exact_replay(&tape);
            let counts = exec.sample_state(&rho, shots, stream_seed(base_seed, i as u64));
            compiled.decode_counts(&counts)
        })
        .collect()
}

#[test]
fn served_counts_are_bit_identical_to_sequential_executor_runs() {
    let backend = Backend::ibmq_guadalupe();
    let graph = instances::task1_three_regular_6();
    let circuit = qaoa_circuit(&graph, 1);
    let layout = vec![0, 1, 2, 3, 4, 5];
    let points = qaoa_points(6);
    let shots = 512;
    let base_seed = 42;

    let reference = sequential_counts(
        &backend,
        layout.clone(),
        &circuit,
        &points,
        shots,
        base_seed,
    );

    let mut service = Service::new(
        &backend,
        ServeConfig::new(layout)
            .with_workers(4)
            .with_base_seed(base_seed),
    );
    let requests = points
        .iter()
        .map(|x| JobRequest::new(circuit.clone(), x.clone(), JobSpec::Counts { shots }))
        .collect();
    let results = service.run_batch(requests);

    assert_eq!(results.len(), reference.len());
    for (result, expected) in results.iter().zip(&reference) {
        match result.unwrap_output() {
            JobOutput::Counts(counts) => assert_eq!(counts, expected, "{}", result.id),
            other => panic!("expected counts, got {other:?}"),
        }
    }
}

#[test]
fn served_trajectory_jobs_are_bit_identical_to_sequential_executor_runs() {
    // The trajectory job kinds run through the same admission/seed
    // contract: a served TrajectoryCounts/TrajectoryExpectation job is
    // bit-identical to hand-driving the executor's trajectory mode with
    // the job's derived seed.
    let backend = Backend::ibmq_guadalupe();
    let graph = instances::task1_three_regular_6();
    let circuit = qaoa_circuit(&graph, 1);
    let observable = cost_hamiltonian(&graph);
    let layout = vec![0, 1, 2, 3, 4, 5];
    let points = qaoa_points(4);
    let shots = 128;
    let base_seed = 7;

    // Sequential reference.
    let compiler = CircuitCompiler::new(&backend, layout.clone());
    let compiled = compiler.compile(&circuit).unwrap();
    let exec = compiled.executor(&backend);
    let reference: Vec<(Counts, (f64, f64))> = points
        .iter()
        .enumerate()
        .map(|(i, params)| {
            let program = compiled.bind(params);
            // Interleaved submission below: counts jobs take even
            // stream positions, expectation jobs odd ones.
            let counts_seed = stream_seed(base_seed, 2 * i as u64);
            let expect_seed = stream_seed(base_seed, 2 * i as u64 + 1);
            let counts =
                compiled.decode_counts(&exec.sample_trajectories(&program, shots, counts_seed));
            let estimate = exec.expectation_trajectories(
                &program,
                &compiled.wire_observable(&observable),
                shots,
                expect_seed,
            );
            (counts, estimate)
        })
        .collect();

    let mut service = Service::new(
        &backend,
        ServeConfig::new(layout)
            .with_workers(4)
            .with_base_seed(base_seed),
    );
    let mut requests = Vec::new();
    for x in &points {
        requests.push(JobRequest::new(
            circuit.clone(),
            x.clone(),
            JobSpec::TrajectoryCounts { shots },
        ));
        requests.push(JobRequest::new(
            circuit.clone(),
            x.clone(),
            JobSpec::TrajectoryExpectation {
                observable: observable.clone(),
                trajectories: shots,
            },
        ));
    }
    let results = service.run_batch(requests);
    assert_eq!(results.len(), 2 * points.len());
    for (i, (expected_counts, (expected_value, expected_err))) in reference.iter().enumerate() {
        match results[2 * i].unwrap_output() {
            JobOutput::TrajectoryCounts(counts) => assert_eq!(counts, expected_counts),
            other => panic!("expected trajectory counts, got {other:?}"),
        }
        match results[2 * i + 1].unwrap_output() {
            JobOutput::TrajectoryExpectation {
                value,
                std_error,
                trajectories,
            } => {
                assert_eq!(value.to_bits(), expected_value.to_bits());
                assert_eq!(std_error.to_bits(), expected_err.to_bits());
                assert_eq!(*trajectories, shots);
            }
            other => panic!("expected trajectory expectation, got {other:?}"),
        }
    }
}

#[test]
fn trajectory_expectation_converges_to_the_density_matrix_job() {
    // Same circuit, same observable: the trajectory estimate agrees
    // with the exact density-matrix expectation within a few standard
    // errors.
    let backend = Backend::ibmq_guadalupe();
    let graph = instances::task1_three_regular_6();
    let circuit = qaoa_circuit(&graph, 1);
    let observable = cost_hamiltonian(&graph);
    let params = vec![0.35, 0.25];
    let mut service = Service::new(&backend, ServeConfig::new(vec![0, 1, 2, 3, 4, 5]));
    let results = service.run_batch(vec![
        JobRequest::new(
            circuit.clone(),
            params.clone(),
            JobSpec::Expectation {
                observable: observable.clone(),
            },
        ),
        JobRequest::new(
            circuit,
            params,
            JobSpec::TrajectoryExpectation {
                observable,
                trajectories: 2048,
            },
        ),
    ]);
    let exact = match results[0].unwrap_output() {
        JobOutput::Expectation { value } => *value,
        other => panic!("expected expectation, got {other:?}"),
    };
    match results[1].unwrap_output() {
        JobOutput::TrajectoryExpectation {
            value, std_error, ..
        } => {
            assert!(*std_error > 0.0);
            assert!(
                (value - exact).abs() < 5.0 * std_error.max(1e-3),
                "trajectory {value} vs exact {exact} (stderr {std_error})"
            );
        }
        other => panic!("expected trajectory expectation, got {other:?}"),
    }
}

#[test]
fn results_are_invariant_under_worker_count_and_batch_split() {
    let backend = Backend::ibmq_guadalupe();
    let graph = instances::task2_random_6();
    let circuit = qaoa_circuit(&graph, 1);
    let layout = vec![0, 1, 2, 3, 4, 5];
    let points = qaoa_points(8);
    let mk_requests = |points: &[Vec<f64>]| -> Vec<JobRequest> {
        points
            .iter()
            .map(|x| JobRequest::new(circuit.clone(), x.clone(), JobSpec::Counts { shots: 256 }))
            .collect()
    };

    // One worker, one batch.
    let mut solo = Service::new(&backend, ServeConfig::new(layout.clone()).with_workers(1));
    let solo_results = solo.run_batch(mk_requests(&points));

    // Many workers, batch split in two: ids keep counting across
    // batches, so outputs must not move.
    let mut pooled = Service::new(&backend, ServeConfig::new(layout).with_workers(5));
    let mut pooled_results = pooled.run_batch(mk_requests(&points[..3]));
    pooled_results.extend(pooled.run_batch(mk_requests(&points[3..])));

    for (a, b) in solo_results.iter().zip(&pooled_results) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.output, b.output);
    }
}

#[test]
fn cache_dedupes_shape_work_across_and_within_batches() {
    let backend = Backend::ibmq_guadalupe();
    let graph = instances::task1_three_regular_6();
    let circuit = qaoa_circuit(&graph, 1);
    let mut service = Service::new(
        &backend,
        ServeConfig::new(vec![0, 1, 2, 3, 4, 5]).with_workers(3),
    );

    // Batch 1: 5 jobs, 1 shape -> exactly one compilation.
    let requests: Vec<JobRequest> = qaoa_points(5)
        .into_iter()
        .map(|x| JobRequest::new(circuit.clone(), x, JobSpec::StateVector))
        .collect();
    let first = service.run_batch(requests);
    assert_eq!(service.metrics().cache_misses, 1);
    assert_eq!(service.cache().len(), 1);
    assert!(first.iter().all(|r| !r.cache_hit), "first batch compiled");

    // Batch 2: same shape -> zero new compilations, all hits.
    let requests: Vec<JobRequest> = qaoa_points(4)
        .into_iter()
        .map(|x| JobRequest::new(circuit.clone(), x, JobSpec::StateVector))
        .collect();
    let second = service.run_batch(requests);
    assert_eq!(service.metrics().cache_misses, 1, "no recompilation");
    assert!(second.iter().all(|r| r.cache_hit));

    // A second shape (p=2) compiles once more; both coexist.
    let deeper = qaoa_circuit(&graph, 2);
    service.run(JobRequest::new(
        deeper,
        vec![0.1, 0.2, 0.3, 0.4],
        JobSpec::StateVector,
    ));
    assert_eq!(service.metrics().cache_misses, 2);
    assert_eq!(service.cache().len(), 2);
    assert_eq!(service.metrics().jobs_completed, 10);
    assert!(service.metrics().throughput_jobs_per_sec() > 0.0);
}

#[test]
fn exact_jobs_record_template_bind_time_in_the_metrics_split() {
    // Exact job kinds bind the per-dispatch angles into the precompiled
    // superoperator tape before replaying it; that bind is timed
    // separately from execution, so serving exact jobs must leave a
    // nonzero `bind_ns` (and `exec_ns`) in the metrics split.
    let backend = Backend::ibmq_guadalupe();
    let graph = instances::task1_three_regular_6();
    let circuit = qaoa_circuit(&graph, 1);
    let observable = cost_hamiltonian(&graph);
    let mut service = Service::new(
        &backend,
        ServeConfig::new(vec![0, 1, 2, 3, 4, 5]).with_workers(2),
    );
    let results = service.run_batch(vec![
        JobRequest::new(circuit.clone(), vec![0.35, 0.25], JobSpec::DensityMatrix),
        JobRequest::new(
            circuit.clone(),
            vec![0.15, 0.40],
            JobSpec::Counts { shots: 256 },
        ),
        JobRequest::new(
            circuit,
            vec![0.25, 0.10],
            JobSpec::Expectation { observable },
        ),
    ]);
    assert!(results.iter().all(|r| r.error().is_none()));
    let metrics = service.metrics();
    assert_eq!(metrics.jobs_completed, 3);
    assert!(
        metrics.bind_ns > 0,
        "exact-path serving must time the template bind (bind_ns = {})",
        metrics.bind_ns
    );
    assert!(metrics.exec_ns > 0, "replay time is accounted as exec_ns");
}

#[test]
fn mixed_specs_share_one_compiled_shape() {
    let backend = Backend::ibmq_guadalupe();
    let graph = instances::task1_three_regular_6();
    let circuit = qaoa_circuit(&graph, 1);
    let observable = cost_hamiltonian(&graph);
    let params = vec![0.35, 0.25];
    let mut service = Service::new(
        &backend,
        ServeConfig::new(vec![0, 1, 2, 3, 4, 5]).with_workers(2),
    );
    let results = service.run_batch(vec![
        JobRequest::new(circuit.clone(), params.clone(), JobSpec::StateVector),
        JobRequest::new(circuit.clone(), params.clone(), JobSpec::DensityMatrix),
        JobRequest::new(
            circuit.clone(),
            params.clone(),
            JobSpec::Counts { shots: 2048 },
        ),
        JobRequest::new(
            circuit.clone(),
            params.clone(),
            JobSpec::Expectation {
                observable: observable.clone(),
            },
        ),
    ]);
    // One shape despite four different specs.
    assert_eq!(service.metrics().cache_misses, 1);
    assert_eq!(service.metrics().shape_groups, 1);

    let (ideal, noisy, counts, expectation) = match &results[..] {
        [r1, r2, r3, r4] => (
            r1.unwrap_output(),
            r2.unwrap_output(),
            r3.unwrap_output(),
            r4.unwrap_output(),
        ),
        _ => panic!("four results"),
    };
    let JobOutput::StateVector {
        probabilities: ideal,
    } = ideal
    else {
        panic!("statevector output");
    };
    let JobOutput::DensityMatrix {
        probabilities: noisy,
        purity,
    } = noisy
    else {
        panic!("density output");
    };
    let JobOutput::Counts(counts) = counts else {
        panic!("counts output");
    };
    let JobOutput::Expectation { value } = expectation else {
        panic!("expectation output");
    };
    // Physical sanity: distributions normalized; noise reduces purity;
    // the sampled histogram tracks the noisy distribution; the noisy
    // expectation sits inside the spectrum.
    assert!((ideal.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    assert!((noisy.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    assert!(*purity < 1.0 && *purity > 0.1);
    assert_eq!(counts.total(), 2048);
    for (b, &p) in noisy.iter().enumerate() {
        assert!((counts.frequency(b) - p).abs() < 0.08, "state {b}");
    }
    let c_max: f64 = (0..64)
        .map(|b| observable.eval_diagonal(b))
        .fold(f64::MIN, f64::max);
    assert!(*value > 0.0 && *value <= c_max + 1e-9);
}

#[test]
fn disconnected_layout_prefix_fails_the_circuit_job_not_the_batch() {
    // Guadalupe does not couple (0, 15): a 2-qubit circuit lands on the
    // disconnected layout prefix [0, 15] and must fail with a typed
    // compile-stage error, while a 3-qubit batchmate (whose prefix
    // [0, 15, 1] is still disconnected) also fails typed — and a
    // well-laid-out service keeps working afterwards.
    let backend = Backend::ibmq_guadalupe();
    let mut service = Service::new(&backend, ServeConfig::new(vec![0, 15, 1]).with_workers(2));
    let mut bell = Circuit::new(2);
    bell.h(0).cx(0, 1);
    let results = service.run_batch(vec![JobRequest::new(bell, vec![], JobSpec::StateVector)]);
    let error = results[0].error().expect("disconnected prefix fails");
    assert_eq!(error.stage, hgp_serve::JobStage::Compile);
    assert!(error.message.contains("disconnected"), "{error}");
    assert_eq!(service.metrics().jobs_failed, 1);
}

#[test]
fn explicit_seeds_override_derivation() {
    let backend = Backend::ibmq_guadalupe();
    let graph = instances::task1_three_regular_6();
    let circuit = qaoa_circuit(&graph, 1);
    let mut service = Service::new(&backend, ServeConfig::new(vec![0, 1, 2, 3, 4, 5]));
    let spec = JobSpec::Counts { shots: 512 };
    let a =
        service.run(JobRequest::new(circuit.clone(), vec![0.3, 0.2], spec.clone()).with_seed(7));
    let b =
        service.run(JobRequest::new(circuit.clone(), vec![0.3, 0.2], spec.clone()).with_seed(7));
    let c = service.run(JobRequest::new(circuit.clone(), vec![0.3, 0.2], spec));
    assert_eq!(a.seed, 7);
    assert_eq!(a.output, b.output, "same pinned seed, same stream");
    assert_ne!(a.output, c.output, "derived seed differs");
}

#[test]
fn service_backs_a_batch_optimizer() {
    // The serve layer as the evaluation engine of an hgp_optim batch
    // optimization: COBYLA minimizes the negative expected cut through
    // Service::expectation_batch.
    let backend = Backend::ideal(6);
    let graph = instances::task1_three_regular_6();
    let circuit = qaoa_circuit(&graph, 1);
    let observable = cost_hamiltonian(&graph);
    let mut service = Service::new(
        &backend,
        ServeConfig::new(vec![0, 1, 2, 3, 4, 5]).with_workers(4),
    );
    let mut objective = |xs: &[Vec<f64>]| -> Vec<f64> {
        service
            .expectation_batch(&circuit, &observable, xs)
            .into_iter()
            .map(|v| -v)
            .collect()
    };
    let result = Cobyla::new(40).minimize_batch(&mut objective, &[0.1, 0.1]);
    let c_max: f64 = (0..64)
        .map(|b| observable.eval_diagonal(b))
        .fold(f64::MIN, f64::max);
    let ar = -result.fun / c_max;
    assert!(ar > 0.6, "optimized AR = {ar}");
    // Every evaluation rode the same compiled program.
    assert_eq!(service.metrics().cache_misses, 1);
    assert!(service.metrics().jobs_completed > 20);
}
