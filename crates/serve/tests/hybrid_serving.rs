//! Integration tests of hybrid gate-pulse serving:
//!
//! - served hybrid jobs are **bit-identical** to sequential hand-driven
//!   `Executor` runs over `HybridModel`-built programs, across worker
//!   counts and batch splits (proptest),
//! - hybrid shapes participate in the structural-hash compiled cache,
//!   and coexist with circuit shapes,
//! - served hybrid trajectory estimates converge to the served exact
//!   expectation,
//! - a poisoned job — malformed pulse schedule, bad parameter count,
//!   mismatched spec — fails alone with a typed `JobError` while the
//!   rest of its batch executes normally, and never kills a worker,
//! - the two-stage (coarse gate / fine pulse-trim) training loop runs
//!   through `Service::hybrid_expectation_batch`.

use proptest::prelude::*;

use hgp_core::compile::HybridShape;
use hgp_core::models::{GateModelOptions, HybridModel, VqaModel};
use hgp_core::qaoa::{cost_hamiltonian, qaoa_circuit};
use hgp_core::training::minimize_two_stage;
use hgp_device::Backend;
use hgp_graph::instances;
use hgp_serve::{JobOutput, JobRequest, JobSpec, JobStage, ServeConfig, Service};
use hgp_sim::seed::stream_seed;
use hgp_sim::Counts;

const LAYOUT6: [usize; 6] = [1, 2, 3, 4, 5, 7];

fn shape6(p: usize) -> HybridShape {
    HybridShape::new(instances::task1_three_regular_6(), p)
        .with_options(GateModelOptions::optimized())
}

/// A full hybrid parameter point derived from two angles plus per-qubit
/// trims, deterministic in `i`.
fn hybrid_point(shape: &HybridShape, i: usize) -> Vec<f64> {
    let per_layer = shape.params_per_layer();
    let mut x = Vec::with_capacity(shape.n_params());
    for layer in 0..shape.p() {
        x.push(0.05 + 0.07 * i as f64 + 0.01 * layer as f64); // gamma
        x.push(0.60 - 0.03 * i as f64); // theta
        for q in 0..shape.n_qubits() {
            x.push(0.02 * (q as f64 + 1.0) - 0.01 * i as f64); // phase trim
            x.push(0.03 * (i as f64 + 1.0) - 0.02 * q as f64); // freq trim
        }
        debug_assert_eq!(x.len(), (layer + 1) * per_layer);
    }
    x
}

/// The sequential reference: build each program through the HybridModel
/// and hand-drive the exact replay path — walk-compiled tape, replay,
/// sample — with the seeds the service derives. The serve side binds
/// via the exact template, which is pinned bit-identical to this
/// walk-compiled composition by the `hgp_core` template tests.
fn sequential_hybrid_counts(
    backend: &Backend,
    shape: &HybridShape,
    points: &[Vec<f64>],
    shots: usize,
    base_seed: u64,
) -> Vec<Counts> {
    let region = LAYOUT6[..shape.n_qubits()].to_vec();
    let model =
        HybridModel::with_options(backend, shape.graph(), shape.p(), region, shape.options())
            .unwrap();
    let exec = model.compiled().executor(backend);
    points
        .iter()
        .enumerate()
        .map(|(i, params)| {
            let program = model.build(params);
            let rho = exec.run_exact_replay(&exec.exact_replay_program(&program));
            let counts = exec.sample_state(&rho, shots, stream_seed(base_seed, i as u64));
            model.interpret_counts(&counts)
        })
        .collect()
}

#[test]
fn served_hybrid_counts_are_bit_identical_to_sequential_model_runs() {
    let backend = Backend::ibmq_toronto();
    let shape = shape6(1);
    let points: Vec<Vec<f64>> = (0..6).map(|i| hybrid_point(&shape, i)).collect();
    let shots = 512;
    let base_seed = 42;

    let reference = sequential_hybrid_counts(&backend, &shape, &points, shots, base_seed);

    let mut service = Service::new(
        &backend,
        ServeConfig::new(LAYOUT6.to_vec())
            .with_workers(4)
            .with_base_seed(base_seed),
    );
    let requests = points
        .iter()
        .map(|x| JobRequest::hybrid(shape.clone(), x.clone(), JobSpec::HybridCounts { shots }))
        .collect();
    let results = service.run_batch(requests);
    // One hybrid shape: exactly one compilation for the whole batch.
    assert_eq!(service.metrics().cache_misses, 1);
    assert_eq!(service.metrics().jobs_failed, 0);
    for (result, expected) in results.iter().zip(&reference) {
        match result.unwrap_output() {
            JobOutput::Counts(counts) => assert_eq!(counts, expected, "{}", result.id),
            other => panic!("expected counts, got {other:?}"),
        }
    }
}

proptest! {
    // Each case compiles a p=1 hybrid shape and runs a 6-qubit density
    // walk per point; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The serving determinism contract, fuzzed: for any worker count,
    /// batch split, base seed, and parameter perturbation, served
    /// HybridExpectation batches are bit-identical to sequential
    /// hand-driven Executor runs.
    #[test]
    fn served_hybrid_expectation_is_bit_identical_across_worker_counts(
        workers in 1usize..6,
        split in 1usize..4,
        base_seed in 0u64..1_000_000,
        jitter in -0.2f64..0.2,
    ) {
        let backend = Backend::ibmq_toronto();
        let shape = shape6(1);
        let observable = cost_hamiltonian(shape.graph());
        let points: Vec<Vec<f64>> = (0..4)
            .map(|i| {
                let mut x = hybrid_point(&shape, i);
                for v in &mut x {
                    *v += jitter;
                }
                x
            })
            .collect();

        // Sequential reference through the model path.
        let model = HybridModel::with_options(
            &backend,
            shape.graph(),
            1,
            LAYOUT6.to_vec(),
            shape.options(),
        )
        .unwrap();
        let exec = model.compiled().executor(&backend);
        let wire_obs = model.compiled().wire_observable(&observable);
        let reference: Vec<f64> = points
            .iter()
            .map(|x| {
                // Hand-drive the exact replay path served jobs take:
                // walk-compile the tape per point. The serve side binds
                // via the exact template instead, pinned bit-identical
                // to this composition by the hgp_core template tests.
                let rho = exec.run_exact_replay(&exec.exact_replay_program(&model.build(x)));
                hgp_sim::SimBackend::expectation(&rho, &wire_obs)
            })
            .collect();

        // Served, with an arbitrary worker count and batch split.
        let mut service = Service::new(
            &backend,
            ServeConfig::new(LAYOUT6.to_vec())
                .with_workers(workers)
                .with_base_seed(base_seed),
        );
        let mk = |xs: &[Vec<f64>]| -> Vec<JobRequest> {
            xs.iter()
                .map(|x| {
                    JobRequest::hybrid(
                        shape.clone(),
                        x.clone(),
                        JobSpec::HybridExpectation {
                            observable: observable.clone(),
                        },
                    )
                })
                .collect()
        };
        let cut = split.min(points.len());
        let mut results = service.run_batch(mk(&points[..cut]));
        results.extend(service.run_batch(mk(&points[cut..])));

        for (result, expected) in results.iter().zip(&reference) {
            match result.unwrap_output() {
                JobOutput::Expectation { value } => {
                    prop_assert_eq!(value.to_bits(), expected.to_bits());
                }
                other => prop_assert!(false, "expected expectation, got {other:?}"),
            }
        }
    }
}

proptest! {
    // Each case compiles one hybrid shape (cached after the first
    // batch) and runs a few hundred 6-qubit trajectories per job.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The replay-path determinism contract, fuzzed: served trajectory
    /// jobs ride the compile-time schedule template and the op-fused
    /// replay engine, and must stay bit-identical to the *reference*
    /// `TrajectoryEngine` over the executor-recorded program of the same
    /// binding — for any worker count, batch split, base seed, and
    /// parameter jitter.
    #[test]
    fn served_trajectory_jobs_ride_the_template_bit_identically(
        workers in 1usize..6,
        split in 1usize..4,
        base_seed in 0u64..1_000_000,
        jitter in -0.2f64..0.2,
    ) {
        let backend = Backend::ibmq_toronto();
        let shape = shape6(1);
        let observable = cost_hamiltonian(shape.graph());
        let trajectories = 192;
        let shots = 160;
        let points: Vec<Vec<f64>> = (0..4)
            .map(|i| {
                let mut x = hybrid_point(&shape, i);
                for v in &mut x {
                    *v += jitter;
                }
                x
            })
            .collect();

        let mut service = Service::new(
            &backend,
            ServeConfig::new(LAYOUT6.to_vec())
                .with_workers(workers)
                .with_base_seed(base_seed),
        );
        let mk = |xs: &[Vec<f64>], offset: usize| -> Vec<JobRequest> {
            xs.iter()
                .enumerate()
                .map(|(i, x)| {
                    let spec = if (offset + i).is_multiple_of(2) {
                        JobSpec::HybridTrajectoryExpectation {
                            observable: observable.clone(),
                            trajectories,
                        }
                    } else {
                        JobSpec::HybridTrajectoryCounts { shots }
                    };
                    JobRequest::hybrid(shape.clone(), x.clone(), spec)
                })
                .collect()
        };
        let cut = split.min(points.len());
        let mut results = service.run_batch(mk(&points[..cut], 0));
        results.extend(service.run_batch(mk(&points[cut..], cut)));

        // Reference: hand-driven TrajectoryEngine over the recorded
        // schedule of each binding, at the service's stream seeds.
        let model = HybridModel::with_options(
            &backend,
            shape.graph(),
            1,
            LAYOUT6.to_vec(),
            shape.options(),
        )
        .unwrap();
        let exec = model.compiled().executor(&backend);
        let wire_obs = model.compiled().wire_observable(&observable);
        for (i, (result, x)) in results.iter().zip(points.iter()).enumerate() {
            let recorded = exec.trajectory_program(&model.build(x));
            let seed = stream_seed(base_seed, i as u64);
            match result.unwrap_output() {
                JobOutput::TrajectoryExpectation { value, std_error, .. } => {
                    let reference = hgp_sim::TrajectoryEngine::new(trajectories, seed)
                        .expectation_with_error(&recorded, &wire_obs);
                    prop_assert_eq!(value.to_bits(), reference.0.to_bits());
                    prop_assert_eq!(std_error.to_bits(), reference.1.to_bits());
                }
                JobOutput::TrajectoryCounts(counts) => {
                    let reference = hgp_sim::TrajectoryEngine::new(shots, seed)
                        .sample_counts_with(&recorded, |bits, rng| {
                            exec.readout().corrupt_bits(bits, rng)
                        });
                    prop_assert_eq!(counts, &model.interpret_counts(&reference));
                }
                other => prop_assert!(false, "unexpected output {other:?}"),
            }
        }
        // The whole fuzz case rode one compiled shape (and therefore one
        // recorded template).
        prop_assert_eq!(service.metrics().cache_misses, 1);
        // The stage split is populated: trajectory-heavy batches show
        // bind time well below execute time instead of masquerading as
        // compile misses.
        prop_assert!(service.metrics().bind_ns > 0);
        prop_assert!(service.metrics().exec_ns > service.metrics().bind_ns);
        // Shot accounting: two of the four points ran expectation jobs
        // (192 trajectories each), two ran counts jobs (160 shots each),
        // regardless of how the batches were split or parallelized.
        let even = points.len().div_ceil(2);
        let odd = points.len() - even;
        prop_assert_eq!(
            service.metrics().shots_executed,
            (even * trajectories + odd * shots) as u64
        );
        prop_assert!(service.metrics().shots_per_sec() > 0.0);
        prop_assert!(service.metrics().mean_shot_exec_ns() > 0.0);
    }
}

#[test]
fn served_hybrid_trajectories_are_bit_identical_and_converge() {
    let backend = Backend::ibmq_toronto();
    let shape = shape6(1);
    let observable = cost_hamiltonian(shape.graph());
    let params = hybrid_point(&shape, 2);
    let trajectories = 2048;
    let base_seed = 9;

    let mut service = Service::new(
        &backend,
        ServeConfig::new(LAYOUT6.to_vec())
            .with_workers(3)
            .with_base_seed(base_seed),
    );
    let results = service.run_batch(vec![
        JobRequest::hybrid(
            shape.clone(),
            params.clone(),
            JobSpec::HybridExpectation {
                observable: observable.clone(),
            },
        ),
        JobRequest::hybrid(
            shape.clone(),
            params.clone(),
            JobSpec::HybridTrajectoryExpectation {
                observable: observable.clone(),
                trajectories,
            },
        ),
        JobRequest::hybrid(
            shape.clone(),
            params.clone(),
            JobSpec::HybridTrajectoryCounts { shots: 256 },
        ),
    ]);
    let exact = match results[0].unwrap_output() {
        JobOutput::Expectation { value } => *value,
        other => panic!("expected expectation, got {other:?}"),
    };
    // Convergence: the trajectory estimate brackets the exact value.
    let (value, std_error) = match results[1].unwrap_output() {
        JobOutput::TrajectoryExpectation {
            value, std_error, ..
        } => (*value, *std_error),
        other => panic!("expected trajectory expectation, got {other:?}"),
    };
    assert!(std_error > 0.0);
    assert!(
        (value - exact).abs() < 5.0 * std_error.max(1e-3),
        "trajectory {value} vs exact {exact} (stderr {std_error})"
    );

    // Bit-identity of the trajectory kinds against the hand-driven
    // executor with the service's derived seeds.
    let model = HybridModel::with_options(
        &backend,
        shape.graph(),
        1,
        LAYOUT6.to_vec(),
        shape.options(),
    )
    .unwrap();
    let exec = model.compiled().executor(&backend);
    let program = model.build(&params);
    let by_hand = exec.expectation_trajectories(
        &program,
        &model.compiled().wire_observable(&observable),
        trajectories,
        stream_seed(base_seed, 1),
    );
    assert_eq!(value.to_bits(), by_hand.0.to_bits());
    let by_hand_counts = model.compiled().decode_counts(&exec.sample_trajectories(
        &program,
        256,
        stream_seed(base_seed, 2),
    ));
    match results[2].unwrap_output() {
        JobOutput::TrajectoryCounts(counts) => assert_eq!(counts, &by_hand_counts),
        other => panic!("expected trajectory counts, got {other:?}"),
    }
}

#[test]
fn hybrid_and_circuit_shapes_share_the_cache() {
    let backend = Backend::ibmq_toronto();
    let graph = instances::task1_three_regular_6();
    let shape = shape6(1);
    let circuit = qaoa_circuit(&graph, 1);
    let mut service = Service::new(&backend, ServeConfig::new(LAYOUT6.to_vec()).with_workers(2));

    // Mixed batch: one circuit shape + one hybrid shape = two misses.
    let mut requests = vec![JobRequest::new(
        circuit.clone(),
        vec![0.3, 0.2],
        JobSpec::Counts { shots: 128 },
    )];
    requests.extend((0..3).map(|i| {
        JobRequest::hybrid(
            shape.clone(),
            hybrid_point(&shape, i),
            JobSpec::HybridCounts { shots: 128 },
        )
    }));
    let first = service.run_batch(requests);
    assert!(first.iter().all(|r| r.output.is_ok()));
    assert_eq!(service.metrics().cache_misses, 2);
    assert_eq!(service.cache().len(), 2);
    assert_eq!(service.metrics().shape_groups, 2);

    // Second batch rides both cached shapes.
    let second = service.run_batch(vec![
        JobRequest::new(circuit, vec![0.1, 0.4], JobSpec::Counts { shots: 128 }),
        JobRequest::hybrid(
            shape.clone(),
            hybrid_point(&shape, 5),
            JobSpec::HybridCounts { shots: 128 },
        ),
    ]);
    assert_eq!(service.metrics().cache_misses, 2, "no recompilation");
    assert!(second.iter().all(|r| r.cache_hit));

    // A different mixer duration is a different shape (Step I's knob
    // re-keys the cache).
    service.run(JobRequest::hybrid(
        shape.clone().with_mixer_duration(128),
        hybrid_point(&shape, 0),
        JobSpec::HybridCounts { shots: 64 },
    ));
    assert_eq!(service.metrics().cache_misses, 3);
    assert_eq!(service.cache().len(), 3);
}

#[test]
fn poisoned_jobs_fail_alone_without_killing_workers() {
    let backend = Backend::ibmq_toronto();
    let shape = shape6(1);
    let good_points: Vec<Vec<f64>> = (0..3).map(|i| hybrid_point(&shape, i)).collect();
    let base_seed = 77;
    let shots = 256;

    // The reference run: the same good jobs at the same stream
    // positions, no poison.
    let reference = {
        let mut service = Service::new(
            &backend,
            ServeConfig::new(LAYOUT6.to_vec())
                .with_workers(2)
                .with_base_seed(base_seed),
        );
        service.run_batch(
            good_points
                .iter()
                .map(|x| {
                    JobRequest::hybrid(shape.clone(), x.clone(), JobSpec::HybridCounts { shots })
                })
                .collect(),
        )
    };

    // The poisoned batch interleaves four malformed jobs:
    let mut service = Service::new(
        &backend,
        ServeConfig::new(LAYOUT6.to_vec())
            .with_workers(2)
            .with_base_seed(base_seed),
    );
    // (a) a malformed pulse schedule: mixer duration not a multiple of
    //     32 dt — fails at the compile stage,
    let bad_duration = shape.clone().with_mixer_duration(100);
    // (b) a wrong parameter count — fails at validation,
    // (c) a hybrid spec on a circuit program — fails at validation,
    // (d) a wrong-width observable — fails at validation.
    let graph = instances::task1_three_regular_6();
    let requests = vec![
        JobRequest::hybrid(
            bad_duration.clone(),
            hybrid_point(&bad_duration, 0),
            JobSpec::HybridCounts { shots },
        ),
        JobRequest::hybrid(
            shape.clone(),
            good_points[0].clone(),
            JobSpec::HybridCounts { shots },
        ),
        JobRequest::hybrid(shape.clone(), vec![0.3], JobSpec::HybridCounts { shots }),
        JobRequest::hybrid(
            shape.clone(),
            good_points[1].clone(),
            JobSpec::HybridCounts { shots },
        ),
        JobRequest::new(
            qaoa_circuit(&graph, 1),
            vec![0.3, 0.2],
            JobSpec::HybridCounts { shots },
        ),
        JobRequest::hybrid(
            shape.clone(),
            good_points[2].clone(),
            JobSpec::HybridCounts { shots },
        ),
        JobRequest::hybrid(
            shape.clone(),
            hybrid_point(&shape, 3),
            JobSpec::HybridExpectation {
                // An 8-qubit observable against a 6-qubit program.
                observable: cost_hamiltonian(&hgp_graph::generators::random_regular(8, 3, 1)),
            },
        ),
        // (e) zero shots — fails at validation before any execution.
        JobRequest::hybrid(
            shape.clone(),
            hybrid_point(&shape, 4),
            JobSpec::HybridCounts { shots: 0 },
        ),
    ];
    let results = service.run_batch(requests);
    assert_eq!(results.len(), 8);

    // The poisoned jobs carry typed errors at the right stages...
    let err = |i: usize| results[i].error().unwrap_or_else(|| panic!("job {i}"));
    assert_eq!(err(0).stage, JobStage::Compile);
    assert!(err(0).message.contains("multiple of 32"), "{}", err(0));
    assert_eq!(err(2).stage, JobStage::Validate);
    assert!(err(2).message.contains("parameter"), "{}", err(2));
    assert_eq!(err(4).stage, JobStage::Validate);
    assert_eq!(err(7).stage, JobStage::Validate);
    assert!(err(7).message.contains("shot"), "{}", err(7));
    assert_eq!(service.metrics().jobs_failed, 5);

    // ...while the good jobs completed normally. Note: failed jobs
    // consume stream positions, so the good jobs' seeds differ from the
    // clean batch — compare against hand-driven runs at their *actual*
    // stream positions instead.
    let model = HybridModel::with_options(
        &backend,
        shape.graph(),
        1,
        LAYOUT6.to_vec(),
        shape.options(),
    )
    .unwrap();
    let exec = model.compiled().executor(&backend);
    for (slot, x) in [(1usize, 0usize), (3, 1), (5, 2)] {
        let expected = model.interpret_counts(&exec.sample(
            &model.build(&good_points[x]),
            shots,
            stream_seed(base_seed, slot as u64),
        ));
        match results[slot].unwrap_output() {
            JobOutput::Counts(counts) => assert_eq!(counts, &expected, "slot {slot}"),
            other => panic!("expected counts, got {other:?}"),
        }
    }
    // And the reference batch (same jobs, no poison) proves the worker
    // pool itself survived unharmed: same service config still serves.
    assert_eq!(reference.len(), 3);
    assert!(reference.iter().all(|r| r.output.is_ok()));
}

#[test]
fn two_stage_hybrid_training_runs_through_the_service() {
    // The paper's coarse-gate / fine-pulse-trim protocol with the serve
    // layer as the evaluation engine: every objective probe is a served
    // HybridExpectation job riding one compiled hybrid program.
    let backend = Backend::ibmq_toronto();
    let shape = shape6(1);
    let observable = cost_hamiltonian(shape.graph());
    let c_max: f64 = (0..1u32 << 6)
        .map(|b| observable.eval_diagonal(b as usize))
        .fold(f64::MIN, f64::max);
    let mut service = Service::new(&backend, ServeConfig::new(LAYOUT6.to_vec()).with_workers(4));

    let mut objective = |xs: &[Vec<f64>]| -> Vec<f64> {
        service
            .hybrid_expectation_batch(&shape, &observable, xs)
            .into_iter()
            .map(|v| -v / c_max)
            .collect()
    };
    // Candidate starts from the model's own initialization protocol.
    let model = HybridModel::with_options(
        &backend,
        shape.graph(),
        1,
        LAYOUT6.to_vec(),
        shape.options(),
    )
    .unwrap();
    let candidates = model.initial_param_candidates();
    let coarse = shape.coarse_param_ids();
    let result = minimize_two_stage(&mut objective, &candidates, Some(&coarse), 30);

    // Noisy p=1 QAOA on ibmq_toronto converges near 0.59 expected-AR;
    // the bar checks the optimizer actually climbed well above the
    // random-cut floor (0.5) through served evaluations.
    let ar = -result.fun;
    assert!(ar > 0.55, "service-trained hybrid AR = {ar}");
    assert!(result.n_evals > 20);
    // Every probe rode one compiled shape: one miss at the first
    // batch, hits (one lookup per batch) ever after.
    assert_eq!(service.metrics().cache_misses, 1);
    assert_eq!(service.metrics().jobs_failed, 0);
    assert_eq!(service.metrics().jobs_completed as usize, result.n_evals);
}
