//! Integration suite for the long-lived daemon and its TCP front end:
//!
//! - the headline determinism contract — daemon results are
//!   bit-identical to the sequential `Service::run_batch` reference for
//!   every worker count × group split × priority mix (proptest-pinned),
//! - admission control and backpressure produce typed rejections that
//!   never consume id/seed stream positions,
//! - graceful shutdown drains queued jobs, poisoned jobs included, and
//!   a dropped `ResultStream` cannot wedge the pool,
//! - strict-priority scheduling orders completions when one worker
//!   drains a mixed queue,
//! - a batch optimizer trains through the daemon exactly as it does
//!   through the synchronous service,
//! - the loopback-socket wire protocol carries submissions, streamed
//!   results, metrics, and rejections bit-exactly.

use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hgp_core::compile::HybridShape;
use hgp_core::qaoa::{cost_hamiltonian, qaoa_circuit};
use hgp_device::Backend;
use hgp_graph::instances;
use hgp_optim::Cobyla;
use hgp_serve::{
    Daemon, DaemonConfig, JobId, JobRequest, JobResult, JobSpec, Priority, Rejected, ServeConfig,
    Service, WireClient, WireServer,
};

const LAYOUT6: [usize; 6] = [0, 1, 2, 3, 4, 5];

fn daemon_config(workers: usize, base_seed: u64) -> DaemonConfig {
    DaemonConfig::new(LAYOUT6.to_vec())
        .with_workers(workers)
        .with_base_seed(base_seed)
}

fn service_config(base_seed: u64) -> ServeConfig {
    ServeConfig::new(LAYOUT6.to_vec())
        .with_workers(1)
        .with_base_seed(base_seed)
}

/// A pool of requests covering every execution path the daemon serves:
/// deterministic, sampled, trajectory-replay, and hybrid gate-pulse
/// jobs, plus a validation failure that must consume its stream
/// position.
fn mixed_requests(graph: &hgp_graph::Graph) -> Vec<JobRequest> {
    let circuit = qaoa_circuit(graph, 1);
    let observable = cost_hamiltonian(graph);
    let shape = HybridShape::new(graph.clone(), 1);
    vec![
        JobRequest::new(circuit.clone(), vec![0.35, 0.25], JobSpec::StateVector),
        JobRequest::new(
            circuit.clone(),
            vec![0.15, 0.45],
            JobSpec::Counts { shots: 48 },
        ),
        JobRequest::new(
            circuit.clone(),
            vec![0.6, 0.2],
            JobSpec::Expectation {
                observable: observable.clone(),
            },
        ),
        JobRequest::new(
            circuit.clone(),
            vec![0.25, 0.3],
            JobSpec::TrajectoryCounts { shots: 24 },
        ),
        JobRequest::new(
            circuit.clone(),
            vec![0.45, 0.1],
            JobSpec::TrajectoryExpectation {
                observable: observable.clone(),
                trajectories: 16,
            },
        ),
        // Pinned seed: must override the position-derived default
        // identically on both paths.
        JobRequest::new(
            circuit.clone(),
            vec![0.2, 0.2],
            JobSpec::Counts { shots: 32 },
        )
        .with_seed(0xDEAD_BEEF_CAFE),
        // Wrong parameter count: fails validation but still consumes a
        // stream position on both paths.
        JobRequest::new(circuit, vec![0.1], JobSpec::StateVector),
        JobRequest::hybrid(
            shape.clone(),
            vec![0.3, 0.2, 0.1, 0.8],
            JobSpec::HybridExpectation { observable },
        ),
        JobRequest::hybrid(
            shape,
            vec![0.4, 0.3, 0.0, 0.9],
            JobSpec::HybridTrajectoryCounts { shots: 24 },
        ),
    ]
}

/// The bit-identity projection: id, seed, and payload. `cache_hit` and
/// `elapsed_ns` are scheduling-dependent provenance, explicitly outside
/// the contract.
fn fingerprint(results: &[JobResult]) -> Vec<(JobId, u64, String)> {
    results
        .iter()
        .map(|r| (r.id, r.seed, format!("{:?}", r.output)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The headline contract: any worker count, any group split, any
    /// priority assignment, any request arrangement — the daemon's
    /// results are bit-identical to one sequential `run_batch` over the
    /// same requests in admission order.
    #[test]
    fn daemon_is_bit_identical_to_sequential_run_batch(
        workers in 1usize..5,
        base_seed in 0u64..1_000_000,
        schedule_seed in 0u64..u64::MAX,
    ) {
        let mut schedule = StdRng::seed_from_u64(schedule_seed);
        let backend = Backend::ibmq_guadalupe();
        let graph = instances::task1_three_regular_6();
        let pool = mixed_requests(&graph);
        // Arrangement with repetition: duplicates exercise the shared
        // compile cache, omissions vary the stream length.
        let requests: Vec<JobRequest> = (0..9)
            .map(|_| pool[schedule.gen_range(0..pool.len())].clone())
            .collect();
        let splits: Vec<usize> = (0..3).map(|_| schedule.gen_range(1usize..4)).collect();
        let priorities: Vec<usize> = (0..4).map(|_| schedule.gen_range(0usize..3)).collect();

        // Sequential reference: one single-worker batch in admission
        // order.
        let mut service = Service::new(&backend, service_config(base_seed));
        let reference = service.run_batch(requests.clone());

        // Daemon run: the same requests split into consecutive groups,
        // each submitted under its own priority class.
        let daemon = Daemon::start(backend.clone(), daemon_config(workers, base_seed));
        let mut streams = Vec::new();
        let mut rest = requests.as_slice();
        let mut cut = 0usize;
        while !rest.is_empty() {
            let take = splits[cut % splits.len()].min(rest.len());
            let (group, tail) = rest.split_at(take);
            let priority = Priority::ALL[priorities[cut % priorities.len()]];
            streams.push(
                daemon
                    .submit_group(group.to_vec(), priority)
                    .expect("admission under the default bounds"),
            );
            rest = tail;
            cut += 1;
        }
        let mut results: Vec<JobResult> = streams
            .into_iter()
            .flat_map(|s| s.collect_ordered())
            .collect();
        results.sort_by_key(|r| r.id);
        daemon.shutdown();

        prop_assert_eq!(fingerprint(&results), fingerprint(&reference));
    }
}

/// Observability must be a pure observer: with the flight recorder and
/// per-op-kind engine profiling both on, the daemon's results stay
/// bit-identical to the untraced sequential reference, every
/// worker-executed job leaves a complete span chain in the recorder,
/// and the validation failure leaves a truncated one.
#[test]
fn tracing_and_profiling_leave_results_bit_identical() {
    let backend = Backend::ibmq_guadalupe();
    let graph = instances::task1_three_regular_6();
    let requests = mixed_requests(&graph);

    let mut service = Service::new(&backend, service_config(7));
    let reference = service.run_batch(requests.clone());

    let daemon = Daemon::start(
        backend,
        daemon_config(3, 7)
            .with_trace_capacity(64)
            .with_profiling(true),
    );
    let results = daemon.run_batch(requests.clone()).expect("admitted");
    let traces = daemon.trace_tail(64);
    let profile = daemon.profile_snapshot();
    daemon.shutdown();

    assert_eq!(fingerprint(&results), fingerprint(&reference));

    // One trace per admitted job, validation failures included. Jobs
    // that reached a worker carry the complete seven-span chain;
    // validation failures carry the truncated enqueued → validated →
    // delivered chain and are marked not-ok.
    assert_eq!(traces.len(), requests.len());
    let validate_failures = reference
        .iter()
        .filter(|r| matches!(&r.output, Err(e) if e.stage == hgp_serve::JobStage::Validate))
        .count();
    assert!(
        validate_failures > 0,
        "the pool includes validation failures"
    );
    let complete = traces.iter().filter(|t| t.is_complete_chain()).count();
    assert_eq!(complete, requests.len() - validate_failures);
    for truncated in traces.iter().filter(|t| !t.is_complete_chain()) {
        assert!(!truncated.ok, "incomplete chains are the rejected jobs");
        assert_eq!(truncated.spans.len(), 3);
    }
    // The replay and exact engines executed under the shared profile.
    assert!(profile.total_calls() > 0);
    assert!(profile.total_ns() > 0);

    // Trace capacity zero disables recording (and unprofiled daemons
    // report the all-zero snapshot) without touching the results.
    let daemon = Daemon::start(
        Backend::ibmq_guadalupe(),
        daemon_config(2, 7).with_trace_capacity(0),
    );
    let untraced = daemon.run_batch(requests).expect("admitted");
    assert!(daemon.trace_tail(64).is_empty());
    assert_eq!(daemon.profile_snapshot().total_calls(), 0);
    daemon.shutdown();
    assert_eq!(fingerprint(&untraced), fingerprint(&reference));
}

#[test]
fn rejections_consume_no_stream_positions() {
    let backend = Backend::ibmq_guadalupe();
    let graph = instances::task1_three_regular_6();
    let circuit = qaoa_circuit(&graph, 1);
    let request = |gamma: f64| {
        JobRequest::new(
            circuit.clone(),
            vec![gamma, 0.25],
            JobSpec::Counts { shots: 64 },
        )
    };
    let daemon = Daemon::start(
        backend.clone(),
        daemon_config(2, 11)
            .with_max_queue_depth(4)
            .with_max_job_shots(1000),
    );

    // Too large: screened before anything is admitted.
    let huge = JobRequest::new(
        circuit.clone(),
        vec![0.5, 0.25],
        JobSpec::TrajectoryCounts { shots: 5000 },
    );
    let rejection = daemon
        .submit_group(vec![request(0.1), huge], Priority::Interactive)
        .map(|_| ())
        .unwrap_err();
    assert_eq!(
        rejection,
        Rejected::TooLarge {
            shots: 5000,
            limit: 1000
        }
    );

    // A group wider than the whole queue can never be admitted,
    // whatever the current depth.
    let wide: Vec<JobRequest> = (0..5).map(|i| request(0.1 * (i + 1) as f64)).collect();
    let Err(Rejected::QueueFull { limit: 4, .. }) = daemon.submit_group(wide, Priority::Background)
    else {
        panic!("oversized group must be rejected whole");
    };

    // Neither rejection consumed a stream position: the next admitted
    // job is still job 0, so its results match a fresh sequential run.
    let results = daemon
        .submit(request(0.7), Priority::Batch)
        .expect("fits all bounds")
        .collect_ordered();
    assert_eq!(results[0].id, JobId(0));
    let mut service = Service::new(&backend, service_config(11));
    let reference = service.run_batch(vec![request(0.7)]);
    assert_eq!(fingerprint(&results), fingerprint(&reference));

    let metrics = daemon.shutdown();
    assert_eq!(metrics.rejected_large, [2, 0, 0]);
    assert_eq!(metrics.rejected_full, [0, 0, 5]);
    assert_eq!(metrics.admitted, [0, 1, 0]);

    // After shutdown: lifecycle rejection, no counters, no positions.
    let closed = daemon
        .submit(request(0.9), Priority::Interactive)
        .map(|_| ())
        .unwrap_err();
    assert_eq!(closed, Rejected::ShuttingDown);
}

#[test]
fn shutdown_drains_queued_jobs_poisoned_ones_included() {
    let backend = Backend::ibmq_guadalupe();
    let graph = instances::task1_three_regular_6();
    let circuit = qaoa_circuit(&graph, 1);
    // A shape whose compile fails (mixer duration not a multiple of
    // 32): the daemon-side poison — it passes validation (param count
    // matches its declared shape), reaches a worker, and dies there,
    // mid-drain.
    let bad_shape = HybridShape::new(graph.clone(), 1).with_mixer_duration(100);
    let poisoned = JobRequest::hybrid(
        bad_shape.clone(),
        vec![0.1; bad_shape.n_params()],
        JobSpec::HybridCounts { shots: 32 },
    );
    let good = |gamma: f64| {
        JobRequest::new(
            circuit.clone(),
            vec![gamma, 0.25],
            JobSpec::Counts { shots: 48 },
        )
    };

    let daemon = Daemon::start(backend, daemon_config(2, 5));
    let stream = daemon
        .submit_group(
            vec![good(0.1), poisoned, good(0.2), good(0.3)],
            Priority::Batch,
        )
        .expect("admitted");
    // Shut down immediately: everything above is (at best) still
    // queued, and the drain must deliver all four results anyway.
    let metrics = daemon.shutdown();
    let results = stream.collect_ordered();
    assert_eq!(results.len(), 4);
    let errors: Vec<bool> = results.iter().map(|r| r.output.is_err()).collect();
    assert_eq!(errors, [false, true, false, false]);
    let error = results[1].error().expect("compile failure");
    assert!(error.message.contains("multiple of 32"), "{error}");
    assert_eq!(metrics.jobs_completed, 4);
    assert_eq!(metrics.jobs_failed, 1);
}

#[test]
fn dropped_result_stream_cannot_wedge_the_pool() {
    let backend = Backend::ibmq_guadalupe();
    let graph = instances::task1_three_regular_6();
    let circuit = qaoa_circuit(&graph, 1);
    let request = |gamma: f64| {
        JobRequest::new(
            circuit.clone(),
            vec![gamma, 0.25],
            JobSpec::Counts { shots: 48 },
        )
    };
    let daemon = Daemon::start(backend, daemon_config(2, 3));
    // Submit and walk away: the workers' result sends hit a dead
    // receiver and must be discarded, not panicked on (`run_batch`'s
    // scoped collector can `expect` its sends; the daemon cannot).
    let abandoned = daemon
        .submit_group(
            (0..6).map(|i| request(0.1 * (i + 1) as f64)).collect(),
            Priority::Batch,
        )
        .expect("admitted");
    drop(abandoned);
    // The pool must still serve later submissions and drain cleanly.
    let kept = daemon
        .submit_group(vec![request(0.9), request(0.8)], Priority::Interactive)
        .expect("admitted");
    let results = kept.collect_ordered();
    assert_eq!(results.len(), 2);
    assert!(results.iter().all(|r| r.output.is_ok()));
    let metrics = daemon.shutdown();
    assert_eq!(metrics.jobs_completed, 8);
}

#[test]
fn strict_priority_orders_completions_on_one_worker() {
    let backend = Backend::ibmq_guadalupe();
    let graph = instances::task1_three_regular_6();
    let circuit = qaoa_circuit(&graph, 1);
    let daemon = Daemon::start(backend, daemon_config(1, 9));
    // Occupy the single worker long enough for every later submission
    // to land while it is busy; afterwards the pop order is pure
    // policy. Trajectory sizes keep per-job completion gaps at
    // millisecond scale so the observed arrival order is stable.
    let job = |shots: usize, gamma: f64| {
        JobRequest::new(
            circuit.clone(),
            vec![gamma, 0.25],
            JobSpec::TrajectoryCounts { shots },
        )
    };
    let blocker = daemon
        .submit(job(20_000, 0.5), Priority::Background)
        .expect("admitted");
    // Wait for the worker to take the blocker (the queue-depth gauge
    // drops to zero once it is popped, long before its 20k shots
    // finish) so the later submissions demonstrably queue behind it.
    while daemon.queue_depth() > 0 {
        std::thread::yield_now();
    }
    let background = daemon
        .submit(job(2_000, 0.1), Priority::Background)
        .expect("admitted");
    let batch = daemon
        .submit(job(2_000, 0.2), Priority::Batch)
        .expect("admitted");
    let interactive = daemon
        .submit(job(2_000, 0.3), Priority::Interactive)
        .expect("admitted");

    let order: Arc<Mutex<Vec<JobId>>> = Arc::new(Mutex::new(Vec::new()));
    let handles: Vec<_> = [blocker, background, batch, interactive]
        .into_iter()
        .map(|stream| {
            let order = Arc::clone(&order);
            std::thread::spawn(move || {
                for result in stream {
                    order.lock().unwrap().push(result.id);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    daemon.shutdown();
    // Submission order was blocker(0), background(1), batch(2),
    // interactive(3); completion order is the strict-priority scan.
    assert_eq!(
        *order.lock().unwrap(),
        vec![JobId(0), JobId(3), JobId(2), JobId(1)]
    );
}

#[test]
fn batch_optimizer_trains_through_the_daemon() {
    // The daemon as the evaluation engine of an hgp_optim batch
    // optimization — and because expectation jobs are deterministic,
    // the whole optimizer trajectory matches the synchronous service
    // exactly.
    let backend = Backend::ideal(6);
    let graph = instances::task1_three_regular_6();
    let circuit = qaoa_circuit(&graph, 1);
    let observable = cost_hamiltonian(&graph);

    let mut service = Service::new(&backend, ServeConfig::new(LAYOUT6.to_vec()).with_workers(4));
    let mut reference_objective = |xs: &[Vec<f64>]| -> Vec<f64> {
        service
            .expectation_batch(&circuit, &observable, xs)
            .into_iter()
            .map(|v| -v)
            .collect()
    };
    let reference = Cobyla::new(40).minimize_batch(&mut reference_objective, &[0.1, 0.1]);

    let daemon = Daemon::start(backend, DaemonConfig::new(LAYOUT6.to_vec()).with_workers(4));
    let mut objective = |xs: &[Vec<f64>]| -> Vec<f64> {
        daemon
            .expectation_batch(&circuit, &observable, xs, Priority::Interactive)
            .into_iter()
            .map(|v| -v)
            .collect()
    };
    let result = Cobyla::new(40).minimize_batch(&mut objective, &[0.1, 0.1]);
    let metrics = daemon.shutdown();

    assert_eq!(result.fun.to_bits(), reference.fun.to_bits());
    assert_eq!(result.x, reference.x);
    // Every probe rode one compiled program through the daemon cache.
    assert_eq!(metrics.cache_misses, 1);
    assert!(metrics.admitted[0] > 20);
}

#[test]
fn wire_round_trip_streams_bit_identical_results() {
    let backend = Backend::ibmq_guadalupe();
    let graph = instances::task1_three_regular_6();
    let requests = mixed_requests(&graph);
    let base_seed = 17;

    // Sequential reference for the whole submission order.
    let mut service = Service::new(&backend, service_config(base_seed));
    let reference = service.run_batch(requests.clone());

    let daemon = Arc::new(Daemon::start(backend, daemon_config(3, base_seed)));
    let mut server = WireServer::start(Arc::clone(&daemon), "127.0.0.1:0").expect("bind loopback");
    let mut client = WireClient::connect(server.local_addr()).expect("connect");
    client.ping().expect("pong");

    // Two pipelined submissions on one connection: their ids must be
    // contiguous in submission order, their results interleave freely.
    let (first, second) = requests.split_at(5);
    let first_ids = client
        .submit_group(first.to_vec(), Priority::Interactive)
        .expect("transport")
        .expect("admitted");
    let second_ids = client
        .submit_group(second.to_vec(), Priority::Background)
        .expect("transport")
        .expect("admitted");
    assert_eq!(first_ids, (0..5).map(JobId).collect::<Vec<_>>());
    assert_eq!(
        second_ids,
        (5..requests.len() as u64).map(JobId).collect::<Vec<_>>()
    );
    let results = client
        .collect_results(requests.len())
        .expect("streamed results");
    // Bit-identical through JSON: the codec round-trips f64 exactly.
    assert_eq!(fingerprint(&results), fingerprint(&reference));

    let metrics = client.metrics().expect("snapshot");
    assert_eq!(metrics.admitted, [5, 0, 4]);
    assert_eq!(metrics.jobs_completed, requests.len() as u64);

    server.shutdown();
    daemon.shutdown();
}

#[test]
fn wire_rejections_and_protocol_errors_are_typed() {
    let backend = Backend::ibmq_guadalupe();
    let graph = instances::task1_three_regular_6();
    let circuit = qaoa_circuit(&graph, 1);
    let daemon = Arc::new(Daemon::start(
        backend,
        daemon_config(1, 23).with_max_job_shots(100),
    ));
    let mut server = WireServer::start(Arc::clone(&daemon), "127.0.0.1:0").expect("bind loopback");
    let mut client = WireClient::connect(server.local_addr()).expect("connect");

    // Daemon-level rejection arrives as a typed envelope.
    let too_big = JobRequest::new(
        circuit.clone(),
        vec![0.5, 0.25],
        JobSpec::TrajectoryCounts { shots: 5000 },
    );
    assert_eq!(
        client
            .submit(too_big, Priority::Batch)
            .expect("transport ok"),
        Err(Rejected::TooLarge {
            shots: 5000,
            limit: 100
        })
    );

    // A malformed line gets an error envelope and the session survives:
    // drive a raw socket so the test controls the exact bytes.
    use std::io::{BufRead, BufReader, Write};
    let mut raw = std::net::TcpStream::connect(server.local_addr()).expect("connect raw");
    let mut raw_reader = BufReader::new(raw.try_clone().unwrap());
    raw.write_all(b"{\"op\":\"frobnicate\"}\n").unwrap();
    let mut line = String::new();
    raw_reader.read_line(&mut line).unwrap();
    assert!(
        line.contains("error") && line.contains("frobnicate"),
        "{line}"
    );
    // Same session, now a well-formed probe: still served.
    raw.write_all(b"{\"op\":\"ping\"}\n").unwrap();
    let mut pong = String::new();
    raw_reader.read_line(&mut pong).unwrap();
    assert!(pong.contains("pong"), "{pong}");
    client.ping().expect("first session also still up");

    server.shutdown();
    daemon.shutdown();
}
