//! Rotating-frame pulse physics: pulses to unitary propagators.
//!
//! The simulator works per-pulse rather than per-global-timestep: each
//! played pulse becomes a small unitary **block** (2x2 for drive pulses,
//! 4x4 for cross-resonance pulses) plus its start time and duration.
//! Downstream executors apply blocks in time order, interleaving
//! duration-proportional decoherence. This is exact whenever concurrent
//! pulses act on disjoint qubits — which every schedule built in this
//! workspace satisfies by construction ([`crate::Schedule::play_at`]
//! rejects overlaps on shared qubits).

use std::fmt;

use hgp_math::su2::{drive_step, exp_i_pauli};
use hgp_math::{Complex64, Matrix};

use hgp_device::{Backend, TwoQubitParams};

use crate::channel::Channel;
use crate::schedule::{PulseSpec, Schedule};
use crate::waveform::Waveform;

/// A malformed pulse schedule, detected at compile time.
///
/// Schedules reaching the compiler from a request boundary (a served
/// job, a deserialized program) must fail *their job*, never the worker
/// thread executing it — so every structural violation is a typed error
/// rather than a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PulseError {
    /// A pulse spec was played on a channel of the wrong family (e.g. a
    /// cross-resonance pulse on a drive channel).
    ChannelMismatch {
        /// The offending channel.
        channel: Channel,
        /// A short description of the pulse kind.
        pulse: &'static str,
    },
    /// A channel names a physical qubit the backend does not have.
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: usize,
        /// Number of qubits on the backend.
        n_qubits: usize,
    },
    /// A control channel names a pair the backend does not couple.
    NotCoupled {
        /// The driven qubit.
        control: usize,
        /// The target-frequency qubit.
        target: usize,
    },
    /// A block touches a physical qubit outside the requested layout.
    QubitNotInLayout {
        /// The physical qubit missing from the layout.
        qubit: usize,
    },
}

impl fmt::Display for PulseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PulseError::ChannelMismatch { channel, pulse } => {
                write!(f, "{pulse} pulse cannot play on channel {channel}")
            }
            PulseError::QubitOutOfRange { qubit, n_qubits } => {
                write!(f, "physical qubit {qubit} out of range ({n_qubits} qubits)")
            }
            PulseError::NotCoupled { control, target } => {
                write!(f, "qubits ({control}, {target}) are not coupled")
            }
            PulseError::QubitNotInLayout { qubit } => {
                write!(f, "physical qubit {qubit} not in layout")
            }
        }
    }
}

impl std::error::Error for PulseError {}

/// A compiled unitary block of a schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Physical qubits the block acts on (`[q]` or `[control, target]`,
    /// first operand = most significant bit of the unitary's index).
    pub qubits: Vec<usize>,
    /// The block's unitary.
    pub unitary: Matrix,
    /// Start time, `dt`.
    pub start: u32,
    /// Duration, `dt` (0 for virtual-Z blocks).
    pub duration: u32,
}

/// Propagator of a drive pulse on a single qubit.
///
/// Physics: `H(t) = (freq_shift/2) Z + (Omega(t)/2)(cos(phase) X +
/// sin(phase) Y)` with `Omega(t) = amp * env(t) * drive_strength`,
/// integrated sample-by-sample with exact SU(2) steps.
///
/// ```
/// use hgp_pulse::{Waveform, propagator::drive_propagator};
/// let w = Waveform::gaussian(160);
/// // Calibrate amp for a pi rotation: amp * strength * area = pi.
/// let strength = 0.125;
/// let amp = std::f64::consts::PI / (strength * w.area());
/// let u = drive_propagator(&w, amp, 0.0, 0.0, strength);
/// let x = hgp_math::pauli::sigma_x();
/// assert!(u.approx_eq_up_to_phase(&x, 1e-9));
/// ```
pub fn drive_propagator(
    waveform: &Waveform,
    amp: f64,
    phase: f64,
    freq_shift: f64,
    drive_strength: f64,
) -> Matrix {
    let mut u = Matrix::identity(2);
    for t in 0..waveform.duration() {
        let omega = amp * waveform.sample(t) * drive_strength;
        let step = drive_step(freq_shift, omega, phase, 1.0);
        u = step.matmul(&u);
    }
    u
}

/// Propagator of a cross-resonance pulse on a coupled pair, in the basis
/// `|control target>` (control = most significant bit).
///
/// Physics: `H(t) = (Omega(t)/2)(mu_zx Z(x)P + mu_ix I(x)P + mu_zi Z(x)I)`
/// with `P = cos(phase) X + sin(phase) Y`. All three terms commute, so the
/// propagator is assembled exactly from the accumulated pulse area:
/// conditioned on the control being `|0>`/`|1>`, the target rotates about
/// `P` by `(+-mu_zx + mu_ix) * theta` and picks up the `-+ mu_zi * theta`
/// Stark phase, where `theta = amp * strength * area`.
pub fn cr_propagator(
    waveform: &Waveform,
    amp: f64,
    phase: f64,
    edge: &TwoQubitParams,
    drive_strength: f64,
) -> Matrix {
    let theta = amp * drive_strength * waveform.area();
    cr_unitary_from_angle(theta, phase, edge)
}

/// The CR unitary for a total integrated drive angle `theta` (see
/// [`cr_propagator`]).
pub fn cr_unitary_from_angle(theta: f64, phase: f64, edge: &TwoQubitParams) -> Matrix {
    let a_zx = 0.5 * edge.mu_zx * theta;
    let a_ix = 0.5 * edge.mu_ix * theta;
    let a_zi = 0.5 * edge.mu_zi * theta;
    // Control |0> (Z = +1): target rotation (a_zx + a_ix), phase e^{-i a_zi}.
    let u0 = exp_i_pauli(
        (a_zx + a_ix) * phase.cos(),
        (a_zx + a_ix) * phase.sin(),
        0.0,
    )
    .scale(Complex64::cis(-a_zi));
    // Control |1> (Z = -1): rotation (-a_zx + a_ix), phase e^{+i a_zi}.
    let u1 = exp_i_pauli(
        (-a_zx + a_ix) * phase.cos(),
        (-a_zx + a_ix) * phase.sin(),
        0.0,
    )
    .scale(Complex64::cis(a_zi));
    let mut u = Matrix::zeros(4, 4);
    for i in 0..2 {
        for j in 0..2 {
            u[(i, j)] = u0[(i, j)];
            u[(2 + i, 2 + j)] = u1[(i, j)];
        }
    }
    u
}

/// The 2x2 unitary of a virtual Z rotation.
pub fn virtual_z(angle: f64) -> Matrix {
    Matrix::from_diag(&[Complex64::cis(-angle / 2.0), Complex64::cis(angle / 2.0)])
}

/// Compiles a schedule into time-ordered unitary blocks on physical
/// qubits of `backend`.
///
/// # Errors
///
/// Returns a [`PulseError`] if a [`PulseSpec::CrossResonance`] is played
/// on a non-control channel, a [`PulseSpec::Drive`] on a control
/// channel, a channel names a qubit the backend lacks, or a control
/// channel names a non-coupled pair. A schedule crossing the serve
/// boundary must fail its job, not the worker thread.
pub fn compile_schedule(schedule: &Schedule, backend: &Backend) -> Result<Vec<Block>, PulseError> {
    let check_qubit = |q: usize| -> Result<usize, PulseError> {
        if q < backend.n_qubits() {
            Ok(q)
        } else {
            Err(PulseError::QubitOutOfRange {
                qubit: q,
                n_qubits: backend.n_qubits(),
            })
        }
    };
    let mut blocks: Vec<Block> = Vec::with_capacity(schedule.items().len());
    for item in schedule.items() {
        let block = match (&item.pulse, &item.channel) {
            (
                PulseSpec::Drive {
                    waveform,
                    amp,
                    phase,
                    freq_shift,
                },
                Channel::Drive(q),
            ) => Block {
                qubits: vec![check_qubit(*q)?],
                unitary: drive_propagator(
                    waveform,
                    *amp,
                    *phase,
                    *freq_shift,
                    backend.qubit(*q).drive_strength,
                ),
                start: item.start,
                duration: waveform.duration(),
            },
            (
                PulseSpec::CrossResonance {
                    waveform,
                    amp,
                    phase,
                },
                Channel::Control { control, target },
            ) => {
                check_qubit(*control)?;
                check_qubit(*target)?;
                let edge = backend
                    .try_edge(*control, *target)
                    .ok_or(PulseError::NotCoupled {
                        control: *control,
                        target: *target,
                    })?;
                Block {
                    qubits: vec![*control, *target],
                    unitary: cr_propagator(
                        waveform,
                        *amp,
                        *phase,
                        edge,
                        backend.qubit(*control).drive_strength,
                    ),
                    start: item.start,
                    duration: waveform.duration(),
                }
            }
            (PulseSpec::VirtualZ { angle }, Channel::Drive(q)) => Block {
                qubits: vec![check_qubit(*q)?],
                unitary: virtual_z(*angle),
                start: item.start,
                duration: 0,
            },
            (pulse, channel) => {
                return Err(PulseError::ChannelMismatch {
                    channel: *channel,
                    pulse: pulse.kind_name(),
                })
            }
        };
        blocks.push(block);
    }
    // Stable sort by start time keeps same-start insertion order, which is
    // safe because same-start blocks act on disjoint qubits.
    blocks.sort_by_key(|b| b.start);
    Ok(blocks)
}

/// Full schedule unitary over the logical register defined by `layout`
/// (`layout[i]` = physical qubit of logical qubit `i`).
///
/// Intended for small registers (tests, calibration); the noisy executor
/// applies blocks incrementally instead.
///
/// # Errors
///
/// Returns a [`PulseError`] if the schedule fails [`compile_schedule`]
/// or a block touches a physical qubit outside `layout`.
pub fn schedule_unitary(
    schedule: &Schedule,
    backend: &Backend,
    layout: &[usize],
) -> Result<Matrix, PulseError> {
    let n = layout.len();
    let dim = 1usize << n;
    let mut u = Matrix::identity(dim);
    for block in compile_schedule(schedule, backend)? {
        let logical: Vec<usize> = block
            .qubits
            .iter()
            .map(|pq| {
                layout
                    .iter()
                    .position(|&l| l == *pq)
                    .ok_or(PulseError::QubitNotInLayout { qubit: *pq })
            })
            .collect::<Result<_, _>>()?;
        let full = block.unitary.embed(n, &logical);
        u = full.matmul(&u);
    }
    Ok(u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Schedule;
    use hgp_circuit::Gate;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn test_edge() -> TwoQubitParams {
        TwoQubitParams {
            cx_error: 0.0,
            mu_zx: 0.05,
            mu_ix: 0.1,
            mu_zi: 0.02,
            cr_duration_dt: 256,
        }
    }

    #[test]
    fn pi_pulse_is_x() {
        let w = Waveform::gaussian(160);
        let strength = 0.125;
        let amp = PI / (strength * w.area());
        let u = drive_propagator(&w, amp, 0.0, 0.0, strength);
        assert!(u.approx_eq_up_to_phase(&Gate::X.matrix().unwrap(), 1e-9));
    }

    #[test]
    fn half_pi_pulse_is_sx_up_to_phase() {
        let w = Waveform::gaussian(160);
        let strength = 0.125;
        let amp = FRAC_PI_2 / (strength * w.area());
        let u = drive_propagator(&w, amp, 0.0, 0.0, strength);
        let rx90 = Gate::Rx(hgp_circuit::Param::bound(FRAC_PI_2))
            .matrix()
            .unwrap();
        assert!(u.approx_eq(&rx90, 1e-9));
    }

    #[test]
    fn phase_rotates_drive_axis() {
        let w = Waveform::gaussian(160);
        let strength = 0.125;
        let amp = FRAC_PI_2 / (strength * w.area());
        let u = drive_propagator(&w, amp, FRAC_PI_2, 0.0, strength);
        let ry90 = Gate::Ry(hgp_circuit::Param::bound(FRAC_PI_2))
            .matrix()
            .unwrap();
        assert!(u.approx_eq(&ry90, 1e-9));
    }

    #[test]
    fn detuning_perturbs_rotation() {
        let w = Waveform::gaussian(160);
        let strength = 0.125;
        let amp = PI / (strength * w.area());
        let resonant = drive_propagator(&w, amp, 0.0, 0.0, strength);
        let detuned = drive_propagator(&w, amp, 0.0, 0.05, strength);
        assert!(!detuned.approx_eq_up_to_phase(&resonant, 1e-3));
        assert!(detuned.is_unitary(1e-10));
    }

    #[test]
    fn negative_amp_inverts_rotation() {
        let w = Waveform::gaussian(160);
        let up = drive_propagator(&w, 0.3, 0.0, 0.0, 0.125);
        let down = drive_propagator(&w, -0.3, 0.0, 0.0, 0.125);
        let prod = up.matmul(&down);
        assert!(prod.approx_eq(&Matrix::identity(2), 1e-10));
    }

    #[test]
    fn cr_is_unitary_and_block_diagonal() {
        let edge = test_edge();
        let w = Waveform::gaussian_square(256, 160);
        let u = cr_propagator(&w, 0.4, 0.0, &edge, 0.125);
        assert!(u.is_unitary(1e-12));
        // No control-flipping elements.
        for i in 0..2 {
            for j in 2..4 {
                assert!(u[(i, j)].norm() < 1e-14);
                assert!(u[(j, i)].norm() < 1e-14);
            }
        }
    }

    #[test]
    fn cr_echo_cancels_ix_term() {
        // The echo X_c CR(-) X_c CR(+) cancels the spurious IX term and
        // doubles ZX; a residual ZI Stark phase survives and is what the
        // CX calibration corrects with a virtual RZ on the control.
        let edge = test_edge();
        let w = Waveform::gaussian_square(256, 160);
        let strength = 0.125;
        let amp = 0.37;
        let theta = amp * strength * w.area();
        let cr_p = cr_propagator(&w, amp, 0.0, &edge, strength);
        let cr_m = cr_propagator(&w, -amp, 0.0, &edge, strength);
        let xc = Gate::X.matrix().unwrap().kron(&Matrix::identity(2));
        let echoed = xc.matmul(&cr_m).matmul(&xc).matmul(&cr_p);
        // Expected: exp(-i theta (mu_zx ZX + mu_zi ZI)).
        let rzx = Gate::Rzx(hgp_circuit::Param::bound(2.0 * edge.mu_zx * theta))
            .matrix()
            .unwrap();
        let rz_c = Gate::Rz(hgp_circuit::Param::bound(2.0 * edge.mu_zi * theta))
            .matrix()
            .unwrap()
            .kron(&Matrix::identity(2));
        let expect = rz_c.matmul(&rzx);
        assert!(
            echoed.approx_eq_up_to_phase(&expect, 1e-9),
            "echoed CR does not reduce to RZX + Stark RZ"
        );
    }

    #[test]
    fn virtual_z_matches_rz_gate() {
        let u = virtual_z(0.8);
        let rz = Gate::Rz(hgp_circuit::Param::bound(0.8)).matrix().unwrap();
        assert!(u.approx_eq(&rz, 1e-14));
    }

    #[test]
    fn compile_schedule_orders_blocks() {
        let backend = Backend::ideal(2);
        let mut s = Schedule::new();
        s.play(
            Channel::Drive(1),
            PulseSpec::Drive {
                waveform: Waveform::gaussian(160),
                amp: 0.1,
                phase: 0.0,
                freq_shift: 0.0,
            },
        );
        s.play(
            Channel::Drive(1),
            PulseSpec::Drive {
                waveform: Waveform::gaussian(160),
                amp: 0.2,
                phase: 0.0,
                freq_shift: 0.0,
            },
        );
        let blocks = compile_schedule(&s, &backend).unwrap();
        assert_eq!(blocks.len(), 2);
        assert!(blocks[0].start <= blocks[1].start);
        assert_eq!(blocks[0].qubits, vec![1]);
    }

    #[test]
    fn schedule_unitary_composes_blocks() {
        // Two sequential half-pi pulses equal one pi pulse.
        let backend = Backend::ideal(1);
        let strength = backend.qubit(0).drive_strength;
        let w = Waveform::gaussian(160);
        let amp_half = FRAC_PI_2 / (strength * w.area());
        let mut s = Schedule::new();
        for _ in 0..2 {
            s.play(
                Channel::Drive(0),
                PulseSpec::Drive {
                    waveform: w,
                    amp: amp_half,
                    phase: 0.0,
                    freq_shift: 0.0,
                },
            );
        }
        let u = schedule_unitary(&s, &backend, &[0]).unwrap();
        assert!(u.approx_eq_up_to_phase(&Gate::X.matrix().unwrap(), 1e-9));
    }

    #[test]
    fn mismatched_pulse_channel_is_an_error() {
        // A malformed schedule must produce a typed error, never a
        // panic: in a served deployment a panic kills the worker thread
        // instead of failing the one bad job.
        let backend = Backend::ideal(2);
        let mut s = Schedule::new();
        s.play(
            Channel::Drive(0),
            PulseSpec::CrossResonance {
                waveform: Waveform::gaussian_square(256, 128),
                amp: 0.1,
                phase: 0.0,
            },
        );
        let err = compile_schedule(&s, &backend).unwrap_err();
        assert_eq!(
            err,
            PulseError::ChannelMismatch {
                channel: Channel::Drive(0),
                pulse: "cross-resonance",
            }
        );
        assert!(err.to_string().contains("cannot play"));
    }

    #[test]
    fn drive_on_control_channel_is_an_error() {
        let backend = Backend::ideal(2);
        let mut s = Schedule::new();
        s.play(
            Channel::Control {
                control: 0,
                target: 1,
            },
            PulseSpec::Drive {
                waveform: Waveform::gaussian(160),
                amp: 0.1,
                phase: 0.0,
                freq_shift: 0.0,
            },
        );
        assert!(matches!(
            compile_schedule(&s, &backend),
            Err(PulseError::ChannelMismatch { .. })
        ));
    }

    #[test]
    fn non_coupled_control_channel_is_an_error() {
        // Guadalupe's heavy-hex map does not couple (0, 15).
        let backend = Backend::ibmq_guadalupe();
        let mut s = Schedule::new();
        s.play(
            Channel::Control {
                control: 0,
                target: 15,
            },
            PulseSpec::CrossResonance {
                waveform: Waveform::gaussian_square(256, 128),
                amp: 0.1,
                phase: 0.0,
            },
        );
        assert_eq!(
            compile_schedule(&s, &backend),
            Err(PulseError::NotCoupled {
                control: 0,
                target: 15
            })
        );
    }

    #[test]
    fn out_of_range_qubit_is_an_error() {
        let backend = Backend::ideal(2);
        let mut s = Schedule::new();
        s.play(Channel::Drive(9), PulseSpec::VirtualZ { angle: 0.3 });
        assert_eq!(
            compile_schedule(&s, &backend),
            Err(PulseError::QubitOutOfRange {
                qubit: 9,
                n_qubits: 2
            })
        );
    }

    #[test]
    fn qubit_outside_layout_is_an_error() {
        let backend = Backend::ideal(2);
        let mut s = Schedule::new();
        s.play(Channel::Drive(1), PulseSpec::VirtualZ { angle: 0.3 });
        assert_eq!(
            schedule_unitary(&s, &backend, &[0]),
            Err(PulseError::QubitNotInLayout { qubit: 1 })
        );
    }
}
