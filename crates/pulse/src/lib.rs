#![forbid(unsafe_code)]

//! Pulse-level IR and simulation.
//!
//! This crate is the "OpenPulse substitute" of the workspace: everything
//! below the gate abstraction is modeled here.
//!
//! - [`Waveform`]: analytic pulse envelopes (Gaussian, DRAG,
//!   GaussianSquare, Constant) sampled at the backend `dt`,
//! - [`Channel`] and [`Schedule`]: pulses played at start times on drive /
//!   control channels, with virtual-Z phase shifts,
//! - [`propagator`]: rotating-frame physics. A drive pulse on qubit `q`
//!   evolves under `H(t) = (delta/2) Z + (Omega(t)/2)(cos(phi) X + sin(phi) Y)`
//!   (`delta` = frequency-shift parameter, `Omega(t)` = envelope times the
//!   qubit's calibrated Rabi rate); a cross-resonance pulse on a coupler
//!   evolves the pair under the echo-compatible
//!   `H_CR(t) = (Omega(t)/2)(mu_zx ZX + mu_ix IX + mu_zi ZI)` model,
//! - [`calibration::PulseLibrary`]: calibrated `X`, `SX`, CR and CX
//!   schedules for a backend, the pulse-level ground truth that gate-level
//!   circuits ultimately lower to.
//!
//! # Example: a calibrated X pulse really is an X gate
//!
//! ```
//! use hgp_device::Backend;
//! use hgp_pulse::calibration::PulseLibrary;
//!
//! let backend = Backend::ibmq_toronto();
//! let lib = PulseLibrary::new(&backend);
//! let u = lib.x_propagator(0);
//! let x = hgp_circuit::Gate::X.matrix().expect("bound");
//! assert!(u.approx_eq_up_to_phase(&x, 1e-6));
//! ```

pub mod calibration;
pub mod channel;
pub mod propagator;
pub mod schedule;
pub mod waveform;

pub use channel::Channel;
pub use propagator::PulseError;
pub use schedule::{PlayedPulse, PulseSpec, Schedule};
pub use waveform::Waveform;
