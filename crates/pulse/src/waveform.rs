//! Analytic pulse envelopes.
//!
//! Envelopes are dimensionless (peak value ~1); physical drive strength
//! comes from multiplying by the play amplitude and the qubit's calibrated
//! Rabi rate. Durations are in integer `dt` samples. Following the Qiskit
//! pulse convention that the paper works within, Gaussian-family durations
//! should be multiples of 32 dt (enforced by [`Waveform::validate`], which
//! the duration binary search relies on).

use serde::{Deserialize, Serialize};

/// A pulse envelope shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Waveform {
    /// Truncated Gaussian `exp(-(t - T/2)^2 / (2 sigma^2))`.
    Gaussian {
        /// Total duration in `dt`.
        duration: u32,
        /// Standard deviation in `dt`.
        sigma: f64,
    },
    /// Gaussian rise/fall around a flat top (the CR pulse shape).
    GaussianSquare {
        /// Total duration in `dt`.
        duration: u32,
        /// Rise/fall standard deviation in `dt`.
        sigma: f64,
        /// Flat-top width in `dt` (must satisfy `width <= duration`).
        width: u32,
    },
    /// Gaussian with a derivative (DRAG) quadrature component; the
    /// in-phase envelope equals the Gaussian's.
    Drag {
        /// Total duration in `dt`.
        duration: u32,
        /// Standard deviation in `dt`.
        sigma: f64,
        /// DRAG coefficient (quadrature scale).
        beta: f64,
    },
    /// Constant (square) envelope of height 1.
    Constant {
        /// Total duration in `dt`.
        duration: u32,
    },
}

/// Validation failures for waveform shape parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum WaveformError {
    /// Duration must be positive.
    ZeroDuration,
    /// Gaussian-family durations must be multiples of 32 dt.
    NotMultipleOf32 {
        /// Offending duration.
        duration: u32,
    },
    /// Sigma must be positive and finite.
    BadSigma {
        /// Offending sigma.
        sigma: f64,
    },
    /// GaussianSquare width must fit in the duration.
    WidthTooLarge {
        /// Offending width.
        width: u32,
        /// Total duration.
        duration: u32,
    },
}

impl std::fmt::Display for WaveformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaveformError::ZeroDuration => write!(f, "waveform duration must be positive"),
            WaveformError::NotMultipleOf32 { duration } => {
                write!(
                    f,
                    "gaussian waveform duration {duration} is not a multiple of 32 dt"
                )
            }
            WaveformError::BadSigma { sigma } => write!(f, "invalid sigma {sigma}"),
            WaveformError::WidthTooLarge { width, duration } => {
                write!(f, "flat-top width {width} exceeds duration {duration}")
            }
        }
    }
}

impl std::error::Error for WaveformError {}

impl Waveform {
    /// A Gaussian with the conventional `sigma = duration / 4`.
    pub fn gaussian(duration: u32) -> Self {
        Waveform::Gaussian {
            duration,
            sigma: f64::from(duration) / 4.0,
        }
    }

    /// A GaussianSquare with `sigma = 16 dt` ramps filling the non-flat
    /// portion.
    pub fn gaussian_square(duration: u32, width: u32) -> Self {
        Waveform::GaussianSquare {
            duration,
            sigma: 16.0,
            width,
        }
    }

    /// Total duration in `dt`.
    pub fn duration(&self) -> u32 {
        match *self {
            Waveform::Gaussian { duration, .. }
            | Waveform::GaussianSquare { duration, .. }
            | Waveform::Drag { duration, .. }
            | Waveform::Constant { duration } => duration,
        }
    }

    /// Checks shape constraints (positive duration, 32-dt alignment for
    /// Gaussian-family shapes, positive sigma, width <= duration).
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), WaveformError> {
        let duration = self.duration();
        if duration == 0 {
            return Err(WaveformError::ZeroDuration);
        }
        match *self {
            Waveform::Gaussian { sigma, .. }
            | Waveform::GaussianSquare { sigma, .. }
            | Waveform::Drag { sigma, .. } => {
                if !duration.is_multiple_of(32) {
                    return Err(WaveformError::NotMultipleOf32 { duration });
                }
                if !(sigma > 0.0 && sigma.is_finite()) {
                    return Err(WaveformError::BadSigma { sigma });
                }
            }
            Waveform::Constant { .. } => {}
        }
        if let Waveform::GaussianSquare {
            width, duration, ..
        } = *self
        {
            if width > duration {
                return Err(WaveformError::WidthTooLarge { width, duration });
            }
        }
        Ok(())
    }

    /// Envelope value at sample index `t` (`0 <= t < duration`).
    ///
    /// Out-of-range samples return 0. The DRAG quadrature component is not
    /// included here (the rotating-frame model only needs the in-phase
    /// envelope; DRAG's beta enters as a phase adjustment in the
    /// propagator).
    pub fn sample(&self, t: u32) -> f64 {
        let duration = self.duration();
        if t >= duration {
            return 0.0;
        }
        let tf = f64::from(t) + 0.5; // midpoint sampling
        match *self {
            Waveform::Gaussian { duration, sigma }
            | Waveform::Drag {
                duration, sigma, ..
            } => {
                let mid = f64::from(duration) / 2.0;
                (-((tf - mid) * (tf - mid)) / (2.0 * sigma * sigma)).exp()
            }
            Waveform::GaussianSquare {
                duration,
                sigma,
                width,
            } => {
                let ramp = (f64::from(duration) - f64::from(width)) / 2.0;
                if tf < ramp {
                    let d = tf - ramp;
                    (-(d * d) / (2.0 * sigma * sigma)).exp()
                } else if tf > ramp + f64::from(width) {
                    let d = tf - ramp - f64::from(width);
                    (-(d * d) / (2.0 * sigma * sigma)).exp()
                } else {
                    1.0
                }
            }
            Waveform::Constant { .. } => 1.0,
        }
    }

    /// Integrated envelope `sum_t sample(t)` in `dt` units — the pulse
    /// "area" that calibration divides rotation angles by.
    pub fn area(&self) -> f64 {
        (0..self.duration()).map(|t| self.sample(t)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_peaks_in_the_middle() {
        let w = Waveform::gaussian(160);
        let mid = w.sample(80);
        assert!(mid > 0.99);
        assert!(w.sample(0) < mid);
        assert!(w.sample(159) < mid);
        // Symmetry.
        assert!((w.sample(10) - w.sample(149)).abs() < 1e-12);
    }

    #[test]
    fn gaussian_area_matches_analytic() {
        // Area of a full Gaussian is sigma * sqrt(2 pi); truncation at
        // +-2 sigma keeps ~95%.
        let w = Waveform::gaussian(160); // sigma = 40
        let analytic = 40.0 * (2.0 * std::f64::consts::PI).sqrt();
        let a = w.area();
        assert!(a > 0.94 * analytic && a < analytic, "area {a}");
    }

    #[test]
    fn gaussian_square_has_flat_top() {
        let w = Waveform::gaussian_square(256, 128);
        assert_eq!(w.sample(128), 1.0);
        assert!(w.sample(4) < 0.5);
        assert!(w.area() > 128.0);
    }

    #[test]
    fn constant_area_is_duration() {
        let w = Waveform::Constant { duration: 100 };
        assert_eq!(w.area(), 100.0);
        assert_eq!(w.sample(99), 1.0);
        assert_eq!(w.sample(100), 0.0);
    }

    #[test]
    fn validation_rules() {
        assert!(Waveform::gaussian(160).validate().is_ok());
        assert_eq!(
            Waveform::gaussian(100).validate(),
            Err(WaveformError::NotMultipleOf32 { duration: 100 })
        );
        assert_eq!(
            Waveform::Constant { duration: 0 }.validate(),
            Err(WaveformError::ZeroDuration)
        );
        assert!(matches!(
            Waveform::GaussianSquare {
                duration: 64,
                sigma: 16.0,
                width: 128
            }
            .validate(),
            Err(WaveformError::WidthTooLarge { .. })
        ));
        assert!(matches!(
            Waveform::Gaussian {
                duration: 64,
                sigma: -1.0
            }
            .validate(),
            Err(WaveformError::BadSigma { .. })
        ));
    }

    #[test]
    fn shorter_pulse_has_smaller_area() {
        let long = Waveform::gaussian(320);
        let short = Waveform::gaussian(128);
        assert!(short.area() < long.area());
    }

    #[test]
    fn out_of_range_sample_is_zero() {
        let w = Waveform::gaussian(64);
        assert_eq!(w.sample(64), 0.0);
        assert_eq!(w.sample(1000), 0.0);
    }
}
