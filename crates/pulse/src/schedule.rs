//! Pulse schedules: pulses played at start times on channels.

use serde::{Deserialize, Serialize};

use crate::channel::Channel;
use crate::waveform::Waveform;

/// The physical content of one played pulse.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PulseSpec {
    /// A resonant (or detuned) drive: envelope times amplitude, with a
    /// carrier phase and an optional frequency shift of the drive tone.
    Drive {
        /// Envelope shape.
        waveform: Waveform,
        /// Dimensionless amplitude; hardware clamps `|amp| <= 1`.
        amp: f64,
        /// Carrier phase, radians.
        phase: f64,
        /// Frequency shift of this pulse's tone relative to the qubit
        /// frame, in rad/dt (the paper's per-pulse frequency parameter,
        /// bounded to roughly +-100 MHz = +-0.14 rad/dt).
        freq_shift: f64,
    },
    /// A cross-resonance tone (played on a [`Channel::Control`] channel).
    CrossResonance {
        /// Envelope shape.
        waveform: Waveform,
        /// Dimensionless amplitude; sign implements the CR echo.
        amp: f64,
        /// Carrier phase, radians.
        phase: f64,
    },
    /// A virtual Z rotation (zero-duration frame change) by `angle`.
    VirtualZ {
        /// Rotation angle, radians.
        angle: f64,
    },
}

impl PulseSpec {
    /// Duration in `dt` (0 for virtual frame changes).
    pub fn duration(&self) -> u32 {
        match self {
            PulseSpec::Drive { waveform, .. } | PulseSpec::CrossResonance { waveform, .. } => {
                waveform.duration()
            }
            PulseSpec::VirtualZ { .. } => 0,
        }
    }

    /// Short name of the pulse family (for error messages).
    pub fn kind_name(&self) -> &'static str {
        match self {
            PulseSpec::Drive { .. } => "drive",
            PulseSpec::CrossResonance { .. } => "cross-resonance",
            PulseSpec::VirtualZ { .. } => "virtual-z",
        }
    }
}

/// One pulse placed on a channel at an absolute start time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlayedPulse {
    /// Channel the pulse plays on.
    pub channel: Channel,
    /// Start time, `dt`.
    pub start: u32,
    /// The pulse.
    pub pulse: PulseSpec,
}

impl PlayedPulse {
    /// End time (`start + duration`), `dt`.
    pub fn end(&self) -> u32 {
        self.start + self.pulse.duration()
    }
}

/// An ordered pulse program.
///
/// ```
/// use hgp_pulse::{Channel, PulseSpec, Schedule, Waveform};
/// let mut sched = Schedule::new();
/// sched.play(
///     Channel::Drive(0),
///     PulseSpec::Drive {
///         waveform: Waveform::gaussian(160),
///         amp: 0.25,
///         phase: 0.0,
///         freq_shift: 0.0,
///     },
/// );
/// assert_eq!(sched.duration(), 160);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Schedule {
    items: Vec<PlayedPulse>,
}

impl Schedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// The played pulses, in insertion order.
    pub fn items(&self) -> &[PlayedPulse] {
        &self.items
    }

    /// Appends a pulse on `channel` starting as early as the channel's
    /// qubits allow (after every already-scheduled pulse that shares a
    /// qubit). Returns the assigned start time.
    pub fn play(&mut self, channel: Channel, pulse: PulseSpec) -> u32 {
        let qubits = channel.qubits();
        let start = self
            .items
            .iter()
            .filter(|p| p.channel.qubits().iter().any(|q| qubits.contains(q)))
            .map(PlayedPulse::end)
            .max()
            .unwrap_or(0);
        self.play_at(channel, start, pulse);
        start
    }

    /// Places a pulse at an explicit start time.
    ///
    /// # Panics
    ///
    /// Panics if the pulse would overlap another pulse sharing a qubit
    /// (virtual-Z pulses never overlap anything).
    pub fn play_at(&mut self, channel: Channel, start: u32, pulse: PulseSpec) {
        let duration = pulse.duration();
        if duration > 0 {
            let qubits = channel.qubits();
            for other in &self.items {
                if other.pulse.duration() == 0 {
                    continue;
                }
                if !other.channel.qubits().iter().any(|q| qubits.contains(q)) {
                    continue;
                }
                let no_overlap = start >= other.end() || start + duration <= other.start;
                assert!(
                    no_overlap,
                    "pulse on {channel} at {start} overlaps pulse on {} at {}",
                    other.channel, other.start
                );
            }
        }
        self.items.push(PlayedPulse {
            channel,
            start,
            pulse,
        });
    }

    /// Appends another schedule, shifted to start after this one ends.
    pub fn append(&mut self, other: &Schedule) {
        let offset = self.duration();
        for item in &other.items {
            self.items.push(PlayedPulse {
                channel: item.channel,
                start: item.start + offset,
                pulse: item.pulse,
            });
        }
    }

    /// Total duration: the latest pulse end time.
    pub fn duration(&self) -> u32 {
        self.items.iter().map(PlayedPulse::end).max().unwrap_or(0)
    }

    /// Number of non-virtual pulses.
    pub fn count_physical_pulses(&self) -> usize {
        self.items.iter().filter(|p| p.pulse.duration() > 0).count()
    }

    /// The set of physical qubits touched by unitary channels, ascending.
    pub fn active_qubits(&self) -> Vec<usize> {
        let mut qs: Vec<usize> = self
            .items
            .iter()
            .filter(|p| p.channel.is_unitary())
            .flat_map(|p| p.channel.qubits())
            .collect();
        qs.sort_unstable();
        qs.dedup();
        qs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian_drive(amp: f64) -> PulseSpec {
        PulseSpec::Drive {
            waveform: Waveform::gaussian(160),
            amp,
            phase: 0.0,
            freq_shift: 0.0,
        }
    }

    #[test]
    fn sequential_play_on_same_qubit() {
        let mut s = Schedule::new();
        let t0 = s.play(Channel::Drive(0), gaussian_drive(0.1));
        let t1 = s.play(Channel::Drive(0), gaussian_drive(0.2));
        assert_eq!(t0, 0);
        assert_eq!(t1, 160);
        assert_eq!(s.duration(), 320);
    }

    #[test]
    fn parallel_play_on_different_qubits() {
        let mut s = Schedule::new();
        s.play(Channel::Drive(0), gaussian_drive(0.1));
        let t = s.play(Channel::Drive(1), gaussian_drive(0.1));
        assert_eq!(t, 0);
        assert_eq!(s.duration(), 160);
    }

    #[test]
    fn control_channel_serializes_with_its_qubits() {
        let mut s = Schedule::new();
        s.play(Channel::Drive(0), gaussian_drive(0.1));
        // CR on (0, 1) must wait for the drive on 0.
        let t = s.play(
            Channel::Control {
                control: 0,
                target: 1,
            },
            PulseSpec::CrossResonance {
                waveform: Waveform::gaussian_square(256, 128),
                amp: 0.3,
                phase: 0.0,
            },
        );
        assert_eq!(t, 160);
    }

    #[test]
    fn virtual_z_is_free() {
        let mut s = Schedule::new();
        s.play(Channel::Drive(0), PulseSpec::VirtualZ { angle: 1.0 });
        assert_eq!(s.duration(), 0);
        assert_eq!(s.count_physical_pulses(), 0);
    }

    #[test]
    fn append_shifts_in_time() {
        let mut a = Schedule::new();
        a.play(Channel::Drive(0), gaussian_drive(0.1));
        let mut b = Schedule::new();
        b.play(Channel::Drive(1), gaussian_drive(0.2));
        a.append(&b);
        assert_eq!(a.items()[1].start, 160);
        assert_eq!(a.duration(), 320);
    }

    #[test]
    fn active_qubits_deduplicates() {
        let mut s = Schedule::new();
        s.play(Channel::Drive(2), gaussian_drive(0.1));
        s.play(
            Channel::Control {
                control: 2,
                target: 5,
            },
            PulseSpec::CrossResonance {
                waveform: Waveform::gaussian_square(256, 128),
                amp: 0.1,
                phase: 0.0,
            },
        );
        assert_eq!(s.active_qubits(), vec![2, 5]);
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_pulses_panic() {
        let mut s = Schedule::new();
        s.play_at(Channel::Drive(0), 0, gaussian_drive(0.1));
        s.play_at(Channel::Drive(0), 100, gaussian_drive(0.1));
    }
}
