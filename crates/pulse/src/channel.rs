//! Pulse channels.
//!
//! IBM-style backends expose four channel families; the simulator acts on
//! the two that carry unitary dynamics (drive and control), while measure
//! and acquire channels exist so schedules can represent full programs and
//! account for readout duration.

use serde::{Deserialize, Serialize};

/// A hardware channel that pulses are played on.
///
/// Qubit indices are *physical* backend qubits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Channel {
    /// Single-qubit drive line (`D<q>`), the primary channel of a qubit.
    Drive(usize),
    /// Cross-resonance control line (`U`) driving `control` at the
    /// frequency of `target`; exists only for coupled pairs.
    Control {
        /// The qubit being driven.
        control: usize,
        /// The qubit whose frequency the drive is at.
        target: usize,
    },
    /// Readout stimulus channel (`M<q>`).
    Measure(usize),
    /// Readout capture channel (`A<q>`).
    Acquire(usize),
}

impl Channel {
    /// The qubits whose state this channel's pulses touch.
    pub fn qubits(&self) -> Vec<usize> {
        match *self {
            Channel::Drive(q) | Channel::Measure(q) | Channel::Acquire(q) => vec![q],
            Channel::Control { control, target } => vec![control, target],
        }
    }

    /// Whether pulses on this channel produce unitary dynamics (drive and
    /// control channels do; measure/acquire are classical bookkeeping).
    pub fn is_unitary(&self) -> bool {
        matches!(self, Channel::Drive(_) | Channel::Control { .. })
    }
}

impl std::fmt::Display for Channel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Channel::Drive(q) => write!(f, "d{q}"),
            Channel::Control { control, target } => write!(f, "u{control}_{target}"),
            Channel::Measure(q) => write!(f, "m{q}"),
            Channel::Acquire(q) => write!(f, "a{q}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_qubits() {
        assert_eq!(Channel::Drive(3).qubits(), vec![3]);
        assert_eq!(
            Channel::Control {
                control: 1,
                target: 2
            }
            .qubits(),
            vec![1, 2]
        );
    }

    #[test]
    fn unitary_classification() {
        assert!(Channel::Drive(0).is_unitary());
        assert!(Channel::Control {
            control: 0,
            target: 1
        }
        .is_unitary());
        assert!(!Channel::Measure(0).is_unitary());
        assert!(!Channel::Acquire(0).is_unitary());
    }

    #[test]
    fn display_names() {
        assert_eq!(Channel::Drive(5).to_string(), "d5");
        assert_eq!(
            Channel::Control {
                control: 2,
                target: 7
            }
            .to_string(),
            "u2_7"
        );
    }
}
