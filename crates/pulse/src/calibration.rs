//! Calibrated pulse library: the pulse-level ground truth of a backend.
//!
//! Real backends ship carefully calibrated pulse definitions for their
//! basis gates; everything a gate-level user runs lowers to these. This
//! module reproduces that layer:
//!
//! - `X`/`SX`: Gaussian drive pulses whose amplitude is calibrated from
//!   the qubit's Rabi rate so the integrated area hits pi (pi/2),
//! - generic single-qubit gates: the `RZ - SX - RZ - SX - RZ` expansion
//!   with virtual (zero-duration) `RZ`s — making every `RX`/`RY`/`U3` cost
//!   **two pulses = 320 dt**, the paper's "raw mixer layer duration",
//! - `CX`: the echoed cross-resonance schedule (`CR(-), X_c, CR(+), X_c`)
//!   with a virtual-Z Stark correction and an `SX` on the target,
//! - [`PulseLibrary::circuit_to_schedule`]: lowering of a bound circuit to
//!   one schedule, gate by gate, ASAP-aligned per qubit.

use std::f64::consts::{FRAC_PI_2, PI};

use hgp_circuit::{Circuit, Gate, Instruction};
use hgp_device::Backend;
use hgp_math::su2::zyz_decompose;
use hgp_math::Matrix;

use crate::channel::Channel;
use crate::propagator::schedule_unitary;
use crate::schedule::{PulseSpec, Schedule};
use crate::waveform::Waveform;

/// Calibrated pulse definitions for a backend.
///
/// See the crate-level example.
#[derive(Debug, Clone)]
pub struct PulseLibrary<'a> {
    backend: &'a Backend,
}

impl<'a> PulseLibrary<'a> {
    /// Builds the library for `backend`.
    pub fn new(backend: &'a Backend) -> Self {
        Self { backend }
    }

    /// The backend this library calibrates against.
    pub fn backend(&self) -> &Backend {
        self.backend
    }

    /// The standard single-qubit pulse envelope (Gaussian, 160 dt,
    /// `sigma = 40`).
    pub fn pulse_1q_waveform(&self) -> Waveform {
        Waveform::gaussian(self.backend.pulse_1q_duration_dt())
    }

    /// Calibrated amplitude of the pi (X) pulse on physical qubit `q`.
    pub fn x_amp(&self, q: usize) -> f64 {
        let w = self.pulse_1q_waveform();
        PI / (self.backend.qubit(q).drive_strength * w.area())
    }

    /// The X pulse on `q` as a playable spec.
    pub fn x_pulse(&self, q: usize) -> PulseSpec {
        PulseSpec::Drive {
            waveform: self.pulse_1q_waveform(),
            amp: self.x_amp(q),
            phase: 0.0,
            freq_shift: 0.0,
        }
    }

    /// The SX (sqrt-X, pi/2) pulse on `q`.
    pub fn sx_pulse(&self, q: usize) -> PulseSpec {
        PulseSpec::Drive {
            waveform: self.pulse_1q_waveform(),
            amp: self.x_amp(q) / 2.0,
            phase: 0.0,
            freq_shift: 0.0,
        }
    }

    /// Compiled propagator of the calibrated X pulse (test convenience).
    pub fn x_propagator(&self, q: usize) -> Matrix {
        let mut s = Schedule::new();
        s.play(Channel::Drive(q), self.x_pulse(q));
        schedule_unitary(&s, self.backend, &[q]).expect("calibrated schedule is well-formed")
    }

    /// Calibrated CR half-pulse amplitude on the `(control, target)`
    /// coupler such that the echoed pair accumulates a `ZX` angle of
    /// `zx_angle` (i.e. implements `RZX(2 * zx_angle)` — `pi/4` areas give
    /// the CX's `RZX(-pi/2)`).
    pub fn cr_amp(&self, control: usize, target: usize, zx_angle: f64) -> f64 {
        let edge = self.backend.edge(control, target);
        let w = self.cr_waveform(control, target);
        let strength = self.backend.qubit(control).drive_strength;
        zx_angle / (edge.mu_zx * strength * w.area())
    }

    /// The CR envelope used on a coupler (GaussianSquare over the edge's
    /// calibrated duration).
    pub fn cr_waveform(&self, control: usize, target: usize) -> Waveform {
        let d = self.backend.edge(control, target).cr_duration_dt;
        Waveform::gaussian_square(d, d.saturating_sub(96))
    }

    /// The echoed-CR CNOT schedule on a coupler.
    ///
    /// Sequence (time order): `CR(-a)`, `X` on control, `CR(+a)`, `X` on
    /// control, then a virtual `RZ` on the control (the `pi/2` frame
    /// rotation plus the Stark correction) and an `SX` on the target.
    ///
    /// # Panics
    ///
    /// Panics if `(control, target)` is not a coupler.
    pub fn cx_schedule(&self, control: usize, target: usize) -> Schedule {
        let edge = *self.backend.edge(control, target);
        let w = self.cr_waveform(control, target);
        let strength = self.backend.qubit(control).drive_strength;
        // With the negative half played first, the echo totals
        // exp(+i theta (mu_zx ZX + mu_zi ZI)), theta being the positive
        // half's integrated angle. CX needs RZX(-pi/2) = exp(+i pi/4 ZX),
        // so theta * mu_zx = pi/4.
        let theta = PI / (4.0 * edge.mu_zx);
        let amp = theta / (strength * w.area());
        let mut s = Schedule::new();
        let cr = |a: f64| PulseSpec::CrossResonance {
            waveform: w,
            amp: a,
            phase: 0.0,
        };
        let u_chan = Channel::Control { control, target };
        // Time order: CR(-a) ... but the echo algebra makes the *first*
        // pulse the negative of the second; both land in the commuting sum.
        s.play(u_chan, cr(-amp));
        s.play(Channel::Drive(control), self.x_pulse(control));
        s.play(u_chan, cr(amp));
        s.play(Channel::Drive(control), self.x_pulse(control));
        // Residual Stark phase exp(+i theta mu_zi ZI) = RZ(-2 theta mu_zi)
        // on the control; fold the required RZ(pi/2) frame change in.
        let stark = -2.0 * theta * edge.mu_zi;
        s.play(
            Channel::Drive(control),
            PulseSpec::VirtualZ {
                angle: FRAC_PI_2 - stark,
            },
        );
        // RX(pi/2) on the target (SX up to global phase).
        s.play(Channel::Drive(target), self.sx_pulse(target));
        s
    }

    /// Schedule of an arbitrary single-qubit unitary on `q` via the
    /// `RZ - SX - RZ - SX - RZ` expansion (two physical pulses, 320 dt).
    ///
    /// # Panics
    ///
    /// Panics if `u` is not 2x2.
    pub fn u3_schedule(&self, q: usize, u: &Matrix) -> Schedule {
        let (_, beta, gamma, delta) = zyz_decompose(u);
        // U = RZ(beta) RY(gamma) RZ(delta) and
        // RY(gamma) = RZ(pi) SX RZ(gamma - pi) SX up to global phase, so
        // time order is RZ(delta), SX, RZ(gamma - pi), SX, RZ(beta + pi).
        let mut s = Schedule::new();
        let d = Channel::Drive(q);
        s.play(d, PulseSpec::VirtualZ { angle: delta });
        s.play(d, self.sx_pulse(q));
        s.play(d, PulseSpec::VirtualZ { angle: gamma - PI });
        s.play(d, self.sx_pulse(q));
        s.play(d, PulseSpec::VirtualZ { angle: beta + PI });
        s
    }

    /// Schedule of `RX(theta)` on `q` (two pulses, 320 dt — the paper's
    /// gate-level mixer cost per qubit).
    pub fn rx_schedule(&self, q: usize, theta: f64) -> Schedule {
        let rx = Gate::Rx(hgp_circuit::Param::bound(theta))
            .matrix()
            .expect("bound");
        self.u3_schedule(q, &rx)
    }

    /// Lowers a bound circuit (on physical qubit indices) to one pulse
    /// schedule, ASAP-aligned per qubit.
    ///
    /// Diagonal gates become virtual Zs; `X`/`SX` use single calibrated
    /// pulses; `H` uses one SX plus frame changes; other 1q gates use the
    /// two-pulse expansion; `CX` uses the echoed-CR schedule; `RZZ`
    /// lowers to `CX - RZ - CX`. Measurements and barriers are skipped
    /// (readout scheduling is the executor's job).
    ///
    /// # Errors
    ///
    /// Returns an error string naming the instruction if a gate is unbound
    /// or a two-qubit gate spans a non-coupled pair.
    pub fn circuit_to_schedule(&self, circuit: &Circuit) -> Result<Schedule, String> {
        let mut out = Schedule::new();
        for (idx, inst) in circuit.instructions().iter().enumerate() {
            let Instruction::Gate { gate, qubits } = inst else {
                continue;
            };
            if !gate.is_bound() {
                return Err(format!(
                    "instruction {idx}: gate {gate} has unbound parameters"
                ));
            }
            let sub = self
                .gate_schedule(gate, qubits)
                .map_err(|e| format!("instruction {idx}: {e}"))?;
            merge_asap(&mut out, &sub);
        }
        Ok(out)
    }

    /// The sub-schedule of one bound gate on physical operands.
    ///
    /// # Errors
    ///
    /// Returns an error string for unbound gates or non-coupled pairs.
    pub fn gate_schedule(&self, gate: &Gate, qubits: &[usize]) -> Result<Schedule, String> {
        let mut s = Schedule::new();
        match gate {
            Gate::I => {}
            Gate::Z | Gate::S | Gate::Sdg | Gate::T | Gate::Tdg | Gate::Rz(_) => {
                let angle = match gate {
                    Gate::Z => PI,
                    Gate::S => FRAC_PI_2,
                    Gate::Sdg => -FRAC_PI_2,
                    Gate::T => PI / 4.0,
                    Gate::Tdg => -PI / 4.0,
                    Gate::Rz(p) => p.value().ok_or("unbound rz")?,
                    _ => unreachable!(),
                };
                s.play(Channel::Drive(qubits[0]), PulseSpec::VirtualZ { angle });
            }
            Gate::X => {
                s.play(Channel::Drive(qubits[0]), self.x_pulse(qubits[0]));
            }
            Gate::SX => {
                s.play(Channel::Drive(qubits[0]), self.sx_pulse(qubits[0]));
            }
            Gate::Y | Gate::H | Gate::Rx(_) | Gate::Ry(_) | Gate::U3(..) => {
                let m = gate.matrix().ok_or("unbound 1q gate")?;
                if matches!(gate, Gate::H | Gate::Y) {
                    // One pulse suffices: H = RZ(pi/2) SX RZ(pi/2),
                    // Y = RZ(pi) X (up to phase); build from ZYZ but skip
                    // the second pulse when gamma is a multiple of pi.
                    s = self.one_or_two_pulse_1q(qubits[0], &m);
                } else {
                    s = self.u3_schedule(qubits[0], &m);
                }
            }
            Gate::CX => {
                self.ensure_coupled(qubits[0], qubits[1])?;
                s = self.cx_schedule(qubits[0], qubits[1]);
            }
            Gate::CZ => {
                self.ensure_coupled(qubits[0], qubits[1])?;
                // CZ = H_t CX H_t.
                let h = Gate::H.matrix().expect("bound");
                merge_asap(&mut s, &self.one_or_two_pulse_1q(qubits[1], &h));
                merge_asap(&mut s, &self.cx_schedule(qubits[0], qubits[1]));
                merge_asap(&mut s, &self.one_or_two_pulse_1q(qubits[1], &h));
            }
            Gate::Swap => {
                self.ensure_coupled(qubits[0], qubits[1])?;
                merge_asap(&mut s, &self.cx_schedule(qubits[0], qubits[1]));
                merge_asap(&mut s, &self.cx_schedule(qubits[1], qubits[0]));
                merge_asap(&mut s, &self.cx_schedule(qubits[0], qubits[1]));
            }
            Gate::Rzz(p) => {
                self.ensure_coupled(qubits[0], qubits[1])?;
                let theta = p.value().ok_or("unbound rzz")?;
                merge_asap(&mut s, &self.cx_schedule(qubits[0], qubits[1]));
                let mut rz = Schedule::new();
                rz.play(
                    Channel::Drive(qubits[1]),
                    PulseSpec::VirtualZ { angle: theta },
                );
                merge_asap(&mut s, &rz);
                merge_asap(&mut s, &self.cx_schedule(qubits[0], qubits[1]));
            }
            Gate::Rzx(p) => {
                self.ensure_coupled(qubits[0], qubits[1])?;
                let theta = p.value().ok_or("unbound rzx")?;
                s = self.rzx_schedule(qubits[0], qubits[1], theta);
            }
        }
        Ok(s)
    }

    /// Echoed-CR schedule implementing `RZX(theta)` directly (the
    /// pulse-efficient two-qubit primitive).
    ///
    /// # Panics
    ///
    /// Panics if `(control, target)` is not a coupler.
    pub fn rzx_schedule(&self, control: usize, target: usize, theta: f64) -> Schedule {
        let edge = *self.backend.edge(control, target);
        let w = self.cr_waveform(control, target);
        let strength = self.backend.qubit(control).drive_strength;
        // Echo total exp(+i t (mu_zx ZX + mu_zi ZI)); RZX(theta) =
        // exp(-i theta/2 ZX) needs t mu_zx = -theta/2.
        let t = -theta / (2.0 * edge.mu_zx);
        let amp = t / (strength * w.area());
        let mut s = Schedule::new();
        let u_chan = Channel::Control { control, target };
        let cr = |a: f64| PulseSpec::CrossResonance {
            waveform: w,
            amp: a,
            phase: 0.0,
        };
        s.play(u_chan, cr(-amp));
        s.play(Channel::Drive(control), self.x_pulse(control));
        s.play(u_chan, cr(amp));
        s.play(Channel::Drive(control), self.x_pulse(control));
        // Cancel the residual Stark phase RZ(-2 t mu_zi) on the control.
        s.play(
            Channel::Drive(control),
            PulseSpec::VirtualZ {
                angle: 2.0 * t * edge.mu_zi,
            },
        );
        s
    }

    /// ZYZ-based 1q schedule that drops the second SX when the middle
    /// angle makes it redundant (e.g. H and Y need only one pulse).
    fn one_or_two_pulse_1q(&self, q: usize, u: &Matrix) -> Schedule {
        let (_, beta, gamma, delta) = zyz_decompose(u);
        let d = Channel::Drive(q);
        // RY(g) = RZ(pi/2) RX(g) RZ(-pi/2), so gamma == pi/2 admits the
        // single-pulse form RZ(beta + pi/2) SX RZ(delta - pi/2) (up to
        // phase) — check numerically and fall back otherwise.
        let mut single = Schedule::new();
        single.play(
            d,
            PulseSpec::VirtualZ {
                angle: delta - FRAC_PI_2,
            },
        );
        single.play(d, self.sx_pulse(q));
        single.play(
            d,
            PulseSpec::VirtualZ {
                angle: beta + FRAC_PI_2,
            },
        );
        let got =
            schedule_unitary(&single, self.backend, &[q]).expect("calibrated schedule compiles");
        if got.approx_eq_up_to_phase(u, 1e-7) {
            single
        } else {
            let _ = gamma;
            self.u3_schedule(q, u)
        }
    }

    fn ensure_coupled(&self, a: usize, b: usize) -> Result<(), String> {
        if self.backend.coupling_map().are_coupled(a, b) {
            Ok(())
        } else {
            Err(format!("qubits ({a}, {b}) are not coupled"))
        }
    }
}

/// Appends `sub` to `out`, starting at the earliest time allowed by the
/// qubits `sub` touches (preserving `sub`'s internal offsets).
pub fn merge_asap(out: &mut Schedule, sub: &Schedule) {
    let qubits = sub.active_qubits();
    let offset = out
        .items()
        .iter()
        .filter(|p| p.channel.qubits().iter().any(|q| qubits.contains(q)))
        .map(|p| p.end())
        .max()
        .unwrap_or(0);
    for item in sub.items() {
        out.play_at(item.channel, item.start + offset, item.pulse);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgp_circuit::Param;

    fn backend() -> Backend {
        Backend::ibmq_guadalupe()
    }

    #[test]
    fn x_pulse_calibration() {
        let b = backend();
        let lib = PulseLibrary::new(&b);
        for q in [0, 3, 7] {
            let u = lib.x_propagator(q);
            assert!(
                u.approx_eq_up_to_phase(&Gate::X.matrix().unwrap(), 1e-7),
                "X calibration failed on qubit {q}"
            );
            assert!(lib.x_amp(q) < 1.0, "X amp exceeds hardware bound");
        }
    }

    #[test]
    fn rx_schedule_matches_gate() {
        let b = backend();
        let lib = PulseLibrary::new(&b);
        for theta in [0.3, -1.2, PI, 2.7] {
            let s = lib.rx_schedule(2, theta);
            assert_eq!(s.duration(), 320, "RX must cost two pulses");
            let u = schedule_unitary(&s, &b, &[2]).unwrap();
            let expect = Gate::Rx(Param::bound(theta)).matrix().unwrap();
            assert!(
                u.approx_eq_up_to_phase(&expect, 1e-7),
                "RX({theta}) mismatch"
            );
        }
    }

    #[test]
    fn h_uses_a_single_pulse() {
        let b = backend();
        let lib = PulseLibrary::new(&b);
        let s = lib.gate_schedule(&Gate::H, &[1]).unwrap();
        assert_eq!(s.duration(), 160);
        let u = schedule_unitary(&s, &b, &[1]).unwrap();
        assert!(u.approx_eq_up_to_phase(&Gate::H.matrix().unwrap(), 1e-7));
    }

    #[test]
    fn cx_schedule_implements_cnot() {
        let b = backend();
        let lib = PulseLibrary::new(&b);
        let s = lib.cx_schedule(0, 1);
        let u = schedule_unitary(&s, &b, &[0, 1]).unwrap();
        let expect = Gate::CX.matrix().unwrap().embed(2, &[0, 1]);
        assert!(
            u.approx_eq_up_to_phase(&expect, 1e-6),
            "CX pulse schedule wrong:\n{u}\nvs\n{expect}"
        );
        // Duration matches the device model.
        assert_eq!(s.duration(), b.cx_duration_dt(0, 1));
    }

    #[test]
    fn rzx_schedule_implements_rzx() {
        let b = backend();
        let lib = PulseLibrary::new(&b);
        for theta in [0.4, -1.1, FRAC_PI_2] {
            let s = lib.rzx_schedule(0, 1, theta);
            let u = schedule_unitary(&s, &b, &[0, 1]).unwrap();
            let expect = Gate::Rzx(Param::bound(theta))
                .matrix()
                .unwrap()
                .embed(2, &[0, 1]);
            assert!(u.approx_eq_up_to_phase(&expect, 1e-6), "RZX({theta})");
        }
    }

    #[test]
    fn rzz_lowering_matches_gate() {
        let b = backend();
        let lib = PulseLibrary::new(&b);
        let mut qc = Circuit::new(2);
        qc.rzz(0, 1, 0.9);
        let s = lib.circuit_to_schedule(&qc).unwrap();
        let u = schedule_unitary(&s, &b, &[0, 1]).unwrap();
        let expect = Gate::Rzz(Param::bound(0.9))
            .matrix()
            .unwrap()
            .embed(2, &[0, 1]);
        assert!(u.approx_eq_up_to_phase(&expect, 1e-6));
    }

    #[test]
    fn bell_circuit_lowering() {
        let b = backend();
        let lib = PulseLibrary::new(&b);
        let mut qc = Circuit::new(2);
        qc.h(0).cx(0, 1);
        let s = lib.circuit_to_schedule(&qc).unwrap();
        let u = schedule_unitary(&s, &b, &[0, 1]).unwrap();
        let expect = qc.unitary().unwrap();
        assert!(u.approx_eq_up_to_phase(&expect, 1e-6));
    }

    #[test]
    fn uncoupled_cx_is_rejected() {
        let b = backend();
        let lib = PulseLibrary::new(&b);
        let mut qc = Circuit::new(16);
        qc.cx(0, 15);
        assert!(lib.circuit_to_schedule(&qc).is_err());
    }

    #[test]
    fn merge_asap_parallelizes_disjoint_gates() {
        let b = backend();
        let lib = PulseLibrary::new(&b);
        let mut qc = Circuit::new(4);
        // Parallel RX on all qubits: total duration should stay 320 dt.
        let mut qc2 = Circuit::new(4);
        for q in 0..4 {
            qc2.rx(q, 0.5);
        }
        qc.append(&qc2);
        let s = lib.circuit_to_schedule(&qc).unwrap();
        assert_eq!(s.duration(), 320);
    }
}
