//! Criterion micro-benchmarks of the simulation kernels.
//!
//! The `fused_*` vs `generic_*` pairs back the workspace's kernel
//! acceptance bar: the fused diagonal/strided kernels must beat the
//! generic branch-per-index `apply_operator` path by >= 2x on a
//! 16-qubit QAOA layer. `statevector_qaoa_20q` exercises the
//! rayon-chunked wide-register path (fan-out engages automatically on
//! multi-core hosts; set `RAYON_NUM_THREADS` to pin the worker count).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use hgp_circuit::{Circuit, Gate, Param};
use hgp_device::Backend;
use hgp_math::Complex64;
use hgp_mitigation::M3Mitigator;
use hgp_noise::ReadoutModel;
use hgp_pulse::calibration::PulseLibrary;
use hgp_pulse::propagator::drive_propagator;
use hgp_pulse::Waveform;
use hgp_sim::{kernels, Counts, DensityMatrix, SimBackend, StateVector};
use hgp_transpile::{TranspileOptions, Transpiler};

fn qaoa_like(n: usize) -> Circuit {
    let mut qc = Circuit::new(n);
    for q in 0..n {
        qc.h(q);
    }
    for q in 0..n {
        qc.rzz(q, (q + 1) % n, 0.4);
    }
    for q in 0..n {
        qc.rx(q, 0.8);
    }
    qc
}

fn bench_statevector(c: &mut Criterion) {
    let qc = qaoa_like(10);
    c.bench_function("statevector_qaoa_10q", |b| {
        b.iter(|| StateVector::execute(black_box(&qc)).expect("bound"))
    });
}

fn bench_statevector_wide(c: &mut Criterion) {
    // The rayon-chunked path: one full QAOA layer on a 20-qubit register
    // (1M amplitudes).
    let qc = qaoa_like(20);
    c.bench_function("statevector_qaoa_20q", |b| {
        b.iter(|| StateVector::execute(black_box(&qc)).expect("bound"))
    });
}

/// One QAOA layer (ring RZZ cost + RX mixer) on raw amplitudes through
/// the fused/strided kernels: the whole diagonal cost layer is one
/// sweep, the mixer uses the strided dense kernel.
fn fused_layer(amps: &mut [Complex64], n: usize) {
    let rzz = kernels::diagonal_2q(&Gate::Rzz(Param::bound(0.4))).expect("diagonal");
    let rx = Gate::Rx(Param::bound(0.8)).matrix().expect("bound");
    let cost: Vec<kernels::DiagOp> = (0..n)
        .map(|q| kernels::DiagOp::Two {
            t_hi: q,
            t_lo: (q + 1) % n,
            d: rzz,
        })
        .collect();
    kernels::apply_diag_fused(amps, &cost);
    for q in 0..n {
        kernels::apply_dense_1q(amps, q, &rx);
    }
}

/// The same layer through the generic branch-per-index reference path.
fn generic_layer(amps: &mut [Complex64], n: usize) {
    let rzz = Gate::Rzz(Param::bound(0.4)).matrix().expect("bound");
    let rx = Gate::Rx(Param::bound(0.8)).matrix().expect("bound");
    for q in 0..n {
        kernels::reference::apply_2q(amps, q, (q + 1) % n, &rzz);
    }
    for q in 0..n {
        kernels::reference::apply_1q(amps, q, &rx);
    }
}

fn bench_fused_vs_generic_16q(c: &mut Criterion) {
    let n = 16;
    let base: Vec<Complex64> = StateVector::plus_state(n).amplitudes().to_vec();
    let mut amps = base.clone();
    c.bench_function("qaoa_layer_16q_fused", |b| {
        b.iter(|| {
            amps.copy_from_slice(&base);
            fused_layer(black_box(&mut amps), n);
        })
    });
    let mut amps = base.clone();
    c.bench_function("qaoa_layer_16q_generic", |b| {
        b.iter(|| {
            amps.copy_from_slice(&base);
            generic_layer(black_box(&mut amps), n);
        })
    });
}

fn bench_diag_rzz_16q(c: &mut Criterion) {
    let n = 16;
    let diag = kernels::diagonal_2q(&Gate::Rzz(Param::bound(0.4))).expect("diagonal");
    let dense = Gate::Rzz(Param::bound(0.4)).matrix().expect("bound");
    let mut amps: Vec<Complex64> = StateVector::plus_state(n).amplitudes().to_vec();
    c.bench_function("rzz_16q_fused_diag", |b| {
        b.iter(|| kernels::apply_diag_2q(black_box(&mut amps), 7, 3, diag))
    });
    c.bench_function("rzz_16q_generic", |b| {
        b.iter(|| kernels::reference::apply_2q(black_box(&mut amps), 7, 3, &dense))
    });
}

fn bench_density_gate(c: &mut Criterion) {
    let cx = Gate::CX.matrix().expect("bound");
    c.bench_function("density_cx_8q", |b| {
        let mut rho = DensityMatrix::plus_state(8);
        b.iter(|| rho.apply_unitary(black_box(&cx), &[0, 1]))
    });
}

fn bench_density_kraus(c: &mut Criterion) {
    let kraus = hgp_noise::channels::thermal_relaxation(100.0, 80.0, 0.1);
    c.bench_function("density_thermal_relax_8q", |b| {
        let mut rho = DensityMatrix::plus_state(8);
        b.iter(|| rho.apply_kraus(black_box(&kraus), &[3]))
    });
}

fn bench_pulse_propagator(c: &mut Criterion) {
    let w = Waveform::gaussian(320);
    c.bench_function("drive_propagator_320dt", |b| {
        b.iter(|| drive_propagator(black_box(&w), 0.1, 0.3, 0.001, 0.125))
    });
}

fn bench_cx_schedule(c: &mut Criterion) {
    let backend = Backend::ibmq_toronto();
    let lib = PulseLibrary::new(&backend);
    c.bench_function("cx_pulse_schedule_compile", |b| {
        b.iter(|| {
            let s = lib.cx_schedule(0, 1);
            hgp_pulse::propagator::compile_schedule(black_box(&s), &backend)
        })
    });
}

fn bench_sabre(c: &mut Criterion) {
    let backend = Backend::ibmq_guadalupe();
    let qc = qaoa_like(8);
    let transpiler = Transpiler::new(&backend);
    let options = TranspileOptions::default();
    c.bench_function("sabre_route_qaoa_8q", |b| {
        b.iter(|| transpiler.run(black_box(&qc), &options))
    });
}

fn bench_m3(c: &mut Criterion) {
    let model = ReadoutModel::uniform(6, 0.03);
    let m3 = M3Mitigator::from_readout_model(&model);
    // A spread-out record: 40 observed bitstrings.
    let mut counts = Counts::new(6);
    for b in 0..40usize {
        counts.record(b, (b as u64 % 7) * 13 + 5);
    }
    c.bench_function("m3_solve_40_bitstrings", |b| {
        b.iter(|| m3.apply(black_box(&counts)))
    });
}

fn bench_eigh(c: &mut Criterion) {
    let h = hgp_math::pauli::sigma_x().kron(&hgp_math::pauli::sigma_z());
    c.bench_function("eigh_4x4", |b| {
        b.iter(|| hgp_math::eigen::eigh(black_box(&h)))
    });
}

criterion_group!(
    kernels,
    bench_statevector,
    bench_statevector_wide,
    bench_fused_vs_generic_16q,
    bench_diag_rzz_16q,
    bench_density_gate,
    bench_density_kraus,
    bench_pulse_propagator,
    bench_cx_schedule,
    bench_sabre,
    bench_m3,
    bench_eigh
);
criterion_main!(kernels);
