//! Criterion benchmarks of the exact-path superoperator replay
//! subsystem.
//!
//! These back the acceptance bar recorded in `BENCH_exact.json`:
//!
//! - **per-dispatch exact expectation: replay vs the reference walk** —
//!   a 10-qubit noisy QAOA cost expectation computed (a) through the
//!   serving hot path, `CompiledCircuit::bind_exact` (template
//!   substitution into the precompiled superoperator tape) +
//!   [`Executor::run_exact_replay`], and (b) through the interpreted
//!   reference walk it replaces, `bind` + [`Executor::run`] (schedule
//!   walk re-deriving matrices and re-resolving channels per op, with
//!   per-Kraus density-matrix clones). Parity is pinned by
//!   `crates/sim/tests/exact_replay_parity.rs` and the template tests
//!   in `crates/core`; the replay path must be **>= 3x** faster per
//!   dispatch,
//! - **template bind vs the full schedule walk** — producing an
//!   executable exact tape from a parameter binding:
//!   `CompiledCircuit::bind_exact` vs bind + ASAP walk + tape compile
//!   (`Executor::exact_replay_program`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use hgp_core::compile::CircuitCompiler;
use hgp_core::qaoa::{cost_hamiltonian, qaoa_circuit};
use hgp_device::Backend;
use hgp_graph::generators;
use hgp_sim::SimBackend;

/// A 10-qubit path in `ibmq_guadalupe`'s heavy-hex coupling map (the
/// prefix of the 12q region the replay benches use).
const LAYOUT_10Q: [usize; 10] = [0, 1, 2, 3, 5, 8, 11, 14, 13, 12];

const PARAMS: [f64; 2] = [0.35, 0.25];

/// One served exact dispatch on the replay path: template-bind the
/// angles into the precompiled tape, replay it over the scratch arena,
/// contract the cost observable.
fn bench_exact_replay_dispatch(c: &mut Criterion) {
    let backend = Backend::ibmq_guadalupe();
    let graph = generators::random_regular(10, 3, 7);
    let compiled = CircuitCompiler::new(&backend, LAYOUT_10Q.to_vec())
        .compile(&qaoa_circuit(&graph, 1))
        .expect("10q shape compiles");
    let exec = compiled.executor(&backend);
    let obs = compiled.wire_observable(&cost_hamiltonian(&graph));
    hgp_bench::emit_bench_meta("meta:exact", 0);
    let mut slow = Criterion::default().sample_size(10);
    slow.bench_function("exact_replay_expectation_10q", |b| {
        b.iter(|| {
            let tape = compiled.bind_exact(&exec, black_box(&PARAMS));
            let rho = exec.run_exact_replay(&tape);
            SimBackend::expectation(&rho, &obs)
        })
    });
    let _ = c;
}

/// The same dispatch on the interpreted reference walk the tape
/// replaces (results pinned within 1e-12 elementwise).
fn bench_exact_walk_dispatch(c: &mut Criterion) {
    let backend = Backend::ibmq_guadalupe();
    let graph = generators::random_regular(10, 3, 7);
    let compiled = CircuitCompiler::new(&backend, LAYOUT_10Q.to_vec())
        .compile(&qaoa_circuit(&graph, 1))
        .expect("10q shape compiles");
    let exec = compiled.executor(&backend);
    let obs = compiled.wire_observable(&cost_hamiltonian(&graph));
    let mut slow = Criterion::default().sample_size(10);
    slow.bench_function("exact_walk_expectation_10q", |b| {
        b.iter(|| {
            let rho = exec.run(&compiled.bind(black_box(&PARAMS)));
            SimBackend::expectation(&rho, &obs)
        })
    });
    let _ = c;
}

/// Producing an executable exact tape per dispatch: template
/// substitution vs the full bind + schedule walk + tape compile it
/// replaces.
fn bench_exact_bind_paths(c: &mut Criterion) {
    let backend = Backend::ibmq_guadalupe();
    let graph = generators::random_regular(10, 3, 7);
    let compiled = CircuitCompiler::new(&backend, LAYOUT_10Q.to_vec())
        .compile(&qaoa_circuit(&graph, 1))
        .expect("10q shape compiles");
    let exec = compiled.executor(&backend);
    c.bench_function("exact_template_bind_10q", |b| {
        b.iter(|| compiled.bind_exact(&exec, black_box(&PARAMS)))
    });
    c.bench_function("exact_schedule_walk_10q", |b| {
        b.iter(|| exec.exact_replay_program(&compiled.bind(black_box(&PARAMS))))
    });
}

criterion_group!(
    exact,
    bench_exact_replay_dispatch,
    bench_exact_walk_dispatch,
    bench_exact_bind_paths
);
criterion_main!(exact);
