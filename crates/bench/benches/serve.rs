//! Criterion throughput benchmarks of the serving layer.
//!
//! These back the serve-layer acceptance bar recorded in
//! `BENCH_serve.json`: serving N repeated-shape QAOA jobs through
//! `hgp_serve` with a warm compiled-program cache must be **>= 2x
//! faster** than N naive transpile+bind+run calls, with bit-identical
//! results (pinned by `crates/serve/tests/service_integration.rs`).
//!
//! The naive path is exactly the per-job work a cache-less caller pays:
//! cancellation + SABRE placement + routing (the *shape* work) repeated
//! for every parameter point, then binding and execution. The served
//! path pays the shape work once and streams bindings through the
//! worker pool.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use hgp_circuit::Circuit;
use hgp_core::compile::CircuitCompiler;
use hgp_core::qaoa::qaoa_circuit;
use hgp_device::Backend;
use hgp_graph::instances;
use hgp_serve::{JobRequest, JobSpec, ServeConfig, Service};
use hgp_sim::{SimBackend, StateVector};

const N_JOBS: usize = 32;

fn parameter_points(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| vec![0.05 + 0.02 * i as f64, 0.30 - 0.005 * i as f64])
        .collect()
}

fn shape() -> (Backend, Circuit, Vec<usize>) {
    let backend = Backend::ibmq_guadalupe();
    let circuit = qaoa_circuit(&instances::task1_three_regular_6(), 1);
    (backend, circuit, vec![0, 1, 2, 3, 4, 5])
}

/// N parameter points, each paying the full transpile+bind+run cost.
fn bench_naive_32x(c: &mut Criterion) {
    let (backend, circuit, layout) = shape();
    let points = parameter_points(N_JOBS);
    c.bench_function("serve_naive_transpile_run_32x_qaoa6", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for params in &points {
                let compiler = CircuitCompiler::new(&backend, layout.clone());
                let compiled = compiler.compile(black_box(&circuit)).expect("fits");
                let wire = StateVector::execute(&compiled.circuit().bind(params)).expect("bound");
                acc += compiled.decode_probabilities(&wire.probabilities())[0];
            }
            acc
        })
    });
}

/// The same N points served as one batch against a warm cache.
fn bench_served_32x(c: &mut Criterion) {
    let (backend, circuit, layout) = shape();
    let points = parameter_points(N_JOBS);
    let mut service = Service::new(&backend, ServeConfig::new(layout));
    // Warm the cache: the steady-state serving regime is what's measured.
    service.run(JobRequest::new(
        circuit.clone(),
        points[0].clone(),
        JobSpec::StateVector,
    ));
    c.bench_function("serve_cached_batch_32x_qaoa6", |b| {
        b.iter(|| {
            let requests: Vec<JobRequest> = points
                .iter()
                .map(|x| {
                    JobRequest::new(black_box(&circuit).clone(), x.clone(), JobSpec::StateVector)
                })
                .collect();
            service.run_batch(requests)
        })
    });
}

/// Single-job dispatch latency against a warm cache (pool spin-up,
/// admission, hash lookup, bind, execute, decode).
fn bench_served_singleton(c: &mut Criterion) {
    let (backend, circuit, layout) = shape();
    let mut service = Service::new(&backend, ServeConfig::new(layout).with_workers(1));
    service.run(JobRequest::new(
        circuit.clone(),
        vec![0.3, 0.2],
        JobSpec::StateVector,
    ));
    c.bench_function("serve_cached_single_job_qaoa6", |b| {
        b.iter(|| {
            service.run(JobRequest::new(
                black_box(&circuit).clone(),
                vec![0.3, 0.2],
                JobSpec::StateVector,
            ))
        })
    });
}

/// The amortized cost: one shape compilation (what every cache hit
/// saves).
fn bench_compile_once(c: &mut Criterion) {
    let (backend, circuit, layout) = shape();
    let compiler = CircuitCompiler::new(&backend, layout);
    c.bench_function("serve_compile_shape_qaoa6", |b| {
        b.iter(|| compiler.compile(black_box(&circuit)).expect("fits"))
    });
}

criterion_group!(
    serve,
    bench_naive_32x,
    bench_served_32x,
    bench_served_singleton,
    bench_compile_once
);
criterion_main!(serve);
