//! Criterion benchmarks of the noisy-execution paths.
//!
//! These back the acceptance bar recorded in `BENCH_noise.json`: a
//! 12-qubit noisy QAOA expectation estimated from **256 stochastic
//! statevector trajectories** must beat one exact **density-matrix**
//! run of the same schedule by **>= 2x** (it beats it by orders of
//! magnitude — the density matrix pays `O(4^n)` per instruction, a
//! trajectory `O(2^n)`), with the trajectory mean pinned to the exact
//! value by the convergence suite in
//! `crates/noise/tests/noise_properties.rs`.
//!
//! Both paths execute the *same* schedule: `NoisySimulator` walks the
//! ASAP schedule once per shape and either applies full Kraus sets to a
//! density matrix or records a `TrajectoryProgram` that the engine
//! replays per shot.
//!
//! Also measured: the readout confusion sweep (strided fast path vs the
//! masked `_reference`), and the trajectory program construction cost a
//! cached `NoiseModel` amortizes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use hgp_circuit::Circuit;
use hgp_device::Backend;
use hgp_math::pauli::{Pauli, PauliString, PauliSum};
use hgp_noise::{NoisySimulator, ReadoutModel};
use hgp_sim::{DensityMatrix, SimBackend, TrajectoryEngine};

/// A 12-qubit path in `ibmq_guadalupe`'s heavy-hex coupling map, so the
/// chain QAOA layer below needs no routing.
const LAYOUT_12Q: [usize; 12] = [0, 1, 2, 3, 5, 8, 11, 14, 13, 12, 10, 7];

const SHOTS: usize = 256;

/// One QAOA layer on a 12-node chain: H wall, RZZ cost chain, RX mixer.
fn qaoa_layer(n: usize) -> Circuit {
    let mut qc = Circuit::new(n);
    for q in 0..n {
        qc.h(q);
    }
    for q in 0..n - 1 {
        qc.rzz(q, q + 1, 0.4);
    }
    for q in 0..n {
        qc.rx(q, 0.8);
    }
    qc
}

fn zz_chain(n: usize) -> PauliSum {
    PauliSum::from_terms(
        (0..n - 1)
            .map(|q| PauliString::new(n, vec![(q, Pauli::Z), (q + 1, Pauli::Z)], 1.0))
            .collect(),
    )
}

/// 256 stochastic statevector trajectories of the noisy 12q layer,
/// including per-dispatch program recording (the noise model itself is
/// the cached artifact).
fn bench_trajectory_12q(c: &mut Criterion) {
    let backend = Backend::ibmq_guadalupe();
    let sim = NoisySimulator::new(&backend);
    let qc = qaoa_layer(12);
    let obs = zz_chain(12);
    let model = sim.noise_model(&LAYOUT_12Q);
    c.bench_function("noise_trajectory_expectation_12q_256shots", |b| {
        b.iter(|| {
            let program = sim
                .trajectory_program_with_model(black_box(&qc), &model)
                .expect("bound");
            TrajectoryEngine::new(SHOTS, 11).expectation(&program, &obs)
        })
    });
}

/// One exact density-matrix run of the same 12q schedule — `O(4^n)` per
/// instruction, the path trajectories replace.
fn bench_density_12q(_c: &mut Criterion) {
    let backend = Backend::ibmq_guadalupe();
    let sim = NoisySimulator::new(&backend);
    let qc = qaoa_layer(12);
    let obs = zz_chain(12);
    let model = sim.noise_model(&LAYOUT_12Q);
    // A single exact run takes tens of seconds at 12 qubits; a local
    // two-sample Criterion bounds the bench's wall clock (the group's
    // shared config cannot shrink per target).
    let mut slow = Criterion::default().sample_size(2);
    slow.bench_function("noise_density_expectation_12q", |b| {
        b.iter(|| {
            let rho: DensityMatrix = sim
                .simulate_with_model(black_box(&qc), &model)
                .expect("bound");
            SimBackend::expectation(&rho, &obs)
        })
    });
}

/// The readout confusion sweep at 16 qubits: strided fast path vs the
/// masked reference (bit-identical by the parity suite).
fn bench_readout_sweep(c: &mut Criterion) {
    let n = 16;
    let model = ReadoutModel::uniform(n, 0.03);
    let dim = 1usize << n;
    let probs: Vec<f64> = vec![1.0 / dim as f64; dim];
    c.bench_function("noise_readout_sweep_16q", |b| {
        b.iter(|| model.apply_to_probabilities(black_box(&probs)))
    });
    c.bench_function("noise_readout_sweep_16q_reference", |b| {
        b.iter(|| model.apply_to_probabilities_reference(black_box(&probs)))
    });
}

criterion_group!(
    noise,
    bench_trajectory_12q,
    bench_density_12q,
    bench_readout_sweep
);
criterion_main!(noise);
